#!/usr/bin/env bash
# dist_fault_smoke.sh — worker-kill equivalence smoke for distributed
# sweeps.
#
# Runs the sweep two ways:
#   1. single-process, as the byte-exact JSON + CSV reference;
#   2. with --workers 3 and one worker process SIGKILL'd at a randomized
#      delay — the leader must detect the death via heartbeat loss/exit,
#      restart the shard (resuming its journal), and finish.
# The merged distributed output must be byte-identical to the reference.
# Several rounds randomize which worker dies and when, so the kill lands
# on different shards at different progress points.
#
# Usage: tools/dist_fault_smoke.sh <psync_sim-binary> <config.ini> [workdir]
# Exits nonzero (leaving the shard journals in the workdir for CI to
# upload) on any mismatch.
set -u

SIM=${1:?usage: dist_fault_smoke.sh <psync_sim> <config.ini> [workdir]}
CONFIG=${2:?usage: dist_fault_smoke.sh <psync_sim> <config.ini> [workdir]}
WORK=${3:-dist-fault-smoke-work}

mkdir -p "$WORK"

echo "dist-fault-smoke: serial reference run"
"$SIM" --json "$CONFIG" > "$WORK/ref.json" || exit 1
"$SIM" --csv "$CONFIG" > "$WORK/ref.csv" || exit 1

# Reproducible-but-varied randomness: derive the kill delay from RANDOM
# (seedable via $RANDOM_SEED for local repro; CI takes the default).
if [ -n "${RANDOM_SEED:-}" ]; then
  RANDOM=$RANDOM_SEED
fi

fail=0
for round in 1 2 3; do
  base="$WORK/dist-$round"
  rm -f "$base".shard*.jsonl
  # Randomized kill delay in [0.05s, 0.45s) — somewhere inside the sweep.
  delay=$(awk -v r="$RANDOM" 'BEGIN { printf "%.2f", 0.05 + (r % 40) / 100 }')

  "$SIM" --workers 3 --journal "$base" --json "$CONFIG" \
    > "$WORK/dist-$round.json" 2> "$WORK/dist-$round.stderr" &
  leader=$!
  sleep "$delay"

  # Pick one live worker child of the leader and SIGKILL it.
  victim=$(pgrep -P "$leader" | head -n 1 || true)
  if [ -n "$victim" ] && kill -9 "$victim" 2> /dev/null; then
    echo "dist-fault-smoke: round $round: SIGKILL'd worker $victim at ${delay}s"
  else
    echo "dist-fault-smoke: round $round: no worker alive at ${delay}s (ok)"
  fi

  if ! wait "$leader"; then
    echo "dist-fault-smoke: round $round: leader FAILED"
    sed 's/^/  leader stderr: /' "$WORK/dist-$round.stderr"
    fail=1
    continue
  fi
  sed -n 's/^psync_sim: dist:/dist-fault-smoke: round '"$round"': leader:/p' \
    "$WORK/dist-$round.stderr"

  if ! cmp -s "$WORK/ref.json" "$WORK/dist-$round.json"; then
    echo "dist-fault-smoke: round $round: merged JSON differs from reference"
    fail=1
  fi
done

# One CSV rendering through the distributed path for the second format.
base="$WORK/dist-csv"
rm -f "$base".shard*.jsonl
if ! "$SIM" --workers 3 --journal "$base" --csv "$CONFIG" \
    > "$WORK/dist-csv.csv" 2> /dev/null; then
  echo "dist-fault-smoke: csv round: leader FAILED"
  fail=1
elif ! cmp -s "$WORK/ref.csv" "$WORK/dist-csv.csv"; then
  echo "dist-fault-smoke: csv round: merged CSV differs from reference"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "dist-fault-smoke: FAILED (journals left in $WORK)"
  exit 1
fi
echo "dist-fault-smoke: OK — merged output byte-identical to serial reference"
