// psync_sim — config-driven experiment runner over the driver subsystem.
//
// An INI file describes one ExperimentSpec (workload kind + machine params
// + sweep axes); the driver expands the sweep grid and executes it on a
// thread pool (`threads` under [experiment], or --threads). Results are
// identical regardless of thread count. Supported workload kinds:
//
//   [experiment]
//   kind = fft2d | fft1d | transpose | pipeline | mesh | sweep |
//          reliability_sweep          # legacy sweep spellings
//   threads = 8        # sweep pool size (results identical to threads = 1)
//   json = true        # dump via the unified run-report schema (v2)
//   csv = true         # ... or as CSV
//
//   [machine]          # P-sync side
//   processors = 16
//   rows = 64          # matrix rows (or four-step R for fft1d)
//   cols = 64
//   blocks = 4         # Model II delivery blocks
//   waveguide_gbps = 320
//
//   [mesh]             # mesh side (fft2d/transpose/mesh)
//   grid = 4
//   t_p = 1
//   elements_per_packet = 32
//   virtual_channels = 1
//
//   [fault]            # optical fault injection (optional)
//   dead_wavelengths = 5 17    # stuck-at-0 lanes
//   random_ber = 1e-9          # or: margin_db = -1.5 (BER from Q model)
//   seed = 1
//   drift_ber_per_mword = 1e-4 # thermal-drift BER ramp (additive / Mword)
//   brownout_start_word = 4096 # power-sag window on the stream-word axis
//   brownout_words = 4096
//   brownout_ber = 1e-4
//
//   [reliability]      # error handling above the PHY (optional)
//   policy = correct   # off | detect | correct
//
//   [guard]            # per-point isolation policy (optional)
//   isolate = true     # exceptions become structured point failures
//   max_retries = 1    # retries for transient failures (timeout/internal)
//   point_timeout_ms = 0       # cooperative watchdog deadline per attempt
//   retry_backoff_ms = 5
//   max_point_mb = 0   # refuse points estimated over this working set
//
//   [sweep]            # multi-knob grid: each line is one axis (cartesian)
//   processors = 8 16 32 64
//   blocks = 1 2 4 8
//
// Configs are validated against the full key schema: unknown sections or
// keys and type-mismatched values are reported (with did-you-mean
// suggestions) as warnings, or as hard errors under --strict /
// `strict = true`.
//
// Usage:
//   psync_sim [--strict] [--threads N] [--json | --csv] [--profile]
//             [--journal PATH | --resume PATH] [--timeout-ms X]
//             [--retries N] [--workers N] [--heartbeat-ms X]
//             [--listen [HOST:]PORT [--advertise HOST]] [chaos flags]
//             <config.ini>
//   psync_sim --demo          # print a sample config and exit
//   psync_sim --list          # list registered workload kinds
//
// Crash-safe campaigns: --journal appends every finished point to an
// fsync'd JSONL checkpoint (also `journal = PATH` under [experiment]);
// --resume PATH skips the points already in that journal and reconstitutes
// them, rendering byte-identical output to an uninterrupted run. Failed or
// quarantined points are reported in the campaign summary (stderr) and in
// the JSON/CSV status columns.
//
// Distributed sweeps: --workers N shards the grid across N worker
// *processes* supervised by this one (src/psync/dist): per-shard fsync'd
// journals, heartbeat liveness (--heartbeat-ms, default 100), automatic
// restart-with-backoff of crashed or wedged workers, work stealing from
// stragglers, and a final merge that renders byte-identical output to a
// single-process run — see docs/robustness.md. Workers are launched as
// `psync_sim --worker-shard A:B ...` re-invocations of this binary; the
// worker flags are internal plumbing, not a user interface. --journal
// doubles as the shard-journal base path (default: under /tmp).
//
// Remote workers: --listen [HOST:]PORT (PORT 0 = ephemeral) switches the
// leader to the TCP socket transport — workers dial back, heartbeats and
// per-point journal records travel as length-prefixed frames, the leader
// appends records to the local shard journals (fsync before ack) and
// fences zombie workers by lease epoch. --advertise HOST is the address
// workers are told to dial when it differs from the bind address (two-host
// runs; see EXPERIMENTS.md). A worker launched by hand connects with
// `psync_sim --worker-shard A:B --connect HOST:PORT --worker-epoch E ...`.
//
// Network chaos (tests and the net-chaos CI smoke): --chaos-seed S arms a
// deterministic frame-level fault injector on every worker's link
// (per-shard derived seeds); --chaos-drop/--chaos-dup/--chaos-reorder/
// --chaos-delay set per-frame probabilities, --chaos-delay-ms the hold
// time, and --chaos-partition-after N/--chaos-partition-ms T sever the
// connection after N frames for T ms (with --chaos-partition-repeat
// re-arming it). The merged output must stay byte-identical to a serial
// run under any of this — that is the property the flags exist to test.
//
// Graceful shutdown: SIGTERM or SIGINT cancels the sweep cooperatively —
// no new point starts, in-flight points abandon at their next cycle-batch
// boundary, every journal tail stays durable (resumable) — and the tool
// exits with code 4.
//
// Exit codes: 0 success; 1 config/journal error or every point failed;
// 2 usage or strict-mode config problems; 3 --strict with any failed or
// quarantined point; 4 cancelled by SIGTERM/SIGINT (journal resumable).
//
// --profile prints a host wall-clock breakdown (config parse / sweep run /
// render, plus per-sweep-point cost) to stderr; simulation results are
// unaffected.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "psync/common/config.hpp"
#include "psync/common/table.hpp"
#include "psync/core/trace.hpp"
#include "psync/dist/supervisor.hpp"
#include "psync/dist/worker.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"
#include "psync/perf/stopwatch.hpp"

namespace {

using namespace psync;

constexpr const char* kDemo = R"([experiment]
kind = fft2d
threads = 1

[machine]
processors = 16
rows = 64
cols = 64
blocks = 4
waveguide_gbps = 320

[mesh]
grid = 4
t_p = 1
elements_per_packet = 32
virtual_channels = 1
)";

void print_phase_table(const std::vector<core::Phase>& phases) {
  Table t({"phase", "start (us)", "duration (us)"});
  for (const auto& ph : phases) {
    t.row().add(ph.name).add(ph.start_ns * 1e-3, 2).add(ph.duration_ns() * 1e-3,
                                                        2);
  }
  std::printf("%s", t.to_string().c_str());
}

void print_psync(const core::PsyncRunReport& rep) {
  print_phase_table(rep.phases);
  std::printf(
      "total %.2f us | efficiency %.1f%% | %.2f GFLOPS | energy %.1f nJ "
      "(%.1f comm + %.1f compute) | err %.2e\n",
      rep.total_ns * 1e-3, rep.compute_efficiency * 100.0, rep.gflops,
      rep.total_energy_pj() * 1e-3, rep.comm_energy_pj * 1e-3,
      rep.compute_energy_pj * 1e-3, rep.max_error_vs_reference);
  if (rep.fault.words_corrupted > 0 || rep.retry.blocks_total > 0 ||
      !rep.lanes.dead_lanes.empty()) {
    std::printf(
        "faults: %llu/%llu words corrupted (%llu bits flipped, %llu "
        "silenced)\n",
        static_cast<unsigned long long>(rep.fault.words_corrupted),
        static_cast<unsigned long long>(rep.fault.words_total),
        static_cast<unsigned long long>(rep.fault.bits_flipped),
        static_cast<unsigned long long>(rep.fault.bits_silenced));
    std::printf(
        "recovery: %llu/%llu blocks retried (%llu retries, %llu slots "
        "replayed) | %llu bits corrected | %llu detected | %llu residual\n",
        static_cast<unsigned long long>(rep.retry.blocks_retried),
        static_cast<unsigned long long>(rep.retry.blocks_total),
        static_cast<unsigned long long>(rep.retry.retries),
        static_cast<unsigned long long>(rep.retry.slots_replayed),
        static_cast<unsigned long long>(rep.retry.corrected_bits),
        static_cast<unsigned long long>(rep.retry.detected_errors),
        static_cast<unsigned long long>(rep.retry.residual_errors));
    std::printf(
        "lanes: %zu dead, %zu remapped to spares, %zu unrecovered "
        "(%zu slots/word) | reliability overhead %.2f us\n",
        rep.lanes.dead_lanes.size(), rep.lanes.spares_used,
        rep.lanes.residual_dead, rep.lanes.slots_per_word,
        rep.reliability_overhead_ns * 1e-3);
  }
  std::printf("\n");
}

void print_single(const driver::RunRecord& rec) {
  if (rec.status != driver::PointStatus::kOk) {
    const char* kind =
        rec.failure ? to_string(rec.failure->kind) : "internal_error";
    std::printf("point %zu %s (%s): %s\n", rec.index, to_string(rec.status),
                kind, rec.failure ? rec.failure->message.c_str() : "");
    return;
  }
  if (rec.workload == "fft2d" || rec.workload == "fft1d" ||
      rec.workload == "reliability" || rec.workload == "degradation_sweep") {
    std::printf("== P-sync ==\n");
    if (rec.psync) print_psync(*rec.psync);
    if (rec.mesh) {
      std::printf("== electronic mesh ==\n");
      print_phase_table(rec.mesh->phases);
      std::printf("total %.2f us | %.2f GFLOPS | energy %.1f nJ | err %.2e\n\n",
                  rec.mesh->total_ns * 1e-3, rec.mesh->gflops,
                  rec.mesh->total_energy_pj() * 1e-3,
                  rec.mesh->max_error_vs_reference);
      std::printf("P-sync speedup: %.2fx, energy advantage: %.2fx\n",
                  rec.mesh->total_ns / rec.psync->total_ns,
                  rec.mesh->total_energy_pj() / rec.psync->total_energy_pj());
    }
    return;
  }
  if (rec.workload == "mesh" && rec.mesh) {
    std::printf("== electronic mesh ==\n");
    print_phase_table(rec.mesh->phases);
    std::printf("total %.2f us | %.2f GFLOPS | energy %.1f nJ | err %.2e\n",
                rec.mesh->total_ns * 1e-3, rec.mesh->gflops,
                rec.mesh->total_energy_pj() * 1e-3,
                rec.mesh->max_error_vs_reference);
    return;
  }
  if (rec.workload == "transpose" && rec.transpose) {
    std::printf(
        "mesh transpose: %lld cycles (%.2f cycles/element), %llu elements\n",
        static_cast<long long>(rec.transpose->completion_cycle),
        rec.transpose->cycles_per_element,
        static_cast<unsigned long long>(rec.transpose->elements));
    return;
  }
  if (rec.workload == "pipeline" && rec.pipeline) {
    std::printf(
        "frame latency %.2f us | initiation interval %.2f us | "
        "%.0f frames/s | bound by %s\n",
        rec.pipeline->latency_ns * 1e-3, rec.pipeline->interval_ns * 1e-3,
        rec.pipeline->frames_per_sec,
        rec.pipeline->bus_bound ? "waveguide" : "compute");
    return;
  }
  // Generic fall-back: one-row metrics table.
  driver::SweepResult one;
  one.records.push_back(rec);
  std::printf("%s", driver::sweep_table(one, rec.workload).c_str());
}

std::string sweep_title(const driver::ExperimentSpec& spec) {
  std::string axes;
  for (const auto& axis : spec.axes) {
    if (!axes.empty()) axes += " x ";
    axes += axis.knob;
  }
  return "P-sync " + spec.workload + " sweep over " + axes;
}

int usage() {
  std::fprintf(stderr,
               "usage: psync_sim [--strict] [--threads N] [--json | --csv] "
               "[--profile]\n"
               "                 [--journal PATH | --resume PATH] "
               "[--timeout-ms X] [--retries N]\n"
               "                 [--workers N] [--heartbeat-ms X]\n"
               "                 [--listen [HOST:]PORT [--advertise HOST]]\n"
               "                 [--chaos-seed S --chaos-drop P --chaos-dup P "
               "--chaos-reorder P\n"
               "                  --chaos-delay P --chaos-delay-ms X\n"
               "                  --chaos-partition-after N "
               "--chaos-partition-ms X [--chaos-partition-repeat]]\n"
               "                 <config.ini>\n"
               "       psync_sim --demo | --list\n");
  return 2;
}

// Process-wide shutdown token: SIGTERM/SIGINT request a graceful wind-down
// (journal tails stay durable, exit code 4) instead of killing the sweep
// mid-write. The handler is a relaxed atomic store — async-signal-safe.
psync::CancelToken g_cancel;

void sim_signal_handler(int /*signo*/) { g_cancel.cancel(); }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = sim_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: wake blocking syscalls too
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

/// "A:B" -> [A, B). Returns false on anything malformed.
bool parse_shard_range(const std::string& arg, dist::ShardRange* out) {
  const std::size_t colon = arg.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long a = std::strtoull(arg.c_str(), &end, 10);
  if (end != arg.c_str() + colon) return false;
  const char* bp = arg.c_str() + colon + 1;
  const unsigned long long b = std::strtoull(bp, &end, 10);
  if (*end != '\0') return false;
  out->begin = static_cast<std::size_t>(a);
  out->end = static_cast<std::size_t>(b);
  return true;
}

/// "3,7,12" -> {3, 7, 12}. Empty string -> empty list.
bool parse_index_list(const std::string& arg, std::vector<std::size_t>* out) {
  std::size_t at = 0;
  while (at < arg.size()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str() + at, &end, 10);
    if (end == arg.c_str() + at) return false;
    out->push_back(static_cast<std::size_t>(v));
    at = static_cast<std::size_t>(end - arg.c_str());
    if (at < arg.size()) {
      if (arg[at] != ',') return false;
      ++at;
    }
  }
  return true;
}

/// --profile: wall-clock breakdown of the tool's own phases plus the
/// per-point cost of the sweep. Goes to stderr so piped --json/--csv
/// output stays parseable. Host timing only — simulated time is in the
/// reports themselves.
void print_profile(const perf::PhaseProfiler& prof,
                   const driver::SweepResult& result) {
  std::fprintf(stderr, "\n-- profile (host wall clock) --\n%s",
               prof.table().c_str());
  double sweep_ns = 0.0;
  for (const auto& rec : result.records) sweep_ns += rec.wall_ns;
  if (result.records.size() > 1) {
    std::fprintf(stderr, "\nper sweep point:\n");
    perf::PhaseProfiler points;
    for (const auto& rec : result.records) {
      std::string label = rec.workload + "#" + std::to_string(rec.index);
      for (const auto& [knob, value] : rec.knobs) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %s=%g", knob.c_str(), value);
        label += buf;
      }
      points.add(label, rec.wall_ns);
    }
    std::fprintf(stderr, "%s", points.table().c_str());
  }
  if (sweep_ns > 0.0) {
    std::fprintf(
        stderr, "sweep: %zu point(s) in %.3f ms of point work (%s)\n",
        result.records.size(), sweep_ns * 1e-6,
        perf::format_rate(
            static_cast<double>(result.records.size()) / (sweep_ns * 1e-9),
            "points")
            .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  bool csv = false;
  bool profile = false;
  long threads_override = -1;
  std::string journal_path;
  bool resume = false;
  bool saw_journal = false;
  bool saw_resume = false;
  double timeout_ms = -1.0;
  long retries_override = -1;
  std::string config_path;
  long workers = 0;            // > 0: distributed leader mode
  double heartbeat_ms = 100.0;
  std::string listen_spec;     // --listen: leader socket transport
  std::string advertise_host;  // --advertise: address workers dial
  // Frame-level fault injection on the worker links (leader forwards it to
  // every worker it launches; a worker applies it to its own link).
  dist::ChaosOptions chaos;
  // Internal worker-mode plumbing (leader-launched re-invocations).
  bool worker_mode = false;
  dist::WorkerConfig worker_cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      std::printf("%s", kDemo);
      return 0;
    }
    if (arg == "--list") {
      for (const auto& name : driver::workload_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      threads_override = std::atol(argv[++i]);
    } else if (arg == "--journal") {
      if (i + 1 >= argc) return usage();
      journal_path = argv[++i];
      saw_journal = true;
    } else if (arg == "--resume") {
      if (i + 1 >= argc) return usage();
      journal_path = argv[++i];
      resume = true;
      saw_resume = true;
    } else if (arg == "--timeout-ms") {
      if (i + 1 >= argc) return usage();
      timeout_ms = std::atof(argv[++i]);
    } else if (arg == "--retries") {
      if (i + 1 >= argc) return usage();
      retries_override = std::atol(argv[++i]);
    } else if (arg == "--workers") {
      if (i + 1 >= argc) return usage();
      workers = std::atol(argv[++i]);
      if (workers <= 0) return usage();
    } else if (arg == "--heartbeat-ms") {
      if (i + 1 >= argc) return usage();
      heartbeat_ms = std::atof(argv[++i]);
    } else if (arg == "--listen") {
      if (i + 1 >= argc) return usage();
      listen_spec = argv[++i];
    } else if (arg == "--advertise") {
      if (i + 1 >= argc) return usage();
      advertise_host = argv[++i];
    } else if (arg == "--chaos-seed") {
      if (i + 1 >= argc) return usage();
      chaos.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--chaos-drop") {
      if (i + 1 >= argc) return usage();
      chaos.drop = std::atof(argv[++i]);
    } else if (arg == "--chaos-dup") {
      if (i + 1 >= argc) return usage();
      chaos.duplicate = std::atof(argv[++i]);
    } else if (arg == "--chaos-reorder") {
      if (i + 1 >= argc) return usage();
      chaos.reorder = std::atof(argv[++i]);
    } else if (arg == "--chaos-delay") {
      if (i + 1 >= argc) return usage();
      chaos.delay = std::atof(argv[++i]);
    } else if (arg == "--chaos-delay-ms") {
      if (i + 1 >= argc) return usage();
      chaos.delay_ms = std::atof(argv[++i]);
    } else if (arg == "--chaos-partition-after") {
      if (i + 1 >= argc) return usage();
      chaos.partition_after =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--chaos-partition-ms") {
      if (i + 1 >= argc) return usage();
      chaos.partition_ms = std::atof(argv[++i]);
    } else if (arg == "--chaos-partition-repeat") {
      chaos.partition_repeat = true;
    } else if (arg == "--connect") {  // worker mode: dial the leader
      if (i + 1 >= argc) return usage();
      worker_mode = true;
      if (!dist::parse_host_port(argv[++i], &worker_cfg.connect_host,
                                 &worker_cfg.connect_port)) {
        return usage();
      }
    } else if (arg == "--worker-epoch") {
      if (i + 1 >= argc) return usage();
      worker_cfg.epoch = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--worker-shard") {
      if (i + 1 >= argc) return usage();
      worker_mode = true;
      if (!parse_shard_range(argv[++i], &worker_cfg.range)) return usage();
    } else if (arg == "--worker-id") {
      if (i + 1 >= argc) return usage();
      worker_cfg.shard = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--worker-generation") {
      if (i + 1 >= argc) return usage();
      worker_cfg.generation = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--worker-journal") {
      if (i + 1 >= argc) return usage();
      worker_cfg.journal_path = argv[++i];
    } else if (arg == "--heartbeat-fd") {
      if (i + 1 >= argc) return usage();
      worker_cfg.heartbeat_fd = static_cast<int>(std::atol(argv[++i]));
    } else if (arg == "--quarantine") {
      if (i + 1 >= argc) return usage();
      if (!parse_index_list(argv[++i], &worker_cfg.quarantine)) {
        return usage();
      }
    } else if (arg == "--crash-on-index") {  // fault injection (tests/smoke)
      if (i + 1 >= argc) return usage();
      worker_cfg.crash_on_index = std::atol(argv[++i]);
    } else if (arg == "--stall-on-index") {
      if (i + 1 >= argc) return usage();
      worker_cfg.stall_on_index = std::atol(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage();
    }
  }
  if (config_path.empty()) return usage();
  // --journal and --resume are documented as alternatives: --resume PATH
  // already appends newly finished points to PATH. Passing both used to
  // silently keep whichever came last; make the conflict loud instead.
  if (saw_journal && saw_resume) {
    std::fprintf(stderr,
                 "psync_sim: --journal and --resume are mutually exclusive "
                 "(--resume PATH already appends new points to PATH)\n");
    return usage();
  }
  // --listen/--advertise configure the leader's socket transport; without
  // --workers they would be silently ignored (and a bad HOST:PORT never
  // diagnosed). Make that loud too.
  if (!listen_spec.empty() && (workers <= 0 || worker_mode)) {
    std::fprintf(stderr, "psync_sim: --listen requires --workers N\n");
    return usage();
  }
  if (!advertise_host.empty() && listen_spec.empty()) {
    std::fprintf(stderr, "psync_sim: --advertise requires --listen\n");
    return usage();
  }

  // Worker mode: a shard worker launched by a leader's --workers run. The
  // spec is rebuilt from the same config + overrides the leader saw; shard
  // window, journal and heartbeat plumbing come from the worker flags.
  // run_worker installs its own signal handling and never throws.
  if (worker_mode) {
    try {
      const IniConfig cfg = IniConfig::load(config_path);
      auto spec = driver::spec_from_config(cfg);
      if (threads_override > 0) {
        spec.threads = static_cast<std::size_t>(threads_override);
      }
      if (timeout_ms >= 0.0) spec.guard.point_timeout_ms = timeout_ms;
      if (retries_override >= 0) {
        spec.guard.max_retries = static_cast<std::size_t>(retries_override);
      }
      worker_cfg.heartbeat_ms = heartbeat_ms;
      worker_cfg.chaos = chaos;
      return dist::run_worker(spec, worker_cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psync_sim (worker): %s\n", e.what());
      return 1;
    }
  }

  install_signal_handlers();

  try {
    perf::PhaseProfiler prof;
    prof.begin("parse + validate config");
    const IniConfig cfg = IniConfig::load(config_path);

    // Schema validation: typos stop silently meaning "use the default".
    const auto diags = driver::sim_config_schema().validate(cfg);
    strict = strict || cfg.get_bool("experiment", "strict", false);
    for (const auto& d : diags) {
      std::fprintf(stderr, "psync_sim: %s: %s\n",
                   strict ? "error" : "warning", d.to_string().c_str());
    }
    if (strict && !diags.empty()) {
      std::fprintf(stderr, "psync_sim: %zu config problem(s) (--strict)\n",
                   diags.size());
      return 2;
    }

    auto spec = driver::spec_from_config(cfg);
    if (threads_override > 0) {
      spec.threads = static_cast<std::size_t>(threads_override);
    }
    if (!journal_path.empty()) spec.journal_path = journal_path;
    spec.resume = spec.resume || resume;
    if (timeout_ms >= 0.0) spec.guard.point_timeout_ms = timeout_ms;
    if (retries_override >= 0) {
      spec.guard.max_retries = static_cast<std::size_t>(retries_override);
    }
    json = json || cfg.get_bool("experiment", "json", false);
    csv = csv || cfg.get_bool("experiment", "csv", false);
    prof.end();

    prof.begin("run sweep");
    driver::SweepResult result;
    if (workers > 0) {
      // Distributed leader: shard the grid across worker processes that
      // re-invoke this binary in --worker-shard mode. The merged result
      // renders through exactly the same paths as a serial run.
      dist::SupervisorOptions opts;
      opts.workers = static_cast<std::size_t>(workers);
      opts.heartbeat_ms = heartbeat_ms;
      opts.journal_base = !spec.journal_path.empty()
                              ? spec.journal_path
                              : "/tmp/psync-dist-" + std::to_string(::getpid());
      opts.cancel = &g_cancel;
      if (!listen_spec.empty()) {
        opts.transport = dist::TransportKind::kSocket;
        if (!dist::parse_host_port(listen_spec, &opts.listen_host,
                                   &opts.listen_port)) {
          std::fprintf(stderr, "psync_sim: bad --listen '%s'\n",
                       listen_spec.c_str());
          return usage();
        }
        opts.advertise_host = advertise_host;
      }
      // Per-shard chaos seeds: derived, not shared, so the shards' fault
      // sequences decorrelate while a fixed --chaos-seed still replays the
      // identical run.
      const dist::LaunchHook hook = [&](dist::WorkerConfig& wc) {
        if (chaos.seed == 0) return;
        wc.chaos = chaos;
        wc.chaos.seed = chaos.seed ^ (0x9E3779B97F4A7C15ULL * (wc.shard + 1));
        if (wc.chaos.seed == 0) wc.chaos.seed = 1;  // 0 would disarm it
      };
      const dist::WorkerBody body = [&](const driver::ExperimentSpec&,
                                        const dist::WorkerConfig& wc) -> int {
        std::vector<std::string> args = {
            "psync_sim",
            "--worker-shard",
            std::to_string(wc.range.begin) + ":" + std::to_string(wc.range.end),
            "--worker-id", std::to_string(wc.shard),
            "--worker-generation", std::to_string(wc.generation),
            "--heartbeat-ms", std::to_string(wc.heartbeat_ms),
            "--threads", "1"};
        if (!wc.connect_host.empty()) {
          // Socket transport: dial the leader, ship records, no local
          // journal or heartbeat pipe.
          args.push_back("--connect");
          args.push_back(wc.connect_host + ":" +
                         std::to_string(wc.connect_port));
          args.push_back("--worker-epoch");
          args.push_back(std::to_string(wc.epoch));
        } else {
          args.push_back("--worker-journal");
          args.push_back(wc.journal_path);
          args.push_back("--heartbeat-fd");
          args.push_back(std::to_string(wc.heartbeat_fd));
        }
        if (wc.chaos.seed != 0) {
          const auto dbl = [](double v) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            return std::string(buf);
          };
          args.push_back("--chaos-seed");
          args.push_back(std::to_string(wc.chaos.seed));
          args.push_back("--chaos-drop");
          args.push_back(dbl(wc.chaos.drop));
          args.push_back("--chaos-dup");
          args.push_back(dbl(wc.chaos.duplicate));
          args.push_back("--chaos-reorder");
          args.push_back(dbl(wc.chaos.reorder));
          args.push_back("--chaos-delay");
          args.push_back(dbl(wc.chaos.delay));
          args.push_back("--chaos-delay-ms");
          args.push_back(dbl(wc.chaos.delay_ms));
          args.push_back("--chaos-partition-after");
          args.push_back(std::to_string(wc.chaos.partition_after));
          args.push_back("--chaos-partition-ms");
          args.push_back(dbl(wc.chaos.partition_ms));
          if (wc.chaos.partition_repeat) {
            args.push_back("--chaos-partition-repeat");
          }
        }
        if (!wc.quarantine.empty()) {
          std::string list;
          for (const std::size_t idx : wc.quarantine) {
            if (!list.empty()) list += ',';
            list += std::to_string(idx);
          }
          args.push_back("--quarantine");
          args.push_back(list);
        }
        if (wc.crash_on_index >= 0) {
          args.push_back("--crash-on-index");
          args.push_back(std::to_string(wc.crash_on_index));
        }
        if (wc.stall_on_index >= 0) {
          args.push_back("--stall-on-index");
          args.push_back(std::to_string(wc.stall_on_index));
        }
        if (timeout_ms >= 0.0) {
          args.push_back("--timeout-ms");
          args.push_back(std::to_string(timeout_ms));
        }
        if (retries_override >= 0) {
          args.push_back("--retries");
          args.push_back(std::to_string(retries_override));
        }
        args.push_back(config_path);
        std::vector<char*> argv_exec;
        argv_exec.reserve(args.size() + 1);
        for (auto& a : args) argv_exec.push_back(a.data());
        argv_exec.push_back(nullptr);
        ::execv("/proc/self/exe", argv_exec.data());
        std::fprintf(stderr, "psync_sim: execv failed: %s\n",
                     std::strerror(errno));
        return 127;
      };
      result = dist::run_distributed(spec, opts, body, hook);
    } else {
      spec.cancel = &g_cancel;
      // Session API: validate (pure, typed diagnostics — all of them, not
      // just the first throw), then submit the frozen spec and join. Same
      // bytes as the old Runner::run path.
      const auto errors = driver::Session::validate(spec);
      if (!errors.empty()) {
        for (const auto& err : errors) {
          std::fprintf(stderr, "psync_sim: error: %s\n", err.what());
        }
        return 1;
      }
      driver::Session session;
      auto handle = session.submit(spec);
      handle.wait();
      result = handle.take();
    }
    prof.end(result.records.size(), "points");

    prof.begin("render output");
    if (json) {
      std::printf("%s\n", driver::sweep_json(result).c_str());
    } else if (csv) {
      std::printf("%s", driver::sweep_csv(result).c_str());
    } else if (!spec.axes.empty()) {
      std::printf("%s", driver::sweep_table(result, sweep_title(spec)).c_str());
    } else {
      print_single(result.records.front());
    }
    prof.end();

    if (profile) print_profile(prof, result);

    // Campaign accounting: surfaced whenever journaling/resume is active
    // or some point did not finish clean (stderr, so piped --json/--csv
    // output stays parseable).
    const auto& camp = result.campaign;
    if (!spec.journal_path.empty() || camp.resumed > 0 || !camp.all_ok()) {
      std::fprintf(stderr,
                   "psync_sim: campaign: %zu point(s): %zu ok, %zu failed, "
                   "%zu quarantined, %llu retry(ies), %zu resumed from "
                   "journal\n",
                   camp.points, camp.ok, camp.failed, camp.quarantined,
                   static_cast<unsigned long long>(camp.retries),
                   camp.resumed);
      for (const auto& rec : result.records) {
        if (rec.status == driver::PointStatus::kOk || !rec.failure) continue;
        std::fprintf(stderr, "psync_sim:   point %zu %s (%s): %s\n",
                     rec.index, to_string(rec.status),
                     to_string(rec.failure->kind),
                     rec.failure->message.c_str());
      }
    }
    // Distributed supervision accounting (never serialized: the JSON/CSV
    // stay byte-identical to a single-process run).
    if (workers > 0 &&
        (camp.worker_restarts > 0 || camp.worker_steals > 0 ||
         camp.worker_reconnects > 0 || camp.worker_fenced > 0 ||
         !camp.worker_failures.empty())) {
      std::fprintf(stderr,
                   "psync_sim: dist: %llu worker restart(s), %llu range "
                   "steal(s), %llu reconnect(s), %llu fenced, "
                   "%zu incident(s)\n",
                   static_cast<unsigned long long>(camp.worker_restarts),
                   static_cast<unsigned long long>(camp.worker_steals),
                   static_cast<unsigned long long>(camp.worker_reconnects),
                   static_cast<unsigned long long>(camp.worker_fenced),
                   camp.worker_failures.size());
      for (const auto& incident : camp.worker_failures) {
        std::fprintf(stderr, "psync_sim:   dist %s: %s\n",
                     to_string(incident.kind), incident.message.c_str());
      }
    }
    if (camp.ok == 0 && camp.points > 0) return 1;  // nothing succeeded
    if (strict && !camp.all_ok()) return 3;
    return 0;
  } catch (const CancelledError& e) {
    std::fprintf(stderr,
                 "psync_sim: cancelled: %s (resume with --resume against the "
                 "same journal)\n",
                 e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync_sim: %s\n", e.what());
    return 1;
  }
}
