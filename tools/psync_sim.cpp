// psync_sim — config-driven experiment runner over the driver subsystem.
//
// An INI file describes one ExperimentSpec (workload kind + machine params
// + sweep axes); the driver expands the sweep grid and executes it on a
// thread pool (`threads` under [experiment], or --threads). Results are
// identical regardless of thread count. Supported workload kinds:
//
//   [experiment]
//   kind = fft2d | fft1d | transpose | pipeline | mesh | sweep |
//          reliability_sweep          # legacy sweep spellings
//   threads = 8        # sweep pool size (results identical to threads = 1)
//   json = true        # dump via the unified run-report schema (v2)
//   csv = true         # ... or as CSV
//
//   [machine]          # P-sync side
//   processors = 16
//   rows = 64          # matrix rows (or four-step R for fft1d)
//   cols = 64
//   blocks = 4         # Model II delivery blocks
//   waveguide_gbps = 320
//
//   [mesh]             # mesh side (fft2d/transpose/mesh)
//   grid = 4
//   t_p = 1
//   elements_per_packet = 32
//   virtual_channels = 1
//
//   [fault]            # optical fault injection (optional)
//   dead_wavelengths = 5 17    # stuck-at-0 lanes
//   random_ber = 1e-9          # or: margin_db = -1.5 (BER from Q model)
//   seed = 1
//   drift_ber_per_mword = 1e-4 # thermal-drift BER ramp (additive / Mword)
//   brownout_start_word = 4096 # power-sag window on the stream-word axis
//   brownout_words = 4096
//   brownout_ber = 1e-4
//
//   [reliability]      # error handling above the PHY (optional)
//   policy = correct   # off | detect | correct
//
//   [guard]            # per-point isolation policy (optional)
//   isolate = true     # exceptions become structured point failures
//   max_retries = 1    # retries for transient failures (timeout/internal)
//   point_timeout_ms = 0       # cooperative watchdog deadline per attempt
//   retry_backoff_ms = 5
//   max_point_mb = 0   # refuse points estimated over this working set
//
//   [sweep]            # multi-knob grid: each line is one axis (cartesian)
//   processors = 8 16 32 64
//   blocks = 1 2 4 8
//
// Configs are validated against the full key schema: unknown sections or
// keys and type-mismatched values are reported (with did-you-mean
// suggestions) as warnings, or as hard errors under --strict /
// `strict = true`.
//
// Usage:
//   psync_sim [--strict] [--threads N] [--json | --csv] [--profile]
//             [--journal PATH | --resume PATH] [--timeout-ms X]
//             [--retries N] <config.ini>
//   psync_sim --demo          # print a sample config and exit
//   psync_sim --list          # list registered workload kinds
//
// Crash-safe campaigns: --journal appends every finished point to an
// fsync'd JSONL checkpoint (also `journal = PATH` under [experiment]);
// --resume PATH skips the points already in that journal and reconstitutes
// them, rendering byte-identical output to an uninterrupted run. Failed or
// quarantined points are reported in the campaign summary (stderr) and in
// the JSON/CSV status columns.
//
// Exit codes: 0 success; 1 config/journal error or every point failed;
// 2 usage or strict-mode config problems; 3 --strict with any failed or
// quarantined point.
//
// --profile prints a host wall-clock breakdown (config parse / sweep run /
// render, plus per-sweep-point cost) to stderr; simulation results are
// unaffected.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "psync/common/config.hpp"
#include "psync/common/table.hpp"
#include "psync/core/trace.hpp"
#include "psync/driver/runner.hpp"
#include "psync/perf/stopwatch.hpp"

namespace {

using namespace psync;

constexpr const char* kDemo = R"([experiment]
kind = fft2d
threads = 1

[machine]
processors = 16
rows = 64
cols = 64
blocks = 4
waveguide_gbps = 320

[mesh]
grid = 4
t_p = 1
elements_per_packet = 32
virtual_channels = 1
)";

void print_phase_table(const std::vector<core::Phase>& phases) {
  Table t({"phase", "start (us)", "duration (us)"});
  for (const auto& ph : phases) {
    t.row().add(ph.name).add(ph.start_ns * 1e-3, 2).add(ph.duration_ns() * 1e-3,
                                                        2);
  }
  std::printf("%s", t.to_string().c_str());
}

void print_psync(const core::PsyncRunReport& rep) {
  print_phase_table(rep.phases);
  std::printf(
      "total %.2f us | efficiency %.1f%% | %.2f GFLOPS | energy %.1f nJ "
      "(%.1f comm + %.1f compute) | err %.2e\n",
      rep.total_ns * 1e-3, rep.compute_efficiency * 100.0, rep.gflops,
      rep.total_energy_pj() * 1e-3, rep.comm_energy_pj * 1e-3,
      rep.compute_energy_pj * 1e-3, rep.max_error_vs_reference);
  if (rep.fault.words_corrupted > 0 || rep.retry.blocks_total > 0 ||
      !rep.lanes.dead_lanes.empty()) {
    std::printf(
        "faults: %llu/%llu words corrupted (%llu bits flipped, %llu "
        "silenced)\n",
        static_cast<unsigned long long>(rep.fault.words_corrupted),
        static_cast<unsigned long long>(rep.fault.words_total),
        static_cast<unsigned long long>(rep.fault.bits_flipped),
        static_cast<unsigned long long>(rep.fault.bits_silenced));
    std::printf(
        "recovery: %llu/%llu blocks retried (%llu retries, %llu slots "
        "replayed) | %llu bits corrected | %llu detected | %llu residual\n",
        static_cast<unsigned long long>(rep.retry.blocks_retried),
        static_cast<unsigned long long>(rep.retry.blocks_total),
        static_cast<unsigned long long>(rep.retry.retries),
        static_cast<unsigned long long>(rep.retry.slots_replayed),
        static_cast<unsigned long long>(rep.retry.corrected_bits),
        static_cast<unsigned long long>(rep.retry.detected_errors),
        static_cast<unsigned long long>(rep.retry.residual_errors));
    std::printf(
        "lanes: %zu dead, %zu remapped to spares, %zu unrecovered "
        "(%zu slots/word) | reliability overhead %.2f us\n",
        rep.lanes.dead_lanes.size(), rep.lanes.spares_used,
        rep.lanes.residual_dead, rep.lanes.slots_per_word,
        rep.reliability_overhead_ns * 1e-3);
  }
  std::printf("\n");
}

void print_single(const driver::RunRecord& rec) {
  if (rec.status != driver::PointStatus::kOk) {
    const char* kind =
        rec.failure ? to_string(rec.failure->kind) : "internal_error";
    std::printf("point %zu %s (%s): %s\n", rec.index, to_string(rec.status),
                kind, rec.failure ? rec.failure->message.c_str() : "");
    return;
  }
  if (rec.workload == "fft2d" || rec.workload == "fft1d" ||
      rec.workload == "reliability" || rec.workload == "degradation_sweep") {
    std::printf("== P-sync ==\n");
    if (rec.psync) print_psync(*rec.psync);
    if (rec.mesh) {
      std::printf("== electronic mesh ==\n");
      print_phase_table(rec.mesh->phases);
      std::printf("total %.2f us | %.2f GFLOPS | energy %.1f nJ | err %.2e\n\n",
                  rec.mesh->total_ns * 1e-3, rec.mesh->gflops,
                  rec.mesh->total_energy_pj() * 1e-3,
                  rec.mesh->max_error_vs_reference);
      std::printf("P-sync speedup: %.2fx, energy advantage: %.2fx\n",
                  rec.mesh->total_ns / rec.psync->total_ns,
                  rec.mesh->total_energy_pj() / rec.psync->total_energy_pj());
    }
    return;
  }
  if (rec.workload == "mesh" && rec.mesh) {
    std::printf("== electronic mesh ==\n");
    print_phase_table(rec.mesh->phases);
    std::printf("total %.2f us | %.2f GFLOPS | energy %.1f nJ | err %.2e\n",
                rec.mesh->total_ns * 1e-3, rec.mesh->gflops,
                rec.mesh->total_energy_pj() * 1e-3,
                rec.mesh->max_error_vs_reference);
    return;
  }
  if (rec.workload == "transpose" && rec.transpose) {
    std::printf(
        "mesh transpose: %lld cycles (%.2f cycles/element), %llu elements\n",
        static_cast<long long>(rec.transpose->completion_cycle),
        rec.transpose->cycles_per_element,
        static_cast<unsigned long long>(rec.transpose->elements));
    return;
  }
  if (rec.workload == "pipeline" && rec.pipeline) {
    std::printf(
        "frame latency %.2f us | initiation interval %.2f us | "
        "%.0f frames/s | bound by %s\n",
        rec.pipeline->latency_ns * 1e-3, rec.pipeline->interval_ns * 1e-3,
        rec.pipeline->frames_per_sec,
        rec.pipeline->bus_bound ? "waveguide" : "compute");
    return;
  }
  // Generic fall-back: one-row metrics table.
  driver::SweepResult one;
  one.records.push_back(rec);
  std::printf("%s", driver::sweep_table(one, rec.workload).c_str());
}

std::string sweep_title(const driver::ExperimentSpec& spec) {
  std::string axes;
  for (const auto& axis : spec.axes) {
    if (!axes.empty()) axes += " x ";
    axes += axis.knob;
  }
  return "P-sync " + spec.workload + " sweep over " + axes;
}

int usage() {
  std::fprintf(stderr,
               "usage: psync_sim [--strict] [--threads N] [--json | --csv] "
               "[--profile]\n"
               "                 [--journal PATH | --resume PATH] "
               "[--timeout-ms X] [--retries N]\n"
               "                 <config.ini>\n"
               "       psync_sim --demo | --list\n");
  return 2;
}

/// --profile: wall-clock breakdown of the tool's own phases plus the
/// per-point cost of the sweep. Goes to stderr so piped --json/--csv
/// output stays parseable. Host timing only — simulated time is in the
/// reports themselves.
void print_profile(const perf::PhaseProfiler& prof,
                   const driver::SweepResult& result) {
  std::fprintf(stderr, "\n-- profile (host wall clock) --\n%s",
               prof.table().c_str());
  double sweep_ns = 0.0;
  for (const auto& rec : result.records) sweep_ns += rec.wall_ns;
  if (result.records.size() > 1) {
    std::fprintf(stderr, "\nper sweep point:\n");
    perf::PhaseProfiler points;
    for (const auto& rec : result.records) {
      std::string label = rec.workload + "#" + std::to_string(rec.index);
      for (const auto& [knob, value] : rec.knobs) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %s=%g", knob.c_str(), value);
        label += buf;
      }
      points.add(label, rec.wall_ns);
    }
    std::fprintf(stderr, "%s", points.table().c_str());
  }
  if (sweep_ns > 0.0) {
    std::fprintf(
        stderr, "sweep: %zu point(s) in %.3f ms of point work (%s)\n",
        result.records.size(), sweep_ns * 1e-6,
        perf::format_rate(
            static_cast<double>(result.records.size()) / (sweep_ns * 1e-9),
            "points")
            .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  bool csv = false;
  bool profile = false;
  long threads_override = -1;
  std::string journal_path;
  bool resume = false;
  double timeout_ms = -1.0;
  long retries_override = -1;
  std::string config_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      std::printf("%s", kDemo);
      return 0;
    }
    if (arg == "--list") {
      for (const auto& name : driver::workload_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      threads_override = std::atol(argv[++i]);
    } else if (arg == "--journal") {
      if (i + 1 >= argc) return usage();
      journal_path = argv[++i];
    } else if (arg == "--resume") {
      if (i + 1 >= argc) return usage();
      journal_path = argv[++i];
      resume = true;
    } else if (arg == "--timeout-ms") {
      if (i + 1 >= argc) return usage();
      timeout_ms = std::atof(argv[++i]);
    } else if (arg == "--retries") {
      if (i + 1 >= argc) return usage();
      retries_override = std::atol(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage();
    }
  }
  if (config_path.empty()) return usage();

  try {
    perf::PhaseProfiler prof;
    prof.begin("parse + validate config");
    const IniConfig cfg = IniConfig::load(config_path);

    // Schema validation: typos stop silently meaning "use the default".
    const auto diags = driver::sim_config_schema().validate(cfg);
    strict = strict || cfg.get_bool("experiment", "strict", false);
    for (const auto& d : diags) {
      std::fprintf(stderr, "psync_sim: %s: %s\n",
                   strict ? "error" : "warning", d.to_string().c_str());
    }
    if (strict && !diags.empty()) {
      std::fprintf(stderr, "psync_sim: %zu config problem(s) (--strict)\n",
                   diags.size());
      return 2;
    }

    auto spec = driver::spec_from_config(cfg);
    if (threads_override > 0) {
      spec.threads = static_cast<std::size_t>(threads_override);
    }
    if (!journal_path.empty()) spec.journal_path = journal_path;
    spec.resume = spec.resume || resume;
    if (timeout_ms >= 0.0) spec.guard.point_timeout_ms = timeout_ms;
    if (retries_override >= 0) {
      spec.guard.max_retries = static_cast<std::size_t>(retries_override);
    }
    json = json || cfg.get_bool("experiment", "json", false);
    csv = csv || cfg.get_bool("experiment", "csv", false);
    prof.end();

    prof.begin("run sweep");
    const auto result = driver::Runner::run(spec);
    prof.end(result.records.size(), "points");

    prof.begin("render output");
    if (json) {
      std::printf("%s\n", driver::sweep_json(result).c_str());
    } else if (csv) {
      std::printf("%s", driver::sweep_csv(result).c_str());
    } else if (!spec.axes.empty()) {
      std::printf("%s", driver::sweep_table(result, sweep_title(spec)).c_str());
    } else {
      print_single(result.records.front());
    }
    prof.end();

    if (profile) print_profile(prof, result);

    // Campaign accounting: surfaced whenever journaling/resume is active
    // or some point did not finish clean (stderr, so piped --json/--csv
    // output stays parseable).
    const auto& camp = result.campaign;
    if (!spec.journal_path.empty() || camp.resumed > 0 || !camp.all_ok()) {
      std::fprintf(stderr,
                   "psync_sim: campaign: %zu point(s): %zu ok, %zu failed, "
                   "%zu quarantined, %llu retry(ies), %zu resumed from "
                   "journal\n",
                   camp.points, camp.ok, camp.failed, camp.quarantined,
                   static_cast<unsigned long long>(camp.retries),
                   camp.resumed);
      for (const auto& rec : result.records) {
        if (rec.status == driver::PointStatus::kOk || !rec.failure) continue;
        std::fprintf(stderr, "psync_sim:   point %zu %s (%s): %s\n",
                     rec.index, to_string(rec.status),
                     to_string(rec.failure->kind),
                     rec.failure->message.c_str());
      }
    }
    if (camp.ok == 0 && camp.points > 0) return 1;  // nothing succeeded
    if (strict && !camp.all_ok()) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync_sim: %s\n", e.what());
    return 1;
  }
}
