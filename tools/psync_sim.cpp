// psync_sim — config-driven experiment runner.
//
// Runs P-sync / mesh experiments described by an INI file, so parameter
// studies don't require recompiling. Supported experiment kinds:
//
//   [experiment]
//   kind = fft2d | fft1d | transpose | pipeline | sweep | reliability_sweep
//
//   [machine]          # P-sync side
//   processors = 16
//   rows = 64          # matrix rows (or four-step R for fft1d)
//   cols = 64
//   blocks = 4         # Model II delivery blocks
//   waveguide_gbps = 320
//
//   [mesh]             # mesh side (fft2d/transpose)
//   grid = 4
//   t_p = 1
//   elements_per_packet = 32
//   virtual_channels = 1
//
//   [fault]            # optical fault injection (optional)
//   dead_wavelengths = 5 17    # stuck-at-0 lanes
//   random_ber = 1e-9          # or: margin_db = -1.5 (BER from Q model)
//   seed = 1
//
//   [reliability]      # error handling above the PHY (optional)
//   policy = correct   # off | detect | correct
//   block_words = 64
//   max_retries = 4
//   backoff_slots = 8
//   spare_lanes = 4
//   training_words = 16
//
// `json = true` under [experiment] dumps the machine run report as JSON.
//
// Usage:
//   psync_sim <config.ini>
//   psync_sim --demo          # print a sample config and exit
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "psync/common/config.hpp"
#include "psync/common/rng.hpp"
#include "psync/common/table.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/trace.hpp"
#include "psync/photonic/ber.hpp"

namespace {

using namespace psync;

constexpr const char* kDemo = R"([experiment]
kind = fft2d

[machine]
processors = 16
rows = 64
cols = 64
blocks = 4
waveguide_gbps = 320

[mesh]
grid = 4
t_p = 1
elements_per_packet = 32
virtual_channels = 1
)";

core::PsyncMachineParams machine_params(const IniConfig& cfg) {
  core::PsyncMachineParams p;
  p.processors = static_cast<std::size_t>(cfg.get_int("machine", "processors", 16));
  p.matrix_rows = static_cast<std::size_t>(cfg.get_int("machine", "rows", 64));
  p.matrix_cols = static_cast<std::size_t>(cfg.get_int("machine", "cols", 64));
  p.delivery_blocks = static_cast<std::size_t>(cfg.get_int("machine", "blocks", 1));
  p.waveguide_gbps = cfg.get_double("machine", "waveguide_gbps", 320.0);
  p.bus_length_cm = cfg.get_double("machine", "bus_length_cm", 8.0);
  p.head.dram.row_switch_cycles = static_cast<std::uint64_t>(
      cfg.get_int("machine", "dram_row_switch_cycles", 0));

  if (cfg.has_section("fault")) {
    if (cfg.has("fault", "margin_db")) {
      p.fault = core::FaultModel::from_margin_db(
          cfg.get_double("fault", "margin_db", 0.0));
    }
    p.fault.random_ber = cfg.get_double("fault", "random_ber", p.fault.random_ber);
    p.fault.seed =
        static_cast<std::uint64_t>(cfg.get_int("fault", "seed", 1));
    std::istringstream lanes(cfg.get_string("fault", "dead_wavelengths", ""));
    std::uint32_t lane = 0;
    while (lanes >> lane) p.fault.dead_wavelengths.push_back(lane);
  }
  if (cfg.has_section("reliability")) {
    auto& r = p.reliability;
    r.policy = reliability::policy_from_string(
        cfg.get_string("reliability", "policy", "off"));
    r.block_words = static_cast<std::size_t>(
        cfg.get_int("reliability", "block_words", 64));
    r.max_retries = static_cast<std::size_t>(
        cfg.get_int("reliability", "max_retries", 4));
    r.retry_backoff_slots = static_cast<std::size_t>(
        cfg.get_int("reliability", "backoff_slots", 8));
    r.spare_lanes = static_cast<std::size_t>(
        cfg.get_int("reliability", "spare_lanes", 4));
    r.training_words = static_cast<std::size_t>(
        cfg.get_int("reliability", "training_words", 16));
  }
  return p;
}

core::MeshMachineParams mesh_params(const IniConfig& cfg,
                                    const core::PsyncMachineParams& mp) {
  core::MeshMachineParams m;
  m.grid = static_cast<std::size_t>(cfg.get_int("mesh", "grid", 4));
  m.matrix_rows = mp.matrix_rows;
  m.matrix_cols = mp.matrix_cols;
  m.elements_per_packet = static_cast<std::uint32_t>(
      cfg.get_int("mesh", "elements_per_packet", 32));
  m.mi.reorder_cycles_per_element =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "t_p", 1));
  m.mi.overlap_stages = cfg.get_bool("mesh", "overlap_stages", false);
  m.net.buffer_depth =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "buffer_depth", 2));
  m.net.virtual_channels =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "virtual_channels", 1));
  m.mi.dram.row_switch_cycles = static_cast<std::uint64_t>(
      cfg.get_int("mesh", "dram_row_switch_cycles", 0));
  return m;
}

std::vector<std::complex<double>> random_input(std::size_t n) {
  Rng rng(2026);
  std::vector<std::complex<double>> v(n);
  for (auto& x : v) {
    x = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return v;
}

void print_psync(const core::PsyncRunReport& rep) {
  Table t({"phase", "start (us)", "duration (us)"});
  for (const auto& ph : rep.phases) {
    t.row().add(ph.name).add(ph.start_ns * 1e-3, 2).add(
        ph.duration_ns() * 1e-3, 2);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "total %.2f us | efficiency %.1f%% | %.2f GFLOPS | energy %.1f nJ "
      "(%.1f comm + %.1f compute) | err %.2e\n",
      rep.total_ns * 1e-3, rep.compute_efficiency * 100.0, rep.gflops,
      rep.total_energy_pj() * 1e-3, rep.comm_energy_pj * 1e-3,
      rep.compute_energy_pj * 1e-3, rep.max_error_vs_reference);
  if (rep.fault.words_corrupted > 0 || rep.retry.blocks_total > 0 ||
      !rep.lanes.dead_lanes.empty()) {
    std::printf(
        "faults: %llu/%llu words corrupted (%llu bits flipped, %llu "
        "silenced)\n",
        static_cast<unsigned long long>(rep.fault.words_corrupted),
        static_cast<unsigned long long>(rep.fault.words_total),
        static_cast<unsigned long long>(rep.fault.bits_flipped),
        static_cast<unsigned long long>(rep.fault.bits_silenced));
    std::printf(
        "recovery: %llu/%llu blocks retried (%llu retries, %llu slots "
        "replayed) | %llu bits corrected | %llu detected | %llu residual\n",
        static_cast<unsigned long long>(rep.retry.blocks_retried),
        static_cast<unsigned long long>(rep.retry.blocks_total),
        static_cast<unsigned long long>(rep.retry.retries),
        static_cast<unsigned long long>(rep.retry.slots_replayed),
        static_cast<unsigned long long>(rep.retry.corrected_bits),
        static_cast<unsigned long long>(rep.retry.detected_errors),
        static_cast<unsigned long long>(rep.retry.residual_errors));
    std::printf(
        "lanes: %zu dead, %zu remapped to spares, %zu unrecovered "
        "(%zu slots/word) | reliability overhead %.2f us\n",
        rep.lanes.dead_lanes.size(), rep.lanes.spares_used,
        rep.lanes.residual_dead, rep.lanes.slots_per_word,
        rep.reliability_overhead_ns * 1e-3);
  }
  std::printf("\n");
}

int run_fft2d(const IniConfig& cfg) {
  const auto mp = machine_params(cfg);
  const auto input = random_input(mp.matrix_rows * mp.matrix_cols);

  std::printf("== P-sync ==\n");
  core::PsyncMachine psm(mp);
  const auto pr = psm.run_fft2d(input);
  if (cfg.get_bool("experiment", "json", false)) {
    std::printf("%s\n", core::run_report_json(pr).c_str());
    return 0;
  }
  print_psync(pr);

  if (cfg.has_section("mesh")) {
    std::printf("== electronic mesh ==\n");
    core::MeshMachine msm(mesh_params(cfg, mp));
    const auto mr = msm.run_fft2d(input);
    Table t({"phase", "start (us)", "duration (us)"});
    for (const auto& ph : mr.phases) {
      t.row().add(ph.name).add(ph.start_ns * 1e-3, 2).add(
          ph.duration_ns() * 1e-3, 2);
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("total %.2f us | %.2f GFLOPS | energy %.1f nJ | err %.2e\n\n",
                mr.total_ns * 1e-3, mr.gflops, mr.total_energy_pj() * 1e-3,
                mr.max_error_vs_reference);
    std::printf("P-sync speedup: %.2fx, energy advantage: %.2fx\n",
                mr.total_ns / pr.total_ns,
                mr.total_energy_pj() / pr.total_energy_pj());
  }
  return 0;
}

int run_fft1d(const IniConfig& cfg) {
  const auto mp = machine_params(cfg);
  const auto input = random_input(mp.matrix_rows * mp.matrix_cols);
  std::printf("== P-sync four-step 1D FFT (N = %zu) ==\n",
              mp.matrix_rows * mp.matrix_cols);
  core::PsyncMachine psm(mp);
  const auto pr = psm.run_fft1d(input);
  if (cfg.get_bool("experiment", "json", false)) {
    std::printf("%s\n", core::run_report_json(pr).c_str());
    return 0;
  }
  print_psync(pr);
  return 0;
}

int run_transpose(const IniConfig& cfg) {
  const auto mp = machine_params(cfg);
  auto mep = mesh_params(cfg, mp);
  const auto elements =
      static_cast<std::uint32_t>(cfg.get_int("experiment", "elements", 256));
  core::MeshMachine mesh(mep);
  const auto rep = mesh.run_transpose_writeback(elements);
  std::printf("mesh transpose: %lld cycles (%.2f cycles/element), "
              "%llu elements\n",
              static_cast<long long>(rep.completion_cycle),
              rep.cycles_per_element,
              static_cast<unsigned long long>(rep.elements));
  return 0;
}

// Parameter sweep: rerun the P-sync 2D FFT while varying one machine knob.
//
//   [experiment]
//   kind = sweep
//   vary = processors | blocks | waveguide_gbps
//   values = 8 16 32 64
int run_sweep(const IniConfig& cfg) {
  const std::string vary = cfg.get_string("experiment", "vary", "processors");
  const std::string values = cfg.get_string("experiment", "values", "");
  if (values.empty()) {
    std::fprintf(stderr, "sweep: missing 'values' list\n");
    return 2;
  }
  Table t({vary, "total (us)", "efficiency (%)", "GFLOPS", "energy (nJ)",
           "frames/s"});
  t.set_title("P-sync 2D FFT sweep over " + vary);
  std::istringstream in(values);
  double v = 0.0;
  while (in >> v) {
    auto mp = machine_params(cfg);
    if (vary == "processors") {
      mp.processors = static_cast<std::size_t>(v);
    } else if (vary == "blocks") {
      mp.delivery_blocks = static_cast<std::size_t>(v);
    } else if (vary == "waveguide_gbps") {
      mp.waveguide_gbps = v;
    } else {
      std::fprintf(stderr, "sweep: unknown knob '%s'\n", vary.c_str());
      return 2;
    }
    core::PsyncMachine m(mp);
    const auto input = random_input(mp.matrix_rows * mp.matrix_cols);
    const auto rep = m.run_fft2d(input, false);
    const auto pipe = core::PsyncMachine::pipeline_estimate(rep);
    t.row()
        .add(v, 0)
        .add(rep.total_ns * 1e-3, 2)
        .add(rep.compute_efficiency * 100.0, 1)
        .add(rep.gflops, 2)
        .add(rep.total_energy_pj() * 1e-3, 1)
        .add(pipe.frames_per_sec, 0);
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

// Reliability cliff: rerun the P-sync 2D FFT across link margins, comparing
// what the configured policy pays (retries, slots, time, energy) against a
// clean fault-free baseline.
//
//   [experiment]
//   kind = reliability_sweep
//   margins_db = 0 -1 -2 -2.5 -3
int run_reliability_sweep(const IniConfig& cfg) {
  const std::string margins = cfg.get_string("experiment", "margins_db", "");
  if (margins.empty()) {
    std::fprintf(stderr, "reliability_sweep: missing 'margins_db' list\n");
    return 2;
  }
  auto base = machine_params(cfg);
  const auto input = random_input(base.matrix_rows * base.matrix_cols);

  auto clean = base;
  clean.fault = core::FaultModel{};
  clean.reliability.policy = reliability::ReliabilityPolicy::kOff;
  const auto ref = core::PsyncMachine(clean).run_fft2d(input, false);

  Table t({"margin (dB)", "BER", "retried", "residual", "max err",
           "overhead (us)", "overhead (nJ)", "total (us)"});
  t.set_title("P-sync 2D FFT reliability cliff (policy = " +
              std::string(reliability::to_string(base.reliability.policy)) +
              ", clean baseline " +
              std::to_string(ref.total_ns * 1e-3).substr(0, 6) + " us)");
  std::istringstream in(margins);
  double margin = 0.0;
  while (in >> margin) {
    auto mp = base;
    const auto dead = mp.fault.dead_wavelengths;  // keep configured lanes
    mp.fault = core::FaultModel::from_margin_db(margin, mp.fault.seed);
    mp.fault.dead_wavelengths = dead;
    core::PsyncMachine m(mp);
    const auto rep = m.run_fft2d(input);
    char ber[32];
    std::snprintf(ber, sizeof(ber), "%.1e", mp.fault.random_ber);
    char err[32];
    std::snprintf(err, sizeof(err), "%.1e", rep.max_error_vs_reference);
    t.row()
        .add(margin, 2)
        .add(ber)
        .add(rep.retry.blocks_retried)
        .add(rep.retry.residual_errors)
        .add(err)
        .add(rep.reliability_overhead_ns * 1e-3, 2)
        .add((rep.total_energy_pj() - ref.total_energy_pj()) * 1e-3, 2)
        .add(rep.total_ns * 1e-3, 2);
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int run_pipeline(const IniConfig& cfg) {
  const auto mp = machine_params(cfg);
  const auto input = random_input(mp.matrix_rows * mp.matrix_cols);
  core::PsyncMachine psm(mp);
  const auto rep = psm.run_fft2d(input, false);
  const auto pipe = core::PsyncMachine::pipeline_estimate(rep);
  std::printf("frame latency %.2f us | initiation interval %.2f us | "
              "%.0f frames/s | bound by %s\n",
              pipe.latency_ns * 1e-3, pipe.interval_ns * 1e-3,
              pipe.frames_per_sec, pipe.bus_bound ? "waveguide" : "compute");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    std::printf("%s", kDemo);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: psync_sim <config.ini>  (or --demo for a sample)\n");
    return 2;
  }
  try {
    const IniConfig cfg = IniConfig::load(argv[1]);
    const std::string kind = cfg.get_string("experiment", "kind", "fft2d");
    if (kind == "fft2d") return run_fft2d(cfg);
    if (kind == "fft1d") return run_fft1d(cfg);
    if (kind == "transpose") return run_transpose(cfg);
    if (kind == "pipeline") return run_pipeline(cfg);
    if (kind == "sweep") return run_sweep(cfg);
    if (kind == "reliability_sweep") return run_reliability_sweep(cfg);
    std::fprintf(stderr, "unknown experiment kind: %s\n", kind.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync_sim: %s\n", e.what());
    return 1;
  }
}
