#!/usr/bin/env bash
# Static-analysis driver: runs clang-tidy (configured by .clang-tidy at the
# repo root) over every first-party translation unit in the compilation
# database.
#
# Usage:
#   tools/lint.sh [build-dir]
#
# The build directory must contain compile_commands.json (the top-level
# CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS, so any configured build
# tree works). Defaults to ./build.
#
# Environment:
#   CLANG_TIDY    explicit clang-tidy binary to use
#   LINT_JOBS     parallel clang-tidy processes (default: nproc)
#   LINT_REQUIRE  when 1, a missing clang-tidy is a hard failure instead
#                 of a skip. CI sets this so a regressed install step
#                 cannot silently turn the gate green.
#
# Exits 0 when clang-tidy is clean, or (without LINT_REQUIRE=1) when it is
# not installed — local machines without clang are not blocked. Non-zero
# on findings or, under LINT_REQUIRE=1, on a missing binary.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "${CLANG_TIDY}"
    return
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      echo "${candidate}"
      return
    fi
  done
  echo ""
}

clang_tidy="$(find_clang_tidy)"
if [[ -z "${clang_tidy}" ]]; then
  if [[ "${LINT_REQUIRE:-0}" == "1" ]]; then
    echo "lint.sh: clang-tidy not found and LINT_REQUIRE=1; failing" >&2
    exit 1
  fi
  echo "lint.sh: clang-tidy not found; skipping (install clang-tidy or set" \
       "CLANG_TIDY to enable)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure first:  cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 1
fi

# First-party translation units only: everything the compilation database
# knows about under src/, tests/, tools/, bench/ and examples/.
mapfile -t files < <(
  python3 - "${build_dir}/compile_commands.json" <<'PY'
import json
import os
import sys

db = json.load(open(sys.argv[1]))
roots = ("src/", "tests/", "tools/", "bench/", "examples/")
seen = set()
for entry in db:
    path = os.path.normpath(
        os.path.join(entry["directory"], entry["file"])
        if not os.path.isabs(entry["file"]) else entry["file"])
    rel = os.path.relpath(path, os.path.dirname(sys.argv[1]) + "/..")
    if rel.startswith(roots) and path not in seen:
        seen.add(path)
        print(path)
PY
)

if [[ "${#files[@]}" -eq 0 ]]; then
  echo "lint.sh: no first-party files found in the compilation database" >&2
  exit 1
fi

jobs="${LINT_JOBS:-$(nproc)}"
echo "lint.sh: ${clang_tidy} over ${#files[@]} files (${jobs} jobs)"

status=0
printf '%s\n' "${files[@]}" |
  xargs -P "${jobs}" -n 1 \
    "${clang_tidy}" -p "${build_dir}" --quiet --warnings-as-errors='*' ||
  status=$?

if [[ "${status}" -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings" >&2
  exit 1
fi
echo "lint.sh: clean"
