#!/usr/bin/env bash
# fault_smoke.sh — kill/resume equivalence smoke for the campaign layer.
#
# Runs the 16-point fault_smoke.ini sweep three ways:
#   1. uninterrupted, as the byte-exact JSON + CSV reference;
#   2. journaled, SIGKILL'd partway through (several kill delays so the
#      journal is torn at different points);
#   3. resumed from the surviving journal with --resume, twice — once
#      rendering JSON (exercises the splice of live + journaled points) and
#      once rendering CSV from the now-complete journal.
# Every resumed rendering must be byte-identical to the reference.
#
# Usage: tools/fault_smoke.sh <psync_sim-binary> <config.ini> [workdir]
# Exits nonzero (leaving the journal in the workdir for CI to upload) on
# any mismatch.
set -u

SIM=${1:?usage: fault_smoke.sh <psync_sim> <config.ini> [workdir]}
CONFIG=${2:?usage: fault_smoke.sh <psync_sim> <config.ini> [workdir]}
WORK=${3:-fault-smoke-work}

mkdir -p "$WORK"

echo "fault-smoke: reference run"
"$SIM" --json "$CONFIG" > "$WORK/ref.json" || exit 1
"$SIM" --csv "$CONFIG" > "$WORK/ref.csv" || exit 1

fail=0
for delay in 0.10 0.25 0.40; do
  journal="$WORK/journal-$delay.jsonl"
  rm -f "$journal"

  "$SIM" --journal "$journal" --json "$CONFIG" > /dev/null 2>&1 &
  pid=$!
  sleep "$delay"
  if kill -9 "$pid" 2> /dev/null; then
    echo "fault-smoke: delay ${delay}s: SIGKILL'd mid-sweep"
  else
    echo "fault-smoke: delay ${delay}s: run finished before the kill (ok)"
  fi
  wait "$pid" 2> /dev/null

  done_points=$(wc -l < "$journal" 2> /dev/null || echo 0)
  echo "fault-smoke: delay ${delay}s: $done_points point(s) in the journal"

  if ! "$SIM" --resume "$journal" --json "$CONFIG" > "$WORK/resumed-$delay.json"; then
    echo "fault-smoke: delay ${delay}s: resume (json) FAILED"
    fail=1
    continue
  fi
  if ! cmp -s "$WORK/ref.json" "$WORK/resumed-$delay.json"; then
    echo "fault-smoke: delay ${delay}s: resumed JSON differs from reference"
    fail=1
  fi

  # Second resume: the journal is complete now, so every point splices
  # from it and nothing re-runs.
  if ! "$SIM" --resume "$journal" --csv "$CONFIG" > "$WORK/resumed-$delay.csv"; then
    echo "fault-smoke: delay ${delay}s: resume (csv) FAILED"
    fail=1
    continue
  fi
  if ! cmp -s "$WORK/ref.csv" "$WORK/resumed-$delay.csv"; then
    echo "fault-smoke: delay ${delay}s: resumed CSV differs from reference"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "fault-smoke: FAILED (journals left in $WORK)"
  exit 1
fi
echo "fault-smoke: OK — resumed output byte-identical to reference"
