// psync_serve — the campaign service daemon.
//
// Binds a Unix-domain stream socket and serves the line-delimited JSON
// protocol in src/psync/serve/protocol.hpp: clients submit INI campaign
// configs, poll status, stream per-point events, and fetch rendered
// results. Identical specs (by content digest) share one campaign; with
// --cache DIR every campaign journals to <DIR>/<digest>.jsonl and the
// per-point result cache survives daemon restarts — a resubmitted
// campaign completes from disk without re-simulating a single point.
//
// Usage:
//   psync_serve --socket PATH [--cache DIR] [--threads N]
//
// Shutdown: SIGTERM, SIGINT, or a client {"op":"shutdown"} frame all
// converge on one graceful stop (connections closed, campaigns
// cancelled, journal tails durable). Exit codes: 0 clean shutdown,
// 1 startup failure, 2 usage.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "psync/serve/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: psync_serve --socket PATH [--cache DIR] [--threads N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  psync::serve::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage();
      opts.socket_path = argv[++i];
    } else if (arg == "--cache") {
      if (i + 1 >= argc) return usage();
      opts.cache_dir = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      const long n = std::atol(argv[++i]);
      if (n < 0) return usage();
      opts.threads = static_cast<std::size_t>(n);
    } else {
      return usage();
    }
  }
  if (opts.socket_path.empty()) return usage();

  // SIGTERM/SIGINT are consumed synchronously with sigwait below. Block
  // them before any thread exists so every server thread inherits the
  // mask and the signals can only land in the main thread's wait.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  ::pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    psync::serve::Server server(opts);
    server.start();
    std::fprintf(stderr, "psync_serve: listening on %s%s%s\n",
                 opts.socket_path.c_str(),
                 opts.cache_dir.empty() ? "" : ", cache dir ",
                 opts.cache_dir.c_str());

    // A client {"op":"shutdown"} resolves wait_for_shutdown(); forward it
    // into the signal wait so both exit paths share one stop() call.
    std::thread waiter([&server]() {
      server.wait_for_shutdown();
      ::kill(::getpid(), SIGTERM);
    });

    int signo = 0;
    ::sigwait(&mask, &signo);
    std::fprintf(stderr, "psync_serve: shutting down (%s)\n",
                 signo == SIGINT ? "SIGINT" : "SIGTERM");
    server.stop();
    waiter.join();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync_serve: %s\n", e.what());
    return 1;
  }
}
