// psync_submit — thin client for the psync_serve campaign service.
//
// Modes:
//   psync_submit --socket PATH [--json | --csv] [--threads N] [--subscribe]
//                <config.ini>
//   psync_submit --socket PATH --status --id HEX16
//   psync_submit --socket PATH --cancel --id HEX16
//   psync_submit --socket PATH --shutdown
//
// A submit sends the INI text to the daemon, waits for the campaign to
// finish, and prints the rendered body to stdout with exactly the bytes
// `psync_sim --json` / `--csv` would print — so
// `cmp <(psync_submit ...) <(psync_sim ...)` holds. The campaign id,
// progress and cache accounting go to stderr. --subscribe additionally
// streams the daemon's per-point event frames to stderr as they happen.
//
// --status / --cancel / --shutdown print the daemon's raw response frame
// to stdout (one JSON object per line — pipe into your own tooling).
//
// Exit codes: 0 success; 1 connection/protocol/campaign error; 2 usage.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "psync/serve/protocol.hpp"

namespace {

using namespace psync::serve;

int usage() {
  std::fprintf(
      stderr,
      "usage: psync_submit --socket PATH [--json | --csv] [--threads N]\n"
      "                    [--subscribe] <config.ini>\n"
      "       psync_submit --socket PATH --status --id HEX16\n"
      "       psync_submit --socket PATH --cancel --id HEX16\n"
      "       psync_submit --socket PATH --shutdown\n");
  return 2;
}

int connect_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "psync_submit: socket: %s\n", std::strerror(errno));
    return -1;
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "psync_submit: socket path too long: %s\n",
                 path.c_str());
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "psync_submit: connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking buffered line read. False on EOF or error.
bool read_line(int fd, std::string* buf, std::string* line) {
  for (;;) {
    const std::size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buf, 0, nl);
      buf->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

/// True for an {"ok":true,...} frame; prints the error to stderr otherwise.
bool check_ok(const std::string& frame) {
  bool ok = false;
  if (find_bool_field(frame, "ok", &ok) && ok) return true;
  std::string code = "?";
  std::string msg;
  find_string_field(frame, "error", &code);
  find_string_field(frame, "message", &msg);
  std::fprintf(stderr, "psync_submit: server error %s: %s\n", code.c_str(),
               msg.c_str());
  return false;
}

enum class Mode { kSubmit, kStatus, kCancel, kShutdown };

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string config_path;
  std::string id_hex;
  bool json = false;
  bool csv = false;
  bool subscribe = false;
  long threads = 0;
  Mode mode = Mode::kSubmit;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage();
      socket_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--subscribe") {
      subscribe = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      threads = std::atol(argv[++i]);
      if (threads <= 0) return usage();
    } else if (arg == "--status") {
      mode = Mode::kStatus;
    } else if (arg == "--cancel") {
      mode = Mode::kCancel;
    } else if (arg == "--shutdown") {
      mode = Mode::kShutdown;
    } else if (arg == "--id") {
      if (i + 1 >= argc) return usage();
      id_hex = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();
  if (json && csv) return usage();
  if (mode == Mode::kSubmit && config_path.empty()) return usage();
  if ((mode == Mode::kStatus || mode == Mode::kCancel) && id_hex.empty()) {
    return usage();
  }

  const int fd = connect_socket(socket_path);
  if (fd < 0) return 1;
  std::string buf;
  std::string frame;

  if (mode == Mode::kShutdown) {
    if (!send_line(fd, "{\"op\":\"shutdown\"}") ||
        !read_line(fd, &buf, &frame)) {
      std::fprintf(stderr, "psync_submit: daemon closed the connection\n");
      ::close(fd);
      return 1;
    }
    std::printf("%s\n", frame.c_str());
    ::close(fd);
    return check_ok(frame) ? 0 : 1;
  }

  if (mode == Mode::kStatus || mode == Mode::kCancel) {
    std::uint64_t digest = 0;
    if (!parse_campaign_id(id_hex, &digest)) {
      std::fprintf(stderr, "psync_submit: --id wants 16 lowercase hex digits\n");
      return usage();
    }
    const std::string op = mode == Mode::kStatus ? "status" : "cancel";
    if (!send_line(fd,
                   "{\"op\":\"" + op +
                       "\",\"campaign\":" + json_string(campaign_id(digest)) +
                       "}") ||
        !read_line(fd, &buf, &frame)) {
      std::fprintf(stderr, "psync_submit: daemon closed the connection\n");
      ::close(fd);
      return 1;
    }
    std::printf("%s\n", frame.c_str());
    ::close(fd);
    return check_ok(frame) ? 0 : 1;
  }

  // Submit: read the INI, ship it, then wait on a results frame.
  std::ifstream in(config_path);
  if (!in) {
    std::fprintf(stderr, "psync_submit: cannot read %s\n", config_path.c_str());
    ::close(fd);
    return 1;
  }
  std::ostringstream ini;
  ini << in.rdbuf();

  std::string req = "{\"op\":\"submit\",\"config\":" + json_string(ini.str());
  if (threads > 0) req += ",\"threads\":" + std::to_string(threads);
  req += "}";
  if (!send_line(fd, req) || !read_line(fd, &buf, &frame)) {
    std::fprintf(stderr, "psync_submit: daemon closed the connection\n");
    ::close(fd);
    return 1;
  }
  if (!check_ok(frame)) {
    ::close(fd);
    return 1;
  }
  std::string id;
  std::uint64_t points = 0;
  bool attached = false;
  find_string_field(frame, "campaign", &id);
  find_u64_field(frame, "points", &points);
  find_bool_field(frame, "attached", &attached);
  std::fprintf(stderr, "psync_submit: campaign %s: %llu point(s)%s\n",
               id.c_str(), static_cast<unsigned long long>(points),
               attached ? " (attached to an existing campaign)" : "");

  if (subscribe) {
    if (!send_line(fd,
                   "{\"op\":\"subscribe\",\"campaign\":" + json_string(id) +
                       "}")) {
      std::fprintf(stderr, "psync_submit: daemon closed the connection\n");
      ::close(fd);
      return 1;
    }
    for (;;) {
      if (!read_line(fd, &buf, &frame)) {
        std::fprintf(stderr, "psync_submit: stream ended early\n");
        ::close(fd);
        return 1;
      }
      std::string event;
      if (!find_string_field(frame, "event", &event)) {
        // An error frame mid-stream (unknown campaign etc).
        check_ok(frame);
        ::close(fd);
        return 1;
      }
      std::fprintf(stderr, "%s\n", frame.c_str());
      if (event == "done") break;
    }
  }

  const std::string format = csv ? "csv" : "json";
  if (!send_line(fd,
                 "{\"op\":\"results\",\"campaign\":" + json_string(id) +
                     ",\"format\":\"" + format + "\",\"wait\":true}") ||
      !read_line(fd, &buf, &frame)) {
    std::fprintf(stderr, "psync_submit: daemon closed the connection\n");
    ::close(fd);
    return 1;
  }
  if (!check_ok(frame)) {
    ::close(fd);
    return 1;
  }
  std::string body;
  if (!find_string_field(frame, "body", &body)) {
    std::fprintf(stderr, "psync_submit: results frame lacks a body\n");
    ::close(fd);
    return 1;
  }
  // Byte-for-byte what psync_sim prints: sweep_json plus the trailing
  // newline, or sweep_csv verbatim (it carries its own newline).
  if (csv) {
    std::fputs(body.c_str(), stdout);
  } else {
    std::printf("%s\n", body.c_str());
  }
  std::uint64_t executed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t resumed = 0;
  find_u64_field(frame, "executed", &executed);
  find_u64_field(frame, "cache_hits", &cache_hits);
  find_u64_field(frame, "resumed", &resumed);
  std::fprintf(stderr,
               "psync_submit: campaign %s done: %llu executed, %llu from "
               "cache, %llu resumed\n",
               id.c_str(), static_cast<unsigned long long>(executed),
               static_cast<unsigned long long>(cache_hits),
               static_cast<unsigned long long>(resumed));
  ::close(fd);
  return 0;
}
