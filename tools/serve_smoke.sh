#!/usr/bin/env bash
# serve_smoke.sh — crash/restart smoke for the campaign service.
#
# Drives the psync_serve daemon the way an impatient operator would:
#   1. one-shot psync_sim renders the byte-exact JSON + CSV reference;
#   2. a daemon with a cache directory serves the same config: the
#      submitted campaign's JSON and CSV must cmp-equal the reference;
#   3. a resubmission of the identical config attaches to the existing
#      campaign (content digest is the identity — no second execution),
#      and after a clean daemon restart on the same cache directory the
#      resubmission executes zero points (everything splices from the
#      campaign's own journal);
#   4. the daemon is SIGKILL'd mid-campaign, restarted on the same cache
#      directory, and the resubmission must complete from the journal
#      splice + cache and still cmp-equal the reference;
#   5. the documented `--journal PATH | --resume PATH` exclusivity of
#      psync_sim is enforced (exit 2), and `{"op":"shutdown"}` stops the
#      daemon cleanly.
#
# Usage: tools/serve_smoke.sh <psync_serve> <psync_submit> <psync_sim>
#                             <config.ini> [workdir]
# Exits nonzero (leaving the cache directory for CI to upload) on any
# mismatch.
set -u

SERVE=${1:?usage: serve_smoke.sh <psync_serve> <psync_submit> <psync_sim> <config.ini> [workdir]}
SUBMIT=${2:?usage: serve_smoke.sh <psync_serve> <psync_submit> <psync_sim> <config.ini> [workdir]}
SIM=${3:?usage: serve_smoke.sh <psync_serve> <psync_submit> <psync_sim> <config.ini> [workdir]}
CONFIG=${4:?usage: serve_smoke.sh <psync_serve> <psync_submit> <psync_sim> <config.ini> [workdir]}
WORK=${5:-serve-smoke-work}

mkdir -p "$WORK"
SOCK="$WORK/serve.sock"
CACHE="$WORK/cache"
fail=0
serve_pid=""

start_daemon() {
  "$SERVE" --socket "$SOCK" --cache "$CACHE" 2>> "$WORK/serve.log" &
  serve_pid=$!
  # Wait for the socket to appear (the daemon binds before serving).
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "serve-smoke: daemon did not bind $SOCK"
  return 1
}

stop_daemon() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2> /dev/null
  wait "$serve_pid" 2> /dev/null
  serve_pid=""
}

echo "serve-smoke: reference run"
"$SIM" --json "$CONFIG" > "$WORK/ref.json" || exit 1
"$SIM" --csv "$CONFIG" > "$WORK/ref.csv" || exit 1

echo "serve-smoke: --journal/--resume conflict is a usage error"
"$SIM" --journal "$WORK/j.jsonl" --resume "$WORK/j.jsonl" "$CONFIG" \
  > /dev/null 2>&1
rc=$?
if [ "$rc" -ne 2 ]; then
  echo "serve-smoke: conflicting flags exited $rc, want 2"
  fail=1
fi

echo "serve-smoke: daemon round trip"
start_daemon || exit 1
"$SUBMIT" --socket "$SOCK" --json "$CONFIG" > "$WORK/got.json" \
  2> "$WORK/submit1.log" || fail=1
cmp -s "$WORK/ref.json" "$WORK/got.json" || {
  echo "serve-smoke: served JSON differs from reference"
  fail=1
}
"$SUBMIT" --socket "$SOCK" --csv "$CONFIG" > "$WORK/got.csv" \
  2> "$WORK/submit2.log" || fail=1
cmp -s "$WORK/ref.csv" "$WORK/got.csv" || {
  echo "serve-smoke: served CSV differs from reference"
  fail=1
}

echo "serve-smoke: identical resubmission attaches, no second campaign"
"$SUBMIT" --socket "$SOCK" --json "$CONFIG" > "$WORK/resub.json" \
  2> "$WORK/submit3.log" || fail=1
cmp -s "$WORK/ref.json" "$WORK/resub.json" || {
  echo "serve-smoke: resubmitted JSON differs from reference"
  fail=1
}
grep -q "attached" "$WORK/submit3.log" || {
  echo "serve-smoke: resubmission did not attach:"
  cat "$WORK/submit3.log"
  fail=1
}
stop_daemon

echo "serve-smoke: restart on the same cache, resubmission executes nothing"
start_daemon || exit 1
"$SUBMIT" --socket "$SOCK" --json "$CONFIG" > "$WORK/restarted.json" \
  2> "$WORK/submit3b.log" || fail=1
cmp -s "$WORK/ref.json" "$WORK/restarted.json" || {
  echo "serve-smoke: post-restart JSON differs from reference"
  fail=1
}
grep -q "0 executed" "$WORK/submit3b.log" || {
  echo "serve-smoke: post-restart resubmission re-executed points:"
  cat "$WORK/submit3b.log"
  fail=1
}
stop_daemon

echo "serve-smoke: SIGKILL mid-campaign, restart, resubmit"
rm -rf "$CACHE"
start_daemon || exit 1
"$SUBMIT" --socket "$SOCK" --json "$CONFIG" > /dev/null 2>&1 &
submit_pid=$!
sleep 0.25
kill -9 "$serve_pid" 2> /dev/null
wait "$serve_pid" 2> /dev/null
serve_pid=""
wait "$submit_pid" 2> /dev/null
journal=$(ls "$CACHE"/*.jsonl 2> /dev/null | head -1)
done_points=$(wc -l < "$journal" 2> /dev/null || echo 0)
echo "serve-smoke: $done_points point(s) journaled before the kill"

start_daemon || exit 1
"$SUBMIT" --socket "$SOCK" --json "$CONFIG" > "$WORK/revived.json" \
  2> "$WORK/submit4.log" || fail=1
cmp -s "$WORK/ref.json" "$WORK/revived.json" || {
  echo "serve-smoke: post-crash JSON differs from reference"
  fail=1
}

echo "serve-smoke: shutdown op"
"$SUBMIT" --socket "$SOCK" --shutdown > /dev/null 2>&1 || {
  echo "serve-smoke: shutdown op failed"
  fail=1
}
# The daemon should exit on its own now.
for _ in $(seq 1 50); do
  kill -0 "$serve_pid" 2> /dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2> /dev/null; then
  echo "serve-smoke: daemon ignored the shutdown op"
  stop_daemon
  fail=1
fi
wait "$serve_pid" 2> /dev/null
serve_pid=""

if [ "$fail" -ne 0 ]; then
  echo "serve-smoke: FAILED (work left in $WORK)"
  exit 1
fi
echo "serve-smoke: OK — served output byte-identical, crash+restart completes from cache"
