#!/usr/bin/env bash
# net_chaos_smoke.sh — socket-transport chaos equivalence smoke for
# distributed sweeps.
#
# Runs the sweep two ways:
#   1. single-process, as the byte-exact JSON + CSV reference;
#   2. with --workers 3 over the TCP socket transport (--listen), a
#      seeded fault injector mangling every post-handshake frame
#      (drops, duplicates, reordering, delay, one hard partition per
#      shard), and one worker process SIGKILL'd mid-run on top.
# The leader must fence stale epochs, ride out reconnects, restart the
# killed shard from its journal, and still merge an output that is
# byte-identical to the reference. Several rounds vary the chaos seed
# and the kill timing so the faults land in different places.
#
# Usage: tools/net_chaos_smoke.sh <psync_sim-binary> <config.ini> [workdir]
# Exits nonzero (leaving the shard journals in the workdir for CI to
# upload) on any mismatch.
set -u

SIM=${1:?usage: net_chaos_smoke.sh <psync_sim> <config.ini> [workdir]}
CONFIG=${2:?usage: net_chaos_smoke.sh <psync_sim> <config.ini> [workdir]}
WORK=${3:-net-chaos-smoke-work}

mkdir -p "$WORK"

echo "net-chaos-smoke: serial reference run"
"$SIM" --json "$CONFIG" > "$WORK/ref.json" || exit 1
"$SIM" --csv "$CONFIG" > "$WORK/ref.csv" || exit 1

# Reproducible-but-varied randomness: derive chaos seeds and kill delays
# from RANDOM (seedable via $RANDOM_SEED for local repro).
if [ -n "${RANDOM_SEED:-}" ]; then
  RANDOM=$RANDOM_SEED
fi

CHAOS_FLAGS="--chaos-drop 0.10 --chaos-dup 0.10 --chaos-reorder 0.08 \
  --chaos-delay 0.10 --chaos-delay-ms 5 \
  --chaos-partition-after 20 --chaos-partition-ms 80"

fail=0
for round in 1 2 3; do
  base="$WORK/chaos-$round"
  rm -f "$base".shard*.jsonl
  seed=$((1000 + RANDOM))
  delay=$(awk -v r="$RANDOM" 'BEGIN { printf "%.2f", 0.05 + (r % 40) / 100 }')

  # shellcheck disable=SC2086
  "$SIM" --workers 3 --listen 127.0.0.1:0 --journal "$base" \
    --chaos-seed "$seed" $CHAOS_FLAGS --json "$CONFIG" \
    > "$WORK/chaos-$round.json" 2> "$WORK/chaos-$round.stderr" &
  leader=$!
  sleep "$delay"

  # Pick one live worker child of the leader and SIGKILL it — a crash on
  # top of the lossy network.
  victim=$(pgrep -P "$leader" | head -n 1 || true)
  if [ -n "$victim" ] && kill -9 "$victim" 2> /dev/null; then
    echo "net-chaos-smoke: round $round: seed $seed, SIGKILL'd worker $victim at ${delay}s"
  else
    echo "net-chaos-smoke: round $round: seed $seed, no worker alive at ${delay}s (ok)"
  fi

  if ! wait "$leader"; then
    echo "net-chaos-smoke: round $round: leader FAILED"
    sed 's/^/  leader stderr: /' "$WORK/chaos-$round.stderr"
    fail=1
    continue
  fi
  sed -n 's/^psync_sim: dist:/net-chaos-smoke: round '"$round"': leader:/p' \
    "$WORK/chaos-$round.stderr"

  if ! cmp -s "$WORK/ref.json" "$WORK/chaos-$round.json"; then
    echo "net-chaos-smoke: round $round: merged JSON differs from reference"
    fail=1
  fi
done

# One CSV rendering through the chaotic socket path for the second format.
base="$WORK/chaos-csv"
rm -f "$base".shard*.jsonl
# shellcheck disable=SC2086
if ! "$SIM" --workers 3 --listen 127.0.0.1:0 --journal "$base" \
    --chaos-seed 424242 $CHAOS_FLAGS --csv "$CONFIG" \
    > "$WORK/chaos-csv.csv" 2> /dev/null; then
  echo "net-chaos-smoke: csv round: leader FAILED"
  fail=1
elif ! cmp -s "$WORK/ref.csv" "$WORK/chaos-csv.csv"; then
  echo "net-chaos-smoke: csv round: merged CSV differs from reference"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "net-chaos-smoke: FAILED (journals left in $WORK)"
  exit 1
fi
echo "net-chaos-smoke: OK — chaotic socket output byte-identical to serial reference"
