// psync_lint — the project-specific determinism & layering analyzer.
//
// Reads compile_commands.json, lexes every first-party translation unit
// and header, and enforces the rule families in src/psync/lintpass/:
// determinism (no wall clock, no ambient randomness, no pointer
// formatting, no hash-ordered containers on serialization paths),
// layering (the include graph must stay inside tools/lint_layers.txt),
// and hygiene (#pragma once, header using-directives, assert side
// effects on durability paths). See docs/static_analysis.md for the rule
// catalog and the suppression audit policy.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "psync/lintpass/compile_db.hpp"
#include "psync/lintpass/engine.hpp"
#include "psync/lintpass/layers.hpp"
#include "psync/lintpass/policy.hpp"
#include "psync/lintpass/rules.hpp"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParseFailure = 3;

void print_usage(std::ostream& out) {
  out << "usage: psync_lint [options] <build-dir | compile_commands.json>\n"
         "\n"
         "Static determinism/layering/hygiene analysis over every\n"
         "first-party translation unit and header.\n"
         "\n"
         "options:\n"
         "  --json          machine-readable report on stdout\n"
         "  --layers FILE   layer DAG (default: <root>/tools/lint_layers.txt)\n"
         "  --root DIR      repo root (default: inferred from the database)\n"
         "  --list-rules    print the rule catalog and exit\n"
         "  --help          this text\n"
         "\n"
         "exit codes:\n"
         "  0  clean (suppressed, audited findings are allowed)\n"
         "  1  unsuppressed findings\n"
         "  2  usage error\n"
         "  3  parse failure (bad database, layer file, or untokenizable "
         "source)\n"
         "\n"
         "suppression syntax (counted, reported, reason mandatory):\n"
         "  // psync-lint: allow(<rule-id>): <reason>\n";
}

std::string read_file(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot read " + path;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace lp = psync::lintpass;
  bool json = false;
  std::string layers_path;
  std::string root;
  std::string db_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return kExitClean;
    }
    if (arg == "--list-rules") {
      for (const auto& r : lp::rule_catalog()) {
        std::cout << r.id << "\n    " << r.summary << "\n    fix: " << r.hint
                  << "\n";
      }
      return kExitClean;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "psync_lint: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return kExitUsage;
    } else if (db_arg.empty()) {
      db_arg = arg;
    } else {
      std::cerr << "psync_lint: more than one database argument\n";
      print_usage(std::cerr);
      return kExitUsage;
    }
  }
  if (db_arg.empty()) {
    print_usage(std::cerr);
    return kExitUsage;
  }

  std::string db_path = db_arg;
  if (std::filesystem::is_directory(db_path)) {
    db_path += "/compile_commands.json";
  }

  std::string err;
  const std::string db_text = read_file(db_path, &err);
  if (!err.empty()) {
    std::cerr << "psync_lint: " << err << "\n";
    return kExitUsage;
  }

  std::vector<std::string> tus;
  try {
    tus = lp::compile_db_files(db_text);
  } catch (const lp::CompileDbError& e) {
    std::cerr << "psync_lint: " << e.what() << "\n";
    return kExitParseFailure;
  }

  if (root.empty()) root = lp::infer_repo_root(tus);
  if (root.empty()) {
    std::cerr << "psync_lint: cannot infer repo root from " << db_path
              << " (no entry under src/psync/); pass --root\n";
    return kExitUsage;
  }

  if (layers_path.empty()) layers_path = root + "/tools/lint_layers.txt";
  const std::string layers_text = read_file(layers_path, &err);
  if (!err.empty()) {
    std::cerr << "psync_lint: " << err << "\n";
    return kExitUsage;
  }
  lp::LayerGraph layers;
  try {
    layers = lp::LayerGraph::parse(layers_text);
  } catch (const std::exception& e) {
    std::cerr << "psync_lint: " << layers_path << ": " << e.what() << "\n";
    return kExitParseFailure;
  }

  const lp::Policy policy;
  const auto files = lp::discover_files(root, tus);
  const lp::Report report = lp::run_lint(root, files, policy, layers);

  std::cout << (json ? lp::render_json(report) : lp::render_text(report));

  if (report.parse_failures > 0) return kExitParseFailure;
  return report.findings.empty() ? kExitClean : kExitFindings;
}
