// Streaming throughput: a continuous stream of 2D FFT frames on the P-sync
// machine. With double-buffered node memories, successive frames pipeline;
// the waveguide (every collective's serially-shared resource) or the
// processors' compute — whichever is busier per frame — sets the sustained
// rate. This is the paper's "fusing computation with communication" at the
// application level: balanced configurations hide nearly all communication.
//
//   $ ./streaming_pipeline [dim=64]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "psync/common/table.hpp"
#include "psync/core/psync_machine.hpp"

int main(int argc, char** argv) {
  using namespace psync;
  using namespace psync::core;
  const std::size_t dim = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;

  std::printf("Streaming %zux%zu 2D FFT frames on P-sync (320 Gb/s)\n\n",
              dim, dim);

  Table t({"processors", "frame latency (us)", "initiation interval (us)",
           "frames/s", "speedup vs serial", "bound by"});
  std::vector<std::complex<double>> frame(dim * dim, {1.0, 0.25});
  for (std::size_t procs : {8, 16, 32, 64}) {
    if (dim % procs != 0) continue;
    PsyncMachineParams p;
    p.processors = procs;
    p.matrix_rows = dim;
    p.matrix_cols = dim;
    p.delivery_blocks = 4;
    p.head.dram.row_switch_cycles = 0;
    PsyncMachine m(p);
    const auto rep = m.run_fft2d(frame, false);
    const auto pipe = PsyncMachine::pipeline_estimate(rep);
    t.row()
        .add(static_cast<std::int64_t>(procs))
        .add(pipe.latency_ns * 1e-3, 2)
        .add(pipe.interval_ns * 1e-3, 2)
        .add(pipe.frames_per_sec, 0)
        .add(pipe.latency_ns / pipe.interval_ns, 2)
        .add(pipe.bus_bound ? "waveguide" : "compute");
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "As processors scale, compute per frame shrinks until the waveguide's\n"
      "fixed occupancy becomes the limit — at which point the machine streams\n"
      "one frame per bus pass at 100%% channel utilization.\n");
  return 0;
}
