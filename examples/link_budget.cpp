// PSCAN scalability explorer (paper Section III-B, Eq. 1-3): how many
// modulation sites fit on one optical span, and when do repeaters kick in?
//
//   $ ./link_budget
#include <cstdio>

#include "psync/common/table.hpp"
#include "psync/photonic/link_budget.hpp"

int main() {
  using namespace psync;
  using namespace psync::photonic;

  LinkBudgetParams base;
  std::printf(
      "PSCAN link budget (Eq. 1-3): launch %.1f dBm, coupler %.1f dB,\n"
      "sensitivity %.1f dBm, ring through-loss %.2f dB, waveguide %.1f "
      "dB/cm\n\n",
      base.laser.launch_power_dbm.value(), base.laser.coupler_loss_db.value(),
      base.detector.sensitivity_dbm.value(),
      base.ring.through_loss_off_db.value(),
      base.waveguide.loss_straight_db_per_cm);

  {
    Table t({"modulator pitch (cm)", "segment loss (dB)", "max segments N",
             "span length (cm)"});
    t.set_title("Eq. 3 bound vs modulator pitch");
    for (double pitch : {0.02, 0.05, 0.1, 0.25, 0.5}) {
      LinkBudgetParams p = base;
      p.modulator_pitch_cm = pitch;
      const auto n = max_segments(p);
      t.row()
          .add(pitch, 2)
          .add(segment_loss_db(p).value(), 3)
          .add(static_cast<std::int64_t>(n))
          .add(static_cast<double>(n) * pitch, 1);
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    Table t({"waveguide loss (dB/cm)", "max segments", "repeaters for 1024"});
    t.set_title("Process quality: loss vs reach (0.05 cm pitch)");
    for (double loss : {0.1, 0.3, 1.0, 2.0, 3.0}) {
      LinkBudgetParams p = base;
      p.waveguide.loss_straight_db_per_cm = loss;
      const auto n = max_segments(p);
      t.row()
          .add(loss, 1)
          .add(static_cast<std::int64_t>(n))
          .add(static_cast<std::int64_t>(repeaters_required(p, 1024)));
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    Table t({"grid", "nodes", "serpentine (cm)", "total loss (dB)",
             "residual (dBm)", "closes"});
    t.set_title("Serpentine bus across a 2 cm x 2 cm die (bends included)");
    for (std::size_t gridd : {2, 4, 8, 16, 32}) {
      const auto layout = serpentine_for_grid(gridd, 2.0);
      const std::size_t nodes = gridd * gridd;
      const auto rep = evaluate_serpentine(base, layout, nodes);
      t.row()
          .add(static_cast<std::int64_t>(gridd))
          .add(static_cast<std::int64_t>(nodes))
          .add(layout.total_length_um() * 1e-4, 1)
          .add(rep.total_loss_db.value(), 1)
          .add(rep.residual_dbm.value(), 1)
          .add(rep.closes ? "yes" : "no (repeaters)");
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
