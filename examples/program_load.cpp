// CP chaining demo (paper Section IV): the machine bootstraps itself over
// the waveguide. Nodes know only one thing a priori — where their boot
// segment sits in the first SCA^-1 burst. Everything else, including the
// communication programs for the *next* collective, arrives as data.
//
//   $ ./program_load
#include <cstdio>

#include "psync/core/cp_chain.hpp"

int main() {
  using namespace psync::core;

  const std::size_t nodes = 4;
  const Slot elements = 4;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));

  // The "compiler" output: each node's next CP (an interleaved gather) and
  // its working data, to be shipped together in the boot burst.
  const auto gather_sched = compile_gather_interleaved(nodes, elements);
  std::vector<BootSegment> segments(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    segments[i].programs.push_back(gather_sched.node_cps[i]);
    for (Slot e = 0; e < elements; ++e) {
      segments[i].data.push_back(static_cast<Word>(100 * i + static_cast<Word>(e)));
    }
  }

  const BootImage image = build_boot_image(segments);
  std::printf("Boot burst: %zu words total\n", image.burst.size());
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto words = pack_program_words(segments[i].programs[0]);
    std::printf("  node %zu segment @ word %lld: %zu CP words + %zu data "
                "words  (CP: %s)\n",
                i, static_cast<long long>(image.segment_offset[i]),
                words.size(), segments[i].data.size(),
                segments[i].programs[0].to_string().c_str());
  }

  std::printf("\nStep 1: SCA^-1 scatters boot segments (bootstrap CPs are "
              "one contiguous listen each)\n");
  std::printf("Step 2: every node decodes its next CP from the received "
              "words\n");
  std::printf("Step 3: the decoded schedule drives the next SCA...\n\n");

  const GatherResult g =
      run_boot_chain(engine, segments, gather_sched.total_slots);
  std::printf("Chained gather: %zu slots, gap_free=%s, utilization=%.0f%%\n",
              g.stream.size(), g.gap_free ? "yes" : "NO",
              g.utilization * 100.0);
  std::printf("Stream:");
  for (const auto& rec : g.stream) {
    std::printf(" %lld", static_cast<long long>(rec.word));
  }
  std::printf("\n\nThe communication programs that produced this stream were "
              "themselves delivered over the waveguide one transaction "
              "earlier.\n");
  return 0;
}
