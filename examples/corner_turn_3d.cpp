// Multi-dimensional corner turns with the generic CP compiler — the
// paper's "future work" item on generating communication programs from
// abstract constructs, applied to the reorganization a 3D FFT needs
// between its axis passes.
//
//   $ ./corner_turn_3d [X=16] [Y=8] [Z=8] [nodes=8]
#include <cstdio>
#include <cstdlib>

#include "psync/common/table.hpp"
#include "psync/core/permutation.hpp"
#include "psync/core/sca.hpp"

int main(int argc, char** argv) {
  using namespace psync;
  using namespace psync::core;

  const Slot X = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 16;
  const Slot Y = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 8;
  const Slot Z = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 8;
  const std::size_t nodes =
      argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 8;

  std::printf("3D corner turn of an %lld x %lld x %lld tensor on %zu nodes\n",
              static_cast<long long>(X), static_cast<long long>(Y),
              static_cast<long long>(Z), nodes);
  std::printf("Axes rotate (X,Y,Z) -> (Y,Z,X): one SCA, no buffering.\n\n");

  // Compile the collective from the abstract permutation.
  const CollectiveSpec spec = corner_turn_3d_spec(nodes, X, Y, Z);
  const CpSchedule sched = compile_collective(spec, CpAction::kDrive);
  const auto check = check_schedule(sched, CpAction::kDrive);

  Table t({"node", "stride records", "encoded bits", "program"});
  for (std::size_t i = 0; i < std::min<std::size_t>(nodes, 4); ++i) {
    t.row()
        .add(static_cast<std::int64_t>(i))
        .add(static_cast<std::int64_t>(sched.node_cps[i].strides().size()))
        .add(static_cast<std::int64_t>(sched.node_cps[i].encoded_bits()))
        .add(sched.node_cps[i].to_string());
  }
  std::printf("%s", t.to_string().c_str());
  if (nodes > 4) std::printf("  ... (%zu more nodes)\n", nodes - 4);
  std::printf("\nSchedule: %lld slots, disjoint=%s, gap-free=%s, "
              "%zu records total\n\n",
              static_cast<long long>(sched.total_slots),
              check.disjoint ? "yes" : "NO", check.gap_free ? "yes" : "NO",
              total_stride_records(sched));

  // Run it: tensor element (x,y,z) carries the value x*1e4 + y*100 + z.
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const Slot planes = X / static_cast<Slot>(nodes);
  std::vector<std::vector<Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (Slot e = 0; e < planes * Y * Z; ++e) {
      const Slot x = static_cast<Slot>(i) * planes + e % planes;
      const Slot yz = e / planes;
      const Slot y = yz / Z;
      const Slot z = yz % Z;
      data[i].push_back(
          static_cast<Word>(x * 10000 + y * 100 + z));
    }
  }
  const GatherResult g = engine.gather(sched, data);
  std::printf("SCA ran: %zu slots, gap_free=%s, utilization=%.1f%%\n",
              g.stream.size(), g.gap_free ? "yes" : "NO",
              g.utilization * 100.0);

  // Show a few output slots: slot (y*Z+z)*X + x must carry element (x,y,z).
  const auto words = g.words();
  std::printf("\nFirst 8 output slots (rotated order: x fastest):\n");
  for (Slot s = 0; s < 8 && s < static_cast<Slot>(words.size()); ++s) {
    const Slot x = s % X;
    const Slot yz = s / X;
    std::printf("  slot %lld = %06llu  (expect x=%lld y=%lld z=%lld)\n",
                static_cast<long long>(s),
                static_cast<unsigned long long>(words[static_cast<std::size_t>(s)]),
                static_cast<long long>(x), static_cast<long long>(yz / Z),
                static_cast<long long>(yz % Z));
  }
  return 0;
}
