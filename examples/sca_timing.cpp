// Reproduces the mechanism of paper Fig. 4 as an ASCII timing diagram:
// two processors (P0 near the head of the waveguide, P1 downstream) splice
// their data into one six-slot burst observed by a receiver P2.
//
// The diagram shows, for three waveguide positions (x0 = P0's tap, x1 =
// P1's tap, x2 = the receiver), which slot's energy passes that point in
// each 100 ps window — including the moment where P0 modulates slot 4 while
// P1 is *simultaneously* modulating slot 2 further down the bus.
//
//   $ ./sca_timing
#include <cstdio>

#include "psync/core/cp_compile.hpp"
#include "psync/core/sca.hpp"
#include "psync/core/trace.hpp"

int main() {
  using namespace psync::core;
  using psync::TimePs;

  // Match Fig. 4: P0 and P1 alternate two-slot bursts: P0 drives slots
  // {0,1} and {4,5}; P1 drives {2,3}. Positions are far enough apart that
  // the waveguide pipeline holds multiple slots in flight.
  PscanTopology topo;
  topo.clock.frequency_ghz = psync::GigaHertz{10.0};  // 100 ps slots
  topo.node_pos_um = {10'000.0, 38'000.0};   // 1.0 cm and 3.8 cm: 400 ps apart
  topo.terminus_um = 66'000.0;               // 6.6 cm
  ScaEngine engine(topo);

  CpSchedule sched;
  sched.total_slots = 6;
  sched.node_cps.resize(2);
  sched.node_cps[0].add(CpStride{0, 2, 4, 2, CpAction::kDrive});  // 0,1,4,5
  sched.node_cps[1].add(CpStride{2, 2, 2, 1, CpAction::kDrive});  // 2,3

  std::vector<std::vector<Word>> data{{0xA0, 0xA1, 0xA4, 0xA5}, {0xB2, 0xB3}};
  const GatherResult g = engine.gather(sched, data);

  std::printf("SCA in-flight splice (paper Fig. 4)\n");
  std::printf("  P0 at 1.0 cm drives slots 0,1,4,5; P1 at 3.8 cm drives "
              "slots 2,3; receiver at 6.6 cm\n\n");

  const WaveTrace trace = trace_gather(
      engine, g, {10'000.0, 38'000.0, 66'000.0});
  std::printf("%s", render_ascii(trace, {"x0 (P0)", "x1 (P1)", "x2 (rx)"}).c_str());

  std::printf("\nReceiver sees one contiguous burst (gap_free=%s):",
              g.gap_free ? "yes" : "NO");
  for (const auto& rec : g.stream) {
    std::printf(" %02llX", static_cast<unsigned long long>(rec.word));
  }
  std::printf("\n");

  // The Fig. 4 subtlety: P0 modulates slot 4 before P1 finished slot 3.
  const TimePs p0_slot4 = g.stream[4].modulated_ps;
  const TimePs p1_slot3_end =
      g.stream[3].modulated_ps + engine.clock().period_ps();
  std::printf("\nP0 starts modulating slot 4 at %lld ps while P1 is still "
              "driving slot 3 until %lld ps -> simultaneous modulation, %s\n",
              static_cast<long long>(p0_slot4),
              static_cast<long long>(p1_slot3_end),
              p0_slot4 < p1_slot3_end ? "held apart only by the waveguide "
                                        "pipeline (no collision)"
                                      : "(sequential at these positions)");

  std::printf("\nMachine-readable trace (to_csv):\n%s",
              to_csv(trace).c_str());
  return 0;
}
