// Domain scenario: a 2D FFT of a synthetic SAR-style scene on the full
// P-sync machine vs the electronic-mesh CMP — the end-to-end workload the
// paper's introduction motivates (radar/medical imaging corner turns).
//
// Runs both architecture simulators on the same data, verifies both produce
// the numerically correct transform, and prints the phase breakdown showing
// where the mesh loses: the transpose.
//
//   $ ./fft2d_psync [matrix_dim=64] [processors=16]
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "psync/common/table.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"

namespace {

// Synthetic scene: a few point scatterers over textured clutter — after a
// 2D FFT the scatterers become 2D tones, a standard SAR sanity image.
std::vector<std::complex<double>> synth_scene(std::size_t n) {
  std::vector<std::complex<double>> img(n * n);
  const double pi = std::numbers::pi;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double v = 0.1 * std::sin(2.0 * pi * 3.0 * static_cast<double>(r) /
                                static_cast<double>(n)) *
                 std::cos(2.0 * pi * 5.0 * static_cast<double>(c) /
                          static_cast<double>(n));
      img[r * n + c] = {v, 0.0};
    }
  }
  img[n / 4 * n + n / 3] += 4.0;       // bright scatterers
  img[n / 2 * n + 2 * n / 3] += 2.5;
  return img;
}

void print_phases(const char* name, const std::vector<psync::core::Phase>& ph,
                  double total_ns) {
  psync::Table t({"phase", "start (us)", "end (us)", "duration (us)",
                  "share (%)"});
  t.set_title(name);
  for (const auto& p : ph) {
    t.row()
        .add(p.name)
        .add(p.start_ns * 1e-3, 2)
        .add(p.end_ns * 1e-3, 2)
        .add(p.duration_ns() * 1e-3, 2)
        .add(p.duration_ns() / total_ns * 100.0, 1);
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psync;
  const std::size_t dim = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t procs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const auto grid = static_cast<std::size_t>(std::sqrt(static_cast<double>(procs)));
  if (grid * grid != procs) {
    std::fprintf(stderr, "processors must be a perfect square\n");
    return 2;
  }

  const auto scene = synth_scene(dim);
  std::printf("2D FFT of a %zux%zu synthetic SAR scene on %zu processors\n\n",
              dim, dim, procs);

  // ---- P-sync ----
  core::PsyncMachineParams pp;
  pp.processors = procs;
  pp.matrix_rows = dim;
  pp.matrix_cols = dim;
  pp.delivery_blocks = 4;  // Model II delivery
  pp.head.dram.row_switch_cycles = 0;
  core::PsyncMachine psm(pp);
  const auto pr = psm.run_fft2d(scene);
  print_phases("P-sync (PSCAN SCA/SCA^-1 collectives, k=4 delivery)",
               pr.phases, pr.total_ns);
  std::printf("  total %.2f us, efficiency %.1f%%, %.2f GFLOPS, "
              "normalized error vs reference: %.2e\n\n",
              pr.total_ns * 1e-3, pr.compute_efficiency * 100.0, pr.gflops,
              pr.max_error_vs_reference);

  // ---- Electronic mesh ----
  core::MeshMachineParams mp;
  mp.grid = grid;
  mp.matrix_rows = dim;
  mp.matrix_cols = dim;
  mp.elements_per_packet = 32;
  mp.mi.dram.row_switch_cycles = 0;
  core::MeshMachine msm(mp);
  const auto mr = msm.run_fft2d(scene);
  print_phases("Electronic mesh (cycle-level wormhole NoC, single port)",
               mr.phases, mr.total_ns);
  std::printf("  total %.2f us, efficiency %.1f%%, %.2f GFLOPS, "
              "normalized error vs reference: %.2e\n\n",
              mr.total_ns * 1e-3, mr.compute_efficiency * 100.0, mr.gflops,
              mr.max_error_vs_reference);

  std::printf("P-sync speedup: %.2fx end-to-end, %.2fx on reorganization\n",
              mr.total_ns / pr.total_ns, mr.reorg_ns / pr.reorg_ns);

  // Show the transform worked: find the brightest output bin.
  const auto out = psm.result();
  std::size_t arg = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (std::abs(out[i]) > std::abs(out[arg])) arg = i;
  }
  std::printf("Brightest spectral bin (transposed layout): (%zu, %zu) "
              "|X| = %.1f\n",
              arg / dim, arg % dim, std::abs(out[arg]));
  return 0;
}
