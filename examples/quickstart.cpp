// Quickstart: the PSCAN in ~60 lines.
//
// Builds an 8-node photonic bus, compiles communication programs for an
// interleaved gather (the transpose pattern), runs a Synchronous Coalesced
// Access, and shows the headline property: spatially separate nodes splice
// a gap-free burst in flight, at 100% channel utilization, with the
// receiver none the wiser that eight transmitters produced it.
//
//   $ ./quickstart
#include <cstdio>

#include "psync/core/cp_compile.hpp"
#include "psync/core/sca.hpp"

int main() {
  using namespace psync::core;

  // An 8-node bus over 8 cm of waveguide; the photonic clock runs at
  // 10 GHz, light travels 7 cm/ns, so nodes perceive the same clock edge at
  // deliberately different times -- that skew is what the SCA exploits.
  const std::size_t nodes = 8;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));

  // Each node holds 4 words; the compiled schedule interleaves them so the
  // receiver sees element 0 of every node, then element 1, ...
  const Slot elements = 4;
  const CpSchedule schedule = compile_gather_interleaved(nodes, elements);

  std::printf("Communication programs (one per node):\n");
  for (std::size_t i = 0; i < nodes; ++i) {
    std::printf("  node %zu: %s  (%zu bits encoded)\n", i,
                schedule.node_cps[i].to_string().c_str(),
                schedule.node_cps[i].encoded_bits());
  }

  // Node i's local data: i*10 + element index.
  std::vector<std::vector<Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (Slot e = 0; e < elements; ++e) {
      data[i].push_back(static_cast<Word>(i * 10 + static_cast<Word>(e)));
    }
  }

  // Run the SCA. The engine checks the link budget geometry, modulates each
  // word at its owner's perceived slot time, and detects any collision.
  const GatherResult g = engine.gather(schedule, data);

  std::printf("\nReceiver stream (%zu slots, gap_free=%s, utilization=%.0f%%):\n",
              g.stream.size(), g.gap_free ? "yes" : "NO",
              g.utilization * 100.0);
  for (const auto& rec : g.stream) {
    std::printf("  slot %2lld <- node %d word %2llu  (arrived %lld ps)\n",
                static_cast<long long>(rec.slot), rec.source,
                static_cast<unsigned long long>(rec.word),
                static_cast<long long>(rec.arrival_ps));
  }

  // The inverse operation: one monolithic burst scattered to all nodes.
  const ScatterResult sc =
      engine.scatter(compile_scatter_interleaved(nodes, elements), g.words());
  std::printf("\nSCA^-1 scatter returns every word home: node 3 got:");
  for (Word w : sc.received[3]) {
    std::printf(" %llu", static_cast<unsigned long long>(w));
  }
  std::printf("\n");
  return 0;
}
