// The paper's Table III experiment at any scale you like: distributed
// matrix transpose writeback, PSCAN vs cycle-level wormhole mesh.
//
//   $ ./transpose_showdown [grid=16] [elements_per_node=256] [t_p=1]
//
// grid*grid processors each write `elements_per_node` 64-bit words back to
// one memory port; the PSCAN reorganizes in flight at full waveguide
// utilization while the mesh pays ejection serialization, reorder time and
// DRAM row assembly at the port.
#include <cstdio>
#include <cstdlib>

#include "psync/analysis/transpose_model.hpp"
#include "psync/common/table.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/sca.hpp"
#include "psync/dram/controller.hpp"

int main(int argc, char** argv) {
  using namespace psync;
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::uint32_t elements =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 256;
  const std::uint32_t t_p =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 1;
  const std::size_t procs = grid * grid;

  std::printf("Transpose writeback: %zu processors x %u samples, t_p=%u\n\n",
              procs, elements, t_p);

  // ---- PSCAN: slot-exact engine + DRAM streaming ----
  core::ScaEngine engine(core::straight_bus_topology(procs, 8.0));
  const auto sched = core::compile_gather_transpose(
      procs, 1, static_cast<core::Slot>(elements));
  std::vector<std::vector<core::Word>> data(
      procs, std::vector<core::Word>(elements, 0x1234));
  const auto g = engine.gather(sched, data);

  dram::DramParams dp;
  dp.row_switch_cycles = 0;
  dram::MemoryController mc(dp);
  const auto total_bits = static_cast<std::uint64_t>(procs) * elements * 64;
  const auto pscan =
      mc.stream_rows(0, dram::row_transactions(dp, total_bits));

  // ---- Mesh: full cycle-level run ----
  core::MeshMachineParams mp;
  mp.grid = grid;
  mp.matrix_rows = procs;
  mp.matrix_cols = elements;
  mp.elements_per_packet = 32;
  mp.mi.reorder_cycles_per_element = t_p;
  mp.mi.dram.row_switch_cycles = 0;
  core::MeshMachine mesh(mp);
  const auto rep = mesh.run_transpose_writeback(elements);

  Table t({"network", "completion (cycles)", "cycles/element", "vs PSCAN"});
  t.row()
      .add("PSCAN (SCA)")
      .add(static_cast<std::int64_t>(pscan.bus_cycles))
      .add(static_cast<double>(pscan.bus_cycles) /
               static_cast<double>(procs * elements),
           2)
      .add(1.0, 2);
  t.row()
      .add("wormhole mesh")
      .add(static_cast<std::int64_t>(rep.completion_cycle))
      .add(rep.cycles_per_element, 2)
      .add(static_cast<double>(rep.completion_cycle) /
               static_cast<double>(pscan.bus_cycles),
           2);
  std::printf("%s\n", t.to_string().c_str());

  std::printf("PSCAN stream: gap_free=%s, utilization=%.1f%%, %zu collisions\n",
              g.gap_free ? "yes" : "NO", g.utilization * 100.0,
              g.collisions.size());
  std::printf("Mesh activity: %llu flit-hops, mean packet latency %.0f "
              "cycles\n",
              static_cast<unsigned long long>(rep.activity.link_traversals),
              rep.mean_packet_latency_cycles);

  // Packet-latency distribution (re-run with per-packet tracking): the
  // long tail is the congestion the paper's Section V-C-2 describes.
  {
    mesh::MeshParams np = mp.net;
    np.width = np.height = static_cast<std::uint32_t>(grid);
    mesh::Mesh net(np);
    net.record_latencies(true);
    mesh::MemoryInterface mi(mp.mi,
                             static_cast<std::uint64_t>(procs) * elements);
    net.set_sink(mp.memory_node, &mi);
    for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
      for (std::uint32_t e = 0; e < elements; e += mp.elements_per_packet) {
        mesh::PacketDesc d;
        d.src = n;
        d.dst = mp.memory_node;
        d.payload_flits = mp.elements_per_packet;
        net.inject(d);
      }
    }
    while (!mi.done()) net.step();
    const auto& lat = net.packet_latency();
    std::printf("\nMesh packet latency: min %.0f / mean %.0f / max %.0f "
                "cycles (stddev %.0f) over %llu packets\n",
                lat.min(), lat.mean(), lat.max(), lat.stddev(),
                static_cast<unsigned long long>(lat.count()));
    Histogram h(lat.min(), lat.max() + 1.0, 10);
    for (double v : net.latencies()) h.add(v);
    std::printf("%s", h.to_string(40).c_str());
  }
  return 0;
}
