#include "psync/driver/sweep.hpp"

#include "psync/common/check.hpp"

namespace psync::driver {

std::uint64_t SweepEngine::point_seed(std::uint64_t base, std::size_t index) {
  // splitmix64 over (base + golden-ratio stride per index): well-mixed,
  // collision-free for any practical grid, and independent of threading.
  std::uint64_t z = base + (static_cast<std::uint64_t>(index) + 1) *
                               0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<RunPoint> SweepEngine::expand(const ExperimentSpec& spec) {
  std::size_t total = 1;
  for (const auto& axis : spec.axes) {
    PSYNC_CHECK(!axis.values.empty());
    total *= axis.values.size();
  }

  std::vector<RunPoint> points;
  points.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    RunPoint pt;
    pt.index = index;
    pt.machine = spec.machine;
    pt.mesh = spec.mesh;
    pt.with_mesh = spec.with_mesh;
    pt.verify = spec.verify;
    pt.transpose_elements = spec.transpose_elements;
    pt.seed = point_seed(spec.input_seed, index);

    // Row-major decode: first axis slowest.
    std::size_t stride = total;
    for (const auto& axis : spec.axes) {
      stride /= axis.values.size();
      const double value = axis.values[(index / stride) % axis.values.size()];
      pt.knobs.emplace_back(axis.knob, value);
      if (!apply_knob(axis.knob, value, &pt.machine, &pt.mesh)) {
        throw SimulationError("sweep: unknown knob '" + axis.knob + "'");
      }
    }
    // Content digest over the post-knob state: the result cache's per-point
    // key. Computed here so every execution path (Runner, Session, dist
    // workers) sees the same digest for the same point.
    pt.digest = point_digest(spec.workload, pt);
    points.push_back(std::move(pt));
  }
  return points;
}

void SweepEngine::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const std::size_t workers = std::min(threads_ == 0 ? 1 : threads_, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace psync::driver
