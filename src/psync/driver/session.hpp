// Session: the submission/execution split of the driver API.
//
// Runner::run grew into a monolith: spec validation, grid expansion,
// journal resume, and point execution all happened inside one blocking
// call. The campaign service (src/psync/serve) needs those phases apart —
// a daemon must validate and hash a spec *before* committing threads to
// it, run many campaigns concurrently, and stream per-point progress to
// subscribers while points are still executing. Hence:
//
//   validate(spec)  -> typed ConfigError diagnostics; const, no I/O
//   freeze(spec)    -> FrozenSpec: expanded grid + canonical JSON + digest
//                      (pure and hashable; throws the first diagnostic)
//   submit(frozen)  -> CampaignHandle: the campaign runs on its own
//                      thread; poll progress, stream events, cancel, join
//   run(spec)       -> submit + join, the old synchronous shape
//
// Runner::run is now a thin shim over Session::run, so every existing
// caller (psync_sim, benches, dist workers) and every new one (the serve
// daemon) execute points through literally the same code path — which is
// what keeps serial, sharded, and served campaigns byte-identical.
//
// A Session may carry a PointCache: before executing a pending point, the
// campaign asks the cache for a record with the point's content digest
// (RunPoint::digest) and splices a hit in place of execution — exactly as
// the journal-resume path splices, so rendered output stays byte-identical
// whether a point was simulated, resumed, or cache-hit. Only kOk records
// are ever stored or returned: a transient failure must not poison the
// cache. Cache hits do NOT fire the spec's PointObserver (observers
// announce *executed* points only), which is what lets tests assert "zero
// points re-simulated" on a cache-served resubmission.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/driver/runner.hpp"

namespace psync::driver {

/// Per-point result cache the execution phase consults before simulating.
/// Implementations must be thread-safe: concurrent campaigns look up and
/// store from their own threads. The serve layer's journal-backed
/// implementation is serve::ResultCache.
class PointCache {
 public:
  virtual ~PointCache() = default;
  /// Fetch the record stored under a point's content digest into `*out`.
  /// Returns false on a miss. `seed` cross-checks the stored record's
  /// seed (the digest already covers it; a mismatch means a hash
  /// collision and must read as a miss, never as a wrong result).
  virtual bool lookup(std::uint64_t digest, std::uint64_t seed,
                      RunRecord* out) = 0;
  /// Store an executed point's record under its digest. Callers only pass
  /// kOk records.
  virtual void store(std::uint64_t digest, std::uint64_t seed,
                     const RunRecord& rec) = 0;
};

/// The pure, hashable output of the construction phase: the spec, its
/// fully-expanded grid, and its canonical content identity. Everything a
/// daemon needs to decide "have I run this before?" without executing.
struct FrozenSpec {
  ExperimentSpec spec;
  std::vector<RunPoint> points;  // expanded grid, digests filled
  std::string canonical;         // spec.canonical_json()
  std::uint64_t digest = 0;      // fnv1a64(canonical): the campaign key
};

enum class CampaignState {
  kRunning,
  kDone,       // result() is valid
  kFailed,     // result() rethrows the stored exception
  kCancelled,  // cancelled before completion (CancelledError stored)
};

const char* to_string(CampaignState state);

/// One per-point completion, in the order records landed (not grid
/// order). The serve daemon streams these to subscribers.
struct CampaignEvent {
  /// Where the record came from: executed here, spliced from the resume
  /// journal, or served by the PointCache.
  enum class Source { kRun, kResume, kCache };
  std::size_t index = 0;
  PointStatus status = PointStatus::kOk;
  Source source = Source::kRun;
  RunRecord record;  // full copy, for per-point streaming
};

const char* to_string(CampaignEvent::Source source);

/// Point-level accounting a campaign updates as it goes (all monotone).
struct CampaignProgress {
  std::size_t total = 0;      // points in this run's shard window
  std::size_t completed = 0;  // records landed, from any source
  std::size_t executed = 0;   // actually simulated by this campaign
  std::size_t cache_hits = 0; // served by the PointCache
  std::size_t resumed = 0;    // spliced from the checkpoint journal
};

/// Internal state shared between a running campaign thread and its
/// handles. Treat as opaque; CampaignHandle is the API.
struct Campaign {
  ~Campaign();

  std::mutex mu;
  std::condition_variable cv;
  CampaignState state = CampaignState::kRunning;
  SweepResult result;            // valid once state == kDone
  std::exception_ptr error;      // set for kFailed / kCancelled
  std::vector<CampaignEvent> events;
  CampaignProgress progress;
  std::uint64_t digest = 0;      // the FrozenSpec's spec digest
  CancelToken token;             // campaign-local cancel (parented to
                                 // the spec's token when one is set)
  std::thread thread;
  bool joined = false;
};

/// Shared, copyable reference to a submitted campaign. All methods are
/// thread-safe; several handles (e.g. two serve subscribers) may observe
/// one campaign concurrently. The last handle's destructor joins a
/// still-running campaign — a campaign is never silently abandoned.
class CampaignHandle {
 public:
  CampaignHandle() = default;

  [[nodiscard]] bool valid() const { return c_ != nullptr; }
  [[nodiscard]] CampaignState state() const;
  [[nodiscard]] bool done() const { return state() != CampaignState::kRunning; }
  [[nodiscard]] CampaignProgress progress() const;
  /// The frozen spec's content digest (the daemon's campaign key).
  [[nodiscard]] std::uint64_t digest() const;

  /// Request cooperative cancellation: no new point starts, in-flight
  /// points abandon at their next cycle-batch boundary, the journal tail
  /// stays durable, and the campaign finishes kCancelled.
  void cancel();

  /// Block until the campaign leaves kRunning (joins the thread). Does not
  /// throw on failure — inspect state() or call result().
  void wait();

  /// wait(), then the finished result; rethrows the campaign's exception
  /// when it failed or was cancelled. The reference stays valid for the
  /// campaign's lifetime.
  const SweepResult& result();

  /// wait(), then move the result out (rethrows like result()). The
  /// synchronous Session::run path uses this to avoid a deep copy.
  SweepResult take();

  /// Copy events [cursor, size) into `*out` (appended), waiting up to
  /// `timeout_ms` for new ones when the campaign is still running (0 =
  /// no wait). Returns the new cursor. Subscribers poll this in a loop:
  /// cursor 0 replays history, so a late subscriber misses nothing.
  std::size_t events_since(std::size_t cursor, double timeout_ms,
                           std::vector<CampaignEvent>* out);

 private:
  friend class Session;
  explicit CampaignHandle(std::shared_ptr<Campaign> c) : c_(std::move(c)) {}
  std::shared_ptr<Campaign> c_;
};

/// The campaign-side surface a pluggable executor publishes through:
/// per-point events for subscribers plus the campaign's cancel token.
/// Valid only for the duration of the executor call that received it.
class CampaignFeed {
 public:
  /// Publish one landed point (event + progress tally + subscriber
  /// wakeup). Call with ascending or arbitrary indices — events stream in
  /// call order. Thread-safe.
  void emit(std::size_t index, const RunRecord& rec);
  /// The campaign-local cancel token (parented to the spec's token):
  /// executors must poll it — or hand it to their own machinery — so
  /// handle.cancel() reaches them.
  [[nodiscard]] const CancelToken* token() const;

 private:
  friend class Session;
  explicit CampaignFeed(Campaign* c) : c_(c) {}
  Campaign* c_;
};

/// A pluggable execution backend for submitted campaigns. The default is
/// Session::execute (in-process thread pool); dist::distributed_executor
/// runs the frozen sweep across worker processes instead. Contract:
/// return the finished SweepResult (byte-identical to what the default
/// path would render), throw CancelledError when feed.token() fired, and
/// emit() each completed point exactly once for subscribers.
using CampaignExecutor =
    std::function<SweepResult(const FrozenSpec&, CampaignFeed&)>;

class Session {
 public:
  struct Options {
    /// Optional per-point result cache (non-owning; must outlive every
    /// campaign submitted through this session).
    PointCache* cache = nullptr;
    /// Optional execution backend; empty runs the built-in in-process
    /// path. The cache is not consulted when an executor is set — the
    /// backend owns its own resume/dedup story (e.g. shard journals).
    CampaignExecutor executor;
  };

  Session() = default;
  explicit Session(Options opts) : opts_(opts) {}

  /// Every problem with the spec, as typed diagnostics: unknown workload,
  /// empty or invalid sweep axes (dry-run of each knob/value pair),
  /// inverted shard window, resume without a journal, negative guard
  /// timings. Const and I/O-free — safe to call on untrusted submissions
  /// before committing any resource to them. An empty vector means
  /// freeze() will accept the spec.
  static std::vector<ConfigError> validate(const ExperimentSpec& spec);

  /// Construction phase: validate, expand the grid, compute the canonical
  /// form and digest. Pure (no I/O, no threads). Throws the first
  /// validate() diagnostic on an invalid spec.
  static FrozenSpec freeze(const ExperimentSpec& spec);

  /// Execution phase: run the frozen campaign on its own thread and
  /// return immediately. Journal/resume/shard/cancel semantics are
  /// exactly Runner::run's (runner.hpp documents them); execution errors
  /// surface through the handle, not here.
  CampaignHandle submit(FrozenSpec frozen);
  /// freeze() + submit(). Invalid specs throw here, synchronously.
  CampaignHandle submit(const ExperimentSpec& spec);

  /// The synchronous path: submit + join. Equivalent to the old
  /// Runner::run (which now forwards here), including every exception it
  /// threw.
  SweepResult run(const ExperimentSpec& spec);

 private:
  static void execute(const FrozenSpec& frozen, PointCache* cache,
                      Campaign* c);
  Options opts_;
};

}  // namespace psync::driver
