// Runner: the single entry point every experiment goes through.
//
//   ExperimentSpec  ->  Runner::run  ->  Workload registry dispatch
//                         |                    (one RunRecord per point)
//                         +--> SweepEngine (thread pool, deterministic
//                              seeding, order-preserving collection)
//
// Rendering helpers turn a SweepResult into the three formats the tools
// and benches share: an ASCII table, a JSON document (points serialized
// through the unified core/trace run-report schema), and CSV.
#pragma once

#include <string>

#include "psync/driver/campaign.hpp"
#include "psync/driver/experiment.hpp"
#include "psync/driver/sweep.hpp"
#include "psync/driver/workload.hpp"

namespace psync::driver {

struct SweepResult {
  ExperimentSpec spec;
  /// One record per grid point, in grid order (independent of threads).
  std::vector<RunRecord> records;
  /// Campaign accounting: ok/failed/quarantined/retried/resumed tallies.
  CampaignReport campaign;
};

class Runner {
 public:
  /// Expand the spec's sweep grid and execute every point through the
  /// workload registry on `spec.threads` pool threads. Deterministic: the
  /// records come back in grid order and each point's seed depends only on
  /// (spec.input_seed, index), so serial and parallel runs are
  /// byte-identical once rendered.
  ///
  /// Campaign features (all opt-in via the spec):
  ///   * spec.guard — each point runs under a PointGuard (isolation,
  ///     watchdog, retry, quarantine; campaign.hpp);
  ///   * spec.journal_path — every finished point is appended to a
  ///     checkpoint journal as one fsync'd JSONL line;
  ///   * spec.resume — points already in the journal are reconstituted
  ///     instead of re-run (validated against this sweep's grid indices,
  ///     seeds and workload; throws JournalCorruptError/JournalConflictError
  ///     — both SimulationError — on a damaged or mismatched journal), and
  ///     the rendered output is byte-identical to an uninterrupted run;
  ///   * spec.shard_begin/shard_end — execute only that window of the grid
  ///     (the distributed layer's shard contract; seeds stay global);
  ///   * spec.quarantine_indices — record those points as quarantined
  ///     (worker_crash) without executing them;
  ///   * spec.cancel — cooperative shutdown: no new point starts after the
  ///     token fires, in-flight points abandon at cycle-batch boundaries,
  ///     and CancelledError is thrown instead of returning a short result;
  ///   * spec.observer — per-point start/done callbacks (heartbeats).
  static SweepResult run(const ExperimentSpec& spec);

  /// Execute one already-expanded point.
  static RunRecord run_point(const std::string& workload, const RunPoint& pt);
};

/// ASCII table over the sweep grid: knob columns then metric columns.
std::string sweep_table(const SweepResult& result, const std::string& title);

/// JSON: {"schema_version":..,"workload":..,"points":[{knobs, metrics,
/// report?, mesh_report?}, ...]} — reports via core::run_summary_json.
std::string sweep_json(const SweepResult& result);

/// One record of sweep_json's "points" array as a standalone JSON object,
/// byte-identical to its embedded form. The serve daemon streams these to
/// subscribers as points complete.
std::string point_json(const RunRecord& rec);

/// CSV: knob columns + metric columns, one row per point.
std::string sweep_csv(const SweepResult& result);

}  // namespace psync::driver
