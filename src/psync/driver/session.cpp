#include "psync/driver/session.hpp"

#include <algorithm>
#include <chrono>

#include "psync/common/journal.hpp"

namespace psync::driver {

const char* to_string(CampaignState state) {
  switch (state) {
    case CampaignState::kRunning: return "running";
    case CampaignState::kDone: return "done";
    case CampaignState::kFailed: return "failed";
    case CampaignState::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(CampaignEvent::Source source) {
  switch (source) {
    case CampaignEvent::Source::kRun: return "run";
    case CampaignEvent::Source::kResume: return "resume";
    case CampaignEvent::Source::kCache: return "cache";
  }
  return "?";
}

Campaign::~Campaign() {
  // The last handle may die while the campaign still runs (an abandoned
  // submission); joining here keeps the thread from outliving the state
  // it writes to. wait() joins earlier in the normal path.
  if (thread.joinable()) thread.join();
}

namespace {

// Record one landed point: event for subscribers, progress tally, wakeup.
// Callers must NOT hold c->mu.
void note_point(Campaign* c, std::size_t index, const RunRecord& rec,
                CampaignEvent::Source source) {
  std::lock_guard<std::mutex> lock(c->mu);
  CampaignEvent ev;
  ev.index = index;
  ev.status = rec.status;
  ev.source = source;
  ev.record = rec;
  c->events.push_back(std::move(ev));
  ++c->progress.completed;
  switch (source) {
    case CampaignEvent::Source::kRun: ++c->progress.executed; break;
    case CampaignEvent::Source::kResume: ++c->progress.resumed; break;
    case CampaignEvent::Source::kCache: ++c->progress.cache_hits; break;
  }
  c->cv.notify_all();
}

}  // namespace

void CampaignFeed::emit(std::size_t index, const RunRecord& rec) {
  PSYNC_CHECK(c_ != nullptr);
  note_point(c_, index, rec, CampaignEvent::Source::kRun);
}

const CancelToken* CampaignFeed::token() const {
  PSYNC_CHECK(c_ != nullptr);
  return &c_->token;
}

CampaignState CampaignHandle::state() const {
  PSYNC_CHECK(c_ != nullptr);
  std::lock_guard<std::mutex> lock(c_->mu);
  return c_->state;
}

CampaignProgress CampaignHandle::progress() const {
  PSYNC_CHECK(c_ != nullptr);
  std::lock_guard<std::mutex> lock(c_->mu);
  return c_->progress;
}

std::uint64_t CampaignHandle::digest() const {
  PSYNC_CHECK(c_ != nullptr);
  return c_->digest;  // immutable after submit
}

void CampaignHandle::cancel() {
  PSYNC_CHECK(c_ != nullptr);
  c_->token.cancel();
  c_->cv.notify_all();
}

void CampaignHandle::wait() {
  PSYNC_CHECK(c_ != nullptr);
  std::unique_lock<std::mutex> lock(c_->mu);
  c_->cv.wait(lock, [&] { return c_->state != CampaignState::kRunning; });
  if (!c_->joined) {
    c_->joined = true;
    lock.unlock();
    c_->thread.join();
  }
}

const SweepResult& CampaignHandle::result() {
  wait();
  std::lock_guard<std::mutex> lock(c_->mu);
  if (c_->error) std::rethrow_exception(c_->error);
  return c_->result;
}

SweepResult CampaignHandle::take() {
  wait();
  std::lock_guard<std::mutex> lock(c_->mu);
  if (c_->error) std::rethrow_exception(c_->error);
  return std::move(c_->result);
}

std::size_t CampaignHandle::events_since(std::size_t cursor, double timeout_ms,
                                         std::vector<CampaignEvent>* out) {
  PSYNC_CHECK(c_ != nullptr && out != nullptr);
  std::unique_lock<std::mutex> lock(c_->mu);
  if (cursor >= c_->events.size() && c_->state == CampaignState::kRunning &&
      timeout_ms > 0.0) {
    c_->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms), [&] {
          return cursor < c_->events.size() ||
                 c_->state != CampaignState::kRunning;
        });
  }
  for (std::size_t i = cursor; i < c_->events.size(); ++i) {
    out->push_back(c_->events[i]);
  }
  return c_->events.size();
}

std::vector<ConfigError> Session::validate(const ExperimentSpec& spec) {
  std::vector<ConfigError> diags;
  try {
    (void)find_workload(spec.workload);
  } catch (const SimulationError& e) {
    diags.emplace_back(e.what());
  }
  // Grid size mirrors SweepEngine::expand exactly (axes multiply; no axes
  // is one point) so the shard-window clamp below matches execution.
  std::size_t total = 1;
  for (const auto& axis : spec.axes) {
    if (axis.values.empty()) {
      diags.emplace_back("sweep axis '" + axis.knob + "' has no values");
      continue;
    }
    total *= axis.values.size();
    // Dry-run every knob/value pair on scratch parameter blocks: catches
    // unknown knobs and rejected values (negative or fractional counts)
    // without expanding the full grid — O(sum of axis lengths), no I/O.
    for (const double value : axis.values) {
      core::PsyncMachineParams machine = spec.machine;
      core::MeshMachineParams mesh = spec.mesh;
      try {
        if (!apply_knob(axis.knob, value, &machine, &mesh)) {
          diags.emplace_back("sweep: unknown knob '" + axis.knob + "'");
          break;
        }
      } catch (const SimulationError& e) {
        diags.emplace_back(e.what());
        break;
      }
    }
  }
  const std::size_t begin = std::min(spec.shard_begin, total);
  const std::size_t end = std::min(spec.shard_end, total);
  if (begin > end) {
    diags.emplace_back("shard window [" + std::to_string(spec.shard_begin) +
                       ", " + std::to_string(spec.shard_end) +
                       ") is inverted");
  }
  if (spec.resume && spec.journal_path.empty()) {
    diags.emplace_back("resume requested without a journal path");
  }
  if (spec.guard.point_timeout_ms < 0.0) {
    diags.emplace_back("guard.point_timeout_ms is negative");
  }
  if (spec.guard.retry_backoff_ms < 0.0) {
    diags.emplace_back("guard.retry_backoff_ms is negative");
  }
  return diags;
}

FrozenSpec Session::freeze(const ExperimentSpec& spec) {
  const auto diags = validate(spec);
  if (!diags.empty()) throw diags.front();
  FrozenSpec frozen;
  frozen.spec = spec;
  frozen.points = SweepEngine::expand(spec);
  frozen.canonical = spec.canonical_json();
  frozen.digest = fnv1a64(frozen.canonical);
  return frozen;
}

CampaignHandle Session::submit(FrozenSpec frozen) {
  auto c = std::make_shared<Campaign>();
  c->digest = frozen.digest;
  c->token.set_parent(frozen.spec.cancel);
  {
    // The window clamp is recomputed in execute(); setting total here lets
    // progress() answer sensibly before the thread gets scheduled.
    const std::size_t n = frozen.points.size();
    c->progress.total =
        std::min(frozen.spec.shard_end, n) - std::min(frozen.spec.shard_begin, n);
  }
  PointCache* cache = opts_.cache;
  Campaign* raw = c.get();
  raw->thread = std::thread([frozen = std::move(frozen), cache,
                             executor = opts_.executor, raw] {
    try {
      if (executor) {
        CampaignFeed feed(raw);
        SweepResult result = executor(frozen, feed);
        std::lock_guard<std::mutex> lock(raw->mu);
        raw->result = std::move(result);
        raw->state = CampaignState::kDone;
        raw->cv.notify_all();
      } else {
        execute(frozen, cache, raw);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(raw->mu);
      raw->error = std::current_exception();
      raw->state = raw->token.cancelled() ? CampaignState::kCancelled
                                          : CampaignState::kFailed;
      raw->cv.notify_all();
    }
  });
  return CampaignHandle(std::move(c));
}

CampaignHandle Session::submit(const ExperimentSpec& spec) {
  return submit(freeze(spec));
}

SweepResult Session::run(const ExperimentSpec& spec) {
  return submit(spec).take();
}

void Session::execute(const FrozenSpec& frozen, PointCache* cache,
                      Campaign* c) {
  const ExperimentSpec& spec = frozen.spec;
  const std::vector<RunPoint>& points = frozen.points;
  SweepResult result;
  result.spec = spec;
  result.records.resize(points.size());

  // Shard window: only [begin, end) of the grid is this run's to execute.
  // Seeds/knobs/digests were derived from global indices during expansion,
  // so the window changes *which* points run, never what any point
  // computes. freeze() already rejected inverted windows.
  const std::size_t begin = std::min(spec.shard_begin, points.size());
  const std::size_t end = std::min(spec.shard_end, points.size());
  PSYNC_CHECK(begin <= end);

  // Resume: reconstitute journaled points into their grid slots. Every
  // entry must match this sweep (grid bounds, point seed, workload, and —
  // when the line carries one — the point's content digest) or the journal
  // belongs to a different campaign: fail loudly rather than mix results.
  // Entries *outside* the shard window are still validated and spliced (a
  // replacement worker may inherit a journal whose range was since
  // re-partitioned), they just don't count toward this run's campaign.
  // read_journal_lines already dropped a torn final line (kill -9
  // mid-append); a malformed line elsewhere means the file is not ours.
  std::vector<char> done(points.size(), 0);
  std::size_t resumed = 0;
  if (spec.resume) {
    PSYNC_CHECK(!spec.journal_path.empty());  // rejected by freeze()
    for (const auto& line : read_journal_lines(spec.journal_path)) {
      JournalEntry entry;
      if (!parse_journal_line(line, &entry)) {
        throw JournalCorruptError("corrupt checkpoint journal line in '" +
                                  spec.journal_path + "'");
      }
      const std::size_t idx = entry.rec.index;
      if (idx >= points.size() || entry.seed != points[idx].seed ||
          entry.rec.workload != spec.workload ||
          (entry.point_digest != 0 &&
           entry.point_digest != points[idx].digest)) {
        throw JournalConflictError(
            "checkpoint journal '" + spec.journal_path +
            "' does not match this sweep (point " + std::to_string(idx) +
            "); refusing to mix campaigns");
      }
      const bool fresh = done[idx] == 0 && idx >= begin && idx < end;
      if (fresh) {
        ++resumed;
        note_point(c, idx, entry.rec, CampaignEvent::Source::kResume);
      }
      result.records[idx] = std::move(entry.rec);
      done[idx] = 1;
    }
  }

  JournalWriter journal;
  if (!spec.journal_path.empty()) {
    journal.open(spec.journal_path, /*keep_existing=*/spec.resume);
  }

  // Leader-quarantined points: record the verdict without executing, and
  // journal it so a resume or a shard merge sees the same story.
  for (const std::size_t idx : spec.quarantine_indices) {
    if (idx < begin || idx >= end || done[idx] != 0) continue;
    RunRecord rec;
    rec.index = idx;
    rec.workload = spec.workload;
    rec.knobs = points[idx].knobs;
    rec.status = PointStatus::kQuarantined;
    rec.failure = PointFailure{
        FailureKind::kWorkerCrash,
        "quarantined by the sweep leader after repeated worker crashes on "
        "this point",
        0};
    if (journal.is_open()) {
      journal.append(journal_line(rec, points[idx].seed, points[idx].digest));
    }
    note_point(c, idx, rec, CampaignEvent::Source::kRun);
    result.records[idx] = std::move(rec);
    done[idx] = 1;
  }

  // Cache splice: ask the PointCache for every still-pending point before
  // committing a thread to it. A hit lands exactly like a resumed record
  // (journaled, counted, byte-identical when rendered) — it just came from
  // another campaign's execution. Observers are NOT fired: they announce
  // executed points only.
  std::size_t cache_hits = 0;
  if (cache != nullptr) {
    for (std::size_t i = begin; i < end; ++i) {
      if (done[i] != 0) continue;
      RunRecord rec;
      if (!cache->lookup(points[i].digest, points[i].seed, &rec)) continue;
      rec.index = i;  // same content can sit at another grid's index
      if (journal.is_open()) {
        journal.append(journal_line(rec, points[i].seed, points[i].digest));
      }
      ++cache_hits;
      note_point(c, i, rec, CampaignEvent::Source::kCache);
      result.records[i] = std::move(rec);
      done[i] = 1;
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = begin; i < end; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }

  const PointGuard guard(spec.guard);
  SweepEngine engine(spec.threads);
  engine.map(pending, [&](const std::size_t i) {
    // Shutdown check: once the campaign token fires (handle.cancel(), the
    // spec's parent token, or both), unstarted points stay unstarted (and
    // unrecorded) — completion is tracked via done[] so the run is
    // reported cancelled, not silently short.
    if (c->token.cancelled()) return 0;
    if (spec.observer != nullptr) spec.observer->on_point_start(i);
    RunRecord rec = guard.run(
        spec.workload, points[i],
        [&](const RunPoint& pt) { return Runner::run_point(spec.workload, pt); },
        &c->token);
    if (cache != nullptr && rec.status == PointStatus::kOk) {
      // Only clean results are worth caching: a transient failure
      // (timeout, internal error) must never be served to a later
      // submission as if it were the point's answer.
      cache->store(points[i].digest, points[i].seed, rec);
    }
    // c->mu serializes journal appends, record stores, observer calls and
    // event publication, so subscribers see completions in append order.
    std::lock_guard<std::mutex> lock(c->mu);
    if (journal.is_open()) {
      journal.append(journal_line(rec, points[i].seed, points[i].digest));
    }
    const PointStatus status = rec.status;
    CampaignEvent ev;
    ev.index = i;
    ev.status = status;
    ev.source = CampaignEvent::Source::kRun;
    ev.record = rec;
    c->events.push_back(std::move(ev));
    ++c->progress.completed;
    ++c->progress.executed;
    result.records[i] = std::move(rec);
    done[i] = 1;
    if (spec.observer != nullptr) spec.observer->on_point_done(i, status);
    c->cv.notify_all();
    return 0;
  });

  if (c->token.cancelled()) {
    std::size_t remaining = 0;
    for (const std::size_t i : pending) {
      if (done[i] == 0) ++remaining;
    }
    if (remaining > 0) {
      throw CancelledError("sweep cancelled with " +
                           std::to_string(remaining) +
                           " point(s) unfinished; journal tail is durable");
    }
  }

  result.campaign = summarize_campaign(result.records, begin, end);
  result.campaign.resumed = resumed;
  result.campaign.cache_hits = cache_hits;

  std::lock_guard<std::mutex> lock(c->mu);
  c->result = std::move(result);
  c->state = CampaignState::kDone;
  c->cv.notify_all();
}

}  // namespace psync::driver
