// ExperimentSpec: the one description every experiment in the repository
// runs from — a workload kind (dispatched through the driver's Workload
// registry), the machine/mesh parameter blocks, and zero or more sweep
// axes that the SweepEngine expands into a grid of independent run points.
//
// This is the system's front door: tools/psync_sim parses an INI file into
// a spec, the bench binaries build specs programmatically, and both hand
// them to Runner::run. Before the driver existed each of those call sites
// grew its own serial loop; now an N-point sweep is one spec with
// `threads = M`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "psync/common/cancel.hpp"
#include "psync/common/config.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"

namespace psync::driver {

/// Per-point progress callback (defined in workload.hpp, next to
/// PointStatus). The distributed execution layer implements it to stream
/// heartbeats to the leader; nullptr observers cost nothing.
class PointObserver;

/// One sweep knob and the values it takes. Multiple axes form a cartesian
/// grid (first axis slowest, row-major).
struct SweepAxis {
  std::string knob;
  std::vector<double> values;
};

/// Per-point isolation policy (see driver/campaign.hpp): when `isolate` is
/// on, each point runs under a PointGuard that converts exceptions into a
/// structured PointFailure, arms a watchdog deadline per attempt, retries
/// transient failures with backoff, and quarantines points that exhaust
/// their retries — one bad point no longer aborts the campaign.
struct GuardParams {
  /// Convert per-point exceptions into failure records instead of
  /// propagating them out of Runner::run.
  bool isolate = true;
  /// Re-runs allowed for transient failures (timeout, internal_error);
  /// deterministic failures (config_invalid, sim_diverged,
  /// oom_estimate_exceeded) never retry.
  std::size_t max_retries = 1;
  /// Watchdog deadline per attempt, ms of host wall clock (0 = none).
  /// Checked cooperatively at machine cycle-batch boundaries.
  double point_timeout_ms = 0.0;
  /// Host sleep before retry attempt n is n * retry_backoff_ms.
  double retry_backoff_ms = 5.0;
  /// Refuse points whose estimated working set exceeds this many MiB
  /// before running them (0 = no limit) -> oom_estimate_exceeded.
  std::size_t max_point_mb = 0;
};

struct ExperimentSpec {
  /// Workload registry key: fft2d | fft1d | transpose | pipeline | mesh |
  /// reliability | fig11 | fig13 (see workload.hpp).
  std::string workload = "fft2d";

  /// Canonical JSON over every result-determining field of the spec — the
  /// workload, the full machine/mesh parameter blocks (all nested device,
  /// fault and reliability parameters), verify/with_mesh/transpose_elements,
  /// the input seed, the sweep axes, and the run-report schema version.
  /// Execution-policy fields (threads, guard, journal/resume, shard window,
  /// cancel/observer) are deliberately excluded: they change *how* a sweep
  /// runs, never its rendered bytes — that invariant is what makes the
  /// digest a sound result-cache key. Key order is fixed and doubles are
  /// %.17g, so equal specs always produce equal bytes.
  std::string canonical_json() const;

  core::PsyncMachineParams machine;
  core::MeshMachineParams mesh;
  /// Run the electronic-mesh comparison alongside the P-sync machine
  /// (fft2d workload only).
  bool with_mesh = false;
  /// Verify transforms against the monolithic reference (slower).
  bool verify = true;
  /// Elements per node for the transpose workload.
  std::uint32_t transpose_elements = 256;

  /// Base seed for the per-point input generators. Every run point derives
  /// its own RNG stream from (input_seed, point index), so results do not
  /// depend on which thread executes which point.
  std::uint64_t input_seed = 2026;

  /// Sweep axes; empty = a single run point.
  std::vector<SweepAxis> axes;
  /// SweepEngine pool size (1 = serial; results are identical either way).
  std::size_t threads = 1;

  /// Per-point isolation / watchdog / retry policy.
  GuardParams guard;
  /// Checkpoint journal path (empty = no journal): every finished point is
  /// appended as one fsync'd JSONL line as it completes.
  std::string journal_path;
  /// Resume: skip points already recorded in `journal_path` and splice
  /// their journaled results back into grid order, so a killed sweep plus
  /// resume renders byte-identical output to an uninterrupted run.
  bool resume = false;

  // --- Sharded / distributed execution (src/psync/dist) -----------------
  // Seeds and knobs always come from the *global* grid index, so a shard
  // worker produces exactly the records a full run would — sharding is a
  // coordination concern, never a determinism one.

  /// Execute only grid indices in [shard_begin, min(shard_end, grid size)).
  /// Defaults cover the whole grid. Resume tolerates journal entries
  /// outside the window (they are validated and spliced, not errors), so a
  /// replacement worker can take over a dead worker's journal even after
  /// its range was re-partitioned.
  std::size_t shard_begin = 0;
  std::size_t shard_end = static_cast<std::size_t>(-1);

  /// Grid indices the leader has quarantined (K consecutive worker crashes
  /// on the same point). Runner records them as kQuarantined/worker_crash
  /// without executing them, and journals that verdict so a later resume
  /// or merge sees it.
  std::vector<std::size_t> quarantine_indices;

  /// Process-wide cooperative shutdown token (non-owning; may be set from
  /// a SIGTERM/SIGINT handler). Once cancelled: no new point starts, the
  /// in-flight points finish or abandon at their next cycle-batch
  /// boundary, the journal tail is already durable, and Runner::run throws
  /// CancelledError instead of returning a partial result.
  const CancelToken* cancel = nullptr;

  /// Per-point progress hook (non-owning): on_point_start before a point
  /// executes, on_point_done after its record is journaled/stored.
  PointObserver* observer = nullptr;
};

/// One expanded point of the sweep grid: knob values already applied to
/// copies of the parameter blocks, plus the point's deterministic seed.
struct RunPoint {
  std::size_t index = 0;
  std::vector<std::pair<std::string, double>> knobs;

  core::PsyncMachineParams machine;
  core::MeshMachineParams mesh;
  bool with_mesh = false;
  bool verify = true;
  std::uint32_t transpose_elements = 256;
  std::uint64_t seed = 0;

  /// Content digest of this point: a stable 64-bit hash of the point's
  /// canonical JSON (workload, applied knob values, the expanded parameter
  /// blocks, seed, schema version). Two points with equal digests compute
  /// the same record byte for byte, regardless of which grid, process or
  /// host they came from — the result cache's per-point key. Filled in by
  /// SweepEngine::expand.
  std::uint64_t digest = 0;

  /// Cooperative watchdog token the PointGuard arms per attempt; workloads
  /// thread it into the machines they construct (set_cancel). nullptr when
  /// no deadline is armed.
  const CancelToken* cancel = nullptr;
};

/// Stable 64-bit FNV-1a digest of spec.canonical_json(): the result-cache
/// key for a whole campaign. Identical across processes, hosts and runs.
std::uint64_t spec_digest(const ExperimentSpec& spec);

/// Canonical JSON for one expanded run point (same field rules as
/// ExperimentSpec::canonical_json, but over the point's post-knob parameter
/// blocks and its own derived seed).
std::string point_canonical_json(const std::string& workload,
                                 const RunPoint& pt);

/// Stable 64-bit FNV-1a digest of point_canonical_json(): the result
/// cache's per-point key (RunPoint::digest).
std::uint64_t point_digest(const std::string& workload, const RunPoint& pt);

/// FNV-1a over raw bytes — the one hash both digests reduce through.
std::uint64_t fnv1a64(const std::string& bytes);

/// Apply one sweep knob to the parameter blocks. Returns false for an
/// unknown knob name. Knobs: processors, blocks, rows, cols,
/// waveguide_gbps, bus_length_cm, margin_db (rebuilds machine.fault from
/// optical margin, preserving configured dead lanes, seed and the
/// time-varying profile), drift_ber_per_mword, brownout_ber, grid, t_p,
/// elements_per_packet, virtual_channels, k, cores (the last two are
/// aliases used by the fig11/fig13 analysis workloads: k = blocks).
bool apply_knob(const std::string& knob, double value,
                core::PsyncMachineParams* machine,
                core::MeshMachineParams* mesh);

/// Every knob name apply_knob accepts.
std::vector<std::string> known_knobs();

/// Build a spec from a psync_sim INI config (see tools/psync_sim.cpp for
/// the format). Legacy kinds map onto the registry: `kind = sweep` becomes
/// the fft2d workload with a [experiment] vary/values axis, and
/// `kind = reliability_sweep` becomes the reliability workload with a
/// margin_db axis from margins_db. A [sweep] section declares multi-knob
/// grids: every `knob = v0 v1 ...` line is one axis.
ExperimentSpec spec_from_config(const IniConfig& cfg);

/// The full section/key schema psync_sim configs are validated against
/// (strict-mode diagnostics).
ConfigSchema sim_config_schema();

}  // namespace psync::driver
