#include "psync/driver/experiment.hpp"

#include <cmath>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync::driver {

namespace {

// Count-valued knobs arrive as doubles from the sweep parser. Casting a
// negative value straight to an unsigned type is undefined behavior (and in
// practice wraps to a huge count), and a fractional value would silently
// truncate — the sweep would then report an axis value that was never
// actually simulated. Reject both up front, naming the knob.
template <typename UInt>
UInt count_knob(const std::string& knob, double value) {
  const double rounded = std::floor(value);
  if (!(value >= 0.0) || rounded != value) {
    throw ConfigError("knob '" + knob + "' must be a non-negative integer; " +
                      "got " + std::to_string(value));
  }
  return static_cast<UInt>(value);
}

}  // namespace

bool apply_knob(const std::string& knob, double value,
                core::PsyncMachineParams* machine,
                core::MeshMachineParams* mesh) {
  if (knob == "processors") {
    machine->processors = count_knob<std::size_t>(knob, value);
  } else if (knob == "blocks" || knob == "k") {
    machine->delivery_blocks = count_knob<std::size_t>(knob, value);
  } else if (knob == "rows") {
    machine->matrix_rows = count_knob<std::size_t>(knob, value);
    mesh->matrix_rows = machine->matrix_rows;
  } else if (knob == "cols") {
    machine->matrix_cols = count_knob<std::size_t>(knob, value);
    mesh->matrix_cols = machine->matrix_cols;
  } else if (knob == "waveguide_gbps") {
    machine->waveguide_gbps = value;
  } else if (knob == "bus_length_cm") {
    machine->bus_length_cm = value;
  } else if (knob == "margin_db") {
    // Rebuild the fault model from optical margin; keep the configured
    // dead lanes, injection seed and time-varying profile so only the
    // base BER moves with the axis.
    core::FaultModel fault =
        core::FaultModel::from_margin_db(value, machine->fault.seed);
    fault.dead_wavelengths = machine->fault.dead_wavelengths;
    fault.drift_ber_per_mword = machine->fault.drift_ber_per_mword;
    fault.brownout_start_word = machine->fault.brownout_start_word;
    fault.brownout_words = machine->fault.brownout_words;
    fault.brownout_ber = machine->fault.brownout_ber;
    machine->fault = fault;
  } else if (knob == "drift_ber_per_mword") {
    machine->fault.drift_ber_per_mword = value;
  } else if (knob == "brownout_ber") {
    machine->fault.brownout_ber = value;
  } else if (knob == "grid") {
    mesh->grid = count_knob<std::size_t>(knob, value);
  } else if (knob == "t_p") {
    mesh->mi.reorder_cycles_per_element = count_knob<std::uint32_t>(knob, value);
  } else if (knob == "elements_per_packet") {
    mesh->elements_per_packet = count_knob<std::uint32_t>(knob, value);
  } else if (knob == "virtual_channels") {
    mesh->net.virtual_channels = count_knob<std::uint32_t>(knob, value);
  } else if (knob == "cores") {
    // Consumed by the fig13 workload straight from the knob list; nothing
    // to write into the machine blocks.
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> known_knobs() {
  return {"processors",     "blocks",        "k",
          "rows",           "cols",          "waveguide_gbps",
          "bus_length_cm",  "margin_db",     "drift_ber_per_mword",
          "brownout_ber",   "grid",
          "t_p",            "elements_per_packet", "virtual_channels",
          "cores"};
}

namespace {

std::vector<double> parse_values(const std::string& list) {
  std::vector<double> out;
  std::istringstream in(list);
  double v = 0.0;
  while (in >> v) out.push_back(v);
  return out;
}

core::PsyncMachineParams machine_from_config(const IniConfig& cfg) {
  core::PsyncMachineParams p;
  p.processors =
      static_cast<std::size_t>(cfg.get_int("machine", "processors", 16));
  p.matrix_rows = static_cast<std::size_t>(cfg.get_int("machine", "rows", 64));
  p.matrix_cols = static_cast<std::size_t>(cfg.get_int("machine", "cols", 64));
  p.delivery_blocks =
      static_cast<std::size_t>(cfg.get_int("machine", "blocks", 1));
  p.waveguide_gbps = cfg.get_double("machine", "waveguide_gbps", 320.0);
  p.bus_length_cm = cfg.get_double("machine", "bus_length_cm", 8.0);
  p.head.dram.row_switch_cycles = static_cast<std::uint64_t>(
      cfg.get_int("machine", "dram_row_switch_cycles", 0));

  if (cfg.has_section("fault")) {
    if (cfg.has("fault", "margin_db")) {
      p.fault = core::FaultModel::from_margin_db(
          cfg.get_double("fault", "margin_db", 0.0));
    }
    p.fault.random_ber = cfg.get_double("fault", "random_ber", p.fault.random_ber);
    p.fault.seed = static_cast<std::uint64_t>(cfg.get_int("fault", "seed", 1));
    std::istringstream lanes(cfg.get_string("fault", "dead_wavelengths", ""));
    std::uint32_t lane = 0;
    while (lanes >> lane) p.fault.dead_wavelengths.push_back(lane);
    p.fault.drift_ber_per_mword =
        cfg.get_double("fault", "drift_ber_per_mword", 0.0);
    p.fault.brownout_start_word = static_cast<std::uint64_t>(
        cfg.get_int("fault", "brownout_start_word", 0));
    p.fault.brownout_words =
        static_cast<std::uint64_t>(cfg.get_int("fault", "brownout_words", 0));
    p.fault.brownout_ber = cfg.get_double("fault", "brownout_ber", 0.0);
  }
  if (cfg.has_section("reliability")) {
    auto& r = p.reliability;
    r.policy = reliability::policy_from_string(
        cfg.get_string("reliability", "policy", "off"));
    r.block_words =
        static_cast<std::size_t>(cfg.get_int("reliability", "block_words", 64));
    r.max_retries =
        static_cast<std::size_t>(cfg.get_int("reliability", "max_retries", 4));
    r.retry_backoff_slots = static_cast<std::size_t>(
        cfg.get_int("reliability", "backoff_slots", 8));
    r.spare_lanes =
        static_cast<std::size_t>(cfg.get_int("reliability", "spare_lanes", 4));
    r.training_words = static_cast<std::size_t>(
        cfg.get_int("reliability", "training_words", 16));
  }
  return p;
}

core::MeshMachineParams mesh_from_config(const IniConfig& cfg,
                                         const core::PsyncMachineParams& mp) {
  core::MeshMachineParams m;
  m.grid = static_cast<std::size_t>(cfg.get_int("mesh", "grid", 4));
  m.matrix_rows = mp.matrix_rows;
  m.matrix_cols = mp.matrix_cols;
  m.elements_per_packet =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "elements_per_packet", 32));
  m.mi.reorder_cycles_per_element =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "t_p", 1));
  m.mi.overlap_stages = cfg.get_bool("mesh", "overlap_stages", false);
  m.net.buffer_depth =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "buffer_depth", 2));
  m.net.virtual_channels =
      static_cast<std::uint32_t>(cfg.get_int("mesh", "virtual_channels", 1));
  m.mi.dram.row_switch_cycles = static_cast<std::uint64_t>(
      cfg.get_int("mesh", "dram_row_switch_cycles", 0));
  return m;
}

}  // namespace

ExperimentSpec spec_from_config(const IniConfig& cfg) {
  ExperimentSpec spec;
  spec.machine = machine_from_config(cfg);
  spec.mesh = mesh_from_config(cfg, spec.machine);
  spec.with_mesh = cfg.has_section("mesh");
  spec.verify = cfg.get_bool("experiment", "verify", true);
  spec.transpose_elements =
      static_cast<std::uint32_t>(cfg.get_int("experiment", "elements", 256));
  spec.input_seed =
      static_cast<std::uint64_t>(cfg.get_int("experiment", "input_seed", 2026));
  spec.threads =
      static_cast<std::size_t>(cfg.get_int("experiment", "threads", 1));
  if (spec.threads == 0) spec.threads = 1;
  spec.journal_path = cfg.get_string("experiment", "journal", "");

  if (cfg.has_section("guard")) {
    auto& g = spec.guard;
    g.isolate = cfg.get_bool("guard", "isolate", g.isolate);
    g.max_retries =
        static_cast<std::size_t>(cfg.get_int("guard", "max_retries", 1));
    g.point_timeout_ms = cfg.get_double("guard", "point_timeout_ms", 0.0);
    g.retry_backoff_ms = cfg.get_double("guard", "retry_backoff_ms", 5.0);
    g.max_point_mb =
        static_cast<std::size_t>(cfg.get_int("guard", "max_point_mb", 0));
  }

  const std::string kind = cfg.get_string("experiment", "kind", "fft2d");
  if (kind == "sweep") {
    // Legacy single-knob sweep of the 2D FFT machine.
    spec.workload = cfg.get_string("experiment", "workload", "fft2d");
    spec.verify = cfg.get_bool("experiment", "verify", false);
    const std::string vary =
        cfg.get_string("experiment", "vary", "processors");
    const auto values =
        parse_values(cfg.get_string("experiment", "values", ""));
    if (!values.empty()) spec.axes.push_back({vary, values});
  } else if (kind == "reliability_sweep") {
    spec.workload = "reliability";
    const auto margins =
        parse_values(cfg.get_string("experiment", "margins_db", ""));
    if (margins.empty()) {
      throw SimulationError("reliability_sweep: missing 'margins_db' list");
    }
    spec.axes.push_back({"margin_db", margins});
  } else {
    spec.workload = kind;
  }

  // Multi-knob grid: every key in [sweep] is an axis, in file order.
  if (cfg.has_section("sweep")) {
    for (const auto& knob : cfg.keys("sweep")) {
      const auto values = parse_values(cfg.get_string("sweep", knob, ""));
      if (values.empty()) {
        throw SimulationError("sweep axis '" + knob + "' has no values");
      }
      spec.axes.push_back({knob, values});
    }
  }
  return spec;
}

ConfigSchema sim_config_schema() {
  using Type = ConfigSchema::Type;
  ConfigSchema s;
  s.key("experiment", "kind", Type::kString)
      .key("experiment", "workload", Type::kString)
      .key("experiment", "json", Type::kBool)
      .key("experiment", "csv", Type::kBool)
      .key("experiment", "verify", Type::kBool)
      .key("experiment", "strict", Type::kBool)
      .key("experiment", "elements", Type::kInt)
      .key("experiment", "input_seed", Type::kInt)
      .key("experiment", "threads", Type::kInt)
      .key("experiment", "vary", Type::kString)
      .key("experiment", "values", Type::kDoubleList)
      .key("experiment", "margins_db", Type::kDoubleList)
      .key("experiment", "journal", Type::kString);
  s.key("guard", "isolate", Type::kBool)
      .key("guard", "max_retries", Type::kInt)
      .key("guard", "point_timeout_ms", Type::kDouble)
      .key("guard", "retry_backoff_ms", Type::kDouble)
      .key("guard", "max_point_mb", Type::kInt);
  s.key("machine", "processors", Type::kInt)
      .key("machine", "rows", Type::kInt)
      .key("machine", "cols", Type::kInt)
      .key("machine", "blocks", Type::kInt)
      .key("machine", "waveguide_gbps", Type::kDouble)
      .key("machine", "bus_length_cm", Type::kDouble)
      .key("machine", "dram_row_switch_cycles", Type::kInt);
  s.key("mesh", "grid", Type::kInt)
      .key("mesh", "t_p", Type::kInt)
      .key("mesh", "elements_per_packet", Type::kInt)
      .key("mesh", "overlap_stages", Type::kBool)
      .key("mesh", "buffer_depth", Type::kInt)
      .key("mesh", "virtual_channels", Type::kInt)
      .key("mesh", "dram_row_switch_cycles", Type::kInt);
  s.key("fault", "margin_db", Type::kDouble)
      .key("fault", "random_ber", Type::kDouble)
      .key("fault", "seed", Type::kInt)
      .key("fault", "dead_wavelengths", Type::kIntList)
      .key("fault", "drift_ber_per_mword", Type::kDouble)
      .key("fault", "brownout_start_word", Type::kInt)
      .key("fault", "brownout_words", Type::kInt)
      .key("fault", "brownout_ber", Type::kDouble);
  s.key("reliability", "policy", Type::kString)
      .key("reliability", "block_words", Type::kInt)
      .key("reliability", "max_retries", Type::kInt)
      .key("reliability", "backoff_slots", Type::kInt)
      .key("reliability", "spare_lanes", Type::kInt)
      .key("reliability", "training_words", Type::kInt);
  for (const auto& knob : known_knobs()) {
    s.key("sweep", knob, Type::kDoubleList);
  }
  return s;
}

}  // namespace psync::driver
