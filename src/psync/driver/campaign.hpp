// The campaign layer: what turns a sweep into a crash-safe experiment
// campaign. Three pieces, all beneath Runner::run:
//
//   * PointGuard — per-point isolation. Runs one grid point, converts
//     whatever it throws into a structured PointFailure (the FailureKind
//     taxonomy in workload.hpp), arms a cooperative watchdog deadline per
//     attempt (CancelToken polled at machine cycle-batch boundaries),
//     retries transient failures with linear backoff, and quarantines
//     points that exhaust their budget. One bad point no longer takes the
//     campaign down.
//
//   * Checkpoint journal codec — one JSONL line per completed point
//     (grid index, point seed, scalar metrics, raw machine-report JSON,
//     status/failure), written through common/journal.hpp's fsync-per-line
//     writer. Doubles are stored as %.17g so a parse + re-render at the
//     serializers' precision(12) reproduces the original bytes exactly:
//     kill -9 mid-sweep + --resume yields byte-identical JSON/CSV to an
//     uninterrupted run.
//
//   * CampaignReport — the failed/quarantined/retried accounting the
//     serializers surface (schema_version 3) and psync_sim's --strict
//     promotes to a nonzero exit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "psync/driver/experiment.hpp"
#include "psync/driver/workload.hpp"

namespace psync::driver {

/// File an exception under the failure taxonomy: CancelledError ->
/// timeout, ConfigError -> config_invalid, ResourceLimitError ->
/// oom_estimate_exceeded, DivergenceError (incl. cycle caps and lane
/// exhaustion) -> sim_diverged, everything else -> internal_error.
FailureKind classify_failure(const std::exception& e);

/// Only transient kinds are worth re-running: a timeout may have been host
/// scheduling noise and an internal error may be a latent race;
/// config/divergence/oom failures are deterministic in the point itself.
bool failure_is_retryable(FailureKind kind);

/// Rough peak-working-set estimate for a run point, bytes (input matrix +
/// per-processor buffers + verification reference). Used by the guard's
/// max_point_mb admission gate, which refuses obviously oversized points
/// before they run the host out of memory.
std::size_t estimate_point_bytes(const std::string& workload,
                                 const RunPoint& pt);

/// Per-point isolation wrapper (policy in GuardParams, experiment.hpp).
class PointGuard {
 public:
  explicit PointGuard(GuardParams params) : params_(params) {}

  using PointFn = std::function<RunRecord(const RunPoint&)>;

  /// Run `fn(point)` under the configured policy. With isolation off this
  /// is a plain call (exceptions propagate). With isolation on the result
  /// always comes back as a RunRecord: status kOk (with `retries` spent),
  /// kFailed (non-retryable failure), or kQuarantined (transient failure
  /// that exhausted max_retries); failed records carry the point's index
  /// and knobs plus a PointFailure, and no metrics.
  ///
  /// `external` (optional, non-owning) is a process-wide shutdown token:
  /// once it reads cancelled, the guard stops retrying and *rethrows*
  /// CancelledError instead of classifying it as a kTimeout point failure
  /// — an abandoned point must never be journaled as failed, or a resumed
  /// sweep would splice a spurious failure where the reference run has a
  /// result. The per-attempt watchdog token is parented to `external` so
  /// machines abandon at their next cycle-batch boundary.
  RunRecord run(const std::string& workload, const RunPoint& point,
                const PointFn& fn,
                const CancelToken* external = nullptr) const;

  const GuardParams& params() const { return params_; }

 private:
  GuardParams params_;
};

/// Campaign-level accounting over a finished record set.
struct CampaignReport {
  std::size_t points = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t quarantined = 0;
  /// Points reconstituted from the checkpoint journal instead of re-run.
  /// Deliberately NOT serialized: resumed output must stay byte-identical
  /// to an uninterrupted run.
  std::size_t resumed = 0;
  /// Points served by a Session's PointCache instead of re-run. NOT
  /// serialized, for the same reason as `resumed`: a cache-served
  /// resubmission must render byte-identical to the original run.
  std::size_t cache_hits = 0;
  std::uint64_t retries = 0;        // total retry attempts consumed
  std::vector<std::size_t> quarantine;  // quarantined grid indices

  /// Distributed-execution accounting (dist/supervisor.hpp), filled only
  /// by the leader. Like `resumed`, deliberately NOT serialized: a merged
  /// distributed sweep must render byte-identical to a single-process run
  /// even when workers died and were restarted along the way.
  std::uint64_t worker_restarts = 0;  // dead/wedged workers relaunched
  std::uint64_t worker_steals = 0;    // ranges re-partitioned off workers
  /// Socket transport only: successful worker re-handshakes after a
  /// dropped connection, and zombie reconnects refused by epoch fencing.
  std::uint64_t worker_reconnects = 0;
  std::uint64_t worker_fenced = 0;
  /// One entry per supervised worker incident, in the point-failure
  /// taxonomy: kTimeout = heartbeat liveness expired (wedged, SIGKILLed),
  /// kInternalError = crashed/abnormal exit, kWorkerCrash = a point was
  /// quarantined after K consecutive crashes, kConnectionLost = a socket
  /// worker vanished (no reconnect within liveness; epoch fenced).
  std::vector<PointFailure> worker_failures;

  bool all_ok() const { return failed == 0 && quarantined == 0; }
};

/// Tally a record set (resumed is left at 0; Runner fills it in). The
/// optional [begin, end) window restricts the tally to a shard's slice of
/// the grid — records outside it (e.g. splice-tolerated entries from a
/// re-partitioned journal) are not this worker's to report.
CampaignReport summarize_campaign(const std::vector<RunRecord>& records,
                                  std::size_t begin = 0,
                                  std::size_t end = static_cast<std::size_t>(-1));

/// One parsed checkpoint-journal record.
struct JournalEntry {
  std::uint64_t seed = 0;  // the point's deterministic seed (resume check)
  /// Content digest of the point (point_digest(), experiment.hpp); 0 when
  /// the line predates digests. Nonzero digests let the serve layer's
  /// result cache index journal records by content, and let resume detect
  /// a journal whose parameter blocks no longer match the spec even when
  /// index/seed/workload still line up.
  std::uint64_t point_digest = 0;
  RunRecord rec;  // metrics + status + raw report fragments
};

/// Render one completed point as a single JSONL journal line (no trailing
/// newline; JournalWriter::append adds it). Doubles as %.17g, machine
/// reports embedded as raw core::run_report_json fragments. A nonzero
/// `point_digest` is recorded as a "pd" field; 0 omits it, so records
/// written before digests existed re-render byte-identically.
std::string journal_line(const RunRecord& rec, std::uint64_t seed,
                         std::uint64_t point_digest = 0);

/// Parse one journal line. Returns false (out untouched beyond partial
/// writes) on any malformed, truncated, or unknown-format input — every
/// strict prefix of a valid line fails, which is what makes torn tails
/// safe to drop.
bool parse_journal_line(const std::string& line, JournalEntry* out);

/// Minimal JSON string escaping (backslash, quote, control chars).
std::string json_escape(const std::string& s);

}  // namespace psync::driver
