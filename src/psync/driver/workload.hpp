// The Workload registry: every experiment kind the repository knows how to
// run, behind one interface. A Workload turns a RunPoint (parameter blocks
// + deterministic seed) into a RunRecord (ordered scalar metrics for sweep
// tables/CSV, plus the full machine report when one ran). Workloads must be
// const and thread-safe: the SweepEngine calls run() concurrently from the
// pool, so all mutable state lives in locals or in the machines a run
// constructs for itself.
//
// Built-ins: fft2d, fft1d, transpose, pipeline, mesh, reliability (machine
// workloads), and fig11 / fig13 (closed-form/LLMORE analysis points the
// bench sweeps dispatch through the same driver).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/driver/experiment.hpp"

namespace psync::driver {

/// One scalar result column. `decimals` controls table rendering: >= 0 is
/// fixed precision, -1 renders scientific (%.1e) for error/BER magnitudes.
struct Metric {
  std::string name;
  double value = 0.0;
  int decimals = 2;
};

/// Failure taxonomy for isolated run points. The PointGuard
/// (driver/campaign.hpp) classifies whatever a point throws into one of
/// these buckets; only kTimeout and kInternalError are considered transient
/// and eligible for retry.
enum class FailureKind {
  kConfigInvalid,        // ConfigError: the parameter block is nonsense
  kSimDiverged,          // DivergenceError: cycle cap, lane exhaustion, ...
  kTimeout,              // CancelledError: watchdog deadline exceeded
  kOomEstimateExceeded,  // working-set estimate over guard.max_point_mb
  kInternalError,        // anything else (bug, bad_alloc, unknown throw)
  kWorkerCrash,          // a dist worker process died on/near this point
  kConnectionLost,       // a remote worker's link dropped and never came
                         // back within the liveness window (partition or
                         // remote host death — the process may live on;
                         // epoch fencing keeps its late writes out)
};

enum class PointStatus {
  kOk,
  kFailed,       // non-retryable failure, isolated
  kQuarantined,  // retryable failure that exhausted its retries
};

const char* to_string(FailureKind kind);
const char* to_string(PointStatus status);
/// Parse the to_string forms back; throws SimulationError on unknown text.
FailureKind failure_kind_from_string(const std::string& s);
PointStatus point_status_from_string(const std::string& s);

/// Per-point progress callback (declared in experiment.hpp so
/// ExperimentSpec can hold one). Called from SweepEngine pool threads under
/// the Runner's journal lock, so implementations see starts and
/// completions in a consistent order but must stay cheap and re-entrant.
class PointObserver {
 public:
  virtual ~PointObserver() = default;
  /// The point at `index` is about to execute (after resume/quarantine
  /// filtering — only points that actually run are announced).
  virtual void on_point_start(std::size_t index) = 0;
  /// The point's record has been journaled (when a journal is configured)
  /// and stored.
  virtual void on_point_done(std::size_t index, PointStatus status) = 0;
};

/// What an isolated point died of (attached to its RunRecord).
struct PointFailure {
  FailureKind kind = FailureKind::kInternalError;
  std::string message;
  std::size_t attempts = 1;  // tries spent, including the first
};

/// Result of one run point, in sweep-grid order when part of a sweep.
struct RunRecord {
  std::size_t index = 0;
  std::string workload;
  std::vector<std::pair<std::string, double>> knobs;
  std::vector<Metric> metrics;

  /// Host wall time Runner::run_point spent on this point. Deliberately
  /// excluded from every serializer (tables, JSON, CSV): reports stay
  /// byte-identical run to run; `psync_sim --profile` is what surfaces it.
  double wall_ns = 0.0;

  /// Full reports when a machine actually ran (absent for analysis
  /// workloads); serialized via the unified core/trace schema.
  std::optional<core::PsyncRunReport> psync;
  std::optional<core::MeshRunReport> mesh;
  std::optional<core::PsyncMachine::PipelineReport> pipeline;
  std::optional<core::TransposeRunReport> transpose;

  /// Campaign layer (driver/campaign.hpp): how the point ended, what it
  /// died of when isolated, and how many retries it consumed.
  PointStatus status = PointStatus::kOk;
  std::optional<PointFailure> failure;
  std::size_t retries = 0;

  /// Pre-rendered machine-report JSON fragments for points reconstituted
  /// from a checkpoint journal (the typed reports above stay empty then);
  /// the serializer splices these back verbatim so a resumed sweep renders
  /// byte-identical output.
  std::string psync_json;
  std::string mesh_json;
};

/// Value of a named metric; throws SimulationError if absent.
double metric(const RunRecord& rec, const std::string& name);

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  virtual RunRecord run(const RunPoint& pt) const = 0;
};

/// Register (or replace) a workload under its name(). Thread-safe.
void register_workload(std::unique_ptr<Workload> w);

/// Look up a workload; throws SimulationError naming the known kinds when
/// `name` is not registered. Built-ins are registered on first use.
const Workload& find_workload(const std::string& name);

/// All registered workload names, sorted.
std::vector<std::string> workload_names();

/// Deterministic input matrix shared by the machine workloads: `n` complex
/// samples in [-1,1)^2 from the point's seed.
std::vector<std::complex<double>> random_input(std::size_t n,
                                               std::uint64_t seed);

}  // namespace psync::driver
