// Canonical-form serialization of experiment specs and run points, plus the
// stable FNV-1a digests over it — the content-addressed keys of the result
// cache (driver/session.hpp, serve/cache.hpp).
//
// Two rules make the digests sound:
//   1. Every field that can change a rendered result byte is serialized —
//      including every nested device, fault and reliability parameter —
//      with a fixed key order and %.17g doubles, so equal configurations
//      always hash equal and unequal ones (beyond hash collisions) never do.
//   2. Execution-policy fields (threads, guard, journal/resume, shard
//      window, cancel, observer) are excluded on the strength of the
//      repository's byte-identity invariants: serial == parallel ==
//      resumed == distributed, enforced by test_perf_equivalence,
//      test_campaign and test_dist. Anyone adding a result-bearing field
//      to a parameter block must extend this file (test_serve pins the
//      digest sensitivity).
#include <cstdio>
#include <sstream>

#include "psync/driver/experiment.hpp"
#include "psync/core/trace.hpp"

namespace psync::driver {

namespace {

// %.17g round-trips an IEEE-754 double bit-exactly, and formats a given bit
// pattern identically everywhere — the same argument campaign.cpp's journal
// codec relies on.
void put(std::ostringstream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void put_dram(std::ostringstream& os, const dram::DramParams& d) {
  os << "{\"row_size_bits\":" << d.row_size_bits
     << ",\"bus_width_bits\":" << d.bus_width_bits
     << ",\"header_bits\":" << d.header_bits
     << ",\"row_switch_cycles\":" << d.row_switch_cycles
     << ",\"banks\":" << d.banks << '}';
}

void put_exec(std::ostringstream& os, const core::ExecCostParams& e) {
  os << "{\"fp_mult_ns\":";
  put(os, e.fp_mult_ns);
  os << ",\"mults_per_butterfly\":" << e.mults_per_butterfly
     << ",\"fp_add_ns\":";
  put(os, e.fp_add_ns);
  os << ",\"fp_mult_pj\":";
  put(os, e.fp_mult_pj);
  os << ",\"fp_add_pj\":";
  put(os, e.fp_add_pj);
  os << '}';
}

void put_photonics(std::ostringstream& os,
                   const photonic::PhotonicEnergyParams& p) {
  os << "{\"laser\":{\"launch_power_dbm\":";
  put(os, p.laser.launch_power_dbm.value());
  os << ",\"wall_plug_efficiency\":";
  put(os, p.laser.wall_plug_efficiency);
  os << ",\"coupler_loss_db\":";
  put(os, p.laser.coupler_loss_db.value());
  os << "},\"ring\":{\"through_loss_off_db\":";
  put(os, p.ring.through_loss_off_db.value());
  os << ",\"insertion_loss_on_db\":";
  put(os, p.ring.insertion_loss_on_db.value());
  os << ",\"extinction_ratio_db\":";
  put(os, p.ring.extinction_ratio_db.value());
  os << ",\"modulation_energy_fj_per_bit\":";
  put(os, p.ring.modulation_energy_fj_per_bit.value());
  os << ",\"thermal_tuning_uw\":";
  put(os, p.ring.thermal_tuning_uw.value());
  os << ",\"max_rate_gbps\":";
  put(os, p.ring.max_rate_gbps.value());
  os << "},\"detector\":{\"sensitivity_dbm\":";
  put(os, p.detector.sensitivity_dbm.value());
  os << ",\"receive_energy_fj_per_bit\":";
  put(os, p.detector.receive_energy_fj_per_bit.value());
  os << ",\"tap_loss_db\":";
  put(os, p.detector.tap_loss_db.value());
  os << "},\"waveguide\":{\"group_velocity_cm_per_ns\":";
  put(os, p.waveguide.group_velocity_cm_per_ns);
  os << ",\"loss_straight_db_per_cm\":";
  put(os, p.waveguide.loss_straight_db_per_cm);
  os << ",\"loss_curved_db_per_cm\":";
  put(os, p.waveguide.loss_curved_db_per_cm);
  os << ",\"loss_per_bend_db\":";
  put(os, p.waveguide.loss_per_bend_db);
  os << "},\"wdm\":{\"wavelength_count\":" << p.wdm.wavelength_count
     << ",\"rate_gbps_per_wavelength\":";
  put(os, p.wdm.rate_gbps_per_wavelength.value());
  os << "},\"serdes_energy_fj_per_bit\":";
  put(os, p.serdes_energy_fj_per_bit.value());
  os << ",\"max_launch_dbm\":";
  put(os, p.max_launch_dbm.value());
  os << '}';
}

void put_fault(std::ostringstream& os, const core::FaultModel& f) {
  os << "{\"dead_wavelengths\":[";
  for (std::size_t i = 0; i < f.dead_wavelengths.size(); ++i) {
    if (i > 0) os << ',';
    os << f.dead_wavelengths[i];
  }
  os << "],\"random_ber\":";
  put(os, f.random_ber);
  os << ",\"seed\":" << f.seed << ",\"drift_ber_per_mword\":";
  put(os, f.drift_ber_per_mword);
  os << ",\"brownout_start_word\":" << f.brownout_start_word
     << ",\"brownout_words\":" << f.brownout_words << ",\"brownout_ber\":";
  put(os, f.brownout_ber);
  os << '}';
}

void put_reliability(std::ostringstream& os,
                     const reliability::ReliabilityParams& r) {
  os << "{\"policy\":" << static_cast<int>(r.policy)
     << ",\"block_words\":" << r.block_words
     << ",\"max_retries\":" << r.max_retries
     << ",\"retry_backoff_slots\":" << r.retry_backoff_slots
     << ",\"spare_lanes\":" << r.spare_lanes
     << ",\"training_words\":" << r.training_words << '}';
}

void put_machine(std::ostringstream& os, const core::PsyncMachineParams& m) {
  os << "{\"processors\":" << m.processors << ",\"rows\":" << m.matrix_rows
     << ",\"cols\":" << m.matrix_cols << ",\"sample_bits\":" << m.sample_bits
     << ",\"waveguide_gbps\":";
  put(os, m.waveguide_gbps);
  os << ",\"blocks\":" << m.delivery_blocks << ",\"bus_length_cm\":";
  put(os, m.bus_length_cm);
  os << ",\"exec\":";
  put_exec(os, m.exec);
  os << ",\"head\":{\"bus_ghz\":";
  put(os, m.head.bus_ghz);
  os << ",\"waveguide_gbps\":";
  put(os, m.head.waveguide_gbps);
  os << ",\"dram\":";
  put_dram(os, m.head.dram);
  os << "},\"photonics\":";
  put_photonics(os, m.photonics);
  os << ",\"fault\":";
  put_fault(os, m.fault);
  os << ",\"reliability\":";
  put_reliability(os, m.reliability);
  os << '}';
}

void put_mesh(std::ostringstream& os, const core::MeshMachineParams& m) {
  os << "{\"grid\":" << m.grid << ",\"rows\":" << m.matrix_rows
     << ",\"cols\":" << m.matrix_cols << ",\"sample_bits\":" << m.sample_bits
     << ",\"elements_per_packet\":" << m.elements_per_packet
     << ",\"clock_ghz\":";
  put(os, m.clock_ghz);
  os << ",\"memory_node\":" << m.memory_node
     << ",\"net\":{\"width\":" << m.net.width << ",\"height\":" << m.net.height
     << ",\"buffer_depth\":" << m.net.buffer_depth
     << ",\"route_delay\":" << m.net.route_delay
     << ",\"algo\":" << static_cast<int>(m.net.algo)
     << ",\"virtual_channels\":" << m.net.virtual_channels
     << "},\"mi\":{\"reorder_cycles_per_element\":"
     << m.mi.reorder_cycles_per_element
     << ",\"element_bits\":" << m.mi.element_bits
     << ",\"overlap_stages\":" << (m.mi.overlap_stages ? "true" : "false")
     << ",\"dram\":";
  put_dram(os, m.mi.dram);
  os << "},\"exec\":";
  put_exec(os, m.exec);
  os << ",\"orion\":{\"die_mm\":";
  put(os, m.orion.die_mm);
  os << ",\"flit_bits\":";
  put(os, m.orion.flit_bits);
  os << ",\"router_stages\":";
  put(os, m.orion.router_stages);
  os << ",\"buffer_write_pj_per_bit\":";
  put(os, m.orion.buffer_write_pj_per_bit);
  os << ",\"buffer_read_pj_per_bit\":";
  put(os, m.orion.buffer_read_pj_per_bit);
  os << ",\"crossbar_pj_per_bit\":";
  put(os, m.orion.crossbar_pj_per_bit);
  os << ",\"arbiter_pj_per_flit\":";
  put(os, m.orion.arbiter_pj_per_flit);
  os << ",\"link_pj_per_bit_per_mm\":";
  put(os, m.orion.link_pj_per_bit_per_mm);
  os << ",\"pipeline_pj_per_bit_per_stage\":";
  put(os, m.orion.pipeline_pj_per_bit_per_stage);
  os << ",\"repeater_segment_mm\":";
  put(os, m.orion.repeater_segment_mm);
  os << "}}";
}

// The shared core of both canonical forms: workload + parameter blocks +
// the per-run flags, under one seed. Specs append their axes; points append
// their applied knob values.
void put_common(std::ostringstream& os, const std::string& workload,
                std::uint64_t seed, bool with_mesh, bool verify,
                std::uint32_t transpose_elements,
                const core::PsyncMachineParams& machine,
                const core::MeshMachineParams& mesh) {
  os << "{\"schema\":" << core::kRunReportSchemaVersion << ",\"workload\":\""
     << workload << "\",\"seed\":" << seed << ",\"with_mesh\":"
     << (with_mesh ? "true" : "false") << ",\"verify\":"
     << (verify ? "true" : "false")
     << ",\"transpose_elements\":" << transpose_elements << ",\"machine\":";
  put_machine(os, machine);
  os << ",\"mesh\":";
  put_mesh(os, mesh);
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ExperimentSpec::canonical_json() const {
  std::ostringstream os;
  put_common(os, workload, input_seed, with_mesh, verify, transpose_elements,
             machine, mesh);
  os << ",\"axes\":[";
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a > 0) os << ',';
    os << "[\"" << axes[a].knob << "\",[";
    for (std::size_t v = 0; v < axes[a].values.size(); ++v) {
      if (v > 0) os << ',';
      put(os, axes[a].values[v]);
    }
    os << "]]";
  }
  os << "]}";
  return os.str();
}

std::uint64_t spec_digest(const ExperimentSpec& spec) {
  return fnv1a64(spec.canonical_json());
}

std::string point_canonical_json(const std::string& workload,
                                 const RunPoint& pt) {
  std::ostringstream os;
  put_common(os, workload, pt.seed, pt.with_mesh, pt.verify,
             pt.transpose_elements, pt.machine, pt.mesh);
  os << ",\"knobs\":[";
  for (std::size_t k = 0; k < pt.knobs.size(); ++k) {
    if (k > 0) os << ',';
    os << "[\"" << pt.knobs[k].first << "\",";
    put(os, pt.knobs[k].second);
    os << ']';
  }
  os << "]}";
  return os.str();
}

std::uint64_t point_digest(const std::string& workload, const RunPoint& pt) {
  return fnv1a64(point_canonical_json(workload, pt));
}

}  // namespace psync::driver
