// SweepEngine: expands an ExperimentSpec's axes into the cartesian grid of
// run points and executes a point function over them on a fixed-size
// std::thread pool.
//
// Determinism contract: expansion is row-major (first axis slowest) and
// collection is order-preserving (results land at their point's grid
// index), and every point's RNG seed is derived from (spec.input_seed,
// index) alone — so an N-point sweep produces byte-identical tables and
// JSON whether it ran on 1 thread or 16, and regardless of which worker
// claimed which point.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "psync/driver/experiment.hpp"

namespace psync::driver {

class SweepEngine {
 public:
  /// `threads` caps the pool; the engine never spawns more workers than
  /// there are points, and `threads <= 1` runs inline on the caller.
  explicit SweepEngine(std::size_t threads = 1) : threads_(threads) {}

  std::size_t threads() const { return threads_; }

  /// Deterministic per-point seed: a splitmix64 mix of the base seed and
  /// the point's grid index (never dependent on thread assignment).
  static std::uint64_t point_seed(std::uint64_t base, std::size_t index);

  /// Row-major cartesian expansion of the spec's axes into run points with
  /// knobs applied and seeds assigned. A spec with no axes yields one
  /// point. Throws SimulationError on an unknown knob name.
  static std::vector<RunPoint> expand(const ExperimentSpec& spec);

  /// Apply `fn` to every element of `items` on the pool; the result vector
  /// is in input order. `fn` must be thread-safe. If any invocation
  /// throws, the first exception (by item index) is rethrown after all
  /// workers drain.
  template <typename T, typename Fn>
  auto map(const std::vector<T>& items, Fn&& fn) const
      -> std::vector<decltype(fn(items.front()))> {
    using R = decltype(fn(items.front()));
    std::vector<R> results(items.size());
    std::vector<std::exception_ptr> errors(items.size());
    run_indexed(items.size(), [&](std::size_t i) {
      try {
        results[i] = fn(items[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

 private:
  /// Run body(0..n-1) across the pool; blocks until every index is done.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& body) const;

  std::size_t threads_;
};

}  // namespace psync::driver
