#include "psync/driver/workload.hpp"

#include <map>
#include <mutex>
#include <sstream>

#include "psync/analysis/fft_model.hpp"
#include "psync/analysis/mesh_model.hpp"
#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/llmore/llmore.hpp"

namespace psync::driver {

std::vector<std::complex<double>> random_input(std::size_t n,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> v(n);
  for (auto& x : v) {
    x = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return v;
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kConfigInvalid: return "config_invalid";
    case FailureKind::kSimDiverged: return "sim_diverged";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kOomEstimateExceeded: return "oom_estimate_exceeded";
    case FailureKind::kInternalError: return "internal_error";
    case FailureKind::kWorkerCrash: return "worker_crash";
    case FailureKind::kConnectionLost: return "connection_lost";
  }
  return "?";
}

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

FailureKind failure_kind_from_string(const std::string& s) {
  if (s == "config_invalid") return FailureKind::kConfigInvalid;
  if (s == "sim_diverged") return FailureKind::kSimDiverged;
  if (s == "timeout") return FailureKind::kTimeout;
  if (s == "oom_estimate_exceeded") return FailureKind::kOomEstimateExceeded;
  if (s == "internal_error") return FailureKind::kInternalError;
  if (s == "worker_crash") return FailureKind::kWorkerCrash;
  if (s == "connection_lost") return FailureKind::kConnectionLost;
  throw SimulationError("unknown failure kind: " + s);
}

PointStatus point_status_from_string(const std::string& s) {
  if (s == "ok") return PointStatus::kOk;
  if (s == "failed") return PointStatus::kFailed;
  if (s == "quarantined") return PointStatus::kQuarantined;
  throw SimulationError("unknown point status: " + s);
}

double metric(const RunRecord& rec, const std::string& name) {
  for (const auto& m : rec.metrics) {
    if (m.name == name) return m.value;
  }
  throw SimulationError("RunRecord: no metric '" + name + "' in workload " +
                        rec.workload);
}

namespace {

double knob_value(const RunPoint& pt, const std::string& name,
                  double fallback) {
  for (const auto& [knob, value] : pt.knobs) {
    if (knob == name) return value;
  }
  return fallback;
}

void add_psync_metrics(RunRecord* rec, const core::PsyncRunReport& rep,
                       bool verify) {
  rec->metrics.push_back({"total_us", rep.total_ns * 1e-3, 2});
  rec->metrics.push_back({"efficiency_pct", rep.compute_efficiency * 100.0, 1});
  rec->metrics.push_back({"gflops", rep.gflops, 2});
  rec->metrics.push_back({"energy_nj", rep.total_energy_pj() * 1e-3, 1});
  const auto pipe = core::PsyncMachine::pipeline_estimate(rep);
  rec->metrics.push_back({"frames_per_sec", pipe.frames_per_sec, 0});
  if (verify) {
    rec->metrics.push_back({"max_err", rep.max_error_vs_reference, -1});
  }
}

class Fft2dWorkload final : public Workload {
 public:
  std::string name() const override { return "fft2d"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input = random_input(
        pt.machine.matrix_rows * pt.machine.matrix_cols, pt.seed);
    core::PsyncMachine m(pt.machine);
    m.set_cancel(pt.cancel);
    rec.psync = m.run_fft2d(input, pt.verify);
    add_psync_metrics(&rec, *rec.psync, pt.verify);
    if (pt.with_mesh) {
      core::MeshMachine mm(pt.mesh);
      mm.set_cancel(pt.cancel);
      rec.mesh = mm.run_fft2d(input, pt.verify);
      rec.metrics.push_back({"mesh_total_us", rec.mesh->total_ns * 1e-3, 2});
      rec.metrics.push_back({"mesh_gflops", rec.mesh->gflops, 2});
      rec.metrics.push_back(
          {"mesh_energy_nj", rec.mesh->total_energy_pj() * 1e-3, 1});
      rec.metrics.push_back(
          {"speedup", rec.mesh->total_ns / rec.psync->total_ns, 2});
      rec.metrics.push_back({"energy_advantage",
                             rec.mesh->total_energy_pj() /
                                 rec.psync->total_energy_pj(),
                             2});
    }
    return rec;
  }
};

class Fft1dWorkload final : public Workload {
 public:
  std::string name() const override { return "fft1d"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input = random_input(
        pt.machine.matrix_rows * pt.machine.matrix_cols, pt.seed);
    core::PsyncMachine m(pt.machine);
    m.set_cancel(pt.cancel);
    rec.psync = m.run_fft1d(input, pt.verify);
    add_psync_metrics(&rec, *rec.psync, pt.verify);
    return rec;
  }
};

class TransposeWorkload final : public Workload {
 public:
  std::string name() const override { return "transpose"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    core::MeshMachine m(pt.mesh);
    m.set_cancel(pt.cancel);
    rec.transpose = m.run_transpose_writeback(pt.transpose_elements);
    rec.metrics.push_back(
        {"cycles", static_cast<double>(rec.transpose->completion_cycle), 0});
    rec.metrics.push_back(
        {"cycles_per_element", rec.transpose->cycles_per_element, 2});
    rec.metrics.push_back(
        {"elements", static_cast<double>(rec.transpose->elements), 0});
    return rec;
  }
};

class PipelineWorkload final : public Workload {
 public:
  std::string name() const override { return "pipeline"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input = random_input(
        pt.machine.matrix_rows * pt.machine.matrix_cols, pt.seed);
    core::PsyncMachine m(pt.machine);
    m.set_cancel(pt.cancel);
    rec.psync = m.run_fft2d(input, false);
    rec.pipeline = core::PsyncMachine::pipeline_estimate(*rec.psync);
    rec.metrics.push_back({"latency_us", rec.pipeline->latency_ns * 1e-3, 2});
    rec.metrics.push_back({"interval_us", rec.pipeline->interval_ns * 1e-3, 2});
    rec.metrics.push_back({"frames_per_sec", rec.pipeline->frames_per_sec, 0});
    rec.metrics.push_back(
        {"bus_bound", rec.pipeline->bus_bound ? 1.0 : 0.0, 0});
    return rec;
  }
};

class MeshWorkload final : public Workload {
 public:
  std::string name() const override { return "mesh"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input =
        random_input(pt.mesh.matrix_rows * pt.mesh.matrix_cols, pt.seed);
    core::MeshMachine m(pt.mesh);
    m.set_cancel(pt.cancel);
    rec.mesh = m.run_fft2d(input, pt.verify);
    rec.metrics.push_back({"total_us", rec.mesh->total_ns * 1e-3, 2});
    rec.metrics.push_back({"gflops", rec.mesh->gflops, 2});
    rec.metrics.push_back(
        {"energy_nj", rec.mesh->total_energy_pj() * 1e-3, 1});
    if (pt.verify) {
      rec.metrics.push_back({"max_err", rec.mesh->max_error_vs_reference, -1});
    }
    return rec;
  }
};

// Reliability cliff point: the configured policy under injected faults,
// costed against a clean fault-free baseline of the same machine. Each
// point carries its own baseline so points stay independent (the sweep can
// run them on any thread in any order).
class ReliabilityWorkload final : public Workload {
 public:
  std::string name() const override { return "reliability"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input = random_input(
        pt.machine.matrix_rows * pt.machine.matrix_cols, pt.seed);

    auto clean = pt.machine;
    clean.fault = core::FaultModel{};
    clean.reliability.policy = reliability::ReliabilityPolicy::kOff;
    core::PsyncMachine refm(clean);
    refm.set_cancel(pt.cancel);
    const auto ref = refm.run_fft2d(input, false);

    core::PsyncMachine m(pt.machine);
    m.set_cancel(pt.cancel);
    rec.psync = m.run_fft2d(input);
    const auto& rep = *rec.psync;
    rec.metrics.push_back({"ber", pt.machine.fault.random_ber, -1});
    rec.metrics.push_back(
        {"retried", static_cast<double>(rep.retry.blocks_retried), 0});
    rec.metrics.push_back(
        {"residual", static_cast<double>(rep.retry.residual_errors), 0});
    rec.metrics.push_back({"max_err", rep.max_error_vs_reference, -1});
    rec.metrics.push_back(
        {"overhead_us", rep.reliability_overhead_ns * 1e-3, 2});
    rec.metrics.push_back(
        {"overhead_nj",
         (rep.total_energy_pj() - ref.total_energy_pj()) * 1e-3, 2});
    rec.metrics.push_back({"total_us", rep.total_ns * 1e-3, 2});
    rec.metrics.push_back({"baseline_us", ref.total_ns * 1e-3, 2});
    return rec;
  }
};

// Degradation sweep point (satellite of the crash-safe-campaign PR): the
// configured policy under a *time-varying* fault profile — a thermal-drift
// BER ramp and/or a brownout window (FaultModel's profile fields) — costed
// against a clean fault-free baseline of the same machine. The natural
// sweep axis is drift_ber_per_mword or brownout_ber; a steep enough ramp
// drives the channel past its retry budget, which is exactly the regime
// the campaign layer's isolation exists for.
class DegradationSweepWorkload final : public Workload {
 public:
  std::string name() const override { return "degradation_sweep"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto input = random_input(
        pt.machine.matrix_rows * pt.machine.matrix_cols, pt.seed);

    auto clean = pt.machine;
    clean.fault = core::FaultModel{};
    clean.reliability.policy = reliability::ReliabilityPolicy::kOff;
    core::PsyncMachine refm(clean);
    refm.set_cancel(pt.cancel);
    const auto ref = refm.run_fft2d(input, false);

    core::PsyncMachine m(pt.machine);
    m.set_cancel(pt.cancel);
    rec.psync = m.run_fft2d(input);
    const auto& rep = *rec.psync;
    rec.metrics.push_back(
        {"drift_per_mword", pt.machine.fault.drift_ber_per_mword, -1});
    rec.metrics.push_back(
        {"corrupted", static_cast<double>(rep.fault.words_corrupted), 0});
    rec.metrics.push_back(
        {"retried", static_cast<double>(rep.retry.blocks_retried), 0});
    rec.metrics.push_back(
        {"residual", static_cast<double>(rep.retry.residual_errors), 0});
    rec.metrics.push_back({"max_err", rep.max_error_vs_reference, -1});
    rec.metrics.push_back(
        {"overhead_us", rep.reliability_overhead_ns * 1e-3, 2});
    rec.metrics.push_back({"total_us", rep.total_ns * 1e-3, 2});
    rec.metrics.push_back({"baseline_us", ref.total_ns * 1e-3, 2});
    return rec;
  }
};

// Fig. 11 point: compute efficiency vs delivery blocks k for the
// zero-latency bound (Table I) and the latency-burdened mesh (Table II) —
// identical values to analysis::fig11, dispatched per point so the bench
// sweep rides the same driver as every other experiment.
class Fig11Workload final : public Workload {
 public:
  std::string name() const override { return "fig11"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto k =
        static_cast<std::uint64_t>(knob_value(pt, "k", 1.0));
    const analysis::FftWorkload w;
    const analysis::MeshDeliveryParams mesh;
    rec.metrics.push_back(
        {"psync_eta", analysis::table1_row(w, k).efficiency, 4});
    rec.metrics.push_back(
        {"mesh_eta", analysis::table2_row(w, k, mesh).compute_efficiency, 4});
    return rec;
  }
};

// Fig. 13/14 point: LLMORE-style phase simulation at `cores`.
class Fig13Workload final : public Workload {
 public:
  std::string name() const override { return "fig13"; }
  RunRecord run(const RunPoint& pt) const override {
    RunRecord rec;
    const auto cores =
        static_cast<std::uint64_t>(knob_value(pt, "cores", 4.0));
    const llmore::LlmoreParams p;
    const auto point = llmore::simulate_point(p, cores);
    rec.metrics.push_back({"gflops_mesh", point.gflops_mesh, 2});
    rec.metrics.push_back({"gflops_psync", point.gflops_psync, 2});
    rec.metrics.push_back({"gflops_ideal", point.gflops_ideal, 2});
    rec.metrics.push_back({"reorg_frac_mesh", point.reorg_frac_mesh, 4});
    rec.metrics.push_back({"reorg_frac_psync", point.reorg_frac_psync, 4});
    return rec;
  }
};

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Workload>> workloads;
};

Registry& registry() {
  // Leaked: sweep threads may touch the registry during static teardown.
  static Registry* r = [] {
    auto* reg = new Registry();
    reg->workloads["fft2d"] = std::make_unique<Fft2dWorkload>();
    reg->workloads["fft1d"] = std::make_unique<Fft1dWorkload>();
    reg->workloads["transpose"] = std::make_unique<TransposeWorkload>();
    reg->workloads["pipeline"] = std::make_unique<PipelineWorkload>();
    reg->workloads["mesh"] = std::make_unique<MeshWorkload>();
    reg->workloads["reliability"] = std::make_unique<ReliabilityWorkload>();
    reg->workloads["degradation_sweep"] =
        std::make_unique<DegradationSweepWorkload>();
    reg->workloads["fig11"] = std::make_unique<Fig11Workload>();
    reg->workloads["fig13"] = std::make_unique<Fig13Workload>();
    return reg;
  }();
  return *r;
}

}  // namespace

void register_workload(std::unique_ptr<Workload> w) {
  PSYNC_CHECK(w != nullptr);
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.workloads[w->name()] = std::move(w);
}

const Workload& find_workload(const std::string& name) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.workloads.find(name);
  if (it == r.workloads.end()) {
    std::ostringstream os;
    os << "unknown workload '" << name << "'; known kinds:";
    for (const auto& [known, w] : r.workloads) os << ' ' << known;
    throw SimulationError(os.str());
  }
  return *it->second;
}

std::vector<std::string> workload_names() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  for (const auto& [name, w] : r.workloads) names.push_back(name);
  return names;
}

}  // namespace psync::driver
