#include "psync/driver/runner.hpp"

#include <cstdio>
#include <sstream>

#include "psync/common/check.hpp"
#include "psync/common/table.hpp"
#include "psync/core/trace.hpp"
#include "psync/perf/stopwatch.hpp"

namespace psync::driver {

RunRecord Runner::run_point(const std::string& workload, const RunPoint& pt) {
  const Workload& w = find_workload(workload);
  perf::Stopwatch watch;
  RunRecord rec = w.run(pt);
  rec.wall_ns = watch.elapsed_ns();
  rec.index = pt.index;
  rec.workload = workload;
  rec.knobs = pt.knobs;
  return rec;
}

SweepResult Runner::run(const ExperimentSpec& spec) {
  SweepResult result;
  result.spec = spec;
  // Resolve the workload up front so an unknown kind fails before any
  // threads spawn (and with a message naming the known kinds).
  (void)find_workload(spec.workload);
  const auto points = SweepEngine::expand(spec);
  SweepEngine engine(spec.threads);
  result.records = engine.map(
      points, [&](const RunPoint& pt) { return run_point(spec.workload, pt); });
  return result;
}

namespace {

std::string format_knob(double v) {
  // Whole-valued knobs (processor counts, k, cores) print bare; fractional
  // ones (margins, rates) keep two decimals.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return format_double(v, 2);
}

std::string format_metric(const Metric& m) {
  if (m.decimals < 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e", m.value);
    return buf;
  }
  return format_double(m.value, m.decimals);
}

}  // namespace

std::string sweep_table(const SweepResult& result, const std::string& title) {
  PSYNC_CHECK(!result.records.empty());
  const auto& first = result.records.front();
  std::vector<std::string> header;
  for (const auto& [knob, value] : first.knobs) header.push_back(knob);
  for (const auto& m : first.metrics) header.push_back(m.name);
  if (header.empty()) header.push_back("workload");

  Table t(header);
  if (!title.empty()) t.set_title(title);
  for (const auto& rec : result.records) {
    auto& row = t.row();
    for (const auto& [knob, value] : rec.knobs) row.add(format_knob(value));
    for (const auto& m : rec.metrics) row.add(format_metric(m));
    if (rec.knobs.empty() && rec.metrics.empty()) row.add(rec.workload);
  }
  return t.to_string();
}

std::string sweep_json(const SweepResult& result) {
  std::ostringstream os;
  os.precision(12);
  os << "{\"schema_version\":" << core::kRunReportSchemaVersion
     << ",\"workload\":\"" << result.spec.workload << "\",\"points\":[";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& rec = result.records[i];
    if (i > 0) os << ',';
    os << "{\"index\":" << rec.index << ",\"knobs\":{";
    for (std::size_t k = 0; k < rec.knobs.size(); ++k) {
      if (k > 0) os << ',';
      os << '"' << rec.knobs[k].first << "\":" << rec.knobs[k].second;
    }
    os << "},\"metrics\":{";
    for (std::size_t m = 0; m < rec.metrics.size(); ++m) {
      if (m > 0) os << ',';
      os << '"' << rec.metrics[m].name << "\":" << rec.metrics[m].value;
    }
    os << '}';
    if (rec.psync) os << ",\"report\":" << core::run_report_json(*rec.psync);
    if (rec.mesh) {
      os << ",\"mesh_report\":" << core::run_report_json(*rec.mesh);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string sweep_csv(const SweepResult& result) {
  PSYNC_CHECK(!result.records.empty());
  std::ostringstream os;
  os.precision(12);
  const auto& first = result.records.front();
  bool col0 = true;
  for (const auto& [knob, value] : first.knobs) {
    if (!col0) os << ',';
    os << knob;
    col0 = false;
  }
  for (const auto& m : first.metrics) {
    if (!col0) os << ',';
    os << m.name;
    col0 = false;
  }
  os << '\n';
  for (const auto& rec : result.records) {
    col0 = true;
    for (const auto& [knob, value] : rec.knobs) {
      if (!col0) os << ',';
      os << value;
      col0 = false;
    }
    for (const auto& m : rec.metrics) {
      if (!col0) os << ',';
      os << m.value;
      col0 = false;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace psync::driver
