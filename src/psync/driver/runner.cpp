#include "psync/driver/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/common/table.hpp"
#include "psync/core/trace.hpp"
#include "psync/perf/stopwatch.hpp"

namespace psync::driver {

RunRecord Runner::run_point(const std::string& workload, const RunPoint& pt) {
  const Workload& w = find_workload(workload);
  perf::Stopwatch watch;
  RunRecord rec = w.run(pt);
  rec.wall_ns = watch.elapsed_ns();
  rec.index = pt.index;
  rec.workload = workload;
  rec.knobs = pt.knobs;
  return rec;
}

SweepResult Runner::run(const ExperimentSpec& spec) {
  SweepResult result;
  result.spec = spec;
  // Resolve the workload up front so an unknown kind fails before any
  // threads spawn (and with a message naming the known kinds).
  (void)find_workload(spec.workload);
  const auto points = SweepEngine::expand(spec);
  result.records.resize(points.size());

  // Shard window: only [begin, end) of the grid is this run's to execute.
  // Seeds/knobs are derived from global indices during expansion, so the
  // window changes *which* points run, never what any point computes.
  const std::size_t begin = std::min(spec.shard_begin, points.size());
  const std::size_t end = std::min(spec.shard_end, points.size());
  if (begin > end) {
    throw ConfigError("shard window [" + std::to_string(spec.shard_begin) +
                      ", " + std::to_string(spec.shard_end) + ") is inverted");
  }

  // Resume: reconstitute journaled points into their grid slots. Every
  // entry must match this sweep (grid bounds, point seed, workload) or the
  // journal belongs to a different campaign — fail loudly rather than mix
  // results. Entries *outside* the shard window are still validated and
  // spliced (a replacement worker may inherit a journal whose range was
  // since re-partitioned), they just don't count toward this run's
  // campaign. read_journal_lines already dropped a torn final line
  // (kill -9 mid-append); a malformed line elsewhere means the file is not
  // ours.
  std::vector<char> done(points.size(), 0);
  std::size_t resumed = 0;
  if (spec.resume) {
    if (spec.journal_path.empty()) {
      throw SimulationError("resume requested without a journal path");
    }
    for (const auto& line : read_journal_lines(spec.journal_path)) {
      JournalEntry entry;
      if (!parse_journal_line(line, &entry)) {
        throw JournalCorruptError("corrupt checkpoint journal line in '" +
                                  spec.journal_path + "'");
      }
      const std::size_t idx = entry.rec.index;
      if (idx >= points.size() || entry.seed != points[idx].seed ||
          entry.rec.workload != spec.workload) {
        throw JournalConflictError(
            "checkpoint journal '" + spec.journal_path +
            "' does not match this sweep (point " + std::to_string(idx) +
            "); refusing to mix campaigns");
      }
      if (done[idx] == 0 && idx >= begin && idx < end) ++resumed;
      result.records[idx] = std::move(entry.rec);
      done[idx] = 1;
    }
  }

  JournalWriter journal;
  if (!spec.journal_path.empty()) {
    journal.open(spec.journal_path, /*keep_existing=*/spec.resume);
  }

  // Leader-quarantined points: record the verdict without executing, and
  // journal it so a resume or a shard merge sees the same story.
  for (const std::size_t idx : spec.quarantine_indices) {
    if (idx < begin || idx >= end || done[idx] != 0) continue;
    RunRecord rec;
    rec.index = idx;
    rec.workload = spec.workload;
    rec.knobs = points[idx].knobs;
    rec.status = PointStatus::kQuarantined;
    rec.failure = PointFailure{
        FailureKind::kWorkerCrash,
        "quarantined by the sweep leader after repeated worker crashes on "
        "this point",
        0};
    if (journal.is_open()) journal.append(journal_line(rec, points[idx].seed));
    result.records[idx] = std::move(rec);
    done[idx] = 1;
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = begin; i < end; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }

  const PointGuard guard(spec.guard);
  std::mutex mu;  // serializes journal appends and record stores
  SweepEngine engine(spec.threads);
  engine.map(pending, [&](const std::size_t i) {
    // Shutdown check: once the process-wide token fires, unstarted points
    // stay unstarted (and unrecorded) — completion is tracked via done[]
    // so the run is reported cancelled, not silently short.
    if (spec.cancel != nullptr && spec.cancel->cancelled()) return 0;
    if (spec.observer != nullptr) spec.observer->on_point_start(i);
    RunRecord rec = guard.run(
        spec.workload, points[i],
        [&](const RunPoint& pt) { return run_point(spec.workload, pt); },
        spec.cancel);
    std::lock_guard<std::mutex> lock(mu);
    if (journal.is_open()) journal.append(journal_line(rec, points[i].seed));
    const PointStatus status = rec.status;
    result.records[i] = std::move(rec);
    done[i] = 1;
    if (spec.observer != nullptr) spec.observer->on_point_done(i, status);
    return 0;
  });

  if (spec.cancel != nullptr && spec.cancel->cancelled()) {
    std::size_t remaining = 0;
    for (const std::size_t i : pending) {
      if (done[i] == 0) ++remaining;
    }
    if (remaining > 0) {
      throw CancelledError("sweep cancelled with " +
                           std::to_string(remaining) +
                           " point(s) unfinished; journal tail is durable");
    }
  }

  result.campaign = summarize_campaign(result.records, begin, end);
  result.campaign.resumed = resumed;
  return result;
}

namespace {

std::string format_knob(double v) {
  // Whole-valued knobs (processor counts, k, cores) print bare; fractional
  // ones (margins, rates) keep two decimals.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return format_double(v, 2);
}

std::string format_metric(const Metric& m) {
  if (m.decimals < 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e", m.value);
    return buf;
  }
  return format_double(m.value, m.decimals);
}

// "ok" | "failed:<kind>" | "quarantined:<kind>" for status cells.
std::string format_status(const RunRecord& rec) {
  std::string s = to_string(rec.status);
  if (rec.failure) {
    s += ':';
    s += to_string(rec.failure->kind);
  }
  return s;
}

// Header/metric-layout donor: the first OK record (failed points carry no
// metrics). Falls back to the first record when every point failed.
const RunRecord& header_record(const SweepResult& result) {
  for (const auto& rec : result.records) {
    if (rec.status == PointStatus::kOk) return rec;
  }
  return result.records.front();
}

bool any_not_ok(const SweepResult& result) {
  for (const auto& rec : result.records) {
    if (rec.status != PointStatus::kOk) return true;
  }
  return false;
}

}  // namespace

std::string sweep_table(const SweepResult& result, const std::string& title) {
  PSYNC_CHECK(!result.records.empty());
  // Layout comes from the first OK record; the status column only appears
  // when some point failed, so all-ok sweeps render exactly as before.
  const auto& first = header_record(result);
  const bool with_status = any_not_ok(result);
  std::vector<std::string> header;
  for (const auto& [knob, value] : first.knobs) header.push_back(knob);
  for (const auto& m : first.metrics) header.push_back(m.name);
  if (with_status) header.push_back("status");
  if (header.empty()) header.push_back("workload");

  Table t(header);
  if (!title.empty()) t.set_title(title);
  for (const auto& rec : result.records) {
    auto& row = t.row();
    for (const auto& [knob, value] : rec.knobs) row.add(format_knob(value));
    if (rec.status == PointStatus::kOk) {
      for (const auto& m : rec.metrics) row.add(format_metric(m));
    } else {
      for (std::size_t m = 0; m < first.metrics.size(); ++m) row.add("-");
    }
    if (with_status) row.add(format_status(rec));
    if (rec.knobs.empty() && rec.metrics.empty() && !with_status) {
      row.add(rec.workload);
    }
  }
  return t.to_string();
}

std::string sweep_json(const SweepResult& result) {
  std::ostringstream os;
  os.precision(12);
  os << "{\"schema_version\":" << core::kRunReportSchemaVersion
     << ",\"workload\":\"" << result.spec.workload << "\",\"campaign\":{"
     << "\"points\":" << result.campaign.points
     << ",\"ok\":" << result.campaign.ok
     << ",\"failed\":" << result.campaign.failed
     << ",\"quarantined\":" << result.campaign.quarantined
     << ",\"retried\":" << result.campaign.retries << "},\"points\":[";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& rec = result.records[i];
    if (i > 0) os << ',';
    os << "{\"index\":" << rec.index << ",\"status\":\""
       << to_string(rec.status) << "\",\"knobs\":{";
    for (std::size_t k = 0; k < rec.knobs.size(); ++k) {
      if (k > 0) os << ',';
      os << '"' << rec.knobs[k].first << "\":" << rec.knobs[k].second;
    }
    os << "},\"metrics\":{";
    for (std::size_t m = 0; m < rec.metrics.size(); ++m) {
      if (m > 0) os << ',';
      os << '"' << rec.metrics[m].name << "\":" << rec.metrics[m].value;
    }
    os << '}';
    if (rec.failure) {
      os << ",\"failure\":{\"kind\":\"" << to_string(rec.failure->kind)
         << "\",\"message\":\"" << json_escape(rec.failure->message)
         << "\",\"attempts\":" << rec.failure->attempts << '}';
    }
    // Reports: live typed reports when the point ran in this process, raw
    // journal fragments (stored verbatim) when it was resumed — the bytes
    // are identical either way.
    if (rec.psync) {
      os << ",\"report\":" << core::run_report_json(*rec.psync);
    } else if (!rec.psync_json.empty()) {
      os << ",\"report\":" << rec.psync_json;
    }
    if (rec.mesh) {
      os << ",\"mesh_report\":" << core::run_report_json(*rec.mesh);
    } else if (!rec.mesh_json.empty()) {
      os << ",\"mesh_report\":" << rec.mesh_json;
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string sweep_csv(const SweepResult& result) {
  PSYNC_CHECK(!result.records.empty());
  std::ostringstream os;
  os.precision(12);
  // Same layout rule as the table: columns from the first OK record, and a
  // status column only when some point failed (all-ok output is unchanged).
  const auto& first = header_record(result);
  const bool with_status = any_not_ok(result);
  bool col0 = true;
  for (const auto& [knob, value] : first.knobs) {
    if (!col0) os << ',';
    os << knob;
    col0 = false;
  }
  for (const auto& m : first.metrics) {
    if (!col0) os << ',';
    os << m.name;
    col0 = false;
  }
  if (with_status) {
    if (!col0) os << ',';
    os << "status";
    col0 = false;
  }
  os << '\n';
  for (const auto& rec : result.records) {
    col0 = true;
    for (const auto& [knob, value] : rec.knobs) {
      if (!col0) os << ',';
      os << value;
      col0 = false;
    }
    if (rec.status == PointStatus::kOk) {
      for (const auto& m : rec.metrics) {
        if (!col0) os << ',';
        os << m.value;
        col0 = false;
      }
    } else {
      for (std::size_t m = 0; m < first.metrics.size(); ++m) {
        if (!col0) os << ',';
        col0 = false;
      }
    }
    if (with_status) {
      if (!col0) os << ',';
      os << format_status(rec);
      col0 = false;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace psync::driver
