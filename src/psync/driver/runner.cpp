#include "psync/driver/runner.hpp"

#include <cstdio>
#include <sstream>

#include "psync/common/check.hpp"
#include "psync/common/table.hpp"
#include "psync/core/trace.hpp"
#include "psync/driver/session.hpp"
#include "psync/perf/stopwatch.hpp"

namespace psync::driver {

RunRecord Runner::run_point(const std::string& workload, const RunPoint& pt) {
  const Workload& w = find_workload(workload);
  perf::Stopwatch watch;
  RunRecord rec = w.run(pt);
  rec.wall_ns = watch.elapsed_ns();
  rec.index = pt.index;
  rec.workload = workload;
  rec.knobs = pt.knobs;
  return rec;
}

SweepResult Runner::run(const ExperimentSpec& spec) {
  // The execution body lives in Session::execute (session.cpp) since the
  // submission/execution split; this shim keeps the synchronous entry
  // every pre-service call site was written against, exceptions included.
  Session session;
  return session.run(spec);
}

namespace {

std::string format_knob(double v) {
  // Whole-valued knobs (processor counts, k, cores) print bare; fractional
  // ones (margins, rates) keep two decimals.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return format_double(v, 2);
}

std::string format_metric(const Metric& m) {
  if (m.decimals < 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e", m.value);
    return buf;
  }
  return format_double(m.value, m.decimals);
}

// "ok" | "failed:<kind>" | "quarantined:<kind>" for status cells.
std::string format_status(const RunRecord& rec) {
  std::string s = to_string(rec.status);
  if (rec.failure) {
    s += ':';
    s += to_string(rec.failure->kind);
  }
  return s;
}

// Header/metric-layout donor: the first OK record (failed points carry no
// metrics). Falls back to the first record when every point failed.
const RunRecord& header_record(const SweepResult& result) {
  for (const auto& rec : result.records) {
    if (rec.status == PointStatus::kOk) return rec;
  }
  return result.records.front();
}

bool any_not_ok(const SweepResult& result) {
  for (const auto& rec : result.records) {
    if (rec.status != PointStatus::kOk) return true;
  }
  return false;
}

}  // namespace

std::string sweep_table(const SweepResult& result, const std::string& title) {
  PSYNC_CHECK(!result.records.empty());
  // Layout comes from the first OK record; the status column only appears
  // when some point failed, so all-ok sweeps render exactly as before.
  const auto& first = header_record(result);
  const bool with_status = any_not_ok(result);
  std::vector<std::string> header;
  for (const auto& [knob, value] : first.knobs) header.push_back(knob);
  for (const auto& m : first.metrics) header.push_back(m.name);
  if (with_status) header.push_back("status");
  if (header.empty()) header.push_back("workload");

  Table t(header);
  if (!title.empty()) t.set_title(title);
  for (const auto& rec : result.records) {
    auto& row = t.row();
    for (const auto& [knob, value] : rec.knobs) row.add(format_knob(value));
    if (rec.status == PointStatus::kOk) {
      for (const auto& m : rec.metrics) row.add(format_metric(m));
    } else {
      for (std::size_t m = 0; m < first.metrics.size(); ++m) row.add("-");
    }
    if (with_status) row.add(format_status(rec));
    if (rec.knobs.empty() && rec.metrics.empty() && !with_status) {
      row.add(rec.workload);
    }
  }
  return t.to_string();
}

std::string point_json(const RunRecord& rec) {
  // Same precision as the batch document so the serve daemon can stream
  // exactly the objects sweep_json would embed — byte for byte.
  std::ostringstream os;
  os.precision(12);
  os << "{\"index\":" << rec.index << ",\"status\":\"" << to_string(rec.status)
     << "\",\"knobs\":{";
  for (std::size_t k = 0; k < rec.knobs.size(); ++k) {
    if (k > 0) os << ',';
    os << '"' << rec.knobs[k].first << "\":" << rec.knobs[k].second;
  }
  os << "},\"metrics\":{";
  for (std::size_t m = 0; m < rec.metrics.size(); ++m) {
    if (m > 0) os << ',';
    os << '"' << rec.metrics[m].name << "\":" << rec.metrics[m].value;
  }
  os << '}';
  if (rec.failure) {
    os << ",\"failure\":{\"kind\":\"" << to_string(rec.failure->kind)
       << "\",\"message\":\"" << json_escape(rec.failure->message)
       << "\",\"attempts\":" << rec.failure->attempts << '}';
  }
  // Reports: live typed reports when the point ran in this process, raw
  // journal fragments (stored verbatim) when it was resumed or served
  // from the result cache — the bytes are identical either way.
  if (rec.psync) {
    os << ",\"report\":" << core::run_report_json(*rec.psync);
  } else if (!rec.psync_json.empty()) {
    os << ",\"report\":" << rec.psync_json;
  }
  if (rec.mesh) {
    os << ",\"mesh_report\":" << core::run_report_json(*rec.mesh);
  } else if (!rec.mesh_json.empty()) {
    os << ",\"mesh_report\":" << rec.mesh_json;
  }
  os << '}';
  return os.str();
}

std::string sweep_json(const SweepResult& result) {
  std::ostringstream os;
  os.precision(12);
  os << "{\"schema_version\":" << core::kRunReportSchemaVersion
     << ",\"workload\":\"" << result.spec.workload << "\",\"campaign\":{"
     << "\"points\":" << result.campaign.points
     << ",\"ok\":" << result.campaign.ok
     << ",\"failed\":" << result.campaign.failed
     << ",\"quarantined\":" << result.campaign.quarantined
     << ",\"retried\":" << result.campaign.retries << "},\"points\":[";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    if (i > 0) os << ',';
    os << point_json(result.records[i]);
  }
  os << "]}";
  return os.str();
}

std::string sweep_csv(const SweepResult& result) {
  PSYNC_CHECK(!result.records.empty());
  std::ostringstream os;
  os.precision(12);
  // Same layout rule as the table: columns from the first OK record, and a
  // status column only when some point failed (all-ok output is unchanged).
  const auto& first = header_record(result);
  const bool with_status = any_not_ok(result);
  bool col0 = true;
  for (const auto& [knob, value] : first.knobs) {
    if (!col0) os << ',';
    os << knob;
    col0 = false;
  }
  for (const auto& m : first.metrics) {
    if (!col0) os << ',';
    os << m.name;
    col0 = false;
  }
  if (with_status) {
    if (!col0) os << ',';
    os << "status";
    col0 = false;
  }
  os << '\n';
  for (const auto& rec : result.records) {
    col0 = true;
    for (const auto& [knob, value] : rec.knobs) {
      if (!col0) os << ',';
      os << value;
      col0 = false;
    }
    if (rec.status == PointStatus::kOk) {
      for (const auto& m : rec.metrics) {
        if (!col0) os << ',';
        os << m.value;
        col0 = false;
      }
    } else {
      for (std::size_t m = 0; m < first.metrics.size(); ++m) {
        if (!col0) os << ',';
        col0 = false;
      }
    }
    if (with_status) {
      if (!col0) os << ',';
      os << format_status(rec);
      col0 = false;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace psync::driver
