#include "psync/driver/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "psync/common/check.hpp"
#include "psync/core/trace.hpp"

namespace psync::driver {

FailureKind classify_failure(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e) != nullptr) {
    return FailureKind::kTimeout;
  }
  if (dynamic_cast<const ConfigError*>(&e) != nullptr) {
    return FailureKind::kConfigInvalid;
  }
  if (dynamic_cast<const ResourceLimitError*>(&e) != nullptr) {
    return FailureKind::kOomEstimateExceeded;
  }
  if (dynamic_cast<const DivergenceError*>(&e) != nullptr) {
    return FailureKind::kSimDiverged;
  }
  return FailureKind::kInternalError;
}

bool failure_is_retryable(FailureKind kind) {
  // kWorkerCrash is a leader-side verdict (the point already ate its K
  // restarts at process granularity), so it is terminal here.
  return kind == FailureKind::kTimeout || kind == FailureKind::kInternalError;
}

std::size_t estimate_point_bytes(const std::string& workload,
                                 const RunPoint& pt) {
  // sizeof(std::complex<double>) per element, times a small factor for the
  // working copies the machines hold (input, per-processor tiles, delivery
  // buffers, reference transform). Deliberately coarse — this is an
  // admission gate against runaway grids, not an allocator model.
  constexpr std::size_t kElem = 16;
  constexpr std::size_t kCopies = 6;
  const std::size_t matrix =
      pt.machine.matrix_rows * pt.machine.matrix_cols * kElem * kCopies;
  if (workload == "mesh") {
    return pt.mesh.matrix_rows * pt.mesh.matrix_cols * kElem * kCopies;
  }
  if (workload == "transpose") {
    return pt.mesh.grid * pt.mesh.grid * pt.transpose_elements * 8 * 4;
  }
  if (workload == "fig11" || workload == "fig13") return 1024;
  if (workload == "fft2d" && pt.with_mesh) return matrix * 2;
  return matrix;  // fft2d, fft1d, pipeline, reliability, degradation_sweep
}

namespace {

RunRecord fail_record(const std::string& workload, const RunPoint& point) {
  RunRecord rec;
  rec.index = point.index;
  rec.workload = workload;
  rec.knobs = point.knobs;
  return rec;
}

}  // namespace

RunRecord PointGuard::run(const std::string& workload, const RunPoint& point,
                          const PointFn& fn,
                          const CancelToken* external) const {
  if (!params_.isolate) {
    RunPoint pt = point;
    if (pt.cancel == nullptr) pt.cancel = external;
    return fn(pt);
  }

  if (params_.max_point_mb > 0) {
    const std::size_t est = estimate_point_bytes(workload, point);
    if (est > params_.max_point_mb * std::size_t{1024} * 1024) {
      RunRecord rec = fail_record(workload, point);
      rec.status = PointStatus::kFailed;
      rec.failure = PointFailure{
          FailureKind::kOomEstimateExceeded,
          "estimated working set " + std::to_string(est / (1024 * 1024)) +
              " MiB exceeds guard.max_point_mb = " +
              std::to_string(params_.max_point_mb),
          0};
      return rec;
    }
  }

  for (std::size_t attempt = 1;; ++attempt) {
    if (external != nullptr && external->cancelled()) {
      throw CancelledError("sweep cancelled before point attempt");
    }
    CancelToken token;
    RunPoint pt = point;
    if (params_.point_timeout_ms > 0.0) {
      token.set_deadline_ms(params_.point_timeout_ms);
      token.set_parent(external);
      pt.cancel = &token;
    } else if (external != nullptr) {
      pt.cancel = external;
    }

    FailureKind kind = FailureKind::kInternalError;
    std::string message;
    try {
      RunRecord rec = fn(pt);
      rec.retries = attempt - 1;
      return rec;
    } catch (const std::exception& e) {
      // A process-wide shutdown is not a point failure: rethrow so the
      // abandoned point stays un-journaled and un-recorded.
      if (external != nullptr && external->cancelled()) throw;
      kind = classify_failure(e);
      message = e.what();
    } catch (...) {
      if (external != nullptr && external->cancelled()) throw;
      message = "unknown exception type";
    }

    if (!failure_is_retryable(kind) || attempt > params_.max_retries) {
      RunRecord rec = fail_record(workload, point);
      rec.status = failure_is_retryable(kind) ? PointStatus::kQuarantined
                                              : PointStatus::kFailed;
      rec.retries = attempt - 1;
      rec.failure = PointFailure{kind, message, attempt};
      return rec;
    }
    if (params_.retry_backoff_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          params_.retry_backoff_ms * static_cast<double>(attempt)));
    }
  }
}

CampaignReport summarize_campaign(const std::vector<RunRecord>& records,
                                  std::size_t begin, std::size_t end) {
  CampaignReport c;
  begin = std::min(begin, records.size());
  end = std::min(end, records.size());
  c.points = end - begin;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& rec = records[i];
    switch (rec.status) {
      case PointStatus::kOk: ++c.ok; break;
      case PointStatus::kFailed: ++c.failed; break;
      case PointStatus::kQuarantined:
        ++c.quarantined;
        c.quarantine.push_back(rec.index);
        break;
    }
    c.retries += rec.retries;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Journal codec.

namespace {

// %.17g: the shortest printf format guaranteed to round-trip an IEEE-754
// double through strtod bit-exactly. The serializers render at
// precision(12); identical bits re-render to identical text, which is the
// whole byte-identity argument for resume.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Cursor {
  const char* p;
  const char* end;  // points at the string's NUL terminator
};

void skip_ws(Cursor* c) {
  while (c->p < c->end &&
         (*c->p == ' ' || *c->p == '\t' || *c->p == '\r' || *c->p == '\n')) {
    ++c->p;
  }
}

bool expect(Cursor* c, char ch) {
  skip_ws(c);
  if (c->p < c->end && *c->p == ch) {
    ++c->p;
    return true;
  }
  return false;
}

bool parse_string(Cursor* c, std::string* out) {
  if (!expect(c, '"')) return false;
  out->clear();
  while (c->p < c->end) {
    const char ch = *c->p++;
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c->p >= c->end) return false;
    const char esc = *c->p++;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (c->end - c->p < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = *c->p++;
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // Our escaper only emits \u00XX for control bytes; decode the BMP
        // point as UTF-8 and leave surrogate pairs unsupported.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_double(Cursor* c, double* out) {
  skip_ws(c);
  char* endp = nullptr;
  const double v = std::strtod(c->p, &endp);
  if (endp == c->p || endp > c->end) return false;
  c->p = endp;
  *out = v;
  return true;
}

bool parse_u64(Cursor* c, std::uint64_t* out) {
  skip_ws(c);
  if (c->p >= c->end || *c->p < '0' || *c->p > '9') return false;
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(c->p, &endp, 10);
  if (endp == c->p || endp > c->end) return false;
  c->p = endp;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

// Capture one JSON value verbatim (balanced braces/brackets, string-aware);
// used for the raw machine-report fragments and for skipping unknown keys.
bool capture_value(Cursor* c, std::string* out) {
  skip_ws(c);
  if (c->p >= c->end) return false;
  const char* start = c->p;
  if (*c->p == '"') {
    std::string ignored;
    if (!parse_string(c, &ignored)) return false;
    out->assign(start, static_cast<std::size_t>(c->p - start));
    return true;
  }
  if (*c->p == '{' || *c->p == '[') {
    int depth = 0;
    bool in_string = false;
    while (c->p < c->end) {
      const char ch = *c->p++;
      if (in_string) {
        if (ch == '\\') {
          if (c->p < c->end) ++c->p;
        } else if (ch == '"') {
          in_string = false;
        }
        continue;
      }
      if (ch == '"') in_string = true;
      else if (ch == '{' || ch == '[') ++depth;
      else if (ch == '}' || ch == ']') {
        --depth;
        if (depth == 0) {
          out->assign(start, static_cast<std::size_t>(c->p - start));
          return true;
        }
      }
    }
    return false;  // unbalanced (truncated line)
  }
  // Scalar: number / true / false / null.
  while (c->p < c->end && *c->p != ',' && *c->p != '}' && *c->p != ']' &&
         *c->p != ' ' && *c->p != '\t') {
    ++c->p;
  }
  if (c->p == start) return false;
  out->assign(start, static_cast<std::size_t>(c->p - start));
  return true;
}

// [["name",value],...] for knobs; [["name",value,decimals],...] for metrics.
bool parse_pair_array(Cursor* c, bool with_decimals,
                      std::vector<std::pair<std::string, double>>* knobs,
                      std::vector<Metric>* metrics) {
  if (!expect(c, '[')) return false;
  if (expect(c, ']')) return true;
  while (true) {
    if (!expect(c, '[')) return false;
    std::string name;
    double value = 0.0;
    if (!parse_string(c, &name)) return false;
    if (!expect(c, ',')) return false;
    if (!parse_double(c, &value)) return false;
    if (with_decimals) {
      double decimals = 0.0;
      if (!expect(c, ',')) return false;
      if (!parse_double(c, &decimals)) return false;
      metrics->push_back({name, value, static_cast<int>(decimals)});
    } else {
      knobs->push_back({name, value});
    }
    if (!expect(c, ']')) return false;
    if (expect(c, ']')) return true;
    if (!expect(c, ',')) return false;
  }
}

bool parse_failure(Cursor* c, PointFailure* out) {
  if (!expect(c, '{')) return false;
  bool saw_kind = false;
  while (true) {
    std::string key;
    if (!parse_string(c, &key)) return false;
    if (!expect(c, ':')) return false;
    if (key == "kind") {
      std::string kind;
      if (!parse_string(c, &kind)) return false;
      out->kind = failure_kind_from_string(kind);
      saw_kind = true;
    } else if (key == "message") {
      if (!parse_string(c, &out->message)) return false;
    } else if (key == "attempts") {
      std::uint64_t attempts = 0;
      if (!parse_u64(c, &attempts)) return false;
      out->attempts = static_cast<std::size_t>(attempts);
    } else {
      std::string ignored;
      if (!capture_value(c, &ignored)) return false;
    }
    if (expect(c, '}')) return saw_kind;
    if (!expect(c, ',')) return false;
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char raw : s) {
    const unsigned char ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string journal_line(const RunRecord& rec, std::uint64_t seed,
                         std::uint64_t point_digest) {
  std::ostringstream os;
  os << "{\"v\":1,\"index\":" << rec.index << ",\"seed\":" << seed;
  if (point_digest != 0) os << ",\"pd\":" << point_digest;
  os << ",\"workload\":\"" << json_escape(rec.workload) << "\",\"status\":\""
     << to_string(rec.status) << "\",\"retries\":" << rec.retries
     << ",\"wall_ms\":" << fmt_double(rec.wall_ns * 1e-6) << ",\"knobs\":[";
  for (std::size_t k = 0; k < rec.knobs.size(); ++k) {
    if (k > 0) os << ',';
    os << "[\"" << json_escape(rec.knobs[k].first) << "\","
       << fmt_double(rec.knobs[k].second) << ']';
  }
  os << "],\"metrics\":[";
  for (std::size_t m = 0; m < rec.metrics.size(); ++m) {
    if (m > 0) os << ',';
    os << "[\"" << json_escape(rec.metrics[m].name) << "\","
       << fmt_double(rec.metrics[m].value) << ',' << rec.metrics[m].decimals
       << ']';
  }
  os << ']';
  if (rec.failure) {
    os << ",\"failure\":{\"kind\":\"" << to_string(rec.failure->kind)
       << "\",\"message\":\"" << json_escape(rec.failure->message)
       << "\",\"attempts\":" << rec.failure->attempts << '}';
  }
  if (rec.psync) {
    os << ",\"psync\":" << core::run_report_json(*rec.psync);
  } else if (!rec.psync_json.empty()) {
    os << ",\"psync\":" << rec.psync_json;
  }
  if (rec.mesh) {
    os << ",\"mesh\":" << core::run_report_json(*rec.mesh);
  } else if (!rec.mesh_json.empty()) {
    os << ",\"mesh\":" << rec.mesh_json;
  }
  os << '}';
  return os.str();
}

bool parse_journal_line(const std::string& line, JournalEntry* out) {
  Cursor c{line.c_str(), line.c_str() + line.size()};
  JournalEntry entry;
  bool saw_version = false, saw_index = false, saw_seed = false,
       saw_workload = false, saw_status = false;
  try {
    if (!expect(&c, '{')) return false;
    while (true) {
      std::string key;
      if (!parse_string(&c, &key)) return false;
      if (!expect(&c, ':')) return false;
      if (key == "v") {
        std::uint64_t v = 0;
        if (!parse_u64(&c, &v) || v != 1) return false;
        saw_version = true;
      } else if (key == "index") {
        std::uint64_t idx = 0;
        if (!parse_u64(&c, &idx)) return false;
        entry.rec.index = static_cast<std::size_t>(idx);
        saw_index = true;
      } else if (key == "seed") {
        if (!parse_u64(&c, &entry.seed)) return false;
        saw_seed = true;
      } else if (key == "pd") {
        if (!parse_u64(&c, &entry.point_digest)) return false;
      } else if (key == "workload") {
        if (!parse_string(&c, &entry.rec.workload)) return false;
        saw_workload = true;
      } else if (key == "status") {
        std::string status;
        if (!parse_string(&c, &status)) return false;
        entry.rec.status = point_status_from_string(status);
        saw_status = true;
      } else if (key == "retries") {
        std::uint64_t retries = 0;
        if (!parse_u64(&c, &retries)) return false;
        entry.rec.retries = static_cast<std::size_t>(retries);
      } else if (key == "wall_ms") {
        // Informational only: wall time is never serialized into reports,
        // so a resumed record keeps wall_ns = 0.
        double ignored = 0.0;
        if (!parse_double(&c, &ignored)) return false;
      } else if (key == "knobs") {
        if (!parse_pair_array(&c, false, &entry.rec.knobs, nullptr)) {
          return false;
        }
      } else if (key == "metrics") {
        if (!parse_pair_array(&c, true, nullptr, &entry.rec.metrics)) {
          return false;
        }
      } else if (key == "failure") {
        PointFailure failure;
        if (!parse_failure(&c, &failure)) return false;
        entry.rec.failure = failure;
      } else if (key == "psync") {
        if (!capture_value(&c, &entry.rec.psync_json)) return false;
      } else if (key == "mesh") {
        if (!capture_value(&c, &entry.rec.mesh_json)) return false;
      } else {
        std::string ignored;
        if (!capture_value(&c, &ignored)) return false;
      }
      if (expect(&c, '}')) break;
      if (!expect(&c, ',')) return false;
    }
  } catch (const SimulationError&) {
    return false;  // unknown status / failure-kind text
  }
  skip_ws(&c);
  if (c.p != c.end) return false;  // trailing garbage
  if (!saw_version || !saw_index || !saw_seed || !saw_workload || !saw_status) {
    return false;
  }
  *out = std::move(entry);
  return true;
}

}  // namespace psync::driver
