// Open-loop photonic clock distribution (paper Section III-A).
//
// A clock wavelength is modulated at the head of the waveguide; each node
// takes its I/O clock edge *directly* from the detected photonic clock, so
// node i at path position x_i perceives global clock edge s at
//
//     t(i, s) = t_launch + s * T + x_i / v_g + t_detect
//
// The deliberate, position-proportional skew is what makes the SCA work:
// a bit modulated on perceived edge s at any position arrives at the
// terminus at t_launch + s*T + X_end/v_g + const, i.e. slot order at the
// receiver is independent of where the modulating node sits.
#pragma once

#include <cstddef>
#include <vector>

#include "psync/common/quantity.hpp"
#include "psync/common/units.hpp"

namespace psync::photonic {

struct ClockParams {
  /// Photonic clock / bit-slot frequency (paper: 10 Gb/s slots).
  GigaHertz frequency_ghz{10.0};
  /// Group velocity along the distribution waveguide, cm/ns.
  double group_velocity_cm_per_ns = 7.0;
  /// Time for a node to sense the clock edge and respond (the "short delay
  /// for P0 to sense and respond" in Fig. 4), ps. Common to all nodes, so it
  /// cancels out of slot alignment.
  TimePs detect_latency_ps = 20;
  /// Absolute launch time of edge 0 at position 0, ps.
  TimePs launch_time_ps = 0;
};

/// Clock as perceived along one waveguide.
class PhotonicClock {
 public:
  explicit PhotonicClock(ClockParams params);

  const ClockParams& params() const { return params_; }

  /// Slot period, ps (exact for 10 GHz: 100 ps).
  TimePs period_ps() const { return period_ps_; }

  /// Flight time from launch point to position `x_um`, ps (rounded).
  TimePs flight_ps(double x_um) const;

  /// Absolute time at which the node at `x_um` *perceives* edge `s`.
  TimePs perceived_edge_ps(double x_um, Cycle s) const;

  /// Absolute time at which energy modulated on perceived edge `s` at
  /// position `x_um` passes position `y_um` (y >= x downstream).
  TimePs arrival_at_ps(double x_um, Cycle s, double y_um) const;

  /// Skew between two taps: perceived time difference of the same edge.
  TimePs skew_ps(double x_a_um, double x_b_um) const;

 private:
  ClockParams params_;
  TimePs period_ps_;
};

/// Skew table for a set of taps; useful for configuring SerDes offsets.
std::vector<TimePs> skew_table(const PhotonicClock& clk,
                               const std::vector<double>& taps_um);

}  // namespace psync::photonic
