// Photonic link energy model (the PSCAN side of the paper's Fig. 5).
//
// Energy per transported bit decomposes into:
//   * laser wall-plug energy  — each optical span's laser must launch enough
//     power to cover that span's worst-case loss; electrical draw is
//     continuous, so E/bit = P_elec / aggregate data rate;
//   * modulator dynamic energy (fJ/bit) and receiver energy (fJ/bit);
//   * thermal ring tuning — static power per ring amortized over data moved;
//   * O-E-O repeater energy when the bus is too long/lossy for one span
//     (Section III-B: "individual PSCAN segments can be linked via
//     repeaters to form larger networks").
//
// The decisive property reproduced from the paper: photonic energy/bit is
// nearly independent of how many nodes share the bus, because propagation is
// lossy but not *switched* — there are no per-hop buffers or arbiters.
#pragma once

#include <cstddef>
#include <cstdint>

#include "psync/photonic/devices.hpp"
#include "psync/photonic/link_budget.hpp"

namespace psync::photonic {

struct PhotonicEnergyParams {
  Laser laser;
  RingResonator ring;
  Photodetector detector;
  WaveguideParams waveguide;
  WdmPlan wdm;
  /// Serializer/deserializer energy at each end, per bit.
  FemtoJoules serdes_energy_fj_per_bit{100.0};
  /// Maximum optical power one span's laser can launch per wavelength;
  /// beyond this, O-E-O repeaters split the bus into spans.
  DbmPower max_launch_dbm{10.0};
};

struct PhotonicEnergyBreakdown {
  FemtoJoules laser_fj_per_bit{0.0};
  FemtoJoules modulator_fj_per_bit{0.0};
  FemtoJoules receiver_fj_per_bit{0.0};
  FemtoJoules thermal_fj_per_bit{0.0};
  FemtoJoules serdes_fj_per_bit{0.0};
  FemtoJoules repeater_fj_per_bit{0.0};
  std::size_t spans = 1;

  [[nodiscard]] FemtoJoules total_fj_per_bit() const {
    return laser_fj_per_bit + modulator_fj_per_bit + receiver_fj_per_bit +
           thermal_fj_per_bit + serdes_fj_per_bit + repeater_fj_per_bit;
  }
  [[nodiscard]] PicoJoules total_pj_per_bit() const {
    return fj_to_pj(total_fj_per_bit());
  }
};

/// Energy per bit for a PSCAN bus with `nodes` taps on a serpentine covering
/// a `die_cm` square die, at utilization `utilization` (fraction of slots
/// carrying data; the SCA achieves ~1.0). Laser power per span is sized from
/// the actual path loss (launch = sensitivity + span loss), so more nodes
/// cost slightly more laser power but nothing per hop.
PhotonicEnergyBreakdown pscan_energy_per_bit(const PhotonicEnergyParams& p,
                                             std::size_t nodes,
                                             double die_cm = 2.0,
                                             double utilization = 1.0);

/// Activity-based energy of one finished transaction (the PSCAN counterpart
/// of the mesh's ORION activity evaluation): static power (laser, thermal)
/// integrates over the transaction's wall-clock `span_ps`; dynamic energy
/// (modulator, receiver, SerDes, repeaters) charges per bit actually moved.
struct PhotonicTransactionEnergy {
  PicoJoules static_pj{0.0};   // laser + thermal over the span
  PicoJoules dynamic_pj{0.0};  // per-bit device energy
  [[nodiscard]] PicoJoules total_pj() const { return static_pj + dynamic_pj; }
  double pj_per_bit = 0.0;     // total / payload bits
};
PhotonicTransactionEnergy transaction_energy(const PhotonicEnergyParams& p,
                                             std::size_t nodes,
                                             std::int64_t span_ps,
                                             std::uint64_t payload_bits,
                                             double die_cm = 2.0);

}  // namespace psync::photonic
