#include "psync/photonic/clock.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::photonic {

PhotonicClock::PhotonicClock(ClockParams params) : params_(params) {
  PSYNC_CHECK(params.frequency_ghz > GigaHertz(0.0));
  PSYNC_CHECK(params.group_velocity_cm_per_ns > 0.0);
  PSYNC_CHECK(params.detect_latency_ps >= 0);
  period_ps_ = units::clock_period_ps(params.frequency_ghz.value());
}

TimePs PhotonicClock::flight_ps(double x_um) const {
  PSYNC_CHECK(x_um >= 0.0);
  const double ns =
      units::um_to_cm(x_um) / params_.group_velocity_cm_per_ns;
  return units::ns_to_ps(ns);
}

TimePs PhotonicClock::perceived_edge_ps(double x_um, Cycle s) const {
  return params_.launch_time_ps + s * period_ps_ + flight_ps(x_um) +
         params_.detect_latency_ps;
}

TimePs PhotonicClock::arrival_at_ps(double x_um, Cycle s, double y_um) const {
  PSYNC_CHECK_MSG(y_um >= x_um, "light only travels downstream");
  // Modulation happens detect_latency after the perceived edge; the imprinted
  // energy then takes (y - x)/v to reach y. Equivalently: launch + s*T +
  // flight(y) + detect latency. The x-dependence cancels -- the paper's core
  // observation.
  return perceived_edge_ps(x_um, s) + (flight_ps(y_um) - flight_ps(x_um));
}

TimePs PhotonicClock::skew_ps(double x_a_um, double x_b_um) const {
  return perceived_edge_ps(x_b_um, 0) - perceived_edge_ps(x_a_um, 0);
}

std::vector<TimePs> skew_table(const PhotonicClock& clk,
                               const std::vector<double>& taps_um) {
  std::vector<TimePs> out;
  out.reserve(taps_um.size());
  for (double x : taps_um) out.push_back(clk.perceived_edge_ps(x, 0));
  return out;
}

}  // namespace psync::photonic
