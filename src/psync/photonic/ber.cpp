#include "psync/photonic/ber.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::photonic {

double q_factor(double margin_db, double q_at_sensitivity) {
  PSYNC_CHECK(q_at_sensitivity > 0.0);
  return q_at_sensitivity * std::pow(10.0, margin_db / 10.0);
}

double ber_from_q(double q) {
  if (q <= 0.0) return 0.5;  // no eye at all
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double ber_at_margin(double margin_db, double q_at_sensitivity) {
  return ber_from_q(q_factor(margin_db, q_at_sensitivity));
}

double worst_case_margin_db(const LinkBudgetParams& p, std::size_t segments) {
  return power_after_segments(p, segments).dbm() -
         (p.detector.sensitivity_dbm + p.margin_db);
}

double expected_bit_errors(double margin_db, std::uint64_t bits,
                           double q_at_sensitivity) {
  return ber_at_margin(margin_db, q_at_sensitivity) *
         static_cast<double>(bits);
}

}  // namespace psync::photonic
