#include "psync/photonic/ber.hpp"

#include <cmath>

#include "psync/common/check.hpp"
#include "psync/common/quantity.hpp"

namespace psync::photonic {

double q_factor(DecibelsDb margin, double q_at_sensitivity) {
  PSYNC_CHECK(q_at_sensitivity > 0.0);
  return q_at_sensitivity * db_to_linear(margin);
}

double ber_from_q(double q) {
  if (q <= 0.0) return 0.5;  // no eye at all
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double ber_at_margin(DecibelsDb margin, double q_at_sensitivity) {
  return ber_from_q(q_factor(margin, q_at_sensitivity));
}

DecibelsDb worst_case_margin_db(const LinkBudgetParams& p,
                                std::size_t segments) {
  return power_after_segments(p, segments).level() -
         (p.detector.sensitivity_dbm + p.margin_db);
}

double expected_bit_errors(DecibelsDb margin, std::uint64_t bits,
                           double q_at_sensitivity) {
  return ber_at_margin(margin, q_at_sensitivity) * static_cast<double>(bits);
}

}  // namespace psync::photonic
