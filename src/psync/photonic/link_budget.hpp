// PSCAN scalability analysis: paper Section III-B, Eq. 1-3.
//
//   Eq. 1:  P_i - L_w >= P_min-pd              (detectability)
//   Eq. 2:  L_ws = L_r-off + D_m * L_w         (loss per segment)
//   Eq. 3:  (P_i - P_min-pd) / L_ws >= N       (max segment count)
//
// A *segment* is one detuned ring resonator plus D_m centimetres of
// waveguide (the modulator pitch). Segments can be chained through O-E-O
// repeaters to build networks longer than a single optical budget allows.
#pragma once

#include <cstddef>

#include "psync/photonic/devices.hpp"
#include "psync/photonic/power.hpp"
#include "psync/photonic/waveguide.hpp"

namespace psync::photonic {

struct LinkBudgetParams {
  Laser laser;
  RingResonator ring;
  Photodetector detector;
  WaveguideParams waveguide;
  /// Modulator pitch D_m along the bus, centimetres.
  double modulator_pitch_cm = 0.05;
  /// Extra margin demanded above sensitivity (engineering headroom).
  DecibelsDb margin_db{0.0};
};

/// Loss of one PSCAN segment (Eq. 2). Uses the straight-waveguide loss;
/// bends are accounted separately by callers that know the layout.
DecibelsDb segment_loss_db(const LinkBudgetParams& p);

/// Launch power available after the laser-to-waveguide coupler.
DbmPower launch_power_dbm(const LinkBudgetParams& p);

/// Optical budget: launch power minus (sensitivity + margin).
DecibelsDb budget_db(const LinkBudgetParams& p);

/// Maximum number of segments on a single optical span (Eq. 3); zero when
/// even one segment cannot close the link.
std::size_t max_segments(const LinkBudgetParams& p);

/// Residual power at the detector after `segments` segments.
PowerDbm power_after_segments(const LinkBudgetParams& p, std::size_t segments);

/// True when a span of `segments` closes the link budget (Eq. 1).
bool closes(const LinkBudgetParams& p, std::size_t segments);

/// Number of O-E-O repeaters required to support `total_segments` taps
/// (each repeater relaunches at full power). Zero when one span suffices.
std::size_t repeaters_required(const LinkBudgetParams& p,
                               std::size_t total_segments);

/// Convenience: budget evaluation for a serpentine bus with `nodes` evenly
/// pitched taps across a square die. Includes bend losses, which Eq. 3
/// ignores ("for simplicity"); exposing both lets tests quantify the gap.
struct SerpentineBudget {
  DecibelsDb total_loss_db{0.0};  // waveguide + bends + detuned rings
  DbmPower residual_dbm{0.0};     // at the terminus detector
  bool closes = false;
  std::size_t max_nodes_eq3 = 0;  // paper's bend-free bound
};
SerpentineBudget evaluate_serpentine(const LinkBudgetParams& p,
                                     const SerpentineLayout& layout,
                                     std::size_t nodes);

}  // namespace psync::photonic
