#include "psync/photonic/devices.hpp"

#include "psync/common/check.hpp"

namespace psync::photonic {

void validate(const RingResonator& r) {
  if (r.through_loss_off_db < DecibelsDb(0.0) ||
      r.insertion_loss_on_db < DecibelsDb(0.0)) {
    throw SimulationError("RingResonator: losses must be non-negative");
  }
  if (r.extinction_ratio_db <= DecibelsDb(0.0)) {
    throw SimulationError("RingResonator: extinction ratio must be positive");
  }
  if (r.modulation_energy_fj_per_bit < FemtoJoules(0.0) ||
      r.thermal_tuning_uw < MicroWatts(0.0)) {
    throw SimulationError("RingResonator: energies must be non-negative");
  }
  if (r.max_rate_gbps <= GigabitsPerSec(0.0)) {
    throw SimulationError("RingResonator: max rate must be positive");
  }
}

void validate(const Photodetector& p) {
  if (p.receive_energy_fj_per_bit < FemtoJoules(0.0) ||
      p.tap_loss_db < DecibelsDb(0.0)) {
    throw SimulationError("Photodetector: energies/losses must be non-negative");
  }
}

void validate(const Laser& l) {
  if (l.wall_plug_efficiency <= 0.0 || l.wall_plug_efficiency > 1.0) {
    throw SimulationError("Laser: wall-plug efficiency must be in (0, 1]");
  }
  if (l.coupler_loss_db < DecibelsDb(0.0)) {
    throw SimulationError("Laser: coupler loss must be non-negative");
  }
}

void validate(const WdmPlan& w) {
  if (w.wavelength_count == 0) {
    throw SimulationError("WdmPlan: need at least one wavelength");
  }
  if (w.rate_gbps_per_wavelength <= GigabitsPerSec(0.0)) {
    throw SimulationError("WdmPlan: per-wavelength rate must be positive");
  }
}

}  // namespace psync::photonic
