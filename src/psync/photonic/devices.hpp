// Photonic device parameter sets: ring resonators (modulators/filters),
// photodetectors, lasers. Values are first-order constants of the 2010-2013
// silicon-photonics literature the paper builds on (PhoenixSim-era devices);
// every parameter is overridable for sensitivity studies.
//
// All dimensional parameters are strong types from quantity.hpp: a dB loss
// cannot be assigned to a dBm level, an fJ energy cannot silently mix with
// pJ, and every boundary to plain arithmetic is an explicit .value().
#pragma once

#include <cstddef>

#include "psync/common/quantity.hpp"

namespace psync::photonic {

/// Ring resonator used as a modulator or drop filter.
struct RingResonator {
  /// Through-port loss when the ring is OFF-resonance (detuned).
  /// This is the paper's L_r-off in Eq. 2: every detuned ring a signal
  /// passes still costs a little power.
  DecibelsDb through_loss_off_db{0.01};
  /// Insertion loss when actively modulating / on-resonance drop.
  DecibelsDb insertion_loss_on_db{0.5};
  /// Extinction ratio between '1' and '0' levels.
  DecibelsDb extinction_ratio_db{10.0};
  /// Dynamic modulation energy per bit.
  FemtoJoules modulation_energy_fj_per_bit{50.0};
  /// Static thermal tuning power to hold resonance, per ring
  /// (assumes fabrication trimming; untrimmed rings run 10-100 uW).
  MicroWatts thermal_tuning_uw{5.0};
  /// Maximum modulation rate.
  GigabitsPerSec max_rate_gbps{10.0};
};

/// Receiver: photodiode + TIA.
struct Photodetector {
  /// Minimum detectable optical power (sensitivity). Paper's P_min-pd.
  DbmPower sensitivity_dbm{-22.0};
  /// Receiver energy per bit (photodiode + TIA + clocked sense).
  FemtoJoules receive_energy_fj_per_bit{100.0};
  /// Drop loss seen by the through path at a detector tap.
  DecibelsDb tap_loss_db{0.5};
};

/// Off- or on-chip laser source for one wavelength.
struct Laser {
  /// Optical power launched into the waveguide per wavelength.
  /// Paper's P_i in Eq. 1 (a couple of mW is typical).
  DbmPower launch_power_dbm{3.0};  // ~2 mW
  /// Wall-plug efficiency: electrical-to-coupled-optical, fraction.
  double wall_plug_efficiency = 0.10;
  /// Coupler loss from laser to waveguide.
  DecibelsDb coupler_loss_db{1.0};
};

/// A WDM channel plan: `wavelength_count` channels at `rate_gbps` each.
/// The paper's PSCAN link: 32 wavelengths x 10 Gb/s = 320 Gb/s.
struct WdmPlan {
  std::size_t wavelength_count = 32;
  GigabitsPerSec rate_gbps_per_wavelength{10.0};

  [[nodiscard]] GigabitsPerSec aggregate_gbps() const {
    return static_cast<double>(wavelength_count) * rate_gbps_per_wavelength;
  }
};

/// Validates device parameters (throws SimulationError on nonsense values
/// such as negative losses).
void validate(const RingResonator& r);
void validate(const Photodetector& p);
void validate(const Laser& l);
void validate(const WdmPlan& w);

}  // namespace psync::photonic
