#include "psync/photonic/waveguide.hpp"

#include "psync/common/check.hpp"

namespace psync::photonic {

Waveguide::Waveguide(WaveguideParams params, double straight_um,
                     double curved_um, std::size_t bends)
    : params_(params),
      straight_um_(straight_um),
      curved_um_(curved_um),
      bends_(bends) {
  PSYNC_CHECK(straight_um >= 0.0);
  PSYNC_CHECK(curved_um >= 0.0);
  PSYNC_CHECK(params.group_velocity_cm_per_ns > 0.0);
}

DecibelsDb Waveguide::total_loss_db() const {
  return DecibelsDb(
      units::um_to_cm(straight_um_) * params_.loss_straight_db_per_cm +
      units::um_to_cm(curved_um_) * params_.loss_curved_db_per_cm +
      static_cast<double>(bends_) * params_.loss_per_bend_db);
}

Ps Waveguide::flight_time_ps() const { return flight_time_to_ps(length_um()); }

Ps Waveguide::flight_time_to_ps(double at_um) const {
  PSYNC_CHECK(at_um >= 0.0);
  // cm / (cm/ns) = ns; convert to ps.
  return Ps(units::um_to_cm(at_um) / params_.group_velocity_cm_per_ns * 1e3);
}

DecibelsDb Waveguide::loss_to_db(double at_um) const {
  const double len = length_um();
  if (len <= 0.0) return DecibelsDb(0.0);
  const double frac = at_um / len;
  return total_loss_db() * frac;
}

double SerpentineLayout::row_pitch_um() const {
  return rows > 0 ? height_um / static_cast<double>(rows) : 0.0;
}

double SerpentineLayout::straight_um() const {
  return static_cast<double>(rows) * width_um;
}

double SerpentineLayout::curved_um() const {
  // Each of the (rows - 1) turnarounds descends one row pitch.
  return rows > 1 ? static_cast<double>(rows - 1) * row_pitch_um() : 0.0;
}

std::size_t SerpentineLayout::bends() const {
  return rows > 1 ? 2 * (rows - 1) : 0;
}

double SerpentineLayout::total_length_um() const {
  return straight_um() + curved_um();
}

std::vector<double> SerpentineLayout::tap_positions_um(std::size_t n) const {
  PSYNC_CHECK(n > 0);
  const double len = total_length_um();
  const double pitch = len / static_cast<double>(n);
  std::vector<double> taps(n);
  for (std::size_t i = 0; i < n; ++i) {
    taps[i] = pitch * (static_cast<double>(i) + 0.5);
  }
  return taps;
}

Waveguide SerpentineLayout::build(const WaveguideParams& params) const {
  return Waveguide(params, straight_um(), curved_um(), bends());
}

SerpentineLayout serpentine_for_grid(std::size_t grid_dim, double die_cm) {
  PSYNC_CHECK(grid_dim > 0);
  SerpentineLayout layout;
  layout.width_um = units::cm_to_um(die_cm);
  layout.height_um = units::cm_to_um(die_cm);
  layout.rows = grid_dim;
  return layout;
}

}  // namespace psync::photonic
