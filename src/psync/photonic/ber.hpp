// Bit-error-rate model for the optical link.
//
// The photodiode sensitivity in the link budget (Eq. 1) is the power at
// which the receiver achieves its reference quality; power above that
// sensitivity is margin, and for a thermal-noise-limited OOK receiver the
// Q-factor scales linearly with received power:
//
//     Q(margin) = Q_ref * 10^(margin_dB / 10),   BER = 0.5 * erfc(Q / sqrt2)
//
// with Q_ref = 6 (BER ~ 1e-9) at exactly the sensitivity. This lets
// experiments ask "how many bit errors should a 2^20-slot SCA expect at
// this node count?" and quantifies the reliability cliff at the Eq. 3
// scaling bound.
#pragma once

#include <cstdint>

#include "psync/photonic/link_budget.hpp"

namespace psync::photonic {

/// Q at the reference sensitivity (Q = 6 -> BER ~ 1e-9).
inline constexpr double kQAtSensitivity = 6.0;

/// Q-factor for a received power `margin` above sensitivity (negative
/// margin degrades Q below the reference).
double q_factor(DecibelsDb margin, double q_at_sensitivity = kQAtSensitivity);

/// BER for a given Q: 0.5 * erfc(Q / sqrt(2)).
double ber_from_q(double q);

/// BER at a given margin above sensitivity.
double ber_at_margin(DecibelsDb margin,
                     double q_at_sensitivity = kQAtSensitivity);

/// Margin of the farthest tap of a `segments`-segment PSCAN span under
/// budget `p` (negative when the link does not close).
DecibelsDb worst_case_margin_db(const LinkBudgetParams& p,
                                std::size_t segments);

/// Expected bit errors for a transaction of `bits` bits received at
/// `margin` above sensitivity.
double expected_bit_errors(DecibelsDb margin, std::uint64_t bits,
                           double q_at_sensitivity = kQAtSensitivity);

}  // namespace psync::photonic
