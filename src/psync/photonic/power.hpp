// Optical power arithmetic in the dB domain.
//
// The PSCAN scalability analysis (paper Section III-B, Eq. 1-3) is entirely
// a link-budget computation: launch power minus accumulated losses must stay
// above the photodetector sensitivity. Powers are dBm (psync::DbmPower),
// losses/gains dB (psync::DecibelsDb); the affine-level algebra of
// quantity.hpp makes level+level or a raw double loss a compile error.
#pragma once

#include "psync/common/quantity.hpp"

namespace psync::photonic {

/// Convert absolute power between milliwatts and dBm. The double forms are
/// the legacy scalar API; the typed forms live in psync/common/quantity.hpp
/// (psync::mw_to_dbm / psync::dbm_to_mw) and are preferred in new code.
double mw_to_dbm(double mw);
double dbm_to_mw(double dbm);

/// Ratio <-> decibels.
double ratio_to_db(double ratio);
double db_to_ratio(double db);

/// Optical power level in dBm with explicit loss/gain application. Wraps
/// the DbmPower level type; attenuation/gain take typed dB quantities.
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(DbmPower level) : level_(level) {}
  constexpr explicit PowerDbm(double dbm) : level_(dbm) {}

  [[nodiscard]] constexpr DbmPower level() const { return level_; }
  [[nodiscard]] constexpr double dbm() const { return level_.value(); }
  [[nodiscard]] double mw() const { return ::psync::dbm_to_mw(level_).value(); }

  /// Attenuate by `loss` (>= 0 dB).
  [[nodiscard]] constexpr PowerDbm attenuated(DecibelsDb loss) const {
    return PowerDbm(level_ - loss);
  }
  /// Amplify by `gain` (>= 0 dB), e.g. at an O-E-O repeater relaunch.
  [[nodiscard]] constexpr PowerDbm amplified(DecibelsDb gain) const {
    return PowerDbm(level_ + gain);
  }

  [[nodiscard]] constexpr bool detectable_by(DbmPower sensitivity) const {
    return level_ >= sensitivity;
  }

 private:
  DbmPower level_{0.0};
};

}  // namespace psync::photonic
