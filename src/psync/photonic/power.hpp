// Optical power arithmetic in the dB domain.
//
// The PSCAN scalability analysis (paper Section III-B, Eq. 1-3) is entirely
// a link-budget computation: launch power minus accumulated losses must stay
// above the photodetector sensitivity. Powers are dBm, losses/gains dB.
#pragma once

namespace psync::photonic {

/// Convert absolute power between milliwatts and dBm.
double mw_to_dbm(double mw);
double dbm_to_mw(double dbm);

/// Ratio <-> decibels.
double ratio_to_db(double ratio);
double db_to_ratio(double db);

/// Optical power level in dBm with explicit loss/gain application.
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(double dbm) : dbm_(dbm) {}

  constexpr double dbm() const { return dbm_; }
  double mw() const { return dbm_to_mw(dbm_); }

  /// Attenuate by `loss_db` (>= 0).
  constexpr PowerDbm attenuated(double loss_db) const {
    return PowerDbm(dbm_ - loss_db);
  }
  /// Amplify by `gain_db` (>= 0), e.g. at an O-E-O repeater relaunch.
  constexpr PowerDbm amplified(double gain_db) const {
    return PowerDbm(dbm_ + gain_db);
  }

  constexpr bool detectable_by(double sensitivity_dbm) const {
    return dbm_ >= sensitivity_dbm;
  }

 private:
  double dbm_ = 0.0;
};

}  // namespace psync::photonic
