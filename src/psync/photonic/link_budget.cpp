#include "psync/photonic/link_budget.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::photonic {

DecibelsDb segment_loss_db(const LinkBudgetParams& p) {
  return p.ring.through_loss_off_db +
         DecibelsDb(p.modulator_pitch_cm * p.waveguide.loss_straight_db_per_cm);
}

DbmPower launch_power_dbm(const LinkBudgetParams& p) {
  return p.laser.launch_power_dbm - p.laser.coupler_loss_db;
}

DecibelsDb budget_db(const LinkBudgetParams& p) {
  return launch_power_dbm(p) - (p.detector.sensitivity_dbm + p.margin_db);
}

std::size_t max_segments(const LinkBudgetParams& p) {
  validate(p.laser);
  validate(p.ring);
  validate(p.detector);
  const DecibelsDb budget = budget_db(p) - p.detector.tap_loss_db;
  const DecibelsDb per_segment = segment_loss_db(p);
  if (budget <= DecibelsDb(0.0)) return 0;
  if (per_segment <= DecibelsDb(0.0)) {
    throw SimulationError("segment loss must be positive");
  }
  return static_cast<std::size_t>(budget / per_segment);
}

PowerDbm power_after_segments(const LinkBudgetParams& p,
                              std::size_t segments) {
  const DecibelsDb loss =
      static_cast<double>(segments) * segment_loss_db(p) +
      p.detector.tap_loss_db;
  return PowerDbm(launch_power_dbm(p)).attenuated(loss);
}

bool closes(const LinkBudgetParams& p, std::size_t segments) {
  return power_after_segments(p, segments)
      .detectable_by(p.detector.sensitivity_dbm + p.margin_db);
}

std::size_t repeaters_required(const LinkBudgetParams& p,
                               std::size_t total_segments) {
  const std::size_t per_span = max_segments(p);
  if (per_span == 0) {
    throw SimulationError(
        "link budget cannot close even a single segment; no repeater count "
        "is meaningful");
  }
  if (total_segments <= per_span) return 0;
  // ceil(total/per_span) spans need (spans - 1) repeaters.
  const std::size_t spans = (total_segments + per_span - 1) / per_span;
  return spans - 1;
}

SerpentineBudget evaluate_serpentine(const LinkBudgetParams& p,
                                     const SerpentineLayout& layout,
                                     std::size_t nodes) {
  PSYNC_CHECK(nodes > 0);
  const Waveguide wg = layout.build(p.waveguide);
  SerpentineBudget out;
  out.total_loss_db = wg.total_loss_db() +
                      static_cast<double>(nodes) * p.ring.through_loss_off_db +
                      p.detector.tap_loss_db;
  out.residual_dbm =
      PowerDbm(launch_power_dbm(p)).attenuated(out.total_loss_db).level();
  out.closes = out.residual_dbm >= p.detector.sensitivity_dbm + p.margin_db;
  out.max_nodes_eq3 = max_segments(p);
  return out;
}

}  // namespace psync::photonic
