// Silicon waveguide geometry and propagation.
//
// The paper's key physical fact: light at 1550 nm travels ~7 cm/ns in a
// silicon waveguide, independent of waveguide length; the only significant
// length-dependent parameter is attenuation. We model:
//   * group velocity (=> per-position propagation delay),
//   * straight vs. curved attenuation (dB/cm) and per-bend loss,
//   * a serpentine layout generator that routes a bus across a WxH die and
//     reports total length and bend count for the link budget.
#pragma once

#include <cstddef>
#include <vector>

#include "psync/common/quantity.hpp"
#include "psync/common/units.hpp"

namespace psync::photonic {

struct WaveguideParams {
  /// Group velocity in cm/ns (paper: ~7 cm/ns at 1550 nm in silicon).
  double group_velocity_cm_per_ns = 7.0;
  /// Propagation loss in straight sections, dB/cm (low-loss SOI strip;
  /// lossier 1-3 dB/cm processes are modeled by overriding this).
  double loss_straight_db_per_cm = 0.3;
  /// Additional propagation loss in curved sections, dB/cm.
  double loss_curved_db_per_cm = 0.9;
  /// Fixed loss per 90-degree bend, dB.
  double loss_per_bend_db = 0.05;
};

/// A waveguide run of known composition.
class Waveguide {
 public:
  Waveguide(WaveguideParams params, double straight_um, double curved_um,
            std::size_t bends);

  const WaveguideParams& params() const { return params_; }
  double straight_um() const { return straight_um_; }
  double curved_um() const { return curved_um_; }
  std::size_t bends() const { return bends_; }
  double length_um() const { return straight_um_ + curved_um_; }

  /// Total propagation (insertion) loss of the run.
  [[nodiscard]] DecibelsDb total_loss_db() const;

  /// One-way flight time over the full run (real-valued picoseconds).
  [[nodiscard]] Ps flight_time_ps() const;

  /// Flight time from the launch point to a position `at_um` along the run.
  [[nodiscard]] Ps flight_time_to_ps(double at_um) const;

  /// Loss accumulated from launch to `at_um`, assuming straight/curved
  /// sections are uniformly interleaved (adequate for budget estimates).
  [[nodiscard]] DecibelsDb loss_to_db(double at_um) const;

 private:
  WaveguideParams params_;
  double straight_um_;
  double curved_um_;
  std::size_t bends_;
};

/// Serpentine bus layout across a rectangular die: `rows` horizontal passes
/// of length `width_um`, connected by 180-degree turnarounds (2 bends each)
/// of length `pitch_um` (the row pitch). Node tap positions are evenly
/// spaced along the unrolled path.
struct SerpentineLayout {
  double width_um = 2.0 * units::kCentimeter;   // die width (paper: 2 cm)
  double height_um = 2.0 * units::kCentimeter;  // die height (paper: 2 cm)
  std::size_t rows = 1;                         // horizontal passes

  double row_pitch_um() const;
  double straight_um() const;
  double curved_um() const;
  std::size_t bends() const;
  double total_length_um() const;

  /// Evenly spaced tap positions (along the unrolled path) for `n` nodes,
  /// starting at 0 pitch/2 in; last node sits before the terminus.
  std::vector<double> tap_positions_um(std::size_t n) const;

  Waveguide build(const WaveguideParams& params) const;
};

/// Serpentine with enough rows so that `nodes` taps in a `cols x rows_grid`
/// processor grid are all adjacent to the bus: one pass per processor row.
SerpentineLayout serpentine_for_grid(std::size_t grid_dim, double die_cm = 2.0);

}  // namespace psync::photonic
