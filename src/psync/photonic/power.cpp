#include "psync/photonic/power.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::photonic {

double mw_to_dbm(double mw) {
  if (mw <= 0.0) {
    throw SimulationError("power must be positive to express in dBm");
  }
  return 10.0 * std::log10(mw);
}

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double ratio_to_db(double ratio) {
  if (ratio <= 0.0) {
    throw SimulationError("ratio must be positive");
  }
  return 10.0 * std::log10(ratio);
}

double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace psync::photonic
