#include "psync/photonic/power.hpp"

#include "psync/common/quantity.hpp"

namespace psync::photonic {

double mw_to_dbm(double mw) {
  return ::psync::mw_to_dbm(MilliWatts(mw)).value();
}

double dbm_to_mw(double dbm) {
  return ::psync::dbm_to_mw(DbmPower(dbm)).value();
}

double ratio_to_db(double ratio) {
  return ::psync::linear_to_db(ratio).value();
}

double db_to_ratio(double db) { return ::psync::db_to_linear(DecibelsDb(db)); }

}  // namespace psync::photonic
