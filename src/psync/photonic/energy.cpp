#include "psync/photonic/energy.hpp"

#include <cmath>

#include "psync/common/check.hpp"
#include "psync/common/units.hpp"
#include "psync/photonic/power.hpp"

namespace psync::photonic {

PhotonicEnergyBreakdown pscan_energy_per_bit(const PhotonicEnergyParams& p,
                                             std::size_t nodes, double die_cm,
                                             double utilization) {
  PSYNC_CHECK(nodes > 0);
  if (utilization <= 0.0 || utilization > 1.0) {
    throw SimulationError("pscan_energy_per_bit: utilization must be in (0, 1]");
  }
  validate(p.laser);
  validate(p.ring);
  validate(p.detector);
  validate(p.wdm);

  // Size the serpentine so every row of a sqrt(nodes) grid is reached.
  const auto grid = static_cast<std::size_t>(
      std::max(1.0, std::round(std::sqrt(static_cast<double>(nodes)))));
  const SerpentineLayout layout = serpentine_for_grid(grid, die_cm);
  const Waveguide wg = layout.build(p.waveguide);

  // Total path loss end to end: waveguide + every detuned ring + terminus
  // tap + laser coupler (per span the coupler/tap recur, handled below).
  const DecibelsDb wg_and_ring_loss =
      wg.total_loss_db() +
      static_cast<double>(nodes) * p.ring.through_loss_off_db;
  const DecibelsDb per_span_fixed =
      p.detector.tap_loss_db + p.laser.coupler_loss_db;

  // Split into the minimum number of equal spans whose launch power fits
  // within max_launch_dbm.
  const DecibelsDb span_budget = p.max_launch_dbm - p.detector.sensitivity_dbm;
  std::size_t spans = 1;
  while (wg_and_ring_loss / static_cast<double>(spans) + per_span_fixed >
         span_budget) {
    ++spans;
    if (spans > 1024) {
      throw SimulationError(
          "pscan_energy_per_bit: cannot close the link even with 1024 spans; "
          "check device parameters");
    }
  }
  const DecibelsDb span_loss =
      wg_and_ring_loss / static_cast<double>(spans) + per_span_fixed;
  const DbmPower launch = p.detector.sensitivity_dbm + span_loss;
  const MilliWatts launch_mw = dbm_to_mw(launch);
  const MilliWatts laser_electrical =
      launch_mw / p.laser.wall_plug_efficiency *
      static_cast<double>(p.wdm.wavelength_count) * static_cast<double>(spans);

  const GigabitsPerSec aggregate = p.wdm.aggregate_gbps() * utilization;

  PhotonicEnergyBreakdown out;
  out.spans = spans;
  out.laser_fj_per_bit = energy_per_bit(laser_electrical, aggregate);
  out.modulator_fj_per_bit = p.ring.modulation_energy_fj_per_bit;
  out.receiver_fj_per_bit = p.detector.receive_energy_fj_per_bit;
  out.serdes_fj_per_bit = p.serdes_energy_fj_per_bit;

  // Each O-E-O repeater detects and re-modulates every bit.
  const double repeaters = static_cast<double>(spans - 1);
  out.repeater_fj_per_bit =
      repeaters * (p.detector.receive_energy_fj_per_bit +
                   p.ring.modulation_energy_fj_per_bit);

  // Each node carries one ring per wavelength (modulator bank); rings are
  // thermally tuned whether or not they are currently driving.
  const double rings =
      static_cast<double>(nodes) * static_cast<double>(p.wdm.wavelength_count);
  const MilliWatts thermal = uw_to_mw(rings * p.ring.thermal_tuning_uw);
  out.thermal_fj_per_bit = energy_per_bit(thermal, aggregate);
  return out;
}

PhotonicTransactionEnergy transaction_energy(const PhotonicEnergyParams& p,
                                             std::size_t nodes,
                                             std::int64_t span_ps,
                                             std::uint64_t payload_bits,
                                             double die_cm) {
  PSYNC_CHECK(span_ps > 0);
  PSYNC_CHECK(payload_bits > 0);
  // Reuse the per-bit model at full utilization to obtain the sized laser
  // and device constants, then re-integrate the static terms over the real
  // span: the per-bit breakdown at utilization 1 amortizes static power
  // over aggregate_rate * 1s, so static power (mW) = fJ/bit * Gb/s * 1e-3.
  const PhotonicEnergyBreakdown e = pscan_energy_per_bit(p, nodes, die_cm);
  const MilliWatts static_power =
      power_of(e.laser_fj_per_bit + e.thermal_fj_per_bit,
               p.wdm.aggregate_gbps());

  PhotonicTransactionEnergy out;
  out.static_pj = energy_over(static_power, ps_from(span_ps));
  out.dynamic_pj =
      fj_to_pj(static_cast<double>(payload_bits) *
               (e.modulator_fj_per_bit + e.receiver_fj_per_bit +
                e.serdes_fj_per_bit + e.repeater_fj_per_bit));
  out.pj_per_bit = out.total_pj().value() / static_cast<double>(payload_bits);
  return out;
}

}  // namespace psync::photonic
