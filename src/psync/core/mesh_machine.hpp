// The electronic-mesh CMP counterpart to PsyncMachine: the same distributed
// 2D FFT flow, but with every collective carried by the cycle-level
// wormhole mesh (paper Sections V-C-2 and VI).
//
// Delivery is Model I (the paper's LLMORE runs use Model I): the memory
// node streams each processor's block serially. The transpose is the mesh's
// weak point: every processor sends its row-FFT results to a single memory
// port whose interface must reassemble DRAM rows at t_p cycles per element
// (Table III). This machine also exposes the bare transpose-writeback
// experiment used to regenerate Table III at full 1024-processor scale.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "psync/core/processor.hpp"
#include "psync/core/psync_machine.hpp"  // Phase
#include "psync/mesh/energy_orion.hpp"
#include "psync/mesh/memory_interface.hpp"
#include "psync/mesh/mesh.hpp"

namespace psync::core {

struct MeshMachineParams {
  /// Processor grid dimension (grid x grid mesh).
  std::size_t grid = 4;
  std::size_t matrix_rows = 64;
  std::size_t matrix_cols = 64;
  std::size_t sample_bits = 64;
  /// Data elements per packet (one header flit extra; paper: 32 to match a
  /// 2048-bit DRAM row).
  std::uint32_t elements_per_packet = 32;
  /// Network clock, GHz (paper's energy study: 2.5 GHz; 64-bit flits).
  double clock_ghz = 2.5;
  mesh::MeshParams net;             // width/height overwritten from `grid`
  mesh::MemoryInterfaceParams mi;   // t_p, DRAM
  ExecCostParams exec;
  /// ORION-style energy constants for the activity-based accounting.
  mesh::OrionParams orion;
  /// Node holding the single memory port (default corner 0).
  std::uint32_t memory_node = 0;
};

struct TransposeRunReport {
  std::int64_t completion_cycle = 0;
  double completion_ns = 0.0;
  std::uint64_t elements = 0;
  std::uint64_t packets = 0;
  double cycles_per_element = 0.0;
  mesh::MeshActivity activity;
  double mean_packet_latency_cycles = 0.0;
};

struct MeshRunReport {
  std::vector<Phase> phases;   // in ns, same names as the P-sync machine
  double total_ns = 0.0;
  double reorg_ns = 0.0;
  std::uint64_t flops = 0;
  double gflops = 0.0;
  double compute_efficiency = 0.0;
  double max_error_vs_reference = 0.0;

  /// Energy accounting (extension experiment): ORION network energy from
  /// the recorded router/link activity of every communication phase, plus
  /// execution-unit energy.
  double comm_energy_pj = 0.0;
  double compute_energy_pj = 0.0;
  double total_energy_pj() const { return comm_energy_pj + compute_energy_pj; }
  double pj_per_flop() const {
    return flops > 0 ? total_energy_pj() / static_cast<double>(flops) : 0.0;
  }
};

class MeshMachine {
 public:
  explicit MeshMachine(MeshMachineParams params);

  const MeshMachineParams& params() const { return params_; }

  /// Table III experiment: every one of the grid^2 processors sends
  /// `elements_per_node` words to the single memory port; the interface
  /// reorders (t_p per element) and writes DRAM rows. Returns completion
  /// time in network cycles. Pure traffic run (no FFT math).
  TransposeRunReport run_transpose_writeback(std::uint32_t elements_per_node);

  /// Multi-port variant (the paper's LLMORE configuration puts memory
  /// interfaces at the corners): each node's elements are column-
  /// partitioned across `ports` corner interfaces (1, 2 or 4); completion
  /// is when the last interface finishes. Quantifies how much memory-level
  /// parallelism buys the mesh back.
  TransposeRunReport run_transpose_writeback_multiport(
      std::uint32_t elements_per_node, std::uint32_t ports);

  /// Full functional 2D FFT flow with Model I delivery; verifies the result
  /// against fft::fft2d when `verify`. Intended for small/medium sizes.
  MeshRunReport run_fft2d(const std::vector<std::complex<double>>& input,
                          bool verify = true);

  /// Final memory image (transposed layout), valid after run_fft2d.
  std::vector<std::complex<double>> result() const;

  /// Cooperative cancellation: every network stepping loop polls `token`
  /// once per cycle batch (4096 steps) and aborts with CancelledError when
  /// it has expired (the driver's per-point watchdog). nullptr disarms.
  void set_cancel(const CancelToken* token) { cancel_ = token; }

 private:
  double cycle_ns() const { return 1.0 / params_.clock_ghz; }

  /// One cycle-batch boundary inside a stepping loop: bump the caller's
  /// step counter and poll the cancel token every 4096 steps.
  void poll_cancel(std::uint64_t* steps) const {
    if ((++*steps & 0xFFF) == 0 && cancel_ != nullptr) cancel_->poll();
  }

  MeshMachineParams params_;
  std::vector<Word> image_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace psync::core
