#include "psync/core/permutation.hpp"

#include <algorithm>
#include <string>

#include "psync/common/check.hpp"

namespace psync::core {

std::vector<CpStride> coalesce_slots(const std::vector<Slot>& slots,
                                     CpAction action) {
  std::vector<CpStride> out;
  if (slots.empty()) return out;

  // Pass 1: maximal bursts of consecutive slots, split at the encoding's
  // burst-width limit so every record stays encodable.
  struct Burst {
    Slot start;
    Slot len;
  };
  std::vector<Burst> bursts;
  Slot start = slots[0];
  Slot len = 1;
  auto flush = [&](Slot s, Slot l) {
    while (l > kCpMaxBurst) {
      bursts.push_back(Burst{s, kCpMaxBurst});
      s += kCpMaxBurst;
      l -= kCpMaxBurst;
    }
    bursts.push_back(Burst{s, l});
  };
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i] <= slots[i - 1]) {
      throw SimulationError("coalesce_slots: slots must strictly increase");
    }
    if (slots[i] == slots[i - 1] + 1) {
      ++len;
    } else {
      flush(start, len);
      start = slots[i];
      len = 1;
    }
  }
  flush(start, len);

  // Pass 2: greedy constant-stride grouping of equal-length bursts.
  std::size_t i = 0;
  while (i < bursts.size()) {
    CpStride rec;
    rec.first = bursts[i].start;
    rec.burst = bursts[i].len;
    rec.stride = rec.burst;  // placeholder for count == 1
    rec.count = 1;
    rec.action = action;
    if (i + 1 < bursts.size() && bursts[i + 1].len == rec.burst) {
      const Slot stride = bursts[i + 1].start - rec.first;
      if (stride >= rec.burst && stride <= kCpMaxStride) {
        std::size_t j = i + 1;
        Slot expect = rec.first + stride;
        while (j < bursts.size() && bursts[j].len == rec.burst &&
               bursts[j].start == expect && rec.count < kCpMaxCount) {
          ++rec.count;
          expect += stride;
          ++j;
        }
        if (rec.count > 1) rec.stride = stride;
        i = j;
        out.push_back(rec);
        continue;
      }
    }
    ++i;
    out.push_back(rec);
  }
  return out;
}

CpSchedule compile_collective(const CollectiveSpec& spec, CpAction action) {
  if (spec.nodes == 0 || spec.total_slots <= 0 || !spec.elements_of ||
      !spec.slot_of) {
    throw SimulationError("compile_collective: incomplete spec");
  }
  CpSchedule sched;
  sched.total_slots = spec.total_slots;
  sched.node_cps.resize(spec.nodes);

  std::vector<std::uint8_t> claimed(
      static_cast<std::size_t>(spec.total_slots), 0);
  Slot claimed_count = 0;

  for (std::size_t i = 0; i < spec.nodes; ++i) {
    const Slot elements = spec.elements_of(i);
    std::vector<Slot> slots;
    slots.reserve(static_cast<std::size_t>(elements));
    Slot prev = -1;
    for (Slot j = 0; j < elements; ++j) {
      const Slot s = spec.slot_of(i, j);
      if (s < 0 || s >= spec.total_slots) {
        throw SimulationError("compile_collective: node " + std::to_string(i) +
                              " element " + std::to_string(j) +
                              " maps outside the schedule");
      }
      if (s <= prev) {
        throw SimulationError(
            "compile_collective: node " + std::to_string(i) +
            " element order is not slot-monotone (the SerDes streams the "
            "local buffer in order)");
      }
      auto& c = claimed[static_cast<std::size_t>(s)];
      if (c != 0) {
        throw SimulationError("compile_collective: slot " + std::to_string(s) +
                              " claimed twice (not a permutation)");
      }
      c = 1;
      ++claimed_count;
      prev = s;
      slots.push_back(s);
    }
    for (const CpStride& rec : coalesce_slots(slots, action)) {
      sched.node_cps[i].add(rec);
    }
  }
  if (claimed_count != spec.total_slots) {
    throw SimulationError(
        "compile_collective: mapping covers " + std::to_string(claimed_count) +
        " of " + std::to_string(sched.total_slots) +
        " slots (not a bijection)");
  }
  return sched;
}

CollectiveSpec transpose_spec(std::size_t nodes, Slot rows_per_node,
                              Slot row_length) {
  PSYNC_CHECK(nodes > 0 && rows_per_node > 0 && row_length > 0);
  const Slot total_rows = static_cast<Slot>(nodes) * rows_per_node;
  CollectiveSpec spec;
  spec.nodes = nodes;
  spec.total_slots = total_rows * row_length;
  spec.elements_of = [=](std::size_t) { return rows_per_node * row_length; };
  // Node-local element order is column-major over the node's block
  // (element e = c*rows_per_node + r), exactly how the P-sync machine
  // streams it; slot = c*total_rows + global_row.
  spec.slot_of = [=](std::size_t node, Slot e) {
    const Slot c = e / rows_per_node;
    const Slot r = e % rows_per_node;
    return c * total_rows + static_cast<Slot>(node) * rows_per_node + r;
  };
  return spec;
}

CollectiveSpec corner_turn_3d_spec(std::size_t nodes, Slot x_dim, Slot y_dim,
                                   Slot z_dim) {
  PSYNC_CHECK(nodes > 0 && x_dim > 0 && y_dim > 0 && z_dim > 0);
  if (x_dim % static_cast<Slot>(nodes) != 0) {
    throw SimulationError("corner_turn_3d: nodes must divide the X dimension");
  }
  const Slot planes_per_node = x_dim / static_cast<Slot>(nodes);
  CollectiveSpec spec;
  spec.nodes = nodes;
  spec.total_slots = x_dim * y_dim * z_dim;
  spec.elements_of = [=](std::size_t) {
    return planes_per_node * y_dim * z_dim;
  };
  // Output rotates axes to (Y, Z, X): slot(x, y, z) = (y*Z + z)*X + x. The
  // node streams its block in output order — x_local fastest, i.e. its
  // waveguide interface reads local memory with stride Y*Z (a strided CP on
  // the memory side, like the head node's) — so the wire order is
  // slot-monotone as the SerDes requires.
  spec.slot_of = [=](std::size_t node, Slot e) {
    const Slot x_local = e % planes_per_node;
    const Slot yz = e / planes_per_node;
    const Slot x = static_cast<Slot>(node) * planes_per_node + x_local;
    return yz * x_dim + x;
  };
  return spec;
}

CollectiveSpec submatrix_spec(std::size_t nodes, Slot row_length, Slot col0,
                              Slot cols) {
  PSYNC_CHECK(nodes > 0 && cols > 0);
  if (col0 < 0 || col0 + cols > row_length) {
    throw SimulationError("submatrix_spec: column window outside the row");
  }
  CollectiveSpec spec;
  spec.nodes = nodes;
  spec.total_slots = static_cast<Slot>(nodes) * cols;
  spec.elements_of = [=](std::size_t) { return cols; };
  // Element j is column col0+j of the node's row; the region of interest is
  // emitted column-major: slot = j*P + node.
  spec.slot_of = [=](std::size_t node, Slot j) {
    return j * static_cast<Slot>(nodes) + static_cast<Slot>(node);
  };
  return spec;
}

std::size_t total_stride_records(const CpSchedule& schedule) {
  std::size_t n = 0;
  for (const auto& cp : schedule.node_cps) n += cp.strides().size();
  return n;
}

}  // namespace psync::core
