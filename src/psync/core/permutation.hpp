// CP generation from abstract programmer constructs — the paper's first
// "future work" item ("generation of distributed communication programs
// from abstract programmer constructs").
//
// A collective is described as a *permutation*: which global slot each
// (node, element) pair occupies. From any such description this module
// compiles the per-node communication programs, coalescing explicit slot
// lists into the minimal number of strided records the waveguide-interface
// sequencer executes (and the 94-bit encoding stores).
//
// Built-in descriptors cover the paper's patterns (block, interleave,
// transpose) plus the multi-dimensional corner turns that generalize them:
// a 3D tensor held as planes across the array can be reorganized along any
// axis pair with a single SCA.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "psync/core/cp_compile.hpp"

namespace psync::core {

/// Abstract collective: node i contributes `elements_of(i)` elements; the
/// j-th element of node i (in local buffer order) occupies global slot
/// `slot_of(i, j)`. The mapping must be a bijection onto [0, total_slots).
struct CollectiveSpec {
  std::size_t nodes = 0;
  Slot total_slots = 0;
  std::function<Slot(std::size_t node)> elements_of;
  std::function<Slot(std::size_t node, Slot element)> slot_of;
};

/// Compile a CollectiveSpec into per-node CPs with `action`. Verifies the
/// bijection (throws SimulationError on overlap, out-of-range, or an
/// element order that is not slot-monotone — the SerDes streams the local
/// buffer in order, so element j must precede element j+1 on the wire).
CpSchedule compile_collective(const CollectiveSpec& spec, CpAction action);

/// Coalesce an increasing slot list into minimal strided records: greedy
/// run-length detection of bursts (consecutive slots) followed by constant-
/// stride repetition of equal-length bursts. Optimal for all the affine
/// patterns in this codebase; never worse than one record per burst.
std::vector<CpStride> coalesce_slots(const std::vector<Slot>& slots,
                                     CpAction action);

/// Affine 2D corner turn: the array holds an (R x C) matrix, node i owning
/// rows [i*R/P, (i+1)*R/P); the output stream is column-major. Equivalent
/// to compile_gather_transpose but produced through the generic compiler.
CollectiveSpec transpose_spec(std::size_t nodes, Slot rows_per_node,
                              Slot row_length);

/// 3D corner turn: a (X x Y x Z) tensor stored x-major-then-y ("planes" of
/// Y*Z), distributed so node i owns planes [i*X/P, (i+1)*X/P). The SCA
/// emits the tensor with axes rotated to (Y x Z x X): output slot of
/// element (x, y, z) is ((y * Z) + z) * X + x. One SCA performs the corner
/// turn that a 3D FFT needs between axis passes.
CollectiveSpec corner_turn_3d_spec(std::size_t nodes, Slot x_dim, Slot y_dim,
                                   Slot z_dim);

/// Gather of a strided submatrix: every node owns a full row of length C
/// but only columns [col0, col0+cols) participate, emitted column-major —
/// the "access a region of interest across the non-major dimension"
/// pattern from the paper's motivation (Section II).
CollectiveSpec submatrix_spec(std::size_t nodes, Slot row_length, Slot col0,
                              Slot cols);

/// Total stride records across a schedule (compactness metric).
std::size_t total_stride_records(const CpSchedule& schedule);

}  // namespace psync::core
