#include "psync/core/psync_machine.hpp"

#include <algorithm>
#include <cmath>

#include "psync/common/check.hpp"
#include "psync/fft/fft2d.hpp"
#include "psync/fft/four_step.hpp"
#include "psync/fft/plan_cache.hpp"

namespace psync::core {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

std::size_t reverse_bits(std::size_t v, std::size_t bits) {
  std::size_t r = 0;
  for (std::size_t b = 0; b < bits; ++b) {
    r |= ((v >> b) & 1U) << (bits - 1 - b);
  }
  return r;
}

photonic::ClockParams clock_of(const PsyncMachineParams& p) {
  photonic::ClockParams c;
  // One slot carries one sample word across the WDM group.
  c.frequency_ghz = slot_clock(GigabitsPerSec(p.waveguide_gbps),
                               static_cast<double>(p.sample_bits));
  return c;
}

}  // namespace

const Phase& PsyncRunReport::phase(const std::string& name) const {
  for (const auto& p : phases) {
    if (p.name == name) return p;
  }
  throw SimulationError("PsyncRunReport: no phase named " + name);
}

PsyncMachine::PsyncMachine(PsyncMachineParams params)
    : params_(params),
      topo_(straight_bus_topology(params.processors, params.bus_length_cm,
                                  clock_of(params))),
      engine_(topo_),
      head_(params.head) {
  const auto& p = params_;
  if (p.processors == 0) throw ConfigError("PsyncMachine: no processors");
  if (!is_pow2(p.matrix_rows) || !is_pow2(p.matrix_cols)) {
    throw ConfigError("PsyncMachine: matrix dims must be powers of two");
  }
  if (p.matrix_rows % p.processors != 0 || p.matrix_cols % p.processors != 0) {
    throw ConfigError(
        "PsyncMachine: processor count must divide both matrix dimensions");
  }
  if (!is_pow2(p.delivery_blocks) ||
      p.delivery_blocks > std::min(p.matrix_cols, p.matrix_rows)) {
    throw ConfigError(
        "PsyncMachine: delivery_blocks must be a power of two <= both dims");
  }
  procs_.reserve(p.processors);
  for (std::size_t i = 0; i < p.processors; ++i) {
    procs_.emplace_back(static_cast<std::uint32_t>(i), p.exec);
  }
}

double PsyncMachine::slot_period_ns() const {
  return static_cast<double>(engine_.clock().period_ps()) * 1e-3;
}

double PsyncMachine::begin_run(std::vector<Phase>* phases) {
  if (cancel_ != nullptr) cancel_->poll();
  collisions_ = 0;
  gap_free_ = true;
  waveguide_words_ = 0;
  fault_report_ = {};
  retry_report_ = {};
  overhead_slots_ = 0;
  head_.clear_retry_log();
  for (auto& proc : procs_) {
    proc = Processor(proc.id(), params_.exec);
  }

  channel_.reset();
  const bool want_channel =
      params_.reliability.policy != reliability::ReliabilityPolicy::kOff ||
      !params_.fault.trivial();
  if (!want_channel) return 0.0;
  channel_ = std::make_unique<reliability::ProtectedChannel>(
      params_.fault, params_.reliability);

  const std::uint64_t cal = channel_->calibration_slots();
  if (cal == 0) return 0.0;
  // The training burst occupies the bus before any collective may start.
  Phase p_cal{"lane_training", 0.0,
              static_cast<double>(cal) * slot_period_ns()};
  phases->push_back(p_cal);
  waveguide_words_ += cal;
  overhead_slots_ += cal;
  return p_cal.end_ns;
}

std::vector<Word> PsyncMachine::transmit(
    const std::vector<Word>& sent, const std::vector<Collision>* collisions,
    bool gather_side, double* tail_ns) {
  *tail_ns = 0.0;
  if (channel_ == nullptr) {
    waveguide_words_ += sent.size();
    return sent;
  }
  std::vector<std::int64_t> flagged;
  if (collisions != nullptr) {
    for (const auto& c : *collisions) {
      flagged.push_back(c.slot_a);
      flagged.push_back(c.slot_b);
    }
  }
  auto tx = channel_->transmit(sent, flagged.empty() ? nullptr : &flagged);
  waveguide_words_ += tx.wire_words;
  fault_report_.merge(tx.fault);
  retry_report_.merge(tx.retry);
  overhead_slots_ += tx.overhead_slots();
  *tail_ns = static_cast<double>(tx.overhead_slots()) * slot_period_ns();
  if (gather_side) head_.log_retry(tx.retry);
  return std::move(tx.words);
}

PsyncMachine::PassResult PsyncMachine::scatter_fft_pass(
    const std::vector<Word>& image, std::size_t rows, std::size_t cols,
    double start_ns, Phase& scatter_phase, Phase& fft_phase) {
  const std::size_t P = params_.processors;
  const std::size_t k = params_.delivery_blocks;
  const std::size_t rpp = rows / P;
  const std::size_t bs = cols / k;        // block size in samples
  const std::size_t B = rpp * bs;         // samples per proc per round
  const std::size_t log2k = ilog2(k);
  const std::size_t log2bs = ilog2(bs);
  PSYNC_CHECK(image.size() == rows * cols);
  if (cancel_ != nullptr) cancel_->poll();

  const CpSchedule sched = compile_scatter_round_robin(
      P, static_cast<Slot>(k), static_cast<Slot>(B));

  // Burst in slot order; slot s belongs to round j, processor i, offset q.
  // Block contents stream in bit-reversed-strided order so each block's
  // local sub-FFT can run on arrival (Model II, Fig. 10).
  std::vector<Word> burst(rows * cols);
  for (std::size_t s = 0; s < burst.size(); ++s) {
    const std::size_t j = s / (P * B);
    const std::size_t rem = s % (P * B);
    const std::size_t i = rem / B;
    const std::size_t q = rem % B;
    const std::size_t r = q / bs;
    const std::size_t pos = q % bs;
    const std::size_t orig_col =
        reverse_bits(j, log2k) + k * reverse_bits(pos, log2bs);
    burst[s] = image[(i * rpp + r) * cols + orig_col];
  }

  const ScatterResult sc = engine_.scatter(sched, burst);
  // The words cross the faulty PHY under the reliability policy; `tail_ns`
  // is the bus time the coding slots, replays and backoff appended. A
  // block is only usable once its framing (and any replay) resolved, so
  // the tail conservatively delays every block's ready time.
  double tail_ns = 0.0;
  const std::vector<Word> delivered = transmit(burst, nullptr, false, &tail_ns);

  std::vector<std::vector<double>> block_done(
      P, std::vector<double>(k, start_ns));
  for (auto& proc : procs_) {
    proc.data().assign(rpp * cols, {0.0, 0.0});
  }
  for (const auto& d : sc.deliveries) {
    const auto i = static_cast<std::size_t>(d.node);
    const auto e = static_cast<std::size_t>(d.element);
    const std::size_t j = e / B;
    const std::size_t q = e % B;
    const std::size_t r = q / bs;
    const std::size_t pos = q % bs;
    procs_[i].data()[r * cols + j * bs + pos] =
        unpack_sample(delivered[static_cast<std::size_t>(d.slot)]);
    const double at =
        start_ns + static_cast<double>(d.arrival_ps) * 1e-3 + tail_ns;
    block_done[i][j] = std::max(block_done[i][j], at);
  }

  PassResult out;
  out.delivery_end_ns = start_ns;
  for (const auto& d : sc.deliveries) {
    out.delivery_end_ns =
        std::max(out.delivery_end_ns,
                 start_ns + static_cast<double>(d.arrival_ps) * 1e-3 + tail_ns);
  }

  const fft::FftPlan& plan = fft::shared_plan(cols);
  out.compute_begin_ns = block_done[0][0];
  out.compute_end_ns = start_ns;
  for (std::size_t i = 0; i < P; ++i) {
    // Cycle-batch boundary: one poll per processor's compute pass.
    if (cancel_ != nullptr) cancel_->poll();
    double cursor = start_ns;
    for (std::size_t j = 0; j < k; ++j) {
      cursor = std::max(cursor, block_done[i][j]);
      for (std::size_t r = 0; r < rpp; ++r) {
        const double ns =
            procs_[i].fft_row_stages(plan, r, cols, 0, log2bs, j * bs, bs);
        cursor += ns;
        out.busy_ns += ns;
      }
    }
    for (std::size_t r = 0; r < rpp; ++r) {
      const double ns =
          procs_[i].fft_row_stages(plan, r, cols, log2bs, log2bs + log2k);
      cursor += ns;
      out.busy_ns += ns;
    }
    out.compute_end_ns = std::max(out.compute_end_ns, cursor);
  }

  scatter_phase.start_ns = start_ns;
  scatter_phase.end_ns = out.delivery_end_ns;
  fft_phase.start_ns = out.compute_begin_ns;
  fft_phase.end_ns = out.compute_end_ns;
  return out;
}

double PsyncMachine::gather_to_dram(
    const CpSchedule& sched, const std::vector<std::vector<Word>>& node_data,
    double start_ns, Phase& phase) {
  if (cancel_ != nullptr) cancel_->poll();
  const GatherResult g = engine_.gather(sched, node_data);
  collisions_ += g.collisions.size();
  gap_free_ = gap_free_ && g.gap_free;
  const auto words = g.words();
  // The head node decodes the landed stream; collision-flagged or CRC-bad
  // blocks are re-requested from the array, extending the phase.
  double tail_ns = 0.0;
  const std::vector<Word> delivered =
      transmit(words, &g.collisions, /*gather_side=*/true, &tail_ns);
  const StreamReport rep = head_.writeback(delivered, 0, params_.sample_bits);
  const double span_ns = static_cast<double>(g.span_ps) * 1e-3 + tail_ns;
  const double dur = std::max(span_ns, rep.dram_ns);
  phase.start_ns = start_ns;
  phase.end_ns = start_ns + dur;
  return phase.end_ns;
}

double PsyncMachine::reorg_and_second_pass(std::size_t rows, std::size_t cols,
                                           double pass1_end,
                                           std::vector<Phase>& phases,
                                           double* reorg_ns,
                                           PassResult* pass2_out) {
  const std::size_t P = params_.processors;
  const std::size_t rpp = rows / P;
  const std::size_t cpp = cols / P;

  // ---- Transpose SCA gather ----
  Phase p_tr{"sca_transpose", 0, 0};
  {
    const CpSchedule sched = compile_gather_transpose(
        P, static_cast<Slot>(rpp), static_cast<Slot>(cols));
    std::vector<std::vector<Word>> node_data(P);
    for (std::size_t i = 0; i < P; ++i) {
      node_data[i].resize(rpp * cols);
      for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rpp; ++r) {
          node_data[i][c * rpp + r] =
              pack_sample(procs_[i].data()[r * cols + c]);
        }
      }
    }
    gather_to_dram(sched, node_data, pass1_end, p_tr);
  }

  // ---- Second pass: the image is now (cols x rows) row-major ----
  Phase p_sc2{"scatter_cols", 0, 0};
  Phase p_fft2{"col_ffts", 0, 0};
  const PassResult pass2 =
      scatter_fft_pass(head_.image(), cols, rows, p_tr.end_ns, p_sc2, p_fft2);
  if (pass2_out != nullptr) *pass2_out = pass2;

  // ---- Final writeback (block gather of the cols x rows result) ----
  Phase p_wb{"sca_writeback", 0, 0};
  {
    const CpSchedule sched =
        compile_gather_blocks(P, static_cast<Slot>(cpp * rows));
    std::vector<std::vector<Word>> node_data(P);
    for (std::size_t i = 0; i < P; ++i) {
      node_data[i].resize(cpp * rows);
      for (std::size_t e = 0; e < cpp * rows; ++e) {
        node_data[i][e] = pack_sample(procs_[i].data()[e]);
      }
    }
    gather_to_dram(sched, node_data, pass2.compute_end_ns, p_wb);
  }

  phases.push_back(p_tr);
  phases.push_back(p_sc2);
  phases.push_back(p_fft2);
  phases.push_back(p_wb);
  *reorg_ns = p_tr.duration_ns() + p_sc2.duration_ns();
  return p_wb.end_ns;
}

namespace {

void finish_report(PsyncRunReport* report, const std::vector<Processor>& procs,
                   std::size_t processors, double total_ns,
                   std::uint64_t collisions, bool gap_free) {
  report->total_ns = total_ns;
  report->sca_collisions = collisions;
  report->sca_gap_free = gap_free;

  fft::OpCount total_ops;
  double busy = 0.0;
  for (const auto& proc : procs) {
    total_ops += proc.ops();
    busy += proc.busy_ns();
  }
  // Flop accounting: the kernels track real multiplies and adds exactly
  // (a radix-2 butterfly is 4 + 6, a twiddle scaling 4 + 2).
  report->flops = total_ops.real_mults + total_ops.real_adds;
  report->gflops =
      total_ns > 0 ? static_cast<double>(report->flops) / total_ns : 0.0;
  report->compute_efficiency =
      total_ns > 0 ? busy / (static_cast<double>(processors) * total_ns) : 0.0;
}

double normalized_max_error(const std::vector<std::complex<double>>& got,
                            const std::vector<std::complex<double>>& ref) {
  PSYNC_CHECK(got.size() == ref.size());
  double max_abs = 1e-30;
  for (const auto& v : ref) max_abs = std::max(max_abs, std::abs(v));
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - ref[i]));
  }
  return max_err / max_abs;
}

}  // namespace

void PsyncMachine::apply_energy(PsyncRunReport* report) const {
  const photonic::PhotonicEnergyBreakdown e = photonic::pscan_energy_per_bit(
      params_.photonics, params_.processors);
  const double bits = static_cast<double>(waveguide_words_) *
                      static_cast<double>(params_.sample_bits);
  report->comm_energy_pj = (bits * e.total_pj_per_bit()).value();
  fft::OpCount ops;
  for (const auto& proc : procs_) ops += proc.ops();
  report->compute_energy_pj = params_.exec.compute_energy_pj(ops);
}

void PsyncMachine::apply_reliability(PsyncRunReport* report) const {
  report->fault = fault_report_;
  report->retry = retry_report_;
  if (channel_ != nullptr) report->lanes = channel_->lanes();
  report->reliability_overhead_slots = overhead_slots_;
  report->reliability_overhead_ns =
      static_cast<double>(overhead_slots_) * slot_period_ns();
}

PsyncRunReport PsyncMachine::run_fft2d(
    const std::vector<std::complex<double>>& input, bool verify) {
  const std::size_t P = params_.processors;
  const std::size_t R = params_.matrix_rows;
  const std::size_t C = params_.matrix_cols;
  PSYNC_CHECK(input.size() == R * C);

  PsyncRunReport report;
  const double t0 = begin_run(&report.phases);

  head_.image().resize(R * C);
  for (std::size_t i = 0; i < input.size(); ++i) {
    head_.image()[i] = pack_sample(input[i]);
  }

  Phase p_sc1{"scatter_rows", 0, 0};
  Phase p_fft1{"row_ffts", 0, 0};
  const PassResult pass1 =
      scatter_fft_pass(head_.image(), R, C, t0, p_sc1, p_fft1);
  report.phases.push_back(p_sc1);
  report.phases.push_back(p_fft1);

  const double end = reorg_and_second_pass(R, C, pass1.compute_end_ns,
                                           report.phases, &report.reorg_ns,
                                           nullptr);
  finish_report(&report, procs_, P, end, collisions_, gap_free_);
  apply_energy(&report);
  apply_reliability(&report);

  if (verify) {
    std::vector<std::complex<double>> ref(input);
    fft::fft2d(ref, R, C, /*restore_layout=*/false);
    report.max_error_vs_reference = normalized_max_error(result(), ref);
  }
  return report;
}

PsyncRunReport PsyncMachine::run_fft1d(
    const std::vector<std::complex<double>>& input, bool verify) {
  const std::size_t P = params_.processors;
  const std::size_t R = params_.matrix_rows;  // four-step row count
  const std::size_t C = params_.matrix_cols;  // four-step column count
  const std::size_t N = R * C;
  PSYNC_CHECK(input.size() == N);

  PsyncRunReport report;
  const double t0 = begin_run(&report.phases);

  // DRAM holds x in natural order; the head node's CP streams the strided
  // four-step view M[r][c] = x[c*R + r]. Build that view as the pass-1
  // image (the strided access is the head node's job, not the processors').
  head_.image().resize(N);
  for (std::size_t i = 0; i < input.size(); ++i) {
    head_.image()[i] = pack_sample(input[i]);
  }
  std::vector<Word> view(N);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      view[r * C + c] = head_.image()[c * R + r];
    }
  }

  Phase p_sc1{"scatter_rows", 0, 0};
  Phase p_fft1{"row_ffts", 0, 0};
  const PassResult pass1 = scatter_fft_pass(view, R, C, t0, p_sc1, p_fft1);
  report.phases.push_back(p_sc1);
  report.phases.push_back(p_fft1);

  // ---- Twiddle scaling, entirely node-local ----
  Phase p_tw{"twiddle", pass1.compute_end_ns, pass1.compute_end_ns};
  const std::size_t rpp = R / P;
  double tw_max = 0.0;
  for (std::size_t i = 0; i < P; ++i) {
    tw_max = std::max(
        tw_max, procs_[i].apply_four_step_twiddles(rpp, C, i * rpp, R));
  }
  p_tw.end_ns = p_tw.start_ns + tw_max;
  report.phases.push_back(p_tw);

  const double end = reorg_and_second_pass(R, C, p_tw.end_ns, report.phases,
                                           &report.reorg_ns, nullptr);
  finish_report(&report, procs_, P, end, collisions_, gap_free_);
  apply_energy(&report);
  apply_reliability(&report);

  if (verify) {
    std::vector<std::complex<double>> ref(input);
    const fft::FftPlan& plan = fft::shared_plan(N);
    plan.forward(ref);
    report.max_error_vs_reference = normalized_max_error(result_1d(), ref);
  }
  return report;
}

PsyncMachine::PipelineReport PsyncMachine::pipeline_estimate(
    const PsyncRunReport& run) {
  PipelineReport rep;
  rep.latency_ns = run.total_ns;
  // Collective phases occupy the shared waveguide serially.
  for (const auto& ph : run.phases) {
    if (ph.name.rfind("scatter", 0) == 0 || ph.name.rfind("sca_", 0) == 0) {
      rep.bus_busy_ns += ph.duration_ns();
    }
  }
  // Per-processor compute obligation per frame: the run's total busy time
  // divided across the array (compute phases' wall windows include Model I
  // delivery stagger, which pipelining hides).
  rep.compute_busy_ns = run.compute_efficiency * run.total_ns;
  rep.interval_ns = std::max(rep.bus_busy_ns, rep.compute_busy_ns);
  rep.bus_bound = rep.bus_busy_ns >= rep.compute_busy_ns;
  rep.frames_per_sec =
      rep.interval_ns > 0.0 ? 1e9 / rep.interval_ns : 0.0;
  return rep;
}

std::vector<std::complex<double>> PsyncMachine::result() const {
  std::vector<std::complex<double>> out;
  out.reserve(head_.image().size());
  for (Word w : head_.image()) out.push_back(unpack_sample(w));
  return out;
}

std::vector<std::complex<double>> PsyncMachine::result_1d() const {
  // The final image is the pass-2 result (C x R row-major = matrix_t).
  const auto mt = result();
  return fft::four_step_store(mt, params_.matrix_rows, params_.matrix_cols);
}

}  // namespace psync::core
