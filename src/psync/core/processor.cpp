#include "psync/core/processor.hpp"

#include <bit>
#include <cstring>

#include "psync/common/check.hpp"
#include "psync/fft/four_step.hpp"
#include "psync/fft/plan_cache.hpp"

namespace psync::core {

Word pack_sample(std::complex<double> v) {
  const float re = static_cast<float>(v.real());
  const float im = static_cast<float>(v.imag());
  const auto re_bits = std::bit_cast<std::uint32_t>(re);
  const auto im_bits = std::bit_cast<std::uint32_t>(im);
  return (static_cast<Word>(re_bits) << 32) | im_bits;
}

std::complex<double> unpack_sample(Word w) {
  const auto re = std::bit_cast<float>(static_cast<std::uint32_t>(w >> 32));
  const auto im = std::bit_cast<float>(static_cast<std::uint32_t>(w & 0xFFFFFFFFULL));
  return {static_cast<double>(re), static_cast<double>(im)};
}

Processor::Processor(std::uint32_t id, ExecCostParams exec)
    : id_(id), exec_(exec) {}

double Processor::fft_rows(std::size_t rows, std::size_t cols) {
  PSYNC_CHECK(data_.size() >= rows * cols);
  const fft::FftPlan& plan = fft::shared_plan(cols);
  fft::OpCount total;
  for (std::size_t r = 0; r < rows; ++r) {
    total += plan.forward(
        std::span<fft::Complex>(data_).subspan(r * cols, cols));
  }
  ops_ += total;
  const double ns = exec_.compute_ns(total);
  busy_ns_ += ns;
  return ns;
}

double Processor::apply_four_step_twiddles(std::size_t rows, std::size_t cols,
                                           std::size_t global_row0,
                                           std::size_t total_rows) {
  PSYNC_CHECK(data_.size() >= rows * cols);
  const std::size_t n = total_rows * cols;
  // Index the shared root table directly: (global_row0 + r) * q < n for all
  // in-range rows, and one fetch per call avoids the cache lock per element.
  const auto& roots = fft::shared_roots(n);
  fft::OpCount ops;
  for (std::size_t r = 0; r < rows; ++r) {
    fft::Complex* row = data_.data() + r * cols;
    const std::size_t gr = global_row0 + r;
    for (std::size_t q = 0; q < cols; ++q) {
      const fft::Complex w = roots[gr * q];
      const double xr = row[q].real();
      const double xi = row[q].imag();
      row[q] = fft::Complex(xr * w.real() - xi * w.imag(),
                            xr * w.imag() + xi * w.real());
    }
  }
  ops.real_mults += 4 * rows * cols;
  ops.real_adds += 2 * rows * cols;
  ops_ += ops;
  const double ns = exec_.compute_ns(ops);
  busy_ns_ += ns;
  return ns;
}

double Processor::fft_row_stages(const fft::FftPlan& plan, std::size_t row,
                                 std::size_t cols, std::size_t first_stage,
                                 std::size_t last_stage,
                                 std::size_t block_offset,
                                 std::size_t block_size, bool prepare) {
  PSYNC_CHECK(plan.size() == cols);
  PSYNC_CHECK(data_.size() >= (row + 1) * cols);
  auto span = std::span<fft::Complex>(data_).subspan(row * cols, cols);
  if (prepare) plan.bit_reverse(span);
  const fft::OpCount ops =
      plan.run_stages(span, first_stage, last_stage, block_offset, block_size);
  ops_ += ops;
  const double ns = exec_.compute_ns(ops);
  busy_ns_ += ns;
  return ns;
}

}  // namespace psync::core
