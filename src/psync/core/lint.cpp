#include "psync/core/lint.hpp"

#include <cmath>
#include <sstream>

#include "psync/common/check.hpp"
#include "psync/common/quantity.hpp"
#include "psync/photonic/ber.hpp"

namespace psync::core {

std::size_t LintReport::errors() const {
  std::size_t n = 0;
  for (const auto& i : issues) n += (i.severity == LintSeverity::kError);
  return n;
}

std::size_t LintReport::warnings() const {
  std::size_t n = 0;
  for (const auto& i : issues) n += (i.severity == LintSeverity::kWarning);
  return n;
}

std::string LintReport::to_string() const {
  std::ostringstream os;
  for (const auto& i : issues) {
    const char* sev = i.severity == LintSeverity::kError     ? "error"
                      : i.severity == LintSeverity::kWarning ? "warning"
                                                             : "info";
    os << sev;
    if (i.node >= 0) os << " [node " << i.node << "]";
    os << ": " << i.message << '\n';
  }
  os << (ok ? "schedule OK" : "schedule INVALID") << " (utilization "
     << utilization * 100.0 << "%)\n";
  return os.str();
}

LintReport lint_transaction(const PscanTopology& topology,
                            const CpSchedule& schedule, CpAction action,
                            const std::vector<std::size_t>& data_sizes) {
  LintReport rep;
  auto issue = [&](LintSeverity sev, std::int32_t node, std::string msg) {
    rep.issues.push_back(LintIssue{sev, node, std::move(msg)});
    if (sev == LintSeverity::kError) rep.ok = false;
  };

  // Topology.
  try {
    topology.validate();
  } catch (const SimulationError& e) {
    issue(LintSeverity::kError, -1, std::string("topology: ") + e.what());
    return rep;
  }
  if (schedule.nodes() != topology.nodes()) {
    issue(LintSeverity::kError, -1,
          "schedule has " + std::to_string(schedule.nodes()) +
              " nodes but the topology has " +
              std::to_string(topology.nodes()));
    return rep;
  }

  // Per-node programs: self-overlap, bounds, encodability, data sizes.
  // Slot ownership is tracked with the strong NodeId index so a slot number
  // can never be mistaken for a node number in this bookkeeping.
  constexpr NodeId kUnclaimed{-1};
  std::vector<NodeId> owner(
      static_cast<std::size_t>(std::max<Slot>(schedule.total_slots, 0)),
      kUnclaimed);
  Slot claimed = 0;
  for (std::size_t i = 0; i < schedule.nodes(); ++i) {
    const NodeId node_id{static_cast<std::int32_t>(i)};
    const std::int32_t node = node_id.value();
    std::vector<CpEntry> entries;
    try {
      entries = schedule.node_cps[i].entries();
    } catch (const SimulationError& e) {
      issue(LintSeverity::kError, node, e.what());
      continue;
    }
    try {
      (void)schedule.node_cps[i].encode();
    } catch (const SimulationError& e) {
      issue(LintSeverity::kError, node,
            std::string("not encodable in 94-bit records: ") + e.what());
    }
    Slot my_slots = 0;
    for (const auto& e : entries) {
      if (e.action != action) continue;
      my_slots += e.length;
      for (Slot s = e.begin; s < e.end(); ++s) {
        if (s < 0 || s >= schedule.total_slots) {
          issue(LintSeverity::kError, node,
                "claims slot " + std::to_string(s) + " outside [0, " +
                    std::to_string(schedule.total_slots) + ")");
          continue;
        }
        auto& o = owner[static_cast<std::size_t>(s)];
        if (o != kUnclaimed) {
          issue(LintSeverity::kError, node,
                "slot " + std::to_string(s) + " already claimed by node " +
                    std::to_string(o.value()));
        } else {
          o = node_id;
          ++claimed;
        }
      }
    }
    if (!data_sizes.empty()) {
      if (i >= data_sizes.size()) {
        issue(LintSeverity::kError, node, "no data size supplied");
      } else if (static_cast<Slot>(data_sizes[i]) != my_slots) {
        issue(LintSeverity::kError, node,
              "CP moves " + std::to_string(my_slots) + " slots but " +
                  std::to_string(data_sizes[i]) + " words were supplied");
      }
    }
  }

  rep.utilization =
      schedule.total_slots > 0
          ? static_cast<double>(claimed) /
                static_cast<double>(schedule.total_slots)
          : 0.0;
  if (claimed < schedule.total_slots) {
    issue(LintSeverity::kWarning, -1,
          std::to_string(schedule.total_slots - claimed) +
              " idle slots (utilization " +
              std::to_string(rep.utilization * 100.0) + "%)");
  }

  // Optical budget and projected reliability.
  if (topology.budget.has_value()) {
    photonic::LinkBudgetParams p = *topology.budget;
    const double length_cm =
        units::um_to_cm(topology.terminus_um - topology.head_um);
    const double n = static_cast<double>(topology.nodes());
    p.modulator_pitch_cm = n > 0 ? length_cm / n : length_cm;
    const DecibelsDb margin =
        photonic::worst_case_margin_db(p, topology.nodes());
    rep.worst_margin_db = margin.value();
    rep.has_margin = true;
    if (margin < DecibelsDb(0.0)) {
      issue(LintSeverity::kError, -1,
            "link budget does not close: worst-case margin " +
                std::to_string(rep.worst_margin_db) + " dB");
    } else {
      const double bits =
          static_cast<double>(schedule.total_slots) * 64.0;
      const double errors = photonic::expected_bit_errors(
          margin, static_cast<std::uint64_t>(bits));
      if (errors > 1e-3) {
        issue(LintSeverity::kWarning, -1,
              "thin optical margin (" + std::to_string(rep.worst_margin_db) +
                  " dB): expect ~" + std::to_string(errors) +
                  " bit errors in this transaction");
      }
    }
  }

  return rep;
}

}  // namespace psync::core
