#include "psync/core/arbiter.hpp"

#include "psync/common/check.hpp"

namespace psync::core {

CommProgram shift_program(const CommProgram& cp, Slot offset) {
  PSYNC_CHECK(offset >= 0);
  CommProgram out;
  for (CpStride s : cp.strides()) {
    s.first += offset;
    out.add(s);
  }
  return out;
}

CpSchedule shift_schedule(const CpSchedule& schedule, Slot offset) {
  CpSchedule out;
  out.total_slots = schedule.total_slots + offset;
  out.node_cps.reserve(schedule.node_cps.size());
  for (const auto& cp : schedule.node_cps) {
    out.node_cps.push_back(shift_program(cp, offset));
  }
  return out;
}

SlotGrant SlotArbiter::reserve(Slot length, std::string owner) {
  if (length <= 0) {
    throw SimulationError("SlotArbiter: grant length must be positive");
  }
  SlotGrant g{next_, length, std::move(owner)};
  next_ += length;
  grants_.push_back(g);
  return g;
}

CpSchedule SlotArbiter::compose(const CpSchedule& local,
                                const SlotGrant& grant) const {
  if (local.total_slots > grant.length) {
    throw SimulationError("SlotArbiter: schedule of " +
                          std::to_string(local.total_slots) +
                          " slots does not fit grant of " +
                          std::to_string(grant.length));
  }
  CpSchedule out = shift_schedule(local, grant.base);
  out.total_slots = next_;
  return out;
}

CpSchedule SlotArbiter::merge(const std::vector<CpSchedule>& parts) const {
  if (parts.empty()) {
    throw SimulationError("SlotArbiter: nothing to merge");
  }
  CpSchedule out;
  out.total_slots = next_;
  out.node_cps.resize(parts.front().node_cps.size());
  for (const auto& part : parts) {
    if (part.node_cps.size() != out.node_cps.size()) {
      throw SimulationError("SlotArbiter: node count mismatch in merge");
    }
    for (std::size_t i = 0; i < part.node_cps.size(); ++i) {
      for (const CpStride& s : part.node_cps[i].strides()) {
        out.node_cps[i].add(s);
      }
    }
  }
  // Disjointness proof: both actions, across all transactions.
  (void)slot_owners(out, CpAction::kDrive);
  (void)slot_owners(out, CpAction::kListen);
  return out;
}

}  // namespace psync::core
