#include "psync/core/segmented.hpp"

#include <algorithm>
#include <string>

#include "psync/common/check.hpp"

namespace psync::core {

void SegmentedBusTopology::validate() const {
  if (node_pos_um.empty()) {
    throw SimulationError("SegmentedBusTopology: no nodes");
  }
  for (std::size_t i = 1; i < node_pos_um.size(); ++i) {
    if (node_pos_um[i] <= node_pos_um[i - 1]) {
      throw SimulationError("SegmentedBusTopology: node taps must increase");
    }
  }
  for (std::size_t i = 1; i < repeater_pos_um.size(); ++i) {
    if (repeater_pos_um[i] <= repeater_pos_um[i - 1]) {
      throw SimulationError("SegmentedBusTopology: repeaters must increase");
    }
  }
  for (double r : repeater_pos_um) {
    for (double n : node_pos_um) {
      if (r == n) {
        throw SimulationError(
            "SegmentedBusTopology: repeater coincides with a node tap");
      }
    }
    if (r >= terminus_um || r <= 0.0) {
      throw SimulationError("SegmentedBusTopology: repeater outside the bus");
    }
  }
  if (terminus_um < node_pos_um.back()) {
    throw SimulationError("SegmentedBusTopology: terminus upstream of nodes");
  }
  if (repeater_latency_ps < 0) {
    throw SimulationError("SegmentedBusTopology: negative repeater latency");
  }
}

std::size_t SegmentedBusTopology::repeaters_before(double x_um) const {
  std::size_t n = 0;
  for (double r : repeater_pos_um) {
    if (r < x_um) ++n;
  }
  return n;
}

SegmentedScaEngine::SegmentedScaEngine(SegmentedBusTopology topo)
    : topo_(std::move(topo)), clock_(topo_.clock) {
  topo_.validate();
  check_budget();
}

void SegmentedScaEngine::check_budget() const {
  if (!topo_.budget.has_value()) return;
  // Each span must close on its own optical power (repeaters relaunch).
  std::vector<double> cuts;
  cuts.push_back(0.0);
  for (double r : topo_.repeater_pos_um) cuts.push_back(r);
  cuts.push_back(topo_.terminus_um);
  for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
    const double lo = cuts[s];
    const double hi = cuts[s + 1];
    std::size_t taps = 0;
    for (double x : topo_.node_pos_um) {
      if (x > lo && x < hi) ++taps;
    }
    if (taps == 0) continue;
    photonic::LinkBudgetParams p = *topo_.budget;
    p.modulator_pitch_cm =
        units::um_to_cm(hi - lo) / static_cast<double>(taps);
    if (photonic::max_segments(p) < taps) {
      throw SimulationError("SegmentedScaEngine: span " + std::to_string(s) +
                            " does not close its link budget for " +
                            std::to_string(taps) + " taps");
    }
  }
}

TimePs SegmentedScaEngine::perceived_edge_ps(std::size_t node, Slot s) const {
  PSYNC_CHECK(node < topo_.nodes());
  const double x = topo_.node_pos_um[node];
  return clock_.perceived_edge_ps(x, s) +
         static_cast<TimePs>(topo_.repeaters_before(x)) *
             topo_.repeater_latency_ps;
}

TimePs SegmentedScaEngine::slot_arrival_ps(Slot s) const {
  return clock_.perceived_edge_ps(topo_.terminus_um, s) +
         static_cast<TimePs>(topo_.repeater_pos_um.size()) *
             topo_.repeater_latency_ps;
}

GatherResult SegmentedScaEngine::gather(
    const CpSchedule& schedule, const std::vector<std::vector<Word>>& node_data,
    bool strict) const {
  if (schedule.nodes() != topo_.nodes() || node_data.size() != topo_.nodes()) {
    throw SimulationError("segmented gather: node count mismatch");
  }
  const TimePs period = clock_.period_ps();
  GatherResult out;
  for (std::size_t i = 0; i < topo_.nodes(); ++i) {
    const double x = topo_.node_pos_um[i];
    const auto downstream =
        topo_.repeater_pos_um.size() - topo_.repeaters_before(x);
    std::size_t element = 0;
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != CpAction::kDrive) continue;
      for (Slot s = e.begin; s < e.end(); ++s, ++element) {
        if (element >= node_data[i].size()) {
          throw SimulationError("segmented gather: node " + std::to_string(i) +
                                " CP drives more slots than it has data");
        }
        SlotRecord rec;
        rec.slot = s;
        rec.word = node_data[i][element];
        rec.source = static_cast<std::int32_t>(i);
        rec.modulated_ps = perceived_edge_ps(i, s);
        rec.arrival_ps =
            rec.modulated_ps +
            (clock_.flight_ps(topo_.terminus_um) - clock_.flight_ps(x)) +
            static_cast<TimePs>(downstream) * topo_.repeater_latency_ps;
        out.stream.push_back(rec);
      }
    }
    if (strict && element != node_data[i].size()) {
      throw SimulationError("segmented gather: node " + std::to_string(i) +
                            " data/CP size mismatch");
    }
  }
  std::sort(out.stream.begin(), out.stream.end(),
            [](const SlotRecord& a, const SlotRecord& b) {
              if (a.arrival_ps != b.arrival_ps) return a.arrival_ps < b.arrival_ps;
              return a.slot < b.slot;
            });
  for (std::size_t i = 1; i < out.stream.size(); ++i) {
    const auto& a = out.stream[i - 1];
    const auto& b = out.stream[i];
    const TimePs overlap = (a.arrival_ps + period) - b.arrival_ps;
    if (overlap > 0 && a.source != b.source) {
      out.collisions.push_back(
          Collision{a.source, b.source, a.slot, b.slot, overlap});
    }
  }
  if (strict && !out.collisions.empty()) {
    throw SimulationError("segmented gather: waveguide collision");
  }
  if (!out.stream.empty()) {
    out.first_arrival_ps = out.stream.front().arrival_ps;
    TimePs first_mod = out.stream.front().modulated_ps;
    for (const auto& r : out.stream) {
      first_mod = std::min(first_mod, r.modulated_ps);
    }
    out.span_ps = (out.stream.back().arrival_ps + period) - first_mod;
    out.gap_free = true;
    for (std::size_t i = 1; i < out.stream.size(); ++i) {
      if (out.stream[i].arrival_ps - out.stream[i - 1].arrival_ps != period) {
        out.gap_free = false;
        break;
      }
    }
    const TimePs window =
        (out.stream.back().arrival_ps - out.stream.front().arrival_ps) + period;
    out.utilization = static_cast<double>(out.stream.size()) *
                      static_cast<double>(period) /
                      static_cast<double>(window);
  }
  return out;
}

ScatterResult SegmentedScaEngine::scatter(const CpSchedule& schedule,
                                          const std::vector<Word>& burst,
                                          bool strict) const {
  if (schedule.nodes() != topo_.nodes()) {
    throw SimulationError("segmented scatter: node count mismatch");
  }
  ScatterResult out;
  out.received.resize(topo_.nodes());

  std::vector<std::int32_t> owner(burst.size(), -1);
  for (std::size_t i = 0; i < topo_.nodes(); ++i) {
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != CpAction::kListen) continue;
      for (Slot s = e.begin; s < e.end(); ++s) {
        if (s < 0 || static_cast<std::size_t>(s) >= burst.size()) {
          throw SimulationError("segmented scatter: CP beyond the burst");
        }
        auto& o = owner[static_cast<std::size_t>(s)];
        if (o != -1) {
          throw SimulationError("segmented scatter: slot claimed twice");
        }
        o = static_cast<std::int32_t>(i);
      }
    }
  }
  std::vector<std::size_t> next_element(topo_.nodes(), 0);
  for (std::size_t s = 0; s < burst.size(); ++s) {
    const std::int32_t node = owner[s];
    if (node < 0) {
      out.unclaimed_slots.push_back(static_cast<Slot>(s));
      continue;
    }
    DeliveryRecord rec;
    rec.slot = static_cast<Slot>(s);
    rec.word = burst[s];
    rec.node = node;
    rec.element =
        static_cast<std::int64_t>(next_element[static_cast<std::size_t>(node)]++);
    rec.arrival_ps = perceived_edge_ps(static_cast<std::size_t>(node),
                                       static_cast<Slot>(s));
    out.deliveries.push_back(rec);
    out.received[static_cast<std::size_t>(node)].push_back(burst[s]);
  }
  if (strict && !out.unclaimed_slots.empty()) {
    throw SimulationError("segmented scatter: unclaimed slots");
  }
  if (!out.deliveries.empty()) {
    TimePs lo = out.deliveries.front().arrival_ps;
    TimePs hi = lo;
    for (const auto& d : out.deliveries) {
      lo = std::min(lo, d.arrival_ps);
      hi = std::max(hi, d.arrival_ps);
    }
    out.span_ps = (hi - lo) + clock_.period_ps();
  }
  return out;
}

SegmentedBusTopology segmented_bus_topology(std::size_t nodes,
                                            std::size_t spans, double span_cm,
                                            photonic::ClockParams clock) {
  PSYNC_CHECK(nodes > 0 && spans > 0 && span_cm > 0.0);
  SegmentedBusTopology topo;
  topo.clock = clock;
  const double total_um = units::cm_to_um(span_cm) * static_cast<double>(spans);
  const double pitch = total_um / static_cast<double>(nodes + 1);
  for (std::size_t i = 0; i < nodes; ++i) {
    topo.node_pos_um.push_back(pitch * static_cast<double>(i + 1));
  }
  for (std::size_t s = 1; s < spans; ++s) {
    double r = units::cm_to_um(span_cm) * static_cast<double>(s);
    // Nudge off any node tap.
    for (double n : topo.node_pos_um) {
      if (n == r) r += pitch * 0.01;
    }
    topo.repeater_pos_um.push_back(r);
  }
  topo.terminus_um = total_um;
  return topo;
}

}  // namespace psync::core
