#include "psync/core/comm_program.hpp"

#include <algorithm>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync::core {

std::vector<CpEntry> CpStride::expand() const {
  PSYNC_CHECK(burst > 0);
  PSYNC_CHECK(count > 0);
  PSYNC_CHECK(first >= 0);
  std::vector<CpEntry> out;
  out.reserve(static_cast<std::size_t>(count));
  for (Slot b = 0; b < count; ++b) {
    out.push_back(CpEntry{first + b * stride, burst, action});
  }
  return out;
}

CommProgram::CommProgram(std::vector<CpStride> strides)
    : strides_(std::move(strides)) {}

void CommProgram::add(const CpStride& s) {
  if (s.burst <= 0 || s.count <= 0 || s.first < 0) {
    throw SimulationError("CommProgram: stride fields must be positive");
  }
  if (s.count > 1 && s.stride < s.burst) {
    throw SimulationError(
        "CommProgram: stride smaller than burst overlaps itself");
  }
  strides_.push_back(s);
}

std::vector<CpEntry> CommProgram::entries() const {
  std::vector<CpEntry> out;
  for (const auto& s : strides_) {
    auto e = s.expand();
    out.insert(out.end(), e.begin(), e.end());
  }
  std::sort(out.begin(), out.end(),
            [](const CpEntry& a, const CpEntry& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].begin < out[i - 1].end()) {
      throw SimulationError("CommProgram: entries overlap at slot " +
                            std::to_string(out[i].begin));
    }
  }
  return out;
}

Slot CommProgram::slot_count(CpAction action) const {
  Slot total = 0;
  for (const auto& s : strides_) {
    if (s.action == action) total += s.slots();
  }
  return total;
}

Slot CommProgram::horizon() const {
  Slot h = 0;
  for (const auto& s : strides_) h = std::max(h, s.end());
  return h;
}

namespace {

void check_field(Slot v, Slot max, const char* name) {
  if (v < 0 || v > max) {
    throw SimulationError(std::string("CommProgram encode: field '") + name +
                          "' = " + std::to_string(v) + " out of range");
  }
}

void put_bits(std::vector<std::uint8_t>& bytes, std::size_t& bitpos,
              std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t byte = (bitpos + i) / 8;
    const std::size_t bit = (bitpos + i) % 8;
    if (byte >= bytes.size()) bytes.push_back(0);
    if ((value >> i) & 1U) bytes[byte] = static_cast<std::uint8_t>(bytes[byte] | (1U << bit));
  }
  bitpos += width;
}

std::uint64_t get_bits(const std::vector<std::uint8_t>& bytes,
                       std::size_t& bitpos, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t byte = (bitpos + i) / 8;
    const std::size_t bit = (bitpos + i) % 8;
    if (byte >= bytes.size()) {
      throw SimulationError("CommProgram decode: truncated stream");
    }
    if ((bytes[byte] >> bit) & 1U) v |= (std::uint64_t{1} << i);
  }
  bitpos += width;
  return v;
}

}  // namespace

std::vector<std::uint8_t> CommProgram::encode() const {
  std::vector<std::uint8_t> bytes;
  std::size_t bitpos = 0;
  put_bits(bytes, bitpos, strides_.size(), 16);
  for (const auto& s : strides_) {
    check_field(s.first, kCpMaxFirst, "first");
    check_field(s.burst, kCpMaxBurst, "burst");
    check_field(s.stride, kCpMaxStride, "stride");
    check_field(s.count, kCpMaxCount, "count");
    put_bits(bytes, bitpos, static_cast<std::uint64_t>(s.action), 2);
    put_bits(bytes, bitpos, static_cast<std::uint64_t>(s.first), 24);
    put_bits(bytes, bitpos, static_cast<std::uint64_t>(s.burst), 22);
    put_bits(bytes, bitpos, static_cast<std::uint64_t>(s.stride), 24);
    put_bits(bytes, bitpos, static_cast<std::uint64_t>(s.count), 22);
  }
  return bytes;
}

CommProgram CommProgram::decode(const std::vector<std::uint8_t>& bytes) {
  std::size_t bitpos = 0;
  const auto n = get_bits(bytes, bitpos, 16);
  CommProgram cp;
  for (std::uint64_t i = 0; i < n; ++i) {
    CpStride s;
    const auto action = get_bits(bytes, bitpos, 2);
    if (action > 2) throw SimulationError("CommProgram decode: bad action");
    s.action = static_cast<CpAction>(action);
    s.first = static_cast<Slot>(get_bits(bytes, bitpos, 24));
    s.burst = static_cast<Slot>(get_bits(bytes, bitpos, 22));
    s.stride = static_cast<Slot>(get_bits(bytes, bitpos, 24));
    s.count = static_cast<Slot>(get_bits(bytes, bitpos, 22));
    cp.add(s);
  }
  return cp;
}

std::size_t CommProgram::encoded_bits() const {
  return strides_.size() * kCpBitsPerStride;
}

std::string CommProgram::to_string() const {
  std::ostringstream os;
  os << "CP{";
  for (std::size_t i = 0; i < strides_.size(); ++i) {
    const auto& s = strides_[i];
    const char* act = s.action == CpAction::kDrive    ? "drive"
                      : s.action == CpAction::kListen ? "listen"
                                                      : "pass";
    if (i > 0) os << ", ";
    os << act << "(first=" << s.first << " burst=" << s.burst
       << " stride=" << s.stride << " count=" << s.count << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace psync::core
