// The PSCAN waveguide engine: simulates Synchronous Coalesced Accesses
// (SCA, gather) and their inverse (SCA^-1, scatter) at bit-slot timing
// resolution (paper Section III, Fig. 4).
//
// Physics modeled:
//  * every node takes its transmit/latch timing from the open-loop photonic
//    clock, so node i perceives global slot s at  launch + s*T + x_i/v (+ a
//    common detect latency);
//  * energy modulated on perceived slot s at ANY position reaches a
//    downstream point y at  launch + s*T + y/v (+ const): slot order at the
//    terminus is position-independent, which is what lets spatially separate
//    drivers splice a gap-free burst in flight;
//  * a collision is two modulators imprinting overlapping (wavelength, time)
//    intervals at the same waveguide point — detected exactly as interval
//    overlap in the terminus frame, including partial overlaps caused by
//    injected per-node timing faults;
//  * optionally, the optical link budget for the farthest node is verified
//    (Eq. 1-3) before any transaction is admitted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "psync/common/units.hpp"
#include "psync/core/cp_compile.hpp"
#include "psync/photonic/clock.hpp"
#include "psync/photonic/link_budget.hpp"

namespace psync::core {

using Word = std::uint64_t;

struct PscanTopology {
  photonic::ClockParams clock;
  /// Tap position of each node along the waveguide, micrometres, strictly
  /// increasing downstream. (Use SerpentineLayout::tap_positions_um or any
  /// custom placement.)
  std::vector<double> node_pos_um;
  /// Receiver (gather terminus / DRAM interface) position; must be at or
  /// beyond the last node.
  double terminus_um = 0.0;
  /// Scatter source (head node / memory) position; must be at or before the
  /// first node.
  double head_um = 0.0;
  /// Optional per-node timing error (ps) for fault injection; empty = none.
  std::vector<TimePs> skew_error_ps;
  /// Optional link budget checked against the farthest node.
  std::optional<photonic::LinkBudgetParams> budget;

  std::size_t nodes() const { return node_pos_um.size(); }
  void validate() const;  // throws SimulationError on inconsistency
};

/// One slot observed at the gather terminus.
struct SlotRecord {
  Slot slot = 0;
  Word word = 0;
  std::int32_t source = -1;     // driving node
  TimePs arrival_ps = 0;        // leading edge at the terminus
  TimePs modulated_ps = 0;      // when the driver imprinted it
};

struct Collision {
  std::int32_t node_a = -1;
  std::int32_t node_b = -1;
  Slot slot_a = 0;
  Slot slot_b = 0;
  TimePs overlap_ps = 0;
};

struct GatherResult {
  /// Terminus stream in arrival order.
  std::vector<SlotRecord> stream;
  std::vector<Collision> collisions;
  /// Arrivals are contiguous: consecutive leading edges exactly one slot
  /// period apart.
  bool gap_free = false;
  /// slots carried / slots spanned between first and last arrival.
  double utilization = 0.0;
  /// End-to-end transaction latency: first modulation to last arrival.
  TimePs span_ps = 0;
  /// Time the receiver saw its first bit.
  TimePs first_arrival_ps = 0;

  /// Payload words in slot order (convenience view of `stream`).
  std::vector<Word> words() const;
};

/// One word delivered to a node during a scatter.
struct DeliveryRecord {
  Slot slot = 0;
  Word word = 0;
  std::int32_t node = -1;      // receiving node
  std::int64_t element = 0;    // index within the node's local buffer
  TimePs arrival_ps = 0;       // when the node's detector latched it
};

struct ScatterResult {
  /// Every delivery, ordered by slot.
  std::vector<DeliveryRecord> deliveries;
  /// received[i] = words latched by node i, in element order.
  std::vector<std::vector<Word>> received;
  /// Burst slots no node listened to (lost words).
  std::vector<Slot> unclaimed_slots;
  TimePs span_ps = 0;
};

class ScaEngine {
 public:
  explicit ScaEngine(PscanTopology topology);

  const PscanTopology& topology() const { return topo_; }
  const photonic::PhotonicClock& clock() const { return clock_; }

  /// Run an SCA gather: node i drives its local `node_data[i]` words in the
  /// slots its CP claims (element j -> j-th claimed slot). With `strict`,
  /// throws SimulationError on any collision or CP/data size mismatch.
  GatherResult gather(const CpSchedule& schedule,
                      const std::vector<std::vector<Word>>& node_data,
                      bool strict = true) const;

  /// Run an SCA^-1 scatter: the head node drives `burst` (word for slot s at
  /// index s); node i latches the slots its CP listens on.
  ScatterResult scatter(const CpSchedule& schedule,
                        const std::vector<Word>& burst,
                        bool strict = true) const;

  /// Multicast SCA^-1: listener sets MAY overlap — physically free on a
  /// photonic bus, since a slot's energy passes every downstream detector
  /// and any number of them may latch it (only *driving* needs exclusivity).
  /// Used to broadcast programs/code to the whole array in one burst
  /// (Section IV's program distribution). `strict` still rejects unclaimed
  /// slots.
  ScatterResult scatter_multicast(const CpSchedule& schedule,
                                  const std::vector<Word>& burst,
                                  bool strict = true) const;

  /// Terminus arrival time of slot s (the paper's invariant: independent of
  /// which node drives it).
  TimePs slot_arrival_ps(Slot s) const;

 private:
  void check_budget() const;

  PscanTopology topo_;
  photonic::PhotonicClock clock_;
};

/// Convenience: evenly spaced topology for `nodes` taps on a straight bus of
/// `length_cm`, terminus at the end, head at 0.
PscanTopology straight_bus_topology(std::size_t nodes, double length_cm,
                                    photonic::ClockParams clock = {});

}  // namespace psync::core
