#include "psync/core/mesh_machine.hpp"

#include <algorithm>
#include <cmath>

#include "psync/common/check.hpp"
#include "psync/fft/fft2d.hpp"

namespace psync::core {
namespace {

constexpr std::int64_t kMaxPhaseCycles = 400'000'000;

/// Ejection sink for a processor node during delivery phases: stores words
/// at (head tag + position) into a local buffer and tracks completion.
class ProcSink final : public mesh::Sink {
 public:
  void expect(std::uint64_t elements) { expected_ = elements; }
  void attach(std::vector<Word>* buffer) { buffer_ = buffer; }

  bool accept(const mesh::Flit& flit, std::int64_t cycle) override {
    if (used_) return false;
    used_ = true;
    if (flit.is_head() && !flit.is_tail()) {
      base_ = flit.payload;
      pos_ = 0;
      return true;
    }
    PSYNC_CHECK(buffer_ != nullptr);
    const std::uint64_t idx = base_ + pos_;
    PSYNC_CHECK_MSG(idx < buffer_->size(), "delivery outside local buffer");
    (*buffer_)[idx] = flit.payload;
    ++pos_;
    ++received_;
    last_arrival_ = cycle;
    return true;
  }

  void step(std::int64_t) override { used_ = false; }

  bool done() const { return received_ >= expected_; }
  std::int64_t last_arrival() const { return last_arrival_; }
  std::uint64_t received() const { return received_; }

 private:
  std::vector<Word>* buffer_ = nullptr;
  std::uint64_t expected_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t pos_ = 0;
  std::int64_t last_arrival_ = 0;
  bool used_ = false;
};

}  // namespace

MeshMachine::MeshMachine(MeshMachineParams params) : params_(params) {
  if (params_.grid == 0) throw ConfigError("MeshMachine: zero grid");
  const std::size_t p = params_.grid * params_.grid;
  if (params_.matrix_rows % p != 0 || params_.matrix_cols % p != 0) {
    throw ConfigError(
        "MeshMachine: processor count must divide both matrix dimensions");
  }
  if (params_.memory_node >= p) {
    throw ConfigError("MeshMachine: memory node outside the grid");
  }
  params_.net.width = static_cast<std::uint32_t>(params_.grid);
  params_.net.height = static_cast<std::uint32_t>(params_.grid);
}

TransposeRunReport MeshMachine::run_transpose_writeback(
    std::uint32_t elements_per_node) {
  mesh::Mesh net(params_.net);
  const std::uint64_t total =
      static_cast<std::uint64_t>(net.nodes()) * elements_per_node;
  mesh::MemoryInterface mi(params_.mi, total);
  net.set_sink(params_.memory_node, &mi);

  PSYNC_CHECK(elements_per_node % params_.elements_per_packet == 0);
  for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
    for (std::uint32_t e = 0; e < elements_per_node;
         e += params_.elements_per_packet) {
      mesh::PacketDesc d;
      d.src = n;
      d.dst = params_.memory_node;
      d.payload_flits = params_.elements_per_packet;
      d.payload_base = static_cast<std::uint64_t>(n) * elements_per_node + e;
      net.inject(d);
    }
  }

  std::uint64_t steps = 0;
  while (!mi.done()) {
    poll_cancel(&steps);
    net.step();
    if (net.cycle() > kMaxPhaseCycles) {
      throw DivergenceError("run_transpose_writeback: exceeded cycle cap");
    }
  }

  TransposeRunReport rep;
  rep.completion_cycle = mi.completion_cycle();
  rep.completion_ns = static_cast<double>(rep.completion_cycle) * cycle_ns();
  rep.elements = mi.elements_received();
  rep.packets = mi.packets_received();
  rep.cycles_per_element =
      rep.elements > 0 ? static_cast<double>(rep.completion_cycle) /
                             static_cast<double>(rep.elements)
                       : 0.0;
  rep.activity = net.activity();
  rep.mean_packet_latency_cycles = net.packet_latency().mean();
  return rep;
}

TransposeRunReport MeshMachine::run_transpose_writeback_multiport(
    std::uint32_t elements_per_node, std::uint32_t ports) {
  if (ports != 1 && ports != 2 && ports != 4) {
    throw SimulationError("multiport transpose: ports must be 1, 2 or 4");
  }
  PSYNC_CHECK(elements_per_node % (params_.elements_per_packet * ports) == 0);

  mesh::Mesh net(params_.net);
  const auto g = static_cast<std::uint32_t>(params_.grid);
  const mesh::NodeId corner[4] = {net.node_at(0, 0), net.node_at(g - 1, g - 1),
                                  net.node_at(g - 1, 0), net.node_at(0, g - 1)};

  const std::uint64_t per_port =
      static_cast<std::uint64_t>(net.nodes()) * elements_per_node / ports;
  std::vector<std::unique_ptr<mesh::MemoryInterface>> mis;
  for (std::uint32_t p = 0; p < ports; ++p) {
    mis.push_back(std::make_unique<mesh::MemoryInterface>(params_.mi, per_port));
    net.set_sink(corner[p], mis.back().get());
  }

  // Column-partition each node's row across the ports.
  const std::uint32_t per_node_per_port = elements_per_node / ports;
  for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
    for (std::uint32_t p = 0; p < ports; ++p) {
      for (std::uint32_t e = 0; e < per_node_per_port;
           e += params_.elements_per_packet) {
        mesh::PacketDesc d;
        d.src = n;
        d.dst = corner[p];
        d.payload_flits = params_.elements_per_packet;
        d.payload_base = static_cast<std::uint64_t>(n) * elements_per_node +
                         static_cast<std::uint64_t>(p) * per_node_per_port + e;
        net.inject(d);
      }
    }
  }

  auto all_done = [&] {
    for (const auto& mi : mis) {
      if (!mi->done()) return false;
    }
    return true;
  };
  std::uint64_t steps = 0;
  while (!all_done()) {
    poll_cancel(&steps);
    net.step();
    if (net.cycle() > kMaxPhaseCycles) {
      throw DivergenceError("multiport transpose: exceeded cycle cap");
    }
  }

  TransposeRunReport rep;
  for (const auto& mi : mis) {
    rep.completion_cycle = std::max(rep.completion_cycle, mi->completion_cycle());
    rep.elements += mi->elements_received();
    rep.packets += mi->packets_received();
  }
  rep.completion_ns = static_cast<double>(rep.completion_cycle) * cycle_ns();
  rep.cycles_per_element =
      rep.elements > 0 ? static_cast<double>(rep.completion_cycle) /
                             static_cast<double>(rep.elements)
                       : 0.0;
  rep.activity = net.activity();
  rep.mean_packet_latency_cycles = net.packet_latency().mean();
  return rep;
}

MeshRunReport MeshMachine::run_fft2d(
    const std::vector<std::complex<double>>& input, bool verify) {
  const std::size_t P = params_.grid * params_.grid;
  const std::size_t R = params_.matrix_rows;
  const std::size_t C = params_.matrix_cols;
  const std::size_t rpp = R / P;
  const std::size_t cpp = C / P;
  const std::uint32_t epp = params_.elements_per_packet;
  PSYNC_CHECK(input.size() == R * C);

  std::vector<Processor> procs;
  procs.reserve(P);
  for (std::size_t i = 0; i < P; ++i) {
    procs.emplace_back(static_cast<std::uint32_t>(i), params_.exec);
  }

  // Activity accumulated across the per-phase network instances, for the
  // ORION energy accounting.
  mesh::MeshActivity activity{};
  auto accumulate = [&activity](const mesh::MeshActivity& a) {
    activity.buffer_writes += a.buffer_writes;
    activity.buffer_reads += a.buffer_reads;
    activity.crossbar_traversals += a.crossbar_traversals;
    activity.link_traversals += a.link_traversals;
    activity.arbitrations += a.arbitrations;
    activity.injected_flits += a.injected_flits;
    activity.ejected_flits += a.ejected_flits;
    activity.injected_packets += a.injected_packets;
    activity.ejected_packets += a.ejected_packets;
  };

  // Serial Model I delivery of a row-major (rows x cols) image from the
  // memory node: processor i receives its `per_proc` words tagged with
  // proc-local indices. Returns per-proc delivery-done times (ns, absolute).
  auto deliver = [&](const std::vector<Word>& image, std::size_t per_proc,
                     double start_ns, Phase& phase) {
    mesh::Mesh net(params_.net);
    std::vector<ProcSink> sinks(P);
    std::vector<std::vector<Word>> local(P, std::vector<Word>(per_proc));
    for (std::size_t i = 0; i < P; ++i) {
      sinks[i].expect(per_proc);
      sinks[i].attach(&local[i]);
      net.set_sink(static_cast<mesh::NodeId>(i), &sinks[i]);
    }
    PSYNC_CHECK(per_proc % epp == 0);
    for (std::size_t i = 0; i < P; ++i) {
      for (std::size_t e = 0; e < per_proc; e += epp) {
        mesh::PacketDesc d;
        d.src = params_.memory_node;
        d.dst = static_cast<mesh::NodeId>(i);
        d.payload_flits = epp;
        d.payload_base = e;
        d.words.assign(image.begin() + static_cast<std::ptrdiff_t>(i * per_proc + e),
                       image.begin() + static_cast<std::ptrdiff_t>(i * per_proc + e + epp));
        net.inject(d);
      }
    }
    auto all_done = [&] {
      for (const auto& s : sinks) {
        if (!s.done()) return false;
      }
      return true;
    };
    std::uint64_t steps = 0;
    while (!all_done()) {
      poll_cancel(&steps);
      net.step();
      if (net.cycle() > kMaxPhaseCycles) {
        throw DivergenceError("MeshMachine delivery: exceeded cycle cap");
      }
    }
    std::vector<double> done_ns(P);
    double last = start_ns;
    for (std::size_t i = 0; i < P; ++i) {
      done_ns[i] = start_ns +
                   static_cast<double>(sinks[i].last_arrival() + 1) * cycle_ns();
      last = std::max(last, done_ns[i]);
      procs[i].data().resize(per_proc);
      for (std::size_t e = 0; e < per_proc; ++e) {
        procs[i].data()[e] = unpack_sample(local[i][e]);
      }
    }
    phase.start_ns = start_ns;
    phase.end_ns = last;
    accumulate(net.activity());
    return done_ns;
  };

  // Writeback of every processor's local block to the single memory port,
  // with per-processor release at its compute-done time. `addr_of` maps a
  // source-linear element index to a memory image index.
  auto writeback = [&](const std::vector<double>& ready_ns,
                       std::size_t per_proc, auto addr_of, Phase& phase,
                       std::vector<Word>& out_image) {
    mesh::Mesh net(params_.net);
    const std::uint64_t total = static_cast<std::uint64_t>(P) * per_proc;
    mesh::MemoryInterface mi(params_.mi, total);
    out_image.assign(total, 0);
    mi.set_collector([&](mesh::NodeId, std::uint64_t idx, std::uint64_t word) {
      out_image[addr_of(idx)] = word;
    });
    net.set_sink(params_.memory_node, &mi);

    const double t0 = *std::min_element(ready_ns.begin(), ready_ns.end());
    PSYNC_CHECK(per_proc % epp == 0);
    for (std::size_t i = 0; i < P; ++i) {
      const auto release = static_cast<std::int64_t>(
          std::ceil((ready_ns[i] - t0) / cycle_ns()));
      for (std::size_t e = 0; e < per_proc; e += epp) {
        mesh::PacketDesc d;
        d.src = static_cast<mesh::NodeId>(i);
        d.dst = params_.memory_node;
        d.payload_flits = epp;
        d.payload_base = static_cast<std::uint64_t>(i) * per_proc + e;
        d.words.resize(epp);
        for (std::uint32_t w = 0; w < epp; ++w) {
          d.words[w] = pack_sample(procs[i].data()[e + w]);
        }
        d.release_cycle = release;
        net.inject(d);
      }
    }
    std::uint64_t steps = 0;
    while (!mi.done()) {
      poll_cancel(&steps);
      net.step();
      if (net.cycle() > kMaxPhaseCycles) {
        throw DivergenceError("MeshMachine writeback: exceeded cycle cap");
      }
    }
    phase.start_ns = t0;
    phase.end_ns = t0 + static_cast<double>(mi.completion_cycle()) * cycle_ns();
    accumulate(net.activity());
    return phase.end_ns;
  };

  // ---- Pass 1: deliver rows, row FFTs ----
  std::vector<Word> image(R * C);
  for (std::size_t i = 0; i < input.size(); ++i) image[i] = pack_sample(input[i]);

  Phase p_sc1{"scatter_rows", 0, 0};
  const auto deliver1_done = deliver(image, rpp * C, 0.0, p_sc1);

  Phase p_fft1{"row_ffts", 0, 0};
  std::vector<double> fft1_done(P);
  {
    double first = deliver1_done[0];
    double last = 0.0;
    for (std::size_t i = 0; i < P; ++i) {
      const double ns = procs[i].fft_rows(rpp, C);
      fft1_done[i] = deliver1_done[i] + ns;
      first = std::min(first, deliver1_done[i]);
      last = std::max(last, fft1_done[i]);
    }
    p_fft1.start_ns = first;
    p_fft1.end_ns = last;
  }

  // ---- Transpose writeback through the single memory port ----
  Phase p_tr{"mesh_transpose", 0, 0};
  std::vector<Word> image_t;  // C x R row-major (transposed layout)
  const double t_tr_end = writeback(
      fft1_done, rpp * C,
      [&](std::uint64_t idx) {
        const std::uint64_t g = idx / C;  // global source row
        const std::uint64_t c = idx % C;
        return c * R + g;
      },
      p_tr, image_t);

  // ---- Pass 2: deliver columns, column FFTs ----
  Phase p_sc2{"scatter_cols", 0, 0};
  const auto deliver2_done = deliver(image_t, cpp * R, t_tr_end, p_sc2);

  Phase p_fft2{"col_ffts", 0, 0};
  std::vector<double> fft2_done(P);
  {
    double first = deliver2_done[0];
    double last = 0.0;
    for (std::size_t i = 0; i < P; ++i) {
      const double ns = procs[i].fft_rows(cpp, R);
      fft2_done[i] = deliver2_done[i] + ns;
      first = std::min(first, deliver2_done[i]);
      last = std::max(last, fft2_done[i]);
    }
    p_fft2.start_ns = first;
    p_fft2.end_ns = last;
  }

  // ---- Final writeback (natural order) ----
  Phase p_wb{"mesh_writeback", 0, 0};
  const double t_end = writeback(
      fft2_done, cpp * R, [](std::uint64_t idx) { return idx; }, p_wb, image_);

  // ---- Report ----
  MeshRunReport rep;
  rep.phases = {p_sc1, p_fft1, p_tr, p_sc2, p_fft2, p_wb};
  rep.total_ns = t_end;
  rep.reorg_ns = p_tr.duration_ns() + p_sc2.duration_ns();

  fft::OpCount total_ops;
  double busy = 0.0;
  for (const auto& proc : procs) {
    total_ops += proc.ops();
    busy += proc.busy_ns();
  }
  rep.compute_efficiency =
      rep.total_ns > 0 ? busy / (static_cast<double>(P) * rep.total_ns) : 0.0;
  rep.flops = total_ops.real_mults + total_ops.real_adds;
  rep.gflops =
      rep.total_ns > 0 ? static_cast<double>(rep.flops) / rep.total_ns : 0.0;

  // Energy: payload bits = every sample word moved over the network (the
  // orion report normalizes per payload bit; we keep the raw totals).
  const std::uint64_t payload_bits =
      activity.ejected_flits * params_.sample_bits;
  const mesh::OrionReport orion =
      mesh::evaluate(params_.orion, activity, params_.grid, payload_bits);
  rep.comm_energy_pj = orion.total_pj.value();
  rep.compute_energy_pj = params_.exec.compute_energy_pj(total_ops);

  if (verify) {
    std::vector<std::complex<double>> ref(input);
    fft::fft2d(ref, R, C, /*restore_layout=*/false);
    const auto got = result();
    PSYNC_CHECK(got.size() == ref.size());
    double max_abs = 1e-30;
    for (const auto& v : ref) max_abs = std::max(max_abs, std::abs(v));
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err, std::abs(got[i] - ref[i]));
    }
    rep.max_error_vs_reference = max_err / max_abs;
  }
  return rep;
}

std::vector<std::complex<double>> MeshMachine::result() const {
  std::vector<std::complex<double>> out;
  out.reserve(image_.size());
  for (Word w : image_) out.push_back(unpack_sample(w));
  return out;
}

}  // namespace psync::core
