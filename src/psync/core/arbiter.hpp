// Slot arbitration on the shared photonic bus.
//
// Paper Section IV: "the PSCAN physical layer was deliberately designed to
// be generic, such that it could be shared with other traffic besides SCA
// and SCA^-1 transactions". PSCAN is a *communication mode* on a
// multipurpose channel; this module is the piece that shares the channel —
// a slot-range allocator that composes multiple transactions (SCA bursts,
// low-rate control messages, background point-to-point traffic) into one
// global, provably collision-free schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psync/core/cp_compile.hpp"

namespace psync::core {

/// Shift every stride of a program by `offset` slots.
CommProgram shift_program(const CommProgram& cp, Slot offset);

/// Shift every node's program of a schedule by `offset` slots (total_slots
/// grows accordingly only via SlotArbiter::compose).
CpSchedule shift_schedule(const CpSchedule& schedule, Slot offset);

/// A reserved region of the global slot timeline.
struct SlotGrant {
  Slot base = 0;
  Slot length = 0;
  std::string owner;
};

class SlotArbiter {
 public:
  /// Reserve `length` contiguous slots for `owner`; returns the grant.
  SlotGrant reserve(Slot length, std::string owner);

  /// Total slots allocated so far (the global schedule horizon).
  Slot horizon() const { return next_; }

  const std::vector<SlotGrant>& grants() const { return grants_; }

  /// Compose a transaction's local schedule into the global timeline at
  /// `grant`. Throws SimulationError when the schedule does not fit the
  /// grant. The returned schedule has total_slots == horizon() so composed
  /// schedules from different grants can be merged.
  CpSchedule compose(const CpSchedule& local, const SlotGrant& grant) const;

  /// Merge per-grant global schedules (same node count) into one; verifies
  /// the drive/listen sets stay disjoint across transactions.
  CpSchedule merge(const std::vector<CpSchedule>& parts) const;

 private:
  Slot next_ = 0;
  std::vector<SlotGrant> grants_;
};

}  // namespace psync::core
