#include "psync/core/head_node.hpp"

#include <algorithm>

#include "psync/common/check.hpp"

namespace psync::core {

HeadNode::HeadNode(HeadNodeParams params)
    : params_(params), memory_(params.dram) {
  if (params_.bus_ghz <= 0.0 || params_.waveguide_gbps <= 0.0) {
    throw SimulationError("HeadNode: rates must be positive");
  }
}

double HeadNode::bus_cycle_ns() const { return 1.0 / params_.bus_ghz; }

StreamReport HeadNode::stream_rows_report(std::uint64_t total_bits) const {
  StreamReport rep;
  const std::uint64_t rows = dram::row_transactions(params_.dram, total_bits);
  rep.bus_cycles = rows * dram::row_transaction_cycles(params_.dram);
  rep.dram_ns = static_cast<double>(rep.bus_cycles) * bus_cycle_ns();
  rep.waveguide_ns =
      static_cast<double>(total_bits) / params_.waveguide_gbps;
  rep.dram_bound = rep.dram_ns > rep.waveguide_ns;
  return rep;
}

StreamReport HeadNode::writeback(const std::vector<Word>& words,
                                 std::uint64_t first_row,
                                 std::uint64_t word_bits) {
  PSYNC_CHECK(word_bits > 0);
  const std::uint64_t total_bits = words.size() * word_bits;
  const std::uint64_t words_per_row = params_.dram.row_size_bits / word_bits;
  PSYNC_CHECK(words_per_row > 0);

  const std::uint64_t first_word = first_row * words_per_row;
  if (image_.size() < first_word + words.size()) {
    image_.resize(first_word + words.size());
  }
  std::copy(words.begin(), words.end(),
            image_.begin() + static_cast<std::ptrdiff_t>(first_word));

  const std::uint64_t rows = dram::row_transactions(params_.dram, total_bits);
  memory_.stream_rows(first_row, rows);
  return stream_rows_report(total_bits);
}

std::vector<Word> HeadNode::read_burst(std::uint64_t first_word,
                                       std::uint64_t word_count) const {
  PSYNC_CHECK(first_word + word_count <= image_.size());
  return {image_.begin() + static_cast<std::ptrdiff_t>(first_word),
          image_.begin() + static_cast<std::ptrdiff_t>(first_word + word_count)};
}

}  // namespace psync::core
