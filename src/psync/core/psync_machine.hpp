// The P-sync machine: a full-system functional + timing simulator of the
// architecture in paper Fig. 6/7 executing the distributed 2D FFT flow of
// Section V-B:
//
//   1. SCA^-1 scatter of the matrix from DRAM to the processor array
//      (Model I in one burst per processor block, or Model II in k
//      round-robin blocks whose contents are streamed in bit-reversed-
//      strided order so each block's sub-FFT can run on arrival),
//   2. P parallel row FFTs (interleaved with delivery under Model II),
//   3. SCA gather-transpose: the array drives the row-FFT results onto the
//      waveguide in column-major slot order; the head node lands full DRAM
//      rows (this is the paper's headline in-flight reorganization),
//   4. SCA^-1 scatter of the reorganized data back to the array,
//   5. P parallel column FFTs,
//   6. SCA writeback of the final result.
//
// Every collective runs through the slot-exact ScaEngine, so the simulator
// simultaneously (a) produces a numerically correct 2D FFT, verified
// against fft::fft2d, and (b) yields cycle-accurate phase timings that the
// analysis library's closed forms are tested against.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "psync/common/cancel.hpp"
#include "psync/core/faults.hpp"
#include "psync/core/head_node.hpp"
#include "psync/core/processor.hpp"
#include "psync/core/sca.hpp"
#include "psync/photonic/energy.hpp"
#include "psync/reliability/channel.hpp"

namespace psync::core {

struct PsyncMachineParams {
  std::size_t processors = 16;
  std::size_t matrix_rows = 64;   // divisible by processors
  std::size_t matrix_cols = 64;   // power of two
  std::size_t sample_bits = 64;
  /// Aggregate waveguide rate, Gb/s; one slot carries one sample, so the
  /// slot clock is waveguide_gbps / sample_bits GHz (paper: 320/64 = 5 GHz).
  double waveguide_gbps = 320.0;
  /// Model II delivery blocks per row (1 = Model I).
  std::size_t delivery_blocks = 1;
  ExecCostParams exec;
  HeadNodeParams head;
  /// Physical bus length, cm (sets flight-time latencies).
  double bus_length_cm = 8.0;
  /// Photonic device parameters for the energy accounting.
  photonic::PhotonicEnergyParams photonics;
  /// Optical fault injection applied to every word that crosses the
  /// waveguide (dead wavelengths, random BER). Trivial by default.
  FaultModel fault;
  /// Error-handling layer above the optical PHY: off / detect-only /
  /// correct+retry (SECDED+CRC framing, replay, lane failover). The coding
  /// slots, training burst, replays and backoff all show up in the run's
  /// timing and photonic energy — recovery is never free.
  reliability::ReliabilityParams reliability;
};

struct Phase {
  std::string name;
  double start_ns = 0.0;
  double end_ns = 0.0;
  double duration_ns() const { return end_ns - start_ns; }
};

struct PsyncRunReport {
  std::vector<Phase> phases;
  double total_ns = 0.0;
  /// Time in data reorganization between the two FFT passes (the SCA
  /// transpose gather plus the reload scatter) — the Fig. 14 numerator.
  double reorg_ns = 0.0;
  std::uint64_t flops = 0;        // 10 real ops per butterfly
  double gflops = 0.0;
  /// Realized / peak multiply throughput across the array (paper Eq. 4).
  double compute_efficiency = 0.0;
  /// Every SCA stream arrived gap-free with zero collisions.
  bool sca_gap_free = false;
  std::uint64_t sca_collisions = 0;
  /// Max |result - reference| against a monolithic fft::fft2d.
  double max_error_vs_reference = 0.0;

  /// Fault injection observed on the wire (all collectives of the run).
  FaultReport fault;
  /// Recovery outcomes: blocks retried, slots replayed, residual errors.
  reliability::RetryReport retry;
  /// Dead-lane scan + failover outcome.
  reliability::LaneReport lanes;
  /// Bus time spent on reliability (code slots, training, replays,
  /// backoff) and the same quantity in slots.
  double reliability_overhead_ns = 0.0;
  std::uint64_t reliability_overhead_slots = 0;

  /// Energy accounting (extension experiment): photonic transport energy
  /// for every word moved across the waveguide, and execution-unit energy
  /// for every arithmetic operation.
  double comm_energy_pj = 0.0;
  double compute_energy_pj = 0.0;
  double total_energy_pj() const { return comm_energy_pj + compute_energy_pj; }
  double pj_per_flop() const {
    return flops > 0 ? total_energy_pj() / static_cast<double>(flops) : 0.0;
  }

  const Phase& phase(const std::string& name) const;
};

class PsyncMachine {
 public:
  explicit PsyncMachine(PsyncMachineParams params);

  const PsyncMachineParams& params() const { return params_; }
  const PscanTopology& topology() const { return topo_; }

  /// Run the full 2D FFT flow on `input` (row-major rows x cols). The
  /// machine's DRAM image ends with the transform in transposed layout.
  /// When `verify` is set the result is checked against fft::fft2d and the
  /// max deviation reported (float32 transport quantizes samples, so the
  /// tolerance is single-precision).
  PsyncRunReport run_fft2d(const std::vector<std::complex<double>>& input,
                           bool verify = true);

  /// Run a large 1D FFT of matrix_rows * matrix_cols points via Bailey's
  /// four-step decomposition (the paper's Section II argument that the 2D
  /// machinery generalizes to 1D): strided scatter -> pass-1 FFTs ->
  /// on-node twiddle scaling -> SCA transpose -> pass-2 FFTs -> writeback.
  /// Use result_1d() for the natural-order output. Verification compares
  /// against a monolithic N-point FftPlan.
  PsyncRunReport run_fft1d(const std::vector<std::complex<double>>& input,
                           bool verify = true);

  /// Natural-order 1D spectrum after run_fft1d.
  std::vector<std::complex<double>> result_1d() const;

  /// Steady-state throughput of a continuous stream of transforms (frame
  /// after frame), derived from a single run's phase timings. With double-
  /// buffered node memories, successive frames pipeline: the waveguide is
  /// the one serially-shared resource (every collective occupies it), and
  /// each processor must finish a frame's compute before starting the
  /// next. The initiation interval is therefore
  ///     II = max(sum of collective phases, sum of compute phases)
  /// and sustained throughput is one frame per II — the machine-level form
  /// of the paper's "fusing computation with communication".
  struct PipelineReport {
    double latency_ns = 0.0;     // single-frame latency (the run's total)
    double interval_ns = 0.0;    // steady-state initiation interval
    double frames_per_sec = 0.0;
    bool bus_bound = false;      // waveguide (true) vs compute (false)
    double bus_busy_ns = 0.0;    // waveguide occupancy per frame
    double compute_busy_ns = 0.0;  // per-processor compute per frame
  };
  static PipelineReport pipeline_estimate(const PsyncRunReport& run);

  /// Final DRAM image as complex samples (cols x rows, row-major —
  /// transposed layout).
  std::vector<std::complex<double>> result() const;

  /// Per-processor state after a run (for inspection/tests).
  const std::vector<Processor>& processors() const { return procs_; }
  const HeadNode& head() const { return head_; }

  /// Cooperative cancellation: the run loops poll `token` at phase and
  /// per-processor batch boundaries and abort with CancelledError once it
  /// expires (the driver's per-point watchdog). nullptr disarms. The token
  /// must outlive the run; results are unaffected unless it fires.
  void set_cancel(const CancelToken* token) { cancel_ = token; }

 private:
  struct PassResult {
    double delivery_end_ns = 0.0;   // last word latched anywhere
    double compute_begin_ns = 0.0;  // first block compute start
    double compute_end_ns = 0.0;    // last processor done
    double busy_ns = 0.0;           // total compute time across the array
  };

  double slot_period_ns() const;
  std::size_t rows_per_proc() const {
    return params_.matrix_rows / params_.processors;
  }

  /// One SCA^-1 + blocked-FFT pass over a (rows x cols) row-major image.
  PassResult scatter_fft_pass(const std::vector<Word>& image,
                              std::size_t rows, std::size_t cols,
                              double start_ns, Phase& scatter_phase,
                              Phase& fft_phase);

  /// SCA gather into DRAM; updates collision/gap accounting; returns the
  /// phase end time (waveguide- or DRAM-bound).
  double gather_to_dram(const CpSchedule& sched,
                        const std::vector<std::vector<Word>>& node_data,
                        double start_ns, Phase& phase);

  /// Transpose SCA + second scatter/FFT pass + final block writeback — the
  /// shared tail of the 2D and four-step-1D flows. `pass1_end` is when the
  /// first compute pass finished. Appends its phases to `phases`.
  double reorg_and_second_pass(std::size_t rows, std::size_t cols,
                               double pass1_end, std::vector<Phase>& phases,
                               double* reorg_ns, PassResult* pass2_out);

  /// Fill the energy fields from the run's waveguide word count and the
  /// processors' operation counters.
  void apply_energy(PsyncRunReport* report) const;

  /// Fill the fault/retry/lane fields from the run's accumulators.
  void apply_reliability(PsyncRunReport* report) const;

  /// Reset per-run state; builds the protected channel (running its lane-
  /// training burst) when faults are configured or a policy is on, and
  /// returns the time the first collective may start (after training).
  double begin_run(std::vector<Phase>* phases);

  /// Push a collective's word stream through the protected channel.
  /// Returns the delivered words and sets `*tail_ns` to the bus time the
  /// reliability layer appended (coding slots, replays, backoff). With no
  /// channel the stream passes through untouched and `*tail_ns` is 0.
  std::vector<Word> transmit(const std::vector<Word>& sent,
                             const std::vector<Collision>* collisions,
                             bool gather_side, double* tail_ns);

  std::uint64_t collisions_ = 0;
  bool gap_free_ = true;
  std::uint64_t waveguide_words_ = 0;  // words moved across the bus
  FaultReport fault_report_;
  reliability::RetryReport retry_report_;
  std::uint64_t overhead_slots_ = 0;
  std::unique_ptr<reliability::ProtectedChannel> channel_;
  const CancelToken* cancel_ = nullptr;

  PsyncMachineParams params_;
  PscanTopology topo_;
  ScaEngine engine_;
  HeadNode head_;
  std::vector<Processor> procs_;
};

}  // namespace psync::core
