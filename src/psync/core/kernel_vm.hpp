// The computation side of a P-sync node made concrete (paper Fig. 7): a
// Computation Instruction Memory holding a kernel program, executed by the
// Execution Unit against local Data Memory.
//
// The ISA is deliberately tiny — the paper's node is a streaming butterfly
// engine, not a general core:
//
//   BFLY  a, b, tw   (x[a], x[b]) <- (x[a] + W*x[b], x[a] - W*x[b])
//   TWID  a, tw      x[a] <- x[a] * W          (four-step inter-pass scale)
//   SWAP  a, b       exchange x[a], x[b]       (bit-reversal permutation)
//   HALT
//
// where W = twiddle ROM entry tw. A compiler lowers the FFT plans used by
// the machine simulators into kernel programs whose executed-instruction
// counts and timing reproduce the analytical cost model exactly, and whose
// numeric results are bit-identical to the FftPlan fast paths. Programs
// serialize to 96-bit instruction words, so — like communication programs —
// they can be delivered to nodes over the SCA^-1 waveguide (Section IV:
// "all data, including communication programs and computation programs can
// be delivered on the SCA^-1 PSCAN").
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "psync/core/processor.hpp"

namespace psync::core {

enum class KernelOp : std::uint8_t {
  kHalt = 0,
  kBfly = 1,
  kTwid = 2,
  kSwap = 3,
};

struct KernelInstr {
  KernelOp op = KernelOp::kHalt;
  std::uint32_t a = 0;   // data-memory address (complex-sample index)
  std::uint32_t b = 0;   // second address (BFLY/SWAP)
  std::uint32_t tw = 0;  // twiddle ROM index (BFLY/TWID)
};

/// A compiled kernel: instruction memory plus its twiddle ROM.
struct KernelProgram {
  std::vector<KernelInstr> code;
  std::vector<std::complex<double>> twiddles;
  /// Data-memory footprint (samples) the program expects.
  std::size_t data_size = 0;
};

/// Compile an n-point in-place forward FFT (bit-reversal SWAPs + all
/// butterfly stages) for a row at `base` within the node's data memory.
KernelProgram compile_fft_kernel(std::size_t n, std::size_t base = 0);

/// Compile only stages [first, last) over the (already bit-reversed) row at
/// `base`, optionally restricted to one delivery block — the Model II
/// per-block kernel.
KernelProgram compile_fft_stages_kernel(std::size_t n, std::size_t first_stage,
                                        std::size_t last_stage,
                                        std::size_t base = 0,
                                        std::size_t block_offset = 0,
                                        std::size_t block_size = 0);

/// Compile the four-step twiddle scaling of `rows x cols` local samples
/// whose first global row is `global_row0` of an (total_rows x cols) view.
KernelProgram compile_four_step_twiddle_kernel(std::size_t rows,
                                               std::size_t cols,
                                               std::size_t global_row0,
                                               std::size_t total_rows);

/// Append `more` onto `program` (twiddle ROMs are merged; indices fixed up).
void append_kernel(KernelProgram* program, const KernelProgram& more);

struct VmStats {
  std::uint64_t instructions = 0;
  fft::OpCount ops;
  double compute_ns = 0.0;   // under the ExecCostParams model
  double energy_pj = 0.0;
};

/// The execution unit: runs a program against data memory. Throws
/// SimulationError on address/ROM violations (the hardware trap).
class KernelVm {
 public:
  explicit KernelVm(ExecCostParams exec) : exec_(exec) {}

  VmStats run(const KernelProgram& program,
              std::span<std::complex<double>> data) const;

 private:
  ExecCostParams exec_;
};

/// Serialize the program for waveguide delivery: each instruction is a
/// 96-bit record (op 8b + a 28b + b 28b + tw 32b) carried in two 64-bit
/// stream words; the twiddle ROM rides along at full double precision so a
/// delivered kernel is bit-identical to a locally compiled one. Round-trips
/// via unpack_kernel_words.
std::vector<Word> pack_kernel_words(const KernelProgram& program);
KernelProgram unpack_kernel_words(const std::vector<Word>& words,
                                  std::size_t& offset);

}  // namespace psync::core
