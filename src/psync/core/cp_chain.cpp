#include "psync/core/cp_chain.hpp"

#include <algorithm>
#include <string>

#include "psync/common/check.hpp"

namespace psync::core {

std::vector<Word> pack_program_words(const CommProgram& cp) {
  const std::vector<std::uint8_t> bytes = cp.encode();
  std::vector<Word> out;
  out.push_back(static_cast<Word>(bytes.size()));
  Word w = 0;
  int shift = 0;
  for (std::uint8_t b : bytes) {
    w |= static_cast<Word>(b) << shift;
    shift += 8;
    if (shift == 64) {
      out.push_back(w);
      w = 0;
      shift = 0;
    }
  }
  if (shift != 0) out.push_back(w);
  return out;
}

CommProgram unpack_program_words(const std::vector<Word>& words,
                                 std::size_t& offset) {
  if (offset >= words.size()) {
    throw SimulationError("unpack_program_words: missing length prefix");
  }
  const auto byte_count = static_cast<std::size_t>(words[offset++]);
  const std::size_t word_count = (byte_count + 7) / 8;
  if (offset + word_count > words.size()) {
    throw SimulationError("unpack_program_words: truncated program (" +
                          std::to_string(byte_count) + " bytes expected)");
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(byte_count);
  for (std::size_t i = 0; i < byte_count; ++i) {
    const Word w = words[offset + i / 8];
    bytes.push_back(static_cast<std::uint8_t>((w >> (8 * (i % 8))) & 0xFF));
  }
  offset += word_count;
  return CommProgram::decode(bytes);
}

BootImage build_boot_image(const std::vector<BootSegment>& segments) {
  if (segments.empty()) {
    throw SimulationError("build_boot_image: no segments");
  }
  BootImage image;
  image.schedule.node_cps.resize(segments.size());
  image.segment_offset.resize(segments.size());

  Slot at = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    image.segment_offset[i] = at;
    std::vector<Word> seg;
    for (const auto& cp : segments[i].programs) {
      const auto words = pack_program_words(cp);
      seg.insert(seg.end(), words.begin(), words.end());
    }
    seg.insert(seg.end(), segments[i].data.begin(), segments[i].data.end());
    if (seg.empty()) {
      throw SimulationError("build_boot_image: empty segment for node " +
                            std::to_string(i));
    }
    // Bootstrap CP: one contiguous listen burst — a single 94-bit record
    // (chunked only if enormous).
    Slot remaining = static_cast<Slot>(seg.size());
    Slot pos = at;
    while (remaining > 0) {
      const Slot chunk = std::min<Slot>(remaining, kCpMaxBurst);
      image.schedule.node_cps[i].add(
          CpStride{pos, chunk, chunk, 1, CpAction::kListen});
      pos += chunk;
      remaining -= chunk;
    }
    image.burst.insert(image.burst.end(), seg.begin(), seg.end());
    at += static_cast<Slot>(seg.size());
  }
  image.schedule.total_slots = at;
  return image;
}

BootImage build_broadcast_boot_image(const BootSegment& shared,
                                     std::size_t nodes) {
  if (nodes == 0) {
    throw SimulationError("build_broadcast_boot_image: no nodes");
  }
  BootImage image;
  for (const auto& cp : shared.programs) {
    const auto words = pack_program_words(cp);
    image.burst.insert(image.burst.end(), words.begin(), words.end());
  }
  image.burst.insert(image.burst.end(), shared.data.begin(),
                     shared.data.end());
  if (image.burst.empty()) {
    throw SimulationError("build_broadcast_boot_image: empty segment");
  }
  image.schedule.total_slots = static_cast<Slot>(image.burst.size());
  image.schedule.node_cps.resize(nodes);
  image.segment_offset.assign(nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    Slot at = 0;
    Slot remaining = image.schedule.total_slots;
    while (remaining > 0) {
      const Slot chunk = std::min<Slot>(remaining, kCpMaxBurst);
      image.schedule.node_cps[i].add(
          CpStride{at, chunk, chunk, 1, CpAction::kListen});
      at += chunk;
      remaining -= chunk;
    }
  }
  return image;
}

DecodedSegment decode_boot_words(const std::vector<Word>& words,
                                 std::size_t program_count) {
  DecodedSegment out;
  std::size_t offset = 0;
  for (std::size_t p = 0; p < program_count; ++p) {
    out.programs.push_back(unpack_program_words(words, offset));
  }
  out.data.assign(words.begin() + static_cast<std::ptrdiff_t>(offset),
                  words.end());
  return out;
}

GatherResult run_boot_chain(const ScaEngine& engine,
                            const std::vector<BootSegment>& segments,
                            Slot gather_total_slots) {
  // Step 1: scatter the boot image.
  const BootImage image = build_boot_image(segments);
  const ScatterResult boot = engine.scatter(image.schedule, image.burst);

  // Step 2: every node decodes its delivered segment.
  CpSchedule next;
  next.total_slots = gather_total_slots;
  next.node_cps.resize(segments.size());
  std::vector<std::vector<Word>> node_data(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const DecodedSegment dec =
        decode_boot_words(boot.received[i], segments[i].programs.size());
    if (dec.programs.empty()) {
      throw SimulationError("run_boot_chain: node " + std::to_string(i) +
                            " received no program");
    }
    next.node_cps[i] = dec.programs.front();
    node_data[i] = dec.data;
  }

  // Step 3: execute the delivered schedule.
  return engine.gather(next, node_data);
}

}  // namespace psync::core
