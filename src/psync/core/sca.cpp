#include "psync/core/sca.hpp"

#include <algorithm>
#include <string>

#include "psync/common/check.hpp"

namespace psync::core {

void PscanTopology::validate() const {
  if (node_pos_um.empty()) {
    throw SimulationError("PscanTopology: no nodes");
  }
  for (std::size_t i = 0; i < node_pos_um.size(); ++i) {
    if (node_pos_um[i] < 0.0) {
      throw SimulationError("PscanTopology: negative node position");
    }
    if (i > 0 && node_pos_um[i] <= node_pos_um[i - 1]) {
      throw SimulationError(
          "PscanTopology: node positions must strictly increase downstream");
    }
  }
  if (terminus_um < node_pos_um.back()) {
    throw SimulationError("PscanTopology: terminus upstream of last node");
  }
  if (head_um > node_pos_um.front()) {
    throw SimulationError("PscanTopology: head downstream of first node");
  }
  if (!skew_error_ps.empty() && skew_error_ps.size() != node_pos_um.size()) {
    throw SimulationError("PscanTopology: skew_error size mismatch");
  }
}

std::vector<Word> GatherResult::words() const {
  std::vector<Word> out;
  out.reserve(stream.size());
  for (const auto& r : stream) out.push_back(r.word);
  return out;
}

ScaEngine::ScaEngine(PscanTopology topology)
    : topo_(std::move(topology)), clock_(topo_.clock) {
  topo_.validate();
  check_budget();
}

void ScaEngine::check_budget() const {
  if (!topo_.budget.has_value()) return;
  const auto& budget = *topo_.budget;
  // The worst-case optical path: full bus length with every node's detuned
  // ring in the way. Approximate ring count with the node count (Eq. 2-3).
  photonic::LinkBudgetParams p = budget;
  const double length_cm = units::um_to_cm(topo_.terminus_um - topo_.head_um);
  const double n = static_cast<double>(topo_.nodes());
  p.modulator_pitch_cm = n > 0 ? length_cm / n : length_cm;
  if (photonic::max_segments(p) < topo_.nodes()) {
    throw SimulationError(
        "PSCAN link budget does not close for " +
        std::to_string(topo_.nodes()) + " nodes over " +
        std::to_string(length_cm) + " cm (Eq. 3 bound: " +
        std::to_string(photonic::max_segments(p)) + "); add repeaters");
  }
}

TimePs ScaEngine::slot_arrival_ps(Slot s) const {
  // launch + s*T + flight(terminus) + detect latency.
  return clock_.perceived_edge_ps(topo_.terminus_um, s);
}

GatherResult ScaEngine::gather(
    const CpSchedule& schedule, const std::vector<std::vector<Word>>& node_data,
    bool strict) const {
  if (schedule.nodes() != topo_.nodes()) {
    throw SimulationError("gather: schedule/topology node count mismatch");
  }
  if (node_data.size() != topo_.nodes()) {
    throw SimulationError("gather: node_data size mismatch");
  }

  const TimePs period = clock_.period_ps();
  GatherResult out;

  for (std::size_t i = 0; i < topo_.nodes(); ++i) {
    const double x = topo_.node_pos_um[i];
    const TimePs fault =
        topo_.skew_error_ps.empty() ? 0 : topo_.skew_error_ps[i];
    std::size_t element = 0;
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != CpAction::kDrive) continue;
      for (Slot s = e.begin; s < e.end(); ++s, ++element) {
        if (element >= node_data[i].size()) {
          throw SimulationError("gather: node " + std::to_string(i) +
                                " CP drives more slots than it has data");
        }
        SlotRecord rec;
        rec.slot = s;
        rec.word = node_data[i][element];
        rec.source = static_cast<std::int32_t>(i);
        rec.modulated_ps = clock_.perceived_edge_ps(x, s) + fault;
        // Imprinted energy continues downstream to the terminus.
        rec.arrival_ps =
            rec.modulated_ps +
            (clock_.flight_ps(topo_.terminus_um) - clock_.flight_ps(x));
        out.stream.push_back(rec);
      }
    }
    if (strict && element != node_data[i].size()) {
      throw SimulationError("gather: node " + std::to_string(i) + " has " +
                            std::to_string(node_data[i].size()) +
                            " words but CP drives " + std::to_string(element) +
                            " slots");
    }
  }

  std::sort(out.stream.begin(), out.stream.end(),
            [](const SlotRecord& a, const SlotRecord& b) {
              if (a.arrival_ps != b.arrival_ps) return a.arrival_ps < b.arrival_ps;
              return a.slot < b.slot;
            });

  // Collision scan: each slot occupies [arrival, arrival + period) at the
  // terminus; overlap between records from different nodes is a collision.
  for (std::size_t i = 1; i < out.stream.size(); ++i) {
    const auto& a = out.stream[i - 1];
    const auto& b = out.stream[i];
    const TimePs overlap = (a.arrival_ps + period) - b.arrival_ps;
    if (overlap > 0 && a.source != b.source) {
      out.collisions.push_back(
          Collision{a.source, b.source, a.slot, b.slot, overlap});
    } else if (overlap > 0 && a.source == b.source && a.slot == b.slot) {
      throw SimulationError("gather: node drives the same slot twice");
    }
  }
  if (strict && !out.collisions.empty()) {
    const auto& c = out.collisions.front();
    throw SimulationError(
        "gather: waveguide collision between node " +
        std::to_string(c.node_a) + " (slot " + std::to_string(c.slot_a) +
        ") and node " + std::to_string(c.node_b) + " (slot " +
        std::to_string(c.slot_b) + "), overlap " +
        std::to_string(c.overlap_ps) + " ps");
  }

  if (!out.stream.empty()) {
    out.first_arrival_ps = out.stream.front().arrival_ps;
    TimePs first_mod = out.stream.front().modulated_ps;
    for (const auto& r : out.stream) first_mod = std::min(first_mod, r.modulated_ps);
    out.span_ps = (out.stream.back().arrival_ps + period) - first_mod;

    out.gap_free = true;
    for (std::size_t i = 1; i < out.stream.size(); ++i) {
      if (out.stream[i].arrival_ps - out.stream[i - 1].arrival_ps != period) {
        out.gap_free = false;
        break;
      }
    }
    const TimePs window =
        (out.stream.back().arrival_ps - out.stream.front().arrival_ps) + period;
    out.utilization = static_cast<double>(out.stream.size()) *
                      static_cast<double>(period) / static_cast<double>(window);
  }
  return out;
}

ScatterResult ScaEngine::scatter(const CpSchedule& schedule,
                                 const std::vector<Word>& burst,
                                 bool strict) const {
  if (schedule.nodes() != topo_.nodes()) {
    throw SimulationError("scatter: schedule/topology node count mismatch");
  }

  ScatterResult out;
  out.received.resize(topo_.nodes());

  // Which node listens on each slot (throws on double-claim).
  std::vector<std::int32_t> owner(burst.size(), -1);
  for (std::size_t i = 0; i < topo_.nodes(); ++i) {
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != CpAction::kListen) continue;
      for (Slot s = e.begin; s < e.end(); ++s) {
        if (s < 0 || static_cast<std::size_t>(s) >= burst.size()) {
          throw SimulationError("scatter: CP listens beyond the burst");
        }
        auto& o = owner[static_cast<std::size_t>(s)];
        if (o != -1) {
          throw SimulationError("scatter: slot " + std::to_string(s) +
                                " claimed by nodes " + std::to_string(o) +
                                " and " + std::to_string(i));
        }
        o = static_cast<std::int32_t>(i);
      }
    }
  }

  std::vector<std::size_t> next_element(topo_.nodes(), 0);
  for (std::size_t s = 0; s < burst.size(); ++s) {
    const std::int32_t node = owner[s];
    if (node < 0) {
      out.unclaimed_slots.push_back(static_cast<Slot>(s));
      continue;
    }
    DeliveryRecord rec;
    rec.slot = static_cast<Slot>(s);
    rec.word = burst[s];
    rec.node = node;
    rec.element = static_cast<std::int64_t>(next_element[node]++);
    // The word passes the node's tap at its perceived slot time.
    const TimePs fault = topo_.skew_error_ps.empty()
                             ? 0
                             : topo_.skew_error_ps[static_cast<std::size_t>(node)];
    rec.arrival_ps = clock_.perceived_edge_ps(
                         topo_.node_pos_um[static_cast<std::size_t>(node)],
                         static_cast<Slot>(s)) +
                     fault;
    out.deliveries.push_back(rec);
    out.received[static_cast<std::size_t>(node)].push_back(burst[s]);
  }

  if (strict && !out.unclaimed_slots.empty()) {
    throw SimulationError("scatter: " +
                          std::to_string(out.unclaimed_slots.size()) +
                          " burst slots have no listener");
  }

  if (!out.deliveries.empty()) {
    TimePs lo = out.deliveries.front().arrival_ps;
    TimePs hi = lo;
    for (const auto& d : out.deliveries) {
      lo = std::min(lo, d.arrival_ps);
      hi = std::max(hi, d.arrival_ps);
    }
    out.span_ps = (hi - lo) + clock_.period_ps();
  }
  return out;
}

ScatterResult ScaEngine::scatter_multicast(const CpSchedule& schedule,
                                           const std::vector<Word>& burst,
                                           bool strict) const {
  if (schedule.nodes() != topo_.nodes()) {
    throw SimulationError(
        "scatter_multicast: schedule/topology node count mismatch");
  }
  ScatterResult out;
  out.received.resize(topo_.nodes());
  std::vector<std::uint8_t> claimed(burst.size(), 0);

  for (std::size_t i = 0; i < topo_.nodes(); ++i) {
    const TimePs fault =
        topo_.skew_error_ps.empty() ? 0 : topo_.skew_error_ps[i];
    std::int64_t element = 0;
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != CpAction::kListen) continue;
      for (Slot s = e.begin; s < e.end(); ++s, ++element) {
        if (s < 0 || static_cast<std::size_t>(s) >= burst.size()) {
          throw SimulationError("scatter_multicast: CP beyond the burst");
        }
        claimed[static_cast<std::size_t>(s)] = 1;
        DeliveryRecord rec;
        rec.slot = s;
        rec.word = burst[static_cast<std::size_t>(s)];
        rec.node = static_cast<std::int32_t>(i);
        rec.element = element;
        rec.arrival_ps =
            clock_.perceived_edge_ps(topo_.node_pos_um[i], s) + fault;
        out.deliveries.push_back(rec);
        out.received[i].push_back(rec.word);
      }
    }
  }
  for (std::size_t s = 0; s < burst.size(); ++s) {
    if (!claimed[s]) out.unclaimed_slots.push_back(static_cast<Slot>(s));
  }
  if (strict && !out.unclaimed_slots.empty()) {
    throw SimulationError("scatter_multicast: " +
                          std::to_string(out.unclaimed_slots.size()) +
                          " burst slots have no listener");
  }
  std::sort(out.deliveries.begin(), out.deliveries.end(),
            [](const DeliveryRecord& a, const DeliveryRecord& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              return a.node < b.node;
            });
  if (!out.deliveries.empty()) {
    TimePs lo = out.deliveries.front().arrival_ps;
    TimePs hi = lo;
    for (const auto& d : out.deliveries) {
      lo = std::min(lo, d.arrival_ps);
      hi = std::max(hi, d.arrival_ps);
    }
    out.span_ps = (hi - lo) + clock_.period_ps();
  }
  return out;
}

PscanTopology straight_bus_topology(std::size_t nodes, double length_cm,
                                    photonic::ClockParams clock) {
  PSYNC_CHECK(nodes > 0);
  PSYNC_CHECK(length_cm > 0.0);
  PscanTopology topo;
  topo.clock = clock;
  const double len_um = units::cm_to_um(length_cm);
  const double pitch = len_um / static_cast<double>(nodes + 1);
  topo.node_pos_um.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    topo.node_pos_um[i] = pitch * static_cast<double>(i + 1);
  }
  topo.terminus_um = len_um;
  topo.head_um = 0.0;
  return topo;
}

}  // namespace psync::core
