// Communication Programs (CPs) — paper Sections III and IV.
//
// A CP is the per-node schedule that makes the SCA/SCA^-1 possible: it
// assigns each node a disjoint set of global clock slots during which that
// node may modulate (drive) the data wavelength, or must latch (listen to)
// it. All CPs on a PSCAN are linked so that adherence to the photonic clock
// results in exactly one driver and one reader per slot.
//
// CPs are tiny ("approximately 96 bits" for the FFT): regular patterns are
// expressed as strided descriptors {first, burst, stride, count} — the form
// a hardware waveguide interface would execute — and the compact binary
// encoding here demonstrates the claimed size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psync::core {

/// Global schedule slot index (one photonic clock cycle on the bus).
using Slot = std::int64_t;

enum class CpAction : std::uint8_t {
  kPass = 0,    // let incident energy pass unmodified (implicit default)
  kDrive = 1,   // modulate local data onto the waveguide
  kListen = 2,  // latch the data wavelength into the local deserializer
};

/// Contiguous run of slots with one action.
struct CpEntry {
  Slot begin = 0;
  Slot length = 0;
  CpAction action = CpAction::kPass;

  Slot end() const { return begin + length; }
};

/// Strided descriptor: `count` bursts of `burst` slots, the b-th burst
/// starting at first + b*stride. This is the loop form a waveguide
/// interface's sequencer executes and the unit of the compact encoding.
struct CpStride {
  Slot first = 0;
  Slot burst = 1;
  Slot stride = 1;
  Slot count = 1;
  CpAction action = CpAction::kDrive;

  /// Expand into explicit entries (in schedule order).
  std::vector<CpEntry> expand() const;
  /// Total slots covered.
  Slot slots() const { return burst * count; }
  /// Last slot + 1.
  Slot end() const { return count > 0 ? first + (count - 1) * stride + burst : first; }
};

/// One node's communication program: a list of strided descriptors.
class CommProgram {
 public:
  CommProgram() = default;
  explicit CommProgram(std::vector<CpStride> strides);

  void add(const CpStride& s);

  const std::vector<CpStride>& strides() const { return strides_; }
  bool empty() const { return strides_.empty(); }

  /// All entries, expanded and sorted by begin slot. Throws SimulationError
  /// if entries within this program overlap (a node cannot do two things in
  /// one slot).
  std::vector<CpEntry> entries() const;

  /// Total slots with the given action.
  Slot slot_count(CpAction action) const;

  /// First slot after every entry (the program's horizon).
  Slot horizon() const;

  /// Compact binary encoding: a 16-bit record count, then per stride a
  /// fixed-width record of 2b action + 24b first + 22b burst + 24b stride +
  /// 22b count = 94 bits. Round-trips via decode(). Throws SimulationError
  /// when a field exceeds its width.
  std::vector<std::uint8_t> encode() const;
  static CommProgram decode(const std::vector<std::uint8_t>& bytes);

  /// Size of the *semantic* payload in bits (what dedicated hardware would
  /// store): 94 bits per stride record. The paper's FFT transpose CP is one
  /// stride — 94 bits, matching the claimed "approximately 96-bits".
  std::size_t encoded_bits() const;

  std::string to_string() const;

 private:
  std::vector<CpStride> strides_;
};

/// Field-width limits of the compact encoding.
inline constexpr Slot kCpMaxFirst = (Slot{1} << 24) - 1;
inline constexpr Slot kCpMaxBurst = (Slot{1} << 22) - 1;
inline constexpr Slot kCpMaxStride = (Slot{1} << 24) - 1;
inline constexpr Slot kCpMaxCount = (Slot{1} << 22) - 1;
inline constexpr std::size_t kCpBitsPerStride = 94;

}  // namespace psync::core
