#include "psync/core/cp_compile.hpp"

#include <string>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

CpSchedule blocks_schedule(std::size_t nodes, Slot elements_per_node,
                           CpAction action) {
  PSYNC_CHECK(nodes > 0);
  PSYNC_CHECK(elements_per_node > 0);
  CpSchedule sched;
  sched.total_slots = static_cast<Slot>(nodes) * elements_per_node;
  sched.node_cps.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    CpStride s;
    s.first = static_cast<Slot>(i) * elements_per_node;
    s.burst = elements_per_node;
    s.stride = elements_per_node;  // irrelevant for count == 1
    s.count = 1;
    s.action = action;
    sched.node_cps[i].add(s);
  }
  return sched;
}

CpSchedule interleaved_schedule(std::size_t nodes, Slot elements_per_node,
                                CpAction action) {
  PSYNC_CHECK(nodes > 0);
  PSYNC_CHECK(elements_per_node > 0);
  CpSchedule sched;
  sched.total_slots = static_cast<Slot>(nodes) * elements_per_node;
  sched.node_cps.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    CpStride s;
    s.first = static_cast<Slot>(i);
    s.burst = 1;
    s.stride = static_cast<Slot>(nodes);
    s.count = elements_per_node;
    s.action = action;
    sched.node_cps[i].add(s);
  }
  return sched;
}

CpSchedule round_robin_schedule(std::size_t nodes, Slot blocks,
                                Slot block_elements, CpAction action) {
  PSYNC_CHECK(nodes > 0);
  PSYNC_CHECK(blocks > 0);
  PSYNC_CHECK(block_elements > 0);
  CpSchedule sched;
  sched.total_slots = static_cast<Slot>(nodes) * blocks * block_elements;
  sched.node_cps.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    CpStride s;
    s.first = static_cast<Slot>(i) * block_elements;
    s.burst = block_elements;
    s.stride = static_cast<Slot>(nodes) * block_elements;
    s.count = blocks;
    s.action = action;
    sched.node_cps[i].add(s);
  }
  return sched;
}

}  // namespace

CpSchedule compile_gather_blocks(std::size_t nodes, Slot elements_per_node) {
  return blocks_schedule(nodes, elements_per_node, CpAction::kDrive);
}
CpSchedule compile_gather_interleaved(std::size_t nodes,
                                      Slot elements_per_node) {
  return interleaved_schedule(nodes, elements_per_node, CpAction::kDrive);
}
CpSchedule compile_gather_round_robin(std::size_t nodes, Slot blocks,
                                      Slot block_elements) {
  return round_robin_schedule(nodes, blocks, block_elements, CpAction::kDrive);
}
CpSchedule compile_gather_transpose(std::size_t nodes, Slot rows_per_node,
                                    Slot row_length) {
  PSYNC_CHECK(nodes > 0);
  PSYNC_CHECK(rows_per_node > 0);
  PSYNC_CHECK(row_length > 0);
  const Slot total_rows = static_cast<Slot>(nodes) * rows_per_node;
  CpSchedule sched;
  sched.total_slots = total_rows * row_length;
  sched.node_cps.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (Slot r = 0; r < rows_per_node; ++r) {
      CpStride s;
      s.first = static_cast<Slot>(i) * rows_per_node + r;
      s.burst = 1;
      s.stride = total_rows;
      s.count = row_length;
      s.action = CpAction::kDrive;
      sched.node_cps[i].add(s);
    }
  }
  return sched;
}

CpSchedule compile_scatter_blocks(std::size_t nodes, Slot elements_per_node) {
  return blocks_schedule(nodes, elements_per_node, CpAction::kListen);
}
CpSchedule compile_scatter_interleaved(std::size_t nodes,
                                       Slot elements_per_node) {
  return interleaved_schedule(nodes, elements_per_node, CpAction::kListen);
}
CpSchedule compile_scatter_round_robin(std::size_t nodes, Slot blocks,
                                       Slot block_elements) {
  return round_robin_schedule(nodes, blocks, block_elements, CpAction::kListen);
}

std::vector<std::int32_t> slot_owners(const CpSchedule& schedule,
                                      CpAction action) {
  std::vector<std::int32_t> owner(
      static_cast<std::size_t>(schedule.total_slots), -1);
  for (std::size_t i = 0; i < schedule.node_cps.size(); ++i) {
    for (const CpEntry& e : schedule.node_cps[i].entries()) {
      if (e.action != action) continue;
      for (Slot s = e.begin; s < e.end(); ++s) {
        if (s < 0 || s >= schedule.total_slots) {
          throw SimulationError("slot_owners: slot " + std::to_string(s) +
                                " outside schedule of " +
                                std::to_string(schedule.total_slots));
        }
        auto& o = owner[static_cast<std::size_t>(s)];
        if (o != -1) {
          throw SimulationError("slot_owners: slot " + std::to_string(s) +
                                " claimed by nodes " + std::to_string(o) +
                                " and " + std::to_string(i));
        }
        o = static_cast<std::int32_t>(i);
      }
    }
  }
  return owner;
}

ScheduleCheck check_schedule(const CpSchedule& schedule, CpAction action) {
  ScheduleCheck out;
  std::vector<std::int32_t> owner;
  try {
    owner = slot_owners(schedule, action);
  } catch (const SimulationError&) {
    return out;  // disjoint stays false
  }
  out.disjoint = true;
  for (auto o : owner) {
    if (o != -1) ++out.claimed_slots;
  }
  out.gap_free = out.claimed_slots == schedule.total_slots;
  out.utilization = schedule.total_slots > 0
                        ? static_cast<double>(out.claimed_slots) /
                              static_cast<double>(schedule.total_slots)
                        : 0.0;
  return out;
}

CommProgram head_drive_program(Slot total_slots) {
  PSYNC_CHECK(total_slots > 0);
  CommProgram cp;
  // One long burst; burst field is width-limited, so express long bursts as
  // multiple max-width chunks.
  Slot at = 0;
  while (at < total_slots) {
    const Slot chunk = std::min<Slot>(total_slots - at, kCpMaxBurst);
    cp.add(CpStride{at, chunk, chunk, 1, CpAction::kDrive});
    at += chunk;
  }
  return cp;
}

std::int64_t element_of_slot(const CommProgram& cp, CpAction action, Slot s) {
  std::int64_t index = 0;
  for (const CpEntry& e : cp.entries()) {
    if (e.action != action) continue;
    if (s >= e.begin && s < e.end()) return index + (s - e.begin);
    if (e.begin > s) break;
    index += e.length;
  }
  return -1;
}

}  // namespace psync::core
