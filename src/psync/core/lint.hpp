// Schedule linting: one call that checks everything that can be wrong with
// a planned PSCAN transaction *before* it is simulated, with human-readable
// diagnostics. The engine throws on hard errors; the linter explains them —
// it is what tools/ and interactive users should run on hand-written CPs.
//
// Checks:
//   errors   — per-node CP self-overlap; cross-node slot collisions;
//              slots outside [0, total); CP fields too wide to encode;
//              node data size != CP slot count; topology inconsistencies.
//   warnings — schedule gaps (idle waveguide slots); link budget that does
//              not close (or closes with thin margin -> projected BER and
//              expected bit errors for the transaction).
#pragma once

#include <string>
#include <vector>

#include "psync/core/sca.hpp"

namespace psync::core {

enum class LintSeverity { kError, kWarning, kInfo };

struct LintIssue {
  LintSeverity severity = LintSeverity::kInfo;
  /// Node the issue concerns, or -1 for schedule/topology-wide issues.
  std::int32_t node = -1;
  std::string message;
};

struct LintReport {
  std::vector<LintIssue> issues;
  bool ok = true;          // no errors (warnings allowed)
  double utilization = 0.0;
  /// Worst-case optical margin (dB) when a budget is configured; NaN
  /// otherwise.
  double worst_margin_db = 0.0;
  bool has_margin = false;

  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] std::string to_string() const;
};

/// Lint a gather (kDrive) or scatter (kListen) transaction. `data_sizes`
/// (optional) are the per-node word counts that will be supplied; pass an
/// empty vector to skip that check.
[[nodiscard]] LintReport lint_transaction(
    const PscanTopology& topology, const CpSchedule& schedule, CpAction action,
    const std::vector<std::size_t>& data_sizes = {});

}  // namespace psync::core
