#include "psync/core/trace.hpp"

#include <algorithm>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync::core {

WaveTrace trace_gather(const ScaEngine& engine, const GatherResult& gather,
                       const std::vector<double>& probes_um) {
  PSYNC_CHECK(!probes_um.empty());
  const auto& topo = engine.topology();
  const auto& clk = engine.clock();

  WaveTrace trace;
  trace.probes_um = probes_um;
  trace.period_ps = clk.period_ps();
  trace.at_probe.resize(probes_um.size());

  for (const auto& rec : gather.stream) {
    const double src_pos =
        topo.node_pos_um[static_cast<std::size_t>(rec.source)];
    for (std::size_t p = 0; p < probes_um.size(); ++p) {
      const double x = probes_um[p];
      if (x < src_pos) continue;  // energy never travels upstream
      TraceSample s;
      s.slot = rec.slot;
      s.source = rec.source;
      s.word = rec.word;
      s.at_ps = rec.modulated_ps + (clk.flight_ps(x) - clk.flight_ps(src_pos));
      trace.at_probe[p].push_back(s);
    }
  }
  for (auto& samples : trace.at_probe) {
    std::sort(samples.begin(), samples.end(),
              [](const TraceSample& a, const TraceSample& b) {
                return a.at_ps < b.at_ps;
              });
  }
  return trace;
}

std::string render_ascii(const WaveTrace& trace,
                         const std::vector<std::string>& labels) {
  PSYNC_CHECK(trace.period_ps > 0);
  TimePs t_min = INT64_MAX;
  TimePs t_max = INT64_MIN;
  for (const auto& samples : trace.at_probe) {
    for (const auto& s : samples) {
      t_min = std::min(t_min, s.at_ps);
      t_max = std::max(t_max, s.at_ps + trace.period_ps);
    }
  }
  std::ostringstream os;
  if (t_min > t_max) return "(empty trace)\n";
  const auto cols =
      static_cast<std::size_t>((t_max - t_min) / trace.period_ps);

  os << "time (ps)   ";
  char buf[32];
  for (std::size_t c = 0; c < cols; ++c) {
    std::snprintf(buf, sizeof(buf), "%-6lld",
                  static_cast<long long>(
                      t_min + static_cast<TimePs>(c) * trace.period_ps));
    os << buf;
  }
  os << '\n';

  for (std::size_t p = 0; p < trace.at_probe.size(); ++p) {
    std::string line(cols * 6, '.');
    for (const auto& s : trace.at_probe[p]) {
      const auto c = static_cast<std::size_t>((s.at_ps - t_min) /
                                              trace.period_ps);
      std::snprintf(buf, sizeof(buf), "s%lld", static_cast<long long>(s.slot));
      const std::string tag(buf);
      line.replace(c * 6, std::min(tag.size(), std::size_t{5}), tag, 0,
                   std::min(tag.size(), std::size_t{5}));
    }
    if (p < labels.size()) {
      std::snprintf(buf, sizeof(buf), "%-12s", labels[p].c_str());
      os << buf;
    } else {
      std::snprintf(buf, sizeof(buf), "%-12.0f", trace.probes_um[p]);
      os << buf;
    }
    os << line << '\n';
  }
  return os.str();
}

std::string to_csv(const WaveTrace& trace) {
  std::ostringstream os;
  os << "probe_um,slot,source,time_ps\n";
  for (std::size_t p = 0; p < trace.at_probe.size(); ++p) {
    for (const auto& s : trace.at_probe[p]) {
      os << trace.probes_um[p] << ',' << s.slot << ',' << s.source << ','
         << s.at_ps << '\n';
    }
  }
  return os.str();
}

std::string to_json(const WaveTrace& trace) {
  std::ostringstream os;
  os << "{\"period_ps\":" << trace.period_ps << ",\"probes\":[";
  for (std::size_t p = 0; p < trace.at_probe.size(); ++p) {
    if (p > 0) os << ',';
    os << "{\"probe_um\":" << trace.probes_um[p] << ",\"samples\":[";
    for (std::size_t i = 0; i < trace.at_probe[p].size(); ++i) {
      const auto& s = trace.at_probe[p][i];
      if (i > 0) os << ',';
      os << "{\"slot\":" << s.slot << ",\"source\":" << s.source
         << ",\"time_ps\":" << s.at_ps << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string to_json(const FaultReport& rep) {
  std::ostringstream os;
  os << "{\"words_total\":" << rep.words_total
     << ",\"words_corrupted\":" << rep.words_corrupted
     << ",\"bits_flipped\":" << rep.bits_flipped
     << ",\"bits_silenced\":" << rep.bits_silenced << '}';
  return os.str();
}

std::string to_json(const reliability::RetryReport& rep) {
  std::ostringstream os;
  os << "{\"blocks_total\":" << rep.blocks_total
     << ",\"blocks_retried\":" << rep.blocks_retried
     << ",\"retries\":" << rep.retries
     << ",\"slots_replayed\":" << rep.slots_replayed
     << ",\"backoff_slots\":" << rep.backoff_slots
     << ",\"corrected_bits\":" << rep.corrected_bits
     << ",\"double_errors\":" << rep.double_errors
     << ",\"crc_failures\":" << rep.crc_failures
     << ",\"detected_errors\":" << rep.detected_errors
     << ",\"residual_errors\":" << rep.residual_errors << '}';
  return os.str();
}

std::string to_json(const reliability::LaneReport& rep) {
  std::ostringstream os;
  os << "{\"dead_lanes\":[";
  for (std::size_t i = 0; i < rep.dead_lanes.size(); ++i) {
    if (i > 0) os << ',';
    os << rep.dead_lanes[i];
  }
  os << "],\"spares_used\":" << rep.spares_used
     << ",\"residual_dead\":" << rep.residual_dead
     << ",\"slots_per_word\":" << rep.slots_per_word << '}';
  return os.str();
}

RunSummary summarize(const PsyncRunReport& rep) {
  RunSummary s;
  s.machine = "psync";
  s.phases = rep.phases;
  s.total_ns = rep.total_ns;
  s.reorg_ns = rep.reorg_ns;
  s.flops = rep.flops;
  s.gflops = rep.gflops;
  s.compute_efficiency = rep.compute_efficiency;
  s.max_error_vs_reference = rep.max_error_vs_reference;
  s.comm_energy_pj = rep.comm_energy_pj;
  s.compute_energy_pj = rep.compute_energy_pj;
  s.has_sca = true;
  s.sca_gap_free = rep.sca_gap_free;
  s.sca_collisions = rep.sca_collisions;
  s.has_reliability = true;
  s.fault = rep.fault;
  s.retry = rep.retry;
  s.lanes = rep.lanes;
  s.reliability_overhead_ns = rep.reliability_overhead_ns;
  s.reliability_overhead_slots = rep.reliability_overhead_slots;
  return s;
}

RunSummary summarize(const MeshRunReport& rep) {
  RunSummary s;
  s.machine = "mesh";
  s.phases = rep.phases;
  s.total_ns = rep.total_ns;
  s.reorg_ns = rep.reorg_ns;
  s.flops = rep.flops;
  s.gflops = rep.gflops;
  s.compute_efficiency = rep.compute_efficiency;
  s.max_error_vs_reference = rep.max_error_vs_reference;
  s.comm_energy_pj = rep.comm_energy_pj;
  s.compute_energy_pj = rep.compute_energy_pj;
  return s;
}

std::string run_summary_json(const RunSummary& s) {
  std::ostringstream os;
  os.precision(12);
  os << "{\"schema_version\":" << kRunReportSchemaVersion << ",\"machine\":\""
     << s.machine << "\",\"phases\":[";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const auto& ph = s.phases[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << ph.name << "\",\"start_ns\":" << ph.start_ns
       << ",\"end_ns\":" << ph.end_ns << '}';
  }
  os << "],\"total_ns\":" << s.total_ns << ",\"reorg_ns\":" << s.reorg_ns
     << ",\"flops\":" << s.flops << ",\"gflops\":" << s.gflops
     << ",\"compute_efficiency\":" << s.compute_efficiency
     << ",\"max_error_vs_reference\":" << s.max_error_vs_reference
     << ",\"comm_energy_pj\":" << s.comm_energy_pj
     << ",\"compute_energy_pj\":" << s.compute_energy_pj;
  if (s.has_sca) {
    os << ",\"sca_gap_free\":" << (s.sca_gap_free ? "true" : "false")
       << ",\"sca_collisions\":" << s.sca_collisions;
  }
  if (s.has_reliability) {
    os << ",\"reliability_overhead_ns\":" << s.reliability_overhead_ns
       << ",\"reliability_overhead_slots\":" << s.reliability_overhead_slots
       << ",\"fault\":" << to_json(s.fault)
       << ",\"retry\":" << to_json(s.retry)
       << ",\"lanes\":" << to_json(s.lanes);
  }
  os << '}';
  return os.str();
}

std::string run_summary_csv_header() {
  return "schema_version,machine,total_ns,reorg_ns,flops,gflops,"
         "compute_efficiency,max_error_vs_reference,comm_energy_pj,"
         "compute_energy_pj,sca_gap_free,sca_collisions,words_corrupted,"
         "blocks_retried,residual_errors,reliability_overhead_ns\n";
}

std::string run_summary_csv_row(const RunSummary& s) {
  std::ostringstream os;
  os.precision(12);
  os << kRunReportSchemaVersion << ',' << s.machine << ',' << s.total_ns
     << ',' << s.reorg_ns << ',' << s.flops << ',' << s.gflops << ','
     << s.compute_efficiency << ',' << s.max_error_vs_reference << ','
     << s.comm_energy_pj << ',' << s.compute_energy_pj << ','
     << (s.has_sca ? (s.sca_gap_free ? 1 : 0) : 0) << ','
     << s.sca_collisions << ',' << s.fault.words_corrupted << ','
     << s.retry.blocks_retried << ',' << s.retry.residual_errors << ','
     << s.reliability_overhead_ns << '\n';
  return os.str();
}

std::string run_report_json(const PsyncRunReport& rep) {
  return run_summary_json(summarize(rep));
}

std::string run_report_json(const MeshRunReport& rep) {
  return run_summary_json(summarize(rep));
}

std::string run_report_csv(const PsyncRunReport& rep) {
  return run_summary_csv_header() + run_summary_csv_row(summarize(rep));
}

std::string run_report_csv(const MeshRunReport& rep) {
  return run_summary_csv_header() + run_summary_csv_row(summarize(rep));
}

}  // namespace psync::core
