#include "psync/core/trace.hpp"

#include <algorithm>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync::core {

WaveTrace trace_gather(const ScaEngine& engine, const GatherResult& gather,
                       const std::vector<double>& probes_um) {
  PSYNC_CHECK(!probes_um.empty());
  const auto& topo = engine.topology();
  const auto& clk = engine.clock();

  WaveTrace trace;
  trace.probes_um = probes_um;
  trace.period_ps = clk.period_ps();
  trace.at_probe.resize(probes_um.size());

  for (const auto& rec : gather.stream) {
    const double src_pos =
        topo.node_pos_um[static_cast<std::size_t>(rec.source)];
    for (std::size_t p = 0; p < probes_um.size(); ++p) {
      const double x = probes_um[p];
      if (x < src_pos) continue;  // energy never travels upstream
      TraceSample s;
      s.slot = rec.slot;
      s.source = rec.source;
      s.word = rec.word;
      s.at_ps = rec.modulated_ps + (clk.flight_ps(x) - clk.flight_ps(src_pos));
      trace.at_probe[p].push_back(s);
    }
  }
  for (auto& samples : trace.at_probe) {
    std::sort(samples.begin(), samples.end(),
              [](const TraceSample& a, const TraceSample& b) {
                return a.at_ps < b.at_ps;
              });
  }
  return trace;
}

std::string render_ascii(const WaveTrace& trace,
                         const std::vector<std::string>& labels) {
  PSYNC_CHECK(trace.period_ps > 0);
  TimePs t_min = INT64_MAX;
  TimePs t_max = INT64_MIN;
  for (const auto& samples : trace.at_probe) {
    for (const auto& s : samples) {
      t_min = std::min(t_min, s.at_ps);
      t_max = std::max(t_max, s.at_ps + trace.period_ps);
    }
  }
  std::ostringstream os;
  if (t_min > t_max) return "(empty trace)\n";
  const auto cols =
      static_cast<std::size_t>((t_max - t_min) / trace.period_ps);

  os << "time (ps)   ";
  char buf[32];
  for (std::size_t c = 0; c < cols; ++c) {
    std::snprintf(buf, sizeof(buf), "%-6lld",
                  static_cast<long long>(
                      t_min + static_cast<TimePs>(c) * trace.period_ps));
    os << buf;
  }
  os << '\n';

  for (std::size_t p = 0; p < trace.at_probe.size(); ++p) {
    std::string line(cols * 6, '.');
    for (const auto& s : trace.at_probe[p]) {
      const auto c = static_cast<std::size_t>((s.at_ps - t_min) /
                                              trace.period_ps);
      std::snprintf(buf, sizeof(buf), "s%lld", static_cast<long long>(s.slot));
      const std::string tag(buf);
      line.replace(c * 6, std::min(tag.size(), std::size_t{5}), tag, 0,
                   std::min(tag.size(), std::size_t{5}));
    }
    if (p < labels.size()) {
      std::snprintf(buf, sizeof(buf), "%-12s", labels[p].c_str());
      os << buf;
    } else {
      std::snprintf(buf, sizeof(buf), "%-12.0f", trace.probes_um[p]);
      os << buf;
    }
    os << line << '\n';
  }
  return os.str();
}

std::string to_csv(const WaveTrace& trace) {
  std::ostringstream os;
  os << "probe_um,slot,source,time_ps\n";
  for (std::size_t p = 0; p < trace.at_probe.size(); ++p) {
    for (const auto& s : trace.at_probe[p]) {
      os << trace.probes_um[p] << ',' << s.slot << ',' << s.source << ','
         << s.at_ps << '\n';
    }
  }
  return os.str();
}

}  // namespace psync::core
