#include "psync/core/kernel_vm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>
#include <string>

#include "psync/common/check.hpp"
#include "psync/fft/four_step.hpp"

namespace psync::core {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

std::vector<std::complex<double>> fft_rom(std::size_t n) {
  std::vector<std::complex<double>> rom(std::max<std::size_t>(n / 2, 1));
  for (std::size_t j = 0; j < rom.size(); ++j) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(n);
    rom[j] = {std::cos(ang), std::sin(ang)};
  }
  return rom;
}

void emit_stages(KernelProgram* p, std::size_t n, std::size_t base,
                 std::size_t first_stage, std::size_t last_stage,
                 std::size_t block_offset, std::size_t block_size) {
  for (std::size_t s = first_stage; s < last_stage; ++s) {
    const std::size_t m = std::size_t{1} << (s + 1);
    const std::size_t half = m / 2;
    const std::size_t stride = n / m;
    for (std::size_t start = block_offset; start < block_offset + block_size;
         start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        p->code.push_back(
            KernelInstr{KernelOp::kBfly,
                        static_cast<std::uint32_t>(base + start + j),
                        static_cast<std::uint32_t>(base + start + half + j),
                        static_cast<std::uint32_t>(j * stride)});
      }
    }
  }
}

}  // namespace

KernelProgram compile_fft_kernel(std::size_t n, std::size_t base) {
  if (!is_pow2(n)) {
    throw SimulationError("compile_fft_kernel: n must be a power of two");
  }
  KernelProgram p;
  p.twiddles = fft_rom(n);
  p.data_size = base + n;
  const std::size_t bits = ilog2(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) r |= ((i >> b) & 1U) << (bits - 1 - b);
    if (i < r) {
      p.code.push_back(KernelInstr{KernelOp::kSwap,
                                   static_cast<std::uint32_t>(base + i),
                                   static_cast<std::uint32_t>(base + r), 0});
    }
  }
  emit_stages(&p, n, base, 0, bits, 0, n);
  p.code.push_back(KernelInstr{KernelOp::kHalt, 0, 0, 0});
  return p;
}

KernelProgram compile_fft_stages_kernel(std::size_t n, std::size_t first_stage,
                                        std::size_t last_stage,
                                        std::size_t base,
                                        std::size_t block_offset,
                                        std::size_t block_size) {
  if (!is_pow2(n)) {
    throw SimulationError("compile_fft_stages_kernel: n must be a power of two");
  }
  if (block_size == 0) {
    block_offset = 0;
    block_size = n;
  }
  if (last_stage > ilog2(n) || first_stage > last_stage ||
      block_offset + block_size > n) {
    throw SimulationError("compile_fft_stages_kernel: bad stage/block range");
  }
  KernelProgram p;
  p.twiddles = fft_rom(n);
  p.data_size = base + n;
  emit_stages(&p, n, base, first_stage, last_stage, block_offset, block_size);
  p.code.push_back(KernelInstr{KernelOp::kHalt, 0, 0, 0});
  return p;
}

KernelProgram compile_four_step_twiddle_kernel(std::size_t rows,
                                               std::size_t cols,
                                               std::size_t global_row0,
                                               std::size_t total_rows) {
  KernelProgram p;
  p.data_size = rows * cols;
  const std::size_t n = total_rows * cols;
  p.twiddles.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t q = 0; q < cols; ++q) {
      p.twiddles.push_back(fft::four_step_twiddle(n, global_row0 + r, q));
      p.code.push_back(
          KernelInstr{KernelOp::kTwid,
                      static_cast<std::uint32_t>(r * cols + q), 0,
                      static_cast<std::uint32_t>(r * cols + q)});
    }
  }
  p.code.push_back(KernelInstr{KernelOp::kHalt, 0, 0, 0});
  return p;
}

void append_kernel(KernelProgram* program, const KernelProgram& more) {
  PSYNC_CHECK(program != nullptr);
  // Drop the first program's trailing HALT.
  while (!program->code.empty() &&
         program->code.back().op == KernelOp::kHalt) {
    program->code.pop_back();
  }
  const auto tw_base = static_cast<std::uint32_t>(program->twiddles.size());
  for (KernelInstr ins : more.code) {
    if (ins.op == KernelOp::kBfly || ins.op == KernelOp::kTwid) {
      ins.tw += tw_base;
    }
    program->code.push_back(ins);
  }
  program->twiddles.insert(program->twiddles.end(), more.twiddles.begin(),
                           more.twiddles.end());
  program->data_size = std::max(program->data_size, more.data_size);
}

VmStats KernelVm::run(const KernelProgram& program,
                      std::span<std::complex<double>> data) const {
  if (data.size() < program.data_size) {
    throw SimulationError("KernelVm: data memory smaller than the program's "
                          "footprint");
  }
  VmStats stats;
  for (const KernelInstr& ins : program.code) {
    ++stats.instructions;
    switch (ins.op) {
      case KernelOp::kHalt:
        stats.compute_ns = exec_.compute_ns(stats.ops);
        stats.energy_pj = exec_.compute_energy_pj(stats.ops);
        return stats;
      case KernelOp::kBfly: {
        if (ins.a >= data.size() || ins.b >= data.size() ||
            ins.tw >= program.twiddles.size()) {
          throw SimulationError("KernelVm: BFLY operand out of range");
        }
        const auto w = program.twiddles[ins.tw];
        const auto t = w * data[ins.b];
        const auto u = data[ins.a];
        data[ins.a] = u + t;
        data[ins.b] = u - t;
        ++stats.ops.butterflies;
        stats.ops.real_mults += 4;
        stats.ops.real_adds += 6;
        break;
      }
      case KernelOp::kTwid: {
        if (ins.a >= data.size() || ins.tw >= program.twiddles.size()) {
          throw SimulationError("KernelVm: TWID operand out of range");
        }
        data[ins.a] *= program.twiddles[ins.tw];
        stats.ops.real_mults += 4;
        stats.ops.real_adds += 2;
        break;
      }
      case KernelOp::kSwap: {
        if (ins.a >= data.size() || ins.b >= data.size()) {
          throw SimulationError("KernelVm: SWAP operand out of range");
        }
        std::swap(data[ins.a], data[ins.b]);
        break;
      }
    }
  }
  throw SimulationError("KernelVm: program ran off the end (missing HALT)");
}

std::vector<Word> pack_kernel_words(const KernelProgram& program) {
  constexpr std::uint32_t kMaxAddr = (1U << 28) - 1;
  std::vector<Word> out;
  out.push_back(program.code.size());
  for (const KernelInstr& ins : program.code) {
    if (ins.a > kMaxAddr || ins.b > kMaxAddr) {
      throw SimulationError("pack_kernel_words: address exceeds 28 bits");
    }
    const Word w0 = static_cast<Word>(ins.op) |
                    (static_cast<Word>(ins.a) << 8) |
                    (static_cast<Word>(ins.b) << 36);
    out.push_back(w0);
    out.push_back(static_cast<Word>(ins.tw));
  }
  out.push_back(program.twiddles.size());
  for (const auto& t : program.twiddles) {
    out.push_back(std::bit_cast<Word>(t.real()));
    out.push_back(std::bit_cast<Word>(t.imag()));
  }
  out.push_back(program.data_size);
  return out;
}

KernelProgram unpack_kernel_words(const std::vector<Word>& words,
                                  std::size_t& offset) {
  auto need = [&](std::size_t k) {
    if (offset + k > words.size()) {
      throw SimulationError("unpack_kernel_words: truncated stream");
    }
  };
  KernelProgram p;
  need(1);
  const auto code_count = static_cast<std::size_t>(words[offset++]);
  need(code_count * 2);
  p.code.reserve(code_count);
  for (std::size_t i = 0; i < code_count; ++i) {
    const Word w0 = words[offset++];
    const Word w1 = words[offset++];
    KernelInstr ins;
    const auto op = static_cast<std::uint8_t>(w0 & 0xFF);
    if (op > 3) throw SimulationError("unpack_kernel_words: bad opcode");
    ins.op = static_cast<KernelOp>(op);
    ins.a = static_cast<std::uint32_t>((w0 >> 8) & 0x0FFFFFFF);
    ins.b = static_cast<std::uint32_t>((w0 >> 36) & 0x0FFFFFFF);
    ins.tw = static_cast<std::uint32_t>(w1);
    p.code.push_back(ins);
  }
  need(1);
  const auto rom_count = static_cast<std::size_t>(words[offset++]);
  need(rom_count * 2 + 1);
  p.twiddles.reserve(rom_count);
  for (std::size_t i = 0; i < rom_count; ++i) {
    const double re = std::bit_cast<double>(words[offset++]);
    const double im = std::bit_cast<double>(words[offset++]);
    p.twiddles.emplace_back(re, im);
  }
  p.data_size = static_cast<std::size_t>(words[offset++]);
  return p;
}

}  // namespace psync::core
