#include "psync/core/dual_clock_fifo.hpp"

#include <algorithm>
#include <string>

#include "psync/common/check.hpp"

namespace psync::core {

DualClockFifo::DualClockFifo(std::size_t capacity, TimePs min_domain_gap_ps)
    : capacity_(capacity), gap_(min_domain_gap_ps) {
  if (capacity == 0) throw SimulationError("DualClockFifo: zero capacity");
  if (gap_ < 0) throw SimulationError("DualClockFifo: negative domain gap");
}

void DualClockFifo::push(Word word, TimePs t) {
  if (t < last_push_) {
    throw SimulationError("DualClockFifo: push time regressed");
  }
  if (full()) {
    throw SimulationError("DualClockFifo: overflow at t=" + std::to_string(t) +
                          " ps (deserializer outpaced the consumer)");
  }
  last_push_ = t;
  items_.push_back(Item{word, t + gap_});
  ++total_pushed_;
  max_occupancy_ = std::max(max_occupancy_, items_.size());
}

bool DualClockFifo::can_pop(TimePs t) const {
  return !items_.empty() && items_.front().visible_at <= t;
}

Word DualClockFifo::pop(TimePs t) {
  if (t < last_pop_) {
    throw SimulationError("DualClockFifo: pop time regressed");
  }
  if (items_.empty()) {
    throw SimulationError("DualClockFifo: underflow at t=" + std::to_string(t) +
                          " ps (modulator starved)");
  }
  if (items_.front().visible_at > t) {
    throw SimulationError(
        "DualClockFifo: pop at t=" + std::to_string(t) +
        " ps before the word cleared the synchronizer (visible at " +
        std::to_string(items_.front().visible_at) + " ps)");
  }
  last_pop_ = t;
  const Word w = items_.front().word;
  items_.pop_front();
  ++total_popped_;
  return w;
}

}  // namespace psync::core
