// Multi-span PSCAN: chains of optical segments joined by O-E-O repeaters —
// paper Section III-B: "individual PSCAN segments can be linked via
// repeaters to form larger networks".
//
// A repeater detects, re-times and re-modulates every bit at full launch
// power, adding a fixed electrical latency. The key result this module
// demonstrates (and its tests pin down): because the *clock* wavelength
// passes through the same repeater chain as the data, every node's
// perceived schedule shifts by exactly its upstream repeater latency, and
// every bit's terminus arrival picks up the *total* chain latency — a
// constant. Slot order and gap-freeness at the terminus therefore survive
// arbitrarily long repeater chains; only pipeline fill grows.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/core/sca.hpp"
#include "psync/photonic/link_budget.hpp"

namespace psync::core {

struct SegmentedBusTopology {
  photonic::ClockParams clock;
  /// Node tap positions along the unrolled chain, strictly increasing, um.
  std::vector<double> node_pos_um;
  /// Repeater positions along the chain, strictly increasing, um. Must not
  /// coincide with node taps.
  std::vector<double> repeater_pos_um;
  /// Receiver position (>= everything else).
  double terminus_um = 0.0;
  /// O-E-O latency per repeater (detection + retime + remodulation), ps.
  TimePs repeater_latency_ps = 200;
  /// Optional per-span optical budget check (each span must close Eq. 1-3
  /// on its own, since repeaters relaunch at full power).
  std::optional<photonic::LinkBudgetParams> budget;

  std::size_t nodes() const { return node_pos_um.size(); }
  std::size_t spans() const { return repeater_pos_um.size() + 1; }
  void validate() const;

  /// Repeaters strictly upstream of position x.
  std::size_t repeaters_before(double x_um) const;
};

class SegmentedScaEngine {
 public:
  explicit SegmentedScaEngine(SegmentedBusTopology topo);

  const SegmentedBusTopology& topology() const { return topo_; }
  const photonic::PhotonicClock& clock() const { return clock_; }

  /// When node i perceives global slot s (clock crossed i's upstream
  /// repeaters too, so the shift is position-dependent but common to clock
  /// and data).
  TimePs perceived_edge_ps(std::size_t node, Slot s) const;

  /// Terminus arrival of slot s: position-independent, includes the FULL
  /// chain's repeater latency.
  TimePs slot_arrival_ps(Slot s) const;

  /// SCA gather across the repeater chain; same semantics as
  /// ScaEngine::gather.
  GatherResult gather(const CpSchedule& schedule,
                      const std::vector<std::vector<Word>>& node_data,
                      bool strict = true) const;

  /// SCA^-1 scatter across the chain (head at position 0).
  ScatterResult scatter(const CpSchedule& schedule,
                        const std::vector<Word>& burst,
                        bool strict = true) const;

 private:
  void check_budget() const;

  SegmentedBusTopology topo_;
  photonic::PhotonicClock clock_;
};

/// Evenly spread `nodes` taps over `spans` equal optical spans of
/// `span_cm` each, with a repeater between consecutive spans.
SegmentedBusTopology segmented_bus_topology(std::size_t nodes,
                                            std::size_t spans, double span_cm,
                                            photonic::ClockParams clock = {});

}  // namespace psync::core
