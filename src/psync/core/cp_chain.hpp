// CP chains: delivering communication programs (and code) over the
// waveguide itself — paper Section IV:
//
//   "In the P-sync architecture, all data, including communication programs
//    and computation programs can be delivered on the SCA^-1 PSCAN. ...
//    CPs form chains in which one CP loads data, and the CP for the SCA
//    waveguide driver, followed by a CP for the next SCA^-1 operation."
//
// Each node is hardwired with only a trivial bootstrap CP (listen on a
// contiguous region of the boot burst). Everything else arrives over the
// bus: a node's boot segment carries its *next* communication programs in
// the 94-bit wire encoding, followed by initial data. After decode, the
// machine executes the delivered schedule — and that schedule may itself
// deliver the one after it.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/core/cp_compile.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {

/// Serialize a CommProgram into waveguide words: one length-prefix word
/// (payload byte count) followed by the encode() bytes packed 8 per word,
/// little-endian. Round-trips via unpack_program_words.
std::vector<Word> pack_program_words(const CommProgram& cp);

/// Decode a program from `words` starting at `offset`; advances `offset`
/// past the program. Throws SimulationError on truncation or garbage.
CommProgram unpack_program_words(const std::vector<Word>& words,
                                 std::size_t& offset);

/// One node's boot payload: the communication programs it will run next
/// (in execution order) plus its initial data words.
struct BootSegment {
  std::vector<CommProgram> programs;
  std::vector<Word> data;
};

/// A built boot transaction: the bootstrap scatter schedule (heterogeneous
/// contiguous blocks — the only thing nodes must know a priori is where
/// their block starts, which is itself one 94-bit record) and the burst.
struct BootImage {
  CpSchedule schedule;
  std::vector<Word> burst;
  /// Word offset of each node's segment within the burst.
  std::vector<Slot> segment_offset;
};

/// Assemble the boot image for `segments` (one per node).
BootImage build_boot_image(const std::vector<BootSegment>& segments);

/// Broadcast variant: ONE shared segment (e.g. the common computation
/// kernel and its CP template), every node listening to the whole burst —
/// run it through ScaEngine::scatter_multicast. N times less waveguide
/// time than unicasting identical copies.
BootImage build_broadcast_boot_image(const BootSegment& shared,
                                     std::size_t nodes);

/// What a node recovers from its received boot words.
struct DecodedSegment {
  std::vector<CommProgram> programs;
  std::vector<Word> data;
};

/// Decode a node's received words (programs count is `program_count`).
DecodedSegment decode_boot_words(const std::vector<Word>& words,
                                 std::size_t program_count);

/// Run a full boot-then-collective chain on the engine:
///   1. SCA^-1 scatters the boot image (bootstrap blocks schedule);
///   2. every node decodes its segment: [next CPs..., data];
///   3. the FIRST decoded program of every node is linked into a gather
///      schedule (total slots = sum of drive slots) and executed with the
///      delivered data.
/// Returns the resulting gather stream. Throws if any decode fails or the
/// delivered schedule collides — i.e. the chain is verified end to end
/// through the photonic transport itself.
GatherResult run_boot_chain(const ScaEngine& engine,
                            const std::vector<BootSegment>& segments,
                            Slot gather_total_slots);

}  // namespace psync::core
