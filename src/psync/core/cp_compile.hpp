// CP compilation: builds the linked set of per-node communication programs
// for the collective patterns in the paper (Section IV: "CPs comprise
// non-overlapping portions of a global schedule").
//
// Conventions:
//  * A schedule covers slots [0, total_slots).
//  * A node's drive/listen slots, taken in increasing slot order, correspond
//    to its local elements 0, 1, 2, ... — the waveguide interface streams
//    its local buffer in order; the *schedule* realizes the reordering.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/core/comm_program.hpp"

namespace psync::core {

/// A compiled schedule: one CP per node plus the global slot count.
struct CpSchedule {
  std::vector<CommProgram> node_cps;
  Slot total_slots = 0;

  std::size_t nodes() const { return node_cps.size(); }
};

/// Block gather (SCA): node i drives slots [i*E, (i+1)*E). The receiver sees
/// node 0's elements, then node 1's, ... — the writeback of P contiguous
/// row blocks.
CpSchedule compile_gather_blocks(std::size_t nodes, Slot elements_per_node);

/// Interleaved gather (SCA): element e of node i lands in slot e*P + i.
/// With node i holding row i of a P x E matrix, the receiver sees the matrix
/// in column-major order — the distributed matrix transpose (Section V-C).
CpSchedule compile_gather_interleaved(std::size_t nodes,
                                      Slot elements_per_node);

/// Round-robin block gather (Model II writeback): k rounds; in round r node
/// i drives slots [(r*P + i)*B, (r*P + i + 1)*B).
CpSchedule compile_gather_round_robin(std::size_t nodes, Slot blocks,
                                      Slot block_elements);

/// Transpose gather (the paper's headline SCA): node i holds rows
/// [i*rows_per_node, (i+1)*rows_per_node) of an (nodes*rows_per_node) x
/// row_length matrix; the terminus stream is the matrix in column-major
/// order. Node i's CP is rows_per_node strided records — one stride (94
/// bits) when each node holds a single row.
CpSchedule compile_gather_transpose(std::size_t nodes, Slot rows_per_node,
                                    Slot row_length);

/// Scatter (SCA^-1) mirrors of the gathers: identical slot geometry with
/// kListen; the head node (not part of `node_cps`) drives the whole burst.
CpSchedule compile_scatter_blocks(std::size_t nodes, Slot elements_per_node);
CpSchedule compile_scatter_interleaved(std::size_t nodes,
                                       Slot elements_per_node);
CpSchedule compile_scatter_round_robin(std::size_t nodes, Slot blocks,
                                       Slot block_elements);

/// Per-slot ownership of a schedule for one action: entry s = node index
/// owning slot s, or -1 when unowned. Throws SimulationError when two nodes
/// claim the same slot ("all CPs on a PSCAN are linked such that ... only
/// one processor [drives] the bus at a time").
std::vector<std::int32_t> slot_owners(const CpSchedule& schedule,
                                      CpAction action);

/// Validation summary for a schedule.
struct ScheduleCheck {
  bool disjoint = false;    // no slot claimed twice
  bool gap_free = false;    // every slot in [0, total) is claimed
  Slot claimed_slots = 0;
  double utilization = 0.0;  // claimed / total
};
ScheduleCheck check_schedule(const CpSchedule& schedule, CpAction action);

/// Head-node CP driving a full burst [0, total_slots).
CommProgram head_drive_program(Slot total_slots);

/// The element index (within its node's local buffer) that a node moves in
/// slot `s` of its program, or -1 when the node does not own the slot.
std::int64_t element_of_slot(const CommProgram& cp, CpAction action, Slot s);

}  // namespace psync::core
