// A P-sync processing element (paper Fig. 7): local data memory, an
// execution unit with a deterministic cost model, computation and
// communication instruction memories, and the waveguide interface state.
//
// The execution-unit cost model matches the paper's accounting (Section
// V-B-1): a floating-point multiply costs `fp_mult_ns`, one FFT butterfly
// costs `mults_per_butterfly` multiplies, and only multiplies are charged.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "psync/common/units.hpp"
#include "psync/core/comm_program.hpp"
#include "psync/core/sca.hpp"
#include "psync/fft/fft.hpp"

namespace psync::core {

struct ExecCostParams {
  /// Nanoseconds per floating-point multiply (paper: 2 ns).
  double fp_mult_ns = 2.0;
  /// Real multiplies per FFT butterfly (paper: 4 — one complex multiply).
  std::uint32_t mults_per_butterfly = 4;
  /// Nanoseconds charged per floating-point add (paper charges 0).
  double fp_add_ns = 0.0;
  /// Energy per multiply / add, pJ (45 nm-class FPU + register access).
  double fp_mult_pj = 20.0;
  double fp_add_pj = 5.0;

  /// Time to execute `ops` (multiply-only accounting unless fp_add_ns set;
  /// a butterfly carries mults_per_butterfly real multiplies, so this is
  /// the paper's Table I accounting).
  double compute_ns(const fft::OpCount& ops) const {
    return static_cast<double>(ops.real_mults) * fp_mult_ns +
           static_cast<double>(ops.real_adds) * fp_add_ns;
  }

  /// Energy to execute `ops`, picojoules.
  double compute_energy_pj(const fft::OpCount& ops) const {
    return static_cast<double>(ops.real_mults) * fp_mult_pj +
           static_cast<double>(ops.real_adds) * fp_add_pj;
  }

  /// Peak multiply throughput, operations per second.
  double peak_mults_per_sec() const { return 1e9 / fp_mult_ns; }
};

/// Pack/unpack a complex sample into the 64-bit word format the waveguide
/// carries (paper: 64-bit samples = two 32-bit floats).
Word pack_sample(std::complex<double> v);
std::complex<double> unpack_sample(Word w);

/// Local state of one processing element during a machine run.
class Processor {
 public:
  Processor(std::uint32_t id, ExecCostParams exec);

  std::uint32_t id() const { return id_; }
  const ExecCostParams& exec() const { return exec_; }

  /// Local data memory (complex samples, one or more matrix rows).
  std::vector<std::complex<double>>& data() { return data_; }
  const std::vector<std::complex<double>>& data() const { return data_; }

  /// Load the communication program for the next collective.
  void load_comm_program(CommProgram cp) { cp_ = std::move(cp); }
  const CommProgram& comm_program() const { return cp_; }

  /// Run an in-place FFT over each of `rows` rows of length `cols` held in
  /// data memory. Returns elapsed compute time (ns) under the cost model
  /// and accumulates op counters.
  double fft_rows(std::size_t rows, std::size_t cols);

  /// Run only stages [first, last) of a row FFT (for Model II interleaving),
  /// optionally restricted to one delivery block (`block_offset`/
  /// `block_size`, 0 = whole row); `prepare` bit-reverses the row first
  /// (unnecessary when the SCA^-1 delivered the row pre-permuted).
  /// Returns elapsed ns.
  double fft_row_stages(const fft::FftPlan& plan, std::size_t row,
                        std::size_t cols, std::size_t first_stage,
                        std::size_t last_stage, std::size_t block_offset = 0,
                        std::size_t block_size = 0, bool prepare = false);

  /// Apply the four-step twiddle scaling W_N^{r*q} to `rows` local rows of
  /// length `cols`, where the node's first row is global row `global_row0`
  /// of an N = total_rows*cols point transform. Returns elapsed ns.
  double apply_four_step_twiddles(std::size_t rows, std::size_t cols,
                                  std::size_t global_row0,
                                  std::size_t total_rows);

  const fft::OpCount& ops() const { return ops_; }
  double busy_ns() const { return busy_ns_; }

 private:
  std::uint32_t id_;
  ExecCostParams exec_;
  std::vector<std::complex<double>> data_;
  CommProgram cp_;
  fft::OpCount ops_;
  double busy_ns_ = 0.0;
};

}  // namespace psync::core
