// Optical fault injection for PSCAN transactions.
//
// The word-level fault model (dead wavelengths, random BER) lives in
// psync/reliability/fault_model.hpp so the reliability layer — SECDED/CRC
// framing, retry/replay, lane failover (psync/reliability/channel.hpp) —
// can sit below core in the link order. This header re-exports those names
// for core code and keeps the injectors that corrupt completed gather/
// scatter results in place.
//
// Faults apply to the *words* of completed gather/scatter results, leaving
// the timing untouched (light arrives either way; only the data is wrong).
// Combined with the timing faults PscanTopology::skew_error_ps injects,
// this covers the failure envelope of the transport.
#pragma once

#include "psync/core/sca.hpp"
#include "psync/reliability/fault_model.hpp"

namespace psync::core {

using reliability::FaultModel;
using reliability::FaultReport;
using reliability::FaultStream;
using reliability::apply_fault;

/// Corrupt a gather's received stream in place.
FaultReport inject_faults(const FaultModel& fault, GatherResult* result);

/// Corrupt a scatter's deliveries (and per-node buffers) in place.
FaultReport inject_faults(const FaultModel& fault, ScatterResult* result);

}  // namespace psync::core
