// Optical fault injection for PSCAN transactions.
//
// Two failure modes the physical layer exhibits:
//   * a dead wavelength — a ring stuck off-resonance (thermal drift,
//     fabrication defect) silences one bit lane of every word that passes
//     its modulator bank: a stuck-at-0 column through the whole stream;
//   * random bit errors — the link's BER, which the photonic::ber model
//     derives from the optical margin (Eq. 1's headroom).
//
// Faults apply to the *words* of completed gather/scatter results, leaving
// the timing untouched (light arrives either way; only the data is wrong).
// Combined with the timing faults PscanTopology::skew_error_ps injects,
// this covers the failure envelope of the transport.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/core/sca.hpp"
#include "psync/photonic/ber.hpp"

namespace psync::core {

struct FaultModel {
  /// Stuck-at-0 bit lanes (wavelength indices, 0..63 for the one-word-per-
  /// slot stream model).
  std::vector<std::uint32_t> dead_wavelengths;
  /// Independent bit-flip probability per received bit.
  double random_ber = 0.0;
  /// RNG seed for the random flips (deterministic injection).
  std::uint64_t seed = 1;

  bool trivial() const {
    return dead_wavelengths.empty() && random_ber <= 0.0;
  }

  /// Derive the random BER from an optical margin via the Q-factor model.
  static FaultModel from_margin_db(double margin_db, std::uint64_t seed = 1);
};

struct FaultReport {
  std::uint64_t words_total = 0;
  std::uint64_t words_corrupted = 0;
  std::uint64_t bits_flipped = 0;     // by random BER
  std::uint64_t bits_silenced = 0;    // 1-bits cleared by dead lanes
};

/// Corrupt one word under the model (deterministic given rng state).
Word apply_fault(const FaultModel& fault, Word w, Rng& rng,
                 FaultReport* report = nullptr);

/// Corrupt a gather's received stream in place.
FaultReport inject_faults(const FaultModel& fault, GatherResult* result);

/// Corrupt a scatter's deliveries (and per-node buffers) in place.
FaultReport inject_faults(const FaultModel& fault, ScatterResult* result);

}  // namespace psync::core
