// Dual-clock FIFO separating a node's compute clock domain from the PSCAN
// photonic clock domain (paper Section III-A).
//
// For an SCA the compute core fills the FIFO at its own clock and the
// waveguide interface drains it on the received photonic clock; for an
// SCA^-1 the directions reverse. The simulator time-stamps every push/pop
// and enforces capacity, so machine models can prove their schedules never
// underrun the modulator or overrun the deserializer.
#pragma once

#include <cstdint>
#include <deque>

#include "psync/common/units.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {

class DualClockFifo {
 public:
  /// `capacity` in words; `min_domain_gap_ps` models the synchronizer
  /// latency: a word pushed at time t is only visible to pops at
  /// t + min_domain_gap_ps or later.
  explicit DualClockFifo(std::size_t capacity, TimePs min_domain_gap_ps = 0);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }

  /// Push `word` at absolute time `t`. Throws SimulationError on overflow
  /// or time regression within the push domain.
  void push(Word word, TimePs t);

  /// True when a pop at time `t` would succeed (non-empty and the front
  /// word has cleared the synchronizer).
  bool can_pop(TimePs t) const;

  /// Pop at absolute time `t`. Throws SimulationError on underflow (the
  /// modulator would have emitted garbage — exactly the failure a bad CP
  /// schedule causes) or time regression within the pop domain.
  Word pop(TimePs t);

  /// High-water mark of occupancy over the FIFO's lifetime.
  std::size_t max_occupancy() const { return max_occupancy_; }
  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t total_popped() const { return total_popped_; }

 private:
  struct Item {
    Word word;
    TimePs visible_at;
  };

  std::size_t capacity_;
  TimePs gap_;
  std::deque<Item> items_;
  TimePs last_push_ = INT64_MIN;
  TimePs last_pop_ = INT64_MIN;
  std::size_t max_occupancy_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_popped_ = 0;
};

}  // namespace psync::core
