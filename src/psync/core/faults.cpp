#include "psync/core/faults.hpp"

#include "psync/common/check.hpp"

namespace psync::core {

FaultReport inject_faults(const FaultModel& fault, GatherResult* result) {
  PSYNC_CHECK(result != nullptr);
  FaultReport rep;
  if (fault.trivial()) {
    fault.validate();
    rep.words_total = result->stream.size();
    return rep;
  }
  FaultStream stream(fault);  // mask validated and built once
  for (auto& rec : result->stream) {
    rec.word = stream.corrupt(rec.word, &rep);
  }
  return rep;
}

FaultReport inject_faults(const FaultModel& fault, ScatterResult* result) {
  PSYNC_CHECK(result != nullptr);
  FaultReport rep;
  if (fault.trivial()) {
    fault.validate();
    rep.words_total = result->deliveries.size();
    return rep;
  }
  FaultStream stream(fault);
  for (auto& d : result->deliveries) {
    const Word w = stream.corrupt(d.word, &rep);
    d.word = w;
    result->received[static_cast<std::size_t>(d.node)]
                    [static_cast<std::size_t>(d.element)] = w;
  }
  return rep;
}

}  // namespace psync::core
