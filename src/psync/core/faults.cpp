#include "psync/core/faults.hpp"

#include <bit>

#include "psync/common/check.hpp"

namespace psync::core {

FaultModel FaultModel::from_margin_db(double margin_db, std::uint64_t seed) {
  FaultModel f;
  f.random_ber = photonic::ber_at_margin(margin_db);
  f.seed = seed;
  return f;
}

Word apply_fault(const FaultModel& fault, Word w, Rng& rng,
                 FaultReport* report) {
  const Word before = w;
  Word silenced_mask = 0;
  for (std::uint32_t lane : fault.dead_wavelengths) {
    if (lane >= 64) throw SimulationError("FaultModel: lane must be < 64");
    silenced_mask |= (Word{1} << lane);
  }
  const Word silenced_bits = w & silenced_mask;
  w &= ~silenced_mask;

  Word flipped = 0;
  if (fault.random_ber > 0.0) {
    for (int b = 0; b < 64; ++b) {
      if (rng.next_double() < fault.random_ber) flipped |= (Word{1} << b);
    }
    w ^= flipped;
  }

  if (report != nullptr) {
    ++report->words_total;
    if (w != before) ++report->words_corrupted;
    report->bits_flipped += static_cast<std::uint64_t>(std::popcount(flipped));
    report->bits_silenced +=
        static_cast<std::uint64_t>(std::popcount(silenced_bits));
  }
  return w;
}

FaultReport inject_faults(const FaultModel& fault, GatherResult* result) {
  PSYNC_CHECK(result != nullptr);
  FaultReport rep;
  if (fault.trivial()) {
    rep.words_total = result->stream.size();
    return rep;
  }
  Rng rng(fault.seed);
  for (auto& rec : result->stream) {
    rec.word = apply_fault(fault, rec.word, rng, &rep);
  }
  return rep;
}

FaultReport inject_faults(const FaultModel& fault, ScatterResult* result) {
  PSYNC_CHECK(result != nullptr);
  FaultReport rep;
  if (fault.trivial()) {
    rep.words_total = result->deliveries.size();
    return rep;
  }
  Rng rng(fault.seed);
  for (auto& d : result->deliveries) {
    const Word w = apply_fault(fault, d.word, rng, &rep);
    d.word = w;
    result->received[static_cast<std::size_t>(d.node)]
                    [static_cast<std::size_t>(d.element)] = w;
  }
  return rep;
}

}  // namespace psync::core
