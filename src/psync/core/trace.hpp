// Space-time tracing of waveguide transactions: what energy passes a given
// waveguide position, and when. This is the library form of the paper's
// Fig. 4 timing diagram — used by the sca_timing example, exportable as
// CSV, and handy when debugging a schedule that the collision checker
// rejected.
#pragma once

#include <string>
#include <vector>

#include "psync/core/sca.hpp"

namespace psync::core {

struct TraceSample {
  Slot slot = 0;
  std::int32_t source = -1;
  Word word = 0;
  TimePs at_ps = 0;  // leading edge passing the probe
};

struct WaveTrace {
  /// Probe positions along the waveguide, micrometres.
  std::vector<double> probes_um;
  /// Samples per probe, sorted by time. Energy that never reaches a probe
  /// (modulated downstream of it) is absent from that probe's list.
  std::vector<std::vector<TraceSample>> at_probe;
  /// Slot period of the traced transaction.
  TimePs period_ps = 0;
};

/// Trace a finished gather at the given probe positions.
WaveTrace trace_gather(const ScaEngine& engine, const GatherResult& gather,
                       const std::vector<double>& probes_um);

/// Render as an ASCII space-time diagram: one row per probe, one column per
/// slot period, each cell naming the slot whose energy passes ('..' where
/// the waveguide is dark). `labels` (optional) names the rows.
std::string render_ascii(const WaveTrace& trace,
                         const std::vector<std::string>& labels = {});

/// Dump as CSV text: probe_um,slot,source,time_ps per line.
std::string to_csv(const WaveTrace& trace);

}  // namespace psync::core
