// Space-time tracing of waveguide transactions: what energy passes a given
// waveguide position, and when. This is the library form of the paper's
// Fig. 4 timing diagram — used by the sca_timing example, exportable as
// CSV or JSON, and handy when debugging a schedule that the collision
// checker rejected.
//
// Also home to the JSON render of a machine run report, so runs under
// fault injection are observable (phase timings, fault/retry/lane
// counters) rather than silent.
#pragma once

#include <string>
#include <vector>

#include "psync/core/psync_machine.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {

struct TraceSample {
  Slot slot = 0;
  std::int32_t source = -1;
  Word word = 0;
  TimePs at_ps = 0;  // leading edge passing the probe
};

struct WaveTrace {
  /// Probe positions along the waveguide, micrometres.
  std::vector<double> probes_um;
  /// Samples per probe, sorted by time. Energy that never reaches a probe
  /// (modulated downstream of it) is absent from that probe's list.
  std::vector<std::vector<TraceSample>> at_probe;
  /// Slot period of the traced transaction.
  TimePs period_ps = 0;
};

/// Trace a finished gather at the given probe positions.
WaveTrace trace_gather(const ScaEngine& engine, const GatherResult& gather,
                       const std::vector<double>& probes_um);

/// Render as an ASCII space-time diagram: one row per probe, one column per
/// slot period, each cell naming the slot whose energy passes ('..' where
/// the waveguide is dark). `labels` (optional) names the rows.
std::string render_ascii(const WaveTrace& trace,
                         const std::vector<std::string>& labels = {});

/// Dump as CSV text: probe_um,slot,source,time_ps per line.
std::string to_csv(const WaveTrace& trace);

/// Dump as JSON: {"period_ps":..,"probes":[{"probe_um":..,"samples":[..]}]}.
std::string to_json(const WaveTrace& trace);

/// JSON objects for the reliability observables.
std::string to_json(const FaultReport& rep);
std::string to_json(const reliability::RetryReport& rep);
std::string to_json(const reliability::LaneReport& rep);

/// Full machine-run report as JSON: phases, throughput/efficiency/energy
/// metrics, and the fault/retry/lane counters.
std::string run_report_json(const PsyncRunReport& rep);

}  // namespace psync::core
