// Space-time tracing of waveguide transactions: what energy passes a given
// waveguide position, and when. This is the library form of the paper's
// Fig. 4 timing diagram — used by the sca_timing example, exportable as
// CSV or JSON, and handy when debugging a schedule that the collision
// checker rejected.
//
// Also home to the JSON render of a machine run report, so runs under
// fault injection are observable (phase timings, fault/retry/lane
// counters) rather than silent.
#pragma once

#include <string>
#include <vector>

#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {

struct TraceSample {
  Slot slot = 0;
  std::int32_t source = -1;
  Word word = 0;
  TimePs at_ps = 0;  // leading edge passing the probe
};

struct WaveTrace {
  /// Probe positions along the waveguide, micrometres.
  std::vector<double> probes_um;
  /// Samples per probe, sorted by time. Energy that never reaches a probe
  /// (modulated downstream of it) is absent from that probe's list.
  std::vector<std::vector<TraceSample>> at_probe;
  /// Slot period of the traced transaction.
  TimePs period_ps = 0;
};

/// Trace a finished gather at the given probe positions.
WaveTrace trace_gather(const ScaEngine& engine, const GatherResult& gather,
                       const std::vector<double>& probes_um);

/// Render as an ASCII space-time diagram: one row per probe, one column per
/// slot period, each cell naming the slot whose energy passes ('..' where
/// the waveguide is dark). `labels` (optional) names the rows.
std::string render_ascii(const WaveTrace& trace,
                         const std::vector<std::string>& labels = {});

/// Dump as CSV text: probe_um,slot,source,time_ps per line.
std::string to_csv(const WaveTrace& trace);

/// Dump as JSON: {"period_ps":..,"probes":[{"probe_um":..,"samples":[..]}]}.
std::string to_json(const WaveTrace& trace);

/// JSON objects for the reliability observables.
std::string to_json(const FaultReport& rep);
std::string to_json(const reliability::RetryReport& rep);
std::string to_json(const reliability::LaneReport& rep);

/// Version stamp carried by every serialized run report so downstream
/// tooling can detect layout changes. History:
///   1 — PsyncRunReport-only JSON, no version field (pre-driver).
///   2 — unified schema: "schema_version" + "machine" discriminator, one
///       field layout for both the P-sync and mesh machines, CSV form.
///   3 — campaign layer: sweep JSON gains a "campaign" counts object and
///       per-point "status" (+ "failure" when a point was isolated);
///       machine-run report layout unchanged.
inline constexpr int kRunReportSchemaVersion = 3;

/// The normalized run summary both machine reports lower into: one field
/// set, one serializer, so every tool emits the same schema. PSCAN-side
/// observables (SCA accounting, reliability counters) are flagged by
/// `has_sca`/`has_reliability` and serialized as null-ish defaults for the
/// mesh machine.
struct RunSummary {
  std::string machine;  // "psync" | "mesh"
  std::vector<Phase> phases;
  double total_ns = 0.0;
  double reorg_ns = 0.0;
  std::uint64_t flops = 0;
  double gflops = 0.0;
  double compute_efficiency = 0.0;
  double max_error_vs_reference = 0.0;
  double comm_energy_pj = 0.0;
  double compute_energy_pj = 0.0;

  bool has_sca = false;
  bool sca_gap_free = false;
  std::uint64_t sca_collisions = 0;

  bool has_reliability = false;
  FaultReport fault;
  reliability::RetryReport retry;
  reliability::LaneReport lanes;
  double reliability_overhead_ns = 0.0;
  std::uint64_t reliability_overhead_slots = 0;
};

RunSummary summarize(const PsyncRunReport& rep);
RunSummary summarize(const MeshRunReport& rep);

/// The single serializer behind every run-report dump: JSON object with
/// "schema_version" first, or one CSV row matching run_summary_csv_header().
std::string run_summary_json(const RunSummary& s);
std::string run_summary_csv_header();
std::string run_summary_csv_row(const RunSummary& s);

/// Full machine-run report as JSON (schema v2): phases, throughput/
/// efficiency/energy metrics, and — on the P-sync side — the SCA and
/// fault/retry/lane counters. Both overloads share one serializer.
std::string run_report_json(const PsyncRunReport& rep);
std::string run_report_json(const MeshRunReport& rep);

/// Same reports as CSV (header line + one data row).
std::string run_report_csv(const PsyncRunReport& rep);
std::string run_report_csv(const MeshRunReport& rep);

}  // namespace psync::core
