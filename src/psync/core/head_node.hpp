// The P-sync head node (paper Section IV): the processor that understands
// the memory layout and issues requests to DRAM so that data streams onto
// the SCA^-1 waveguide "just in time", and that lands SCA gather bursts
// into DRAM rows.
//
// Its key feasibility check: DRAM must sustain the waveguide rate. The head
// node computes the DRAM-side streaming time for a burst and reports
// whether the photonic link or the memory is the bottleneck.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/common/units.hpp"
#include "psync/dram/controller.hpp"
#include "psync/core/sca.hpp"
#include "psync/reliability/channel.hpp"

namespace psync::core {

struct HeadNodeParams {
  dram::DramParams dram;
  /// Memory bus clock, GHz (bus moves dram.bus_width_bits per cycle).
  double bus_ghz = 5.0;
  /// Waveguide aggregate rate, Gb/s (paper: 320).
  double waveguide_gbps = 320.0;
};

struct StreamReport {
  std::uint64_t bus_cycles = 0;    // DRAM-side cost (Eq. 23/24 when rows)
  double dram_ns = 0.0;            // bus_cycles / bus rate
  double waveguide_ns = 0.0;       // bits / waveguide rate
  bool dram_bound = false;         // DRAM slower than the waveguide
  double bottleneck_ns() const { return dram_bound ? dram_ns : waveguide_ns; }
};

class HeadNode {
 public:
  explicit HeadNode(HeadNodeParams params);

  const HeadNodeParams& params() const { return params_; }
  dram::MemoryController& memory() { return memory_; }

  /// Memory bus cycle time in nanoseconds.
  double bus_cycle_ns() const;

  /// Cost of streaming `total_bits` of row-aligned data out of (or into)
  /// DRAM as full-row transactions, vs. the waveguide transfer time.
  StreamReport stream_rows_report(std::uint64_t total_bits) const;

  /// Execute an SCA writeback: land `words` (one DRAM row per
  /// row_size/word_bits words) into consecutive rows starting at
  /// `first_row`, storing them in the backing image. Returns the report.
  StreamReport writeback(const std::vector<Word>& words,
                         std::uint64_t first_row, std::uint64_t word_bits);

  /// Read `word_count` words for an SCA^-1 burst from the backing image.
  std::vector<Word> read_burst(std::uint64_t first_word,
                               std::uint64_t word_count) const;

  /// Backing image: word-addressable memory contents (for verification).
  std::vector<Word>& image() { return image_; }
  const std::vector<Word>& image() const { return image_; }

  /// Gather-side reliability log: the decode/replay outcomes this head
  /// node observed while landing SCA bursts (it is the retry initiator —
  /// a bad block is re-requested from the array in fresh slots). Cleared
  /// at the start of each machine run.
  void log_retry(const reliability::RetryReport& r) { retry_log_.merge(r); }
  const reliability::RetryReport& retry_log() const { return retry_log_; }
  void clear_retry_log() { retry_log_ = {}; }

 private:
  HeadNodeParams params_;
  dram::MemoryController memory_;
  std::vector<Word> image_;
  reliability::RetryReport retry_log_;
};

}  // namespace psync::core
