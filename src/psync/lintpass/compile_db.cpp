#include "psync/lintpass/compile_db.hpp"

#include <algorithm>
#include <cctype>

namespace psync::lintpass {
namespace {

// Minimal recursive-descent JSON reader. Values the caller does not need
// (command/arguments/output) are parsed and discarded.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool try_consume(char c) {
    skip_ws();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    skip_ws();
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            // File paths in practice are ASCII; keep the escape verbatim
            // rather than decoding UTF-16 surrogates.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: fail("bad escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  // Parse and discard any JSON value.
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos_;
      if (try_consume('}')) return;
      do {
        parse_string();
        expect(':');
        skip_value();
      } while (try_consume(','));
      expect('}');
    } else if (c == '[') {
      ++pos_;
      if (try_consume(']')) return;
      do {
        skip_value();
      } while (try_consume(','));
      expect(']');
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-') {
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
              peek() == '-' || peek() == '+' || peek() == '.' ||
              peek() == 'e' || peek() == 'E')) {
        ++pos_;
      }
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      fail("unexpected value");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw CompileDbError("compile_commands.json: " + what + " at offset " +
                         std::to_string(pos_));
  }

  std::size_t pos_ = 0;

 private:
  const std::string& text_;
};

std::string join_path(const std::string& dir, const std::string& file) {
  if (!file.empty() && file.front() == '/') return file;
  if (dir.empty()) return file;
  return dir.back() == '/' ? dir + file : dir + "/" + file;
}

// Lexically normalize "a/b/../c" and "a/./b"; the database CMake writes
// can reference TUs via relative segments.
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (cur == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!cur.empty() && cur != ".") {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur.push_back(path[i]);
    }
  }
  std::string out;
  for (const auto& p : parts) out += "/" + p;
  if (path.empty() || path.front() != '/') {
    return out.empty() ? "." : out.substr(1);
  }
  return out.empty() ? "/" : out;
}

}  // namespace

std::vector<std::string> compile_db_files(const std::string& json_text) {
  JsonReader r(json_text);
  std::vector<std::string> files;
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      std::string dir;
      std::string file;
      if (!r.try_consume('}')) {
        do {
          const std::string key = r.parse_string();
          r.expect(':');
          if (key == "directory") {
            dir = r.parse_string();
          } else if (key == "file") {
            file = r.parse_string();
          } else {
            r.skip_value();
          }
        } while (r.try_consume(','));
        r.expect('}');
      }
      if (file.empty()) {
        throw CompileDbError("compile_commands.json: entry without \"file\"");
      }
      files.push_back(normalize(join_path(dir, file)));
    } while (r.try_consume(','));
    r.expect(']');
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string infer_repo_root(const std::vector<std::string>& files) {
  for (const auto& f : files) {
    const std::size_t at = f.find("/src/psync/");
    if (at != std::string::npos) return f.substr(0, at);
  }
  return "";
}

}  // namespace psync::lintpass
