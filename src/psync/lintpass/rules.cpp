#include "psync/lintpass/rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace psync::lintpass {
namespace {

// ---------------------------------------------------------------- catalog

const std::vector<RuleInfo> kCatalog = {
    {"det-wall-clock",
     "wall-clock read (time(), gettimeofday, *_clock) outside the allowlist",
     "derive time from the simulation clock or seeded config; if this is "
     "supervision/timeout code, extend the policy allowlist in review"},
    {"det-rand",
     "ambient randomness (rand, srand, random_device) outside the allowlist",
     "use psync::common rng seeded from the experiment spec"},
    {"det-pointer-format",
     "pointer formatted into output (address-dependent bytes)",
     "print an index or id instead; addresses differ across runs and ASLR"},
    {"det-unordered",
     "unordered container in a serialization-order-sensitive module",
     "use std::map/std::set or sort before emitting; if iteration order "
     "provably never escapes, suppress with an audit reason"},
    {"layer-violation",
     "#include edge not in the frozen layer DAG (tools/lint_layers.txt)",
     "depend downward only; amending the DAG is a reviewed change to "
     "tools/lint_layers.txt"},
    {"layer-unknown-module",
     "#include of a psync module the layer DAG does not declare",
     "declare the new module and its dependencies in tools/lint_layers.txt"},
    {"layer-relative-include",
     "quoted include in src/psync that does not start with \"psync/\"",
     "use the full \"psync/<module>/<header>\" path so layering is checkable"},
    {"hyg-pragma-once",
     "header without #pragma once",
     "add #pragma once as the first directive"},
    {"hyg-using-namespace",
     "using namespace at header scope",
     "qualify names or move the using-directive into a .cpp"},
    {"hyg-assert-side-effect",
     "assert() with a side effect on a journal/fsync path",
     "hoist the expression out of the assert; NDEBUG strips it and the "
     "durability path silently changes"},
    {"lint-bad-suppression",
     "psync-lint suppression without a reason",
     "write // psync-lint: allow(<rule>): <why this is safe>"},
    {"lint-unused-suppression",
     "psync-lint suppression that silences nothing",
     "delete it; stale allowances hide future regressions"},
};

// Identifiers that read ambient wall-clock time. `time` itself is handled
// separately (call position only) because it is too common a member name.
constexpr std::array<const char*, 8> kClockIdents = {
    "gettimeofday", "clock_gettime",         "timespec_get",
    "localtime",    "gmtime",                "strftime",
    "steady_clock", "high_resolution_clock",
};
// system_clock is in the same bucket; listed separately only to keep the
// array literal lines short.
constexpr const char* kSystemClock = "system_clock";

// Ambient randomness: call-position identifiers...
constexpr std::array<const char*, 4> kRandCalls = {"rand", "srand", "random",
                                                   "drand48"};
// ...and type names that fire on any mention.
constexpr const char* kRandomDevice = "random_device";

constexpr std::array<const char*, 4> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const RuleInfo& info(const char* id) {
  for (const auto& r : kCatalog) {
    if (std::string(r.id) == id) return r;
  }
  return kCatalog.front();  // unreachable for shipped ids
}

// --------------------------------------------------------------- helpers

/// Iterates code tokens only (comments and directives skipped), with
/// lookback/lookahead that rules use to classify call sites.
class CodeView {
 public:
  explicit CodeView(const std::vector<Token>& tokens) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::kComment &&
          tokens[i].kind != TokKind::kDirective) {
        idx_.push_back(i);
      }
    }
    tokens_ = &tokens;
  }

  [[nodiscard]] std::size_t size() const { return idx_.size(); }
  [[nodiscard]] const Token& at(std::size_t i) const {
    return (*tokens_)[idx_[i]];
  }
  /// Token at i+delta, or a sentinel empty punct when out of range.
  [[nodiscard]] const Token& rel(std::size_t i, std::ptrdiff_t delta) const {
    const auto j = static_cast<std::ptrdiff_t>(i) + delta;
    if (j < 0 || j >= static_cast<std::ptrdiff_t>(idx_.size())) {
      static const Token kNone{TokKind::kPunct, "", 0, 0};
      return kNone;
    }
    return (*tokens_)[idx_[static_cast<std::size_t>(j)]];
  }

 private:
  const std::vector<Token>* tokens_ = nullptr;
  std::vector<std::size_t> idx_;
};

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

void emit(const FileContext& ctx, const char* rule, int line,
          std::string message, std::vector<Finding>* out) {
  const RuleInfo& ri = info(rule);
  out->push_back(
      Finding{ctx.rel_path, line, rule, std::move(message), ri.hint});
}

// ---------------------------------------------------------- determinism

/// `time(`/`rand(` style call sites: fire on a bare call or an explicit
/// `std::` qualification, stay quiet for members (`obj.time()`), other
/// namespaces (`sim::time()`), and declarations (`long time() const` — a
/// preceding identifier is a return type unless it is one of the keywords
/// that can precede a call expression).
bool is_banned_call(const CodeView& code, std::size_t i, const char* name) {
  if (!is_ident(code.at(i), name) || !is_punct(code.rel(i, 1), "(")) {
    return false;
  }
  const Token& prev = code.rel(i, -1);
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) return is_ident(code.rel(i, -2), "std");
  if (prev.kind == TokKind::kIdent) {
    static const std::array<const char*, 5> kCallKeywords = {
        "return", "co_return", "co_await", "co_yield", "case"};
    return std::any_of(kCallKeywords.begin(), kCallKeywords.end(),
                       [&](const char* k) { return prev.text == k; });
  }
  return true;
}

void check_determinism(const FileContext& ctx, const Policy& policy,
                       const CodeView& code, std::vector<Finding>* out) {
  const bool clock_ok = policy.clock_allowed(ctx.rel_path);
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind != TokKind::kIdent) continue;
    if (!clock_ok) {
      for (const char* id : kClockIdents) {
        if (t.text == id) {
          emit(ctx, "det-wall-clock", t.line, "use of " + t.text, out);
        }
      }
      if (t.text == kSystemClock) {
        emit(ctx, "det-wall-clock", t.line, "use of system_clock", out);
      }
      if (is_banned_call(code, i, "time")) {
        emit(ctx, "det-wall-clock", t.line, "call of time()", out);
      }
    }
    if (t.text == kRandomDevice) {
      emit(ctx, "det-rand", t.line, "use of std::random_device", out);
    }
    for (const char* name : kRandCalls) {
      if (is_banned_call(code, i, name)) {
        emit(ctx, "det-rand", t.line, "call of " + t.text + "()", out);
      }
    }
  }
}

void check_pointer_format(const FileContext& ctx, const CodeView& code,
                          std::vector<Finding>* out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    // printf-family: a pointer conversion in a format string. The
    // pattern constant below is the rule's own matcher, not a use.
    // psync-lint: allow(det-pointer-format): the rule's own pattern constant
    constexpr const char* kPtrFormat = "%p";
    if (t.kind == TokKind::kString &&
        t.text.find(kPtrFormat) != std::string::npos) {
      emit(ctx, "det-pointer-format", t.line,
           "printf pointer conversion in a format string", out);
      continue;
    }
    // iostream: `<< static_cast<void*>(..)` or `<< (void*)..` /
    // `<< (const void*)..`.
    if (!is_punct(t, "<<")) continue;
    if (is_ident(code.rel(i, 1), "static_cast") &&
        is_punct(code.rel(i, 2), "<")) {
      std::ptrdiff_t j = 3;
      if (is_ident(code.rel(i, j), "const")) ++j;
      if (is_ident(code.rel(i, j), "void") &&
          is_punct(code.rel(i, j + 1), "*")) {
        emit(ctx, "det-pointer-format", t.line,
             "pointer streamed via static_cast<void*>", out);
      }
    }
    if (is_punct(code.rel(i, 1), "(")) {
      std::ptrdiff_t j = 2;
      if (is_ident(code.rel(i, j), "const")) ++j;
      if (is_ident(code.rel(i, j), "void") &&
          is_punct(code.rel(i, j + 1), "*") &&
          is_punct(code.rel(i, j + 2), ")")) {
        emit(ctx, "det-pointer-format", t.line,
             "pointer streamed via a (void*) cast", out);
      }
    }
  }
}

void check_unordered(const FileContext& ctx, const CodeView& code,
                     std::vector<Finding>* out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code.at(i);
    if (t.kind != TokKind::kIdent) continue;
    for (const char* name : kUnordered) {
      if (t.text == name) {
        emit(ctx, "det-unordered", t.line,
             "std::" + t.text + " in an order-sensitive module", out);
      }
    }
  }
}

// ------------------------------------------------------------- layering

void check_layering(const FileContext& ctx, const LayerGraph& layers,
                    std::vector<Finding>* out) {
  const std::string from = module_of(ctx.rel_path);
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    std::string body = t.text;
    std::size_t p = body.find_first_not_of(" \t");
    if (p == std::string::npos || body.compare(p, 7, "include") != 0) {
      continue;
    }
    const std::size_t open = body.find('"', p);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = body.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = body.substr(open + 1, close - open - 1);
    if (target.rfind("psync/", 0) != 0) {
      emit(ctx, "layer-relative-include", t.line,
           "quoted include \"" + target + "\" bypasses the layer check",
           out);
      continue;
    }
    const std::string to = module_of("src/" + target);
    if (to.empty() || !layers.has_layer(to)) {
      emit(ctx, "layer-unknown-module", t.line,
           "include of undeclared module in \"" + target + "\"", out);
      continue;
    }
    if (!from.empty() && !layers.has_layer(from)) {
      emit(ctx, "layer-unknown-module", t.line,
           "module '" + from + "' is not declared in the layer DAG", out);
      continue;
    }
    if (!from.empty() && !layers.allowed(from, to)) {
      emit(ctx, "layer-violation", t.line,
           "'" + from + "' must not include '" + to + "' (\"" + target +
               "\")",
           out);
    }
  }
}

// -------------------------------------------------------------- hygiene

void check_pragma_once(const FileContext& ctx, std::vector<Finding>* out) {
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    std::string body = t.text;
    body.erase(std::remove_if(body.begin(), body.end(),
                              [](char c) { return c == ' ' || c == '\t'; }),
               body.end());
    if (body == "pragmaonce") return;
  }
  emit(ctx, "hyg-pragma-once", 1, "header lacks #pragma once", out);
}

void check_using_namespace(const FileContext& ctx, const CodeView& code,
                           std::vector<Finding>* out) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (is_ident(code.at(i), "using") &&
        is_ident(code.at(i + 1), "namespace")) {
      emit(ctx, "hyg-using-namespace", code.at(i).line,
           "using-directive in a header", out);
    }
  }
}

void check_assert_side_effect(const FileContext& ctx, const CodeView& code,
                              std::vector<Finding>* out) {
  static const std::array<const char*, 12> kMutators = {
      "++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<="};
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!is_ident(code.at(i), "assert") || !is_punct(code.at(i + 1), "(")) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      const Token& t = code.at(j);
      if (is_punct(t, "(")) ++depth;
      if (is_punct(t, ")") && --depth == 0) break;
      if (t.kind != TokKind::kPunct) continue;
      if (std::any_of(kMutators.begin(), kMutators.end(),
                      [&](const char* m) { return t.text == m; })) {
        emit(ctx, "hyg-assert-side-effect", code.at(i).line,
             "assert() argument mutates state ('" + t.text + "')", out);
        break;
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return kCatalog; }

bool known_rule(const std::string& id) {
  return std::any_of(kCatalog.begin(), kCatalog.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

void run_rules(const FileContext& ctx, const Policy& policy,
               const LayerGraph& layers, std::vector<Finding>* out) {
  const CodeView code(ctx.tokens);
  if (policy.determinism_scope(ctx.rel_path)) {
    check_determinism(ctx, policy, code, out);
    check_pointer_format(ctx, code, out);
    if (policy.order_sensitive(ctx.rel_path)) {
      check_unordered(ctx, code, out);
    }
  }
  if (policy.layering_scope(ctx.rel_path)) {
    check_layering(ctx, layers, out);
  }
  if (ctx.is_header) {
    check_pragma_once(ctx, out);
    check_using_namespace(ctx, code, out);
  }
  if (policy.assert_sensitive(ctx.rel_path)) {
    check_assert_side_effect(ctx, code, out);
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
}

}  // namespace psync::lintpass
