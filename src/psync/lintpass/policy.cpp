#include "psync/lintpass/policy.hpp"

#include <array>

namespace psync::lintpass {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

template <std::size_t N>
bool matches_any(const std::string& path,
                 const std::array<const char*, N>& prefixes) {
  for (const char* p : prefixes) {
    if (starts_with(path, p)) return true;
  }
  return false;
}

constexpr std::array<const char*, 7> kClockAllow = {
    "src/psync/perf/",             // stopwatch/bench timing is the point
    "src/psync/common/cancel.hpp", // watchdog deadline, never serialized
    "src/psync/dist/supervisor",   // heartbeat deadlines, restart backoff
    "src/psync/dist/worker",       // lease/heartbeat pacing
    "src/psync/dist/heartbeat",    // liveness bookkeeping
    "src/psync/dist/transport",    // socket connect/read deadlines
    "src/psync/serve/",            // client socket timeouts
};

constexpr std::array<const char*, 7> kOrderSensitive = {
    "src/psync/driver/canonical",  // canonical JSON: byte-exact digests
    "src/psync/core/trace",        // event traces compared byte-for-byte
    "src/psync/common/csv",        // CSV emission order is the contract
    "src/psync/common/journal",    // journal replay order is the contract
    "src/psync/dist/merge",        // crash-identical merge
    "src/psync/dist/stream_merge", // crash-identical streaming merge
    "src/psync/serve/cache",       // content-addressed result index
};

constexpr std::array<const char*, 3> kAssertSensitive = {
    "src/psync/common/journal",
    "src/psync/dist/",
    "src/psync/serve/",
};

}  // namespace

bool Policy::scanned(const std::string& rel_path) const {
  return rel_path.find("tests/lint_fixtures/") == std::string::npos;
}

bool Policy::determinism_scope(const std::string& rel_path) const {
  return starts_with(rel_path, "src/") || starts_with(rel_path, "tools/");
}

bool Policy::clock_allowed(const std::string& rel_path) const {
  return matches_any(rel_path, kClockAllow);
}

bool Policy::order_sensitive(const std::string& rel_path) const {
  return matches_any(rel_path, kOrderSensitive);
}

bool Policy::assert_sensitive(const std::string& rel_path) const {
  return matches_any(rel_path, kAssertSensitive);
}

bool Policy::layering_scope(const std::string& rel_path) const {
  return starts_with(rel_path, "src/psync/");
}

bool Policy::is_header(const std::string& rel_path) {
  return rel_path.size() >= 4 &&
         rel_path.compare(rel_path.size() - 4, 4, ".hpp") == 0;
}

}  // namespace psync::lintpass
