// The lint engine: file discovery, per-file rule execution, suppression
// accounting, and report rendering.
//
// Suppression syntax, modeled on NOLINT but with a mandatory audit trail:
//
//   // psync-lint: allow(<rule-id>): <one-line reason>
//
// A suppression silences findings of that rule on its own line or the
// line directly below (so it works both trailing and comment-above). A
// suppression without a reason, naming an unknown rule, or silencing
// nothing is itself a finding — allowances must stay justified and live.
#pragma once

#include <string>
#include <vector>

#include "psync/lintpass/finding.hpp"
#include "psync/lintpass/layers.hpp"
#include "psync/lintpass/policy.hpp"

namespace psync::lintpass {

/// Lint one in-memory file. `rel_path` drives the policy tables; content
/// is lexed here. Lex failures append a "lex-error" finding and bump
/// report->parse_failures instead of throwing.
void lint_file(const std::string& rel_path, const std::string& content,
               const Policy& policy, const LayerGraph& layers,
               Report* report);

/// The scan set: every TU from the compilation database that lives under
/// a first-party root, plus every header found by walking those roots —
/// headers never appear in a compilation database but carry most of the
/// hygiene and unordered-container surface. Absolute paths, sorted.
std::vector<std::string> discover_files(
    const std::string& repo_root, const std::vector<std::string>& tu_paths);

/// Lint every file (absolute paths) against one policy and layer DAG.
/// Files outside `repo_root` or outside the scan policy are skipped.
Report run_lint(const std::string& repo_root,
                const std::vector<std::string>& abs_files,
                const Policy& policy, const LayerGraph& layers);

std::string render_text(const Report& report);
std::string render_json(const Report& report);

}  // namespace psync::lintpass
