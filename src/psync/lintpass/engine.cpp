#include "psync/lintpass/engine.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "psync/lintpass/lexer.hpp"
#include "psync/lintpass/rules.hpp"

namespace psync::lintpass {
namespace {

namespace fs = std::filesystem;

constexpr std::array<const char*, 5> kRoots = {"src", "tools", "tests",
                                               "bench", "examples"};

/// Parse one comment body for a suppression. Returns true when the
/// comment is a psync-lint directive at all; fills either a valid
/// suppression or a lint-bad-suppression finding.
bool parse_suppression(const std::string& rel_path, const Token& comment,
                       Suppression* out, std::vector<Finding>* bad) {
  // A directive must START the comment (after whitespace). This is what
  // lets documentation QUOTE the syntax: a quoted example carries its own
  // leading "//" inside the comment body, so it never parses as live.
  const std::string& body = comment.text;
  const std::size_t at = body.find_first_not_of(" \t*");
  if (at == std::string::npos ||
      body.compare(at, 11, "psync-lint:") != 0) {
    return false;
  }
  const auto flag = [&](const std::string& why) {
    bad->push_back(Finding{rel_path, comment.line, "lint-bad-suppression",
                           why,
                           "write // psync-lint: allow(<rule>): <reason>"});
  };
  std::size_t p = body.find("allow(", at);
  if (p == std::string::npos) {
    flag("malformed psync-lint directive (no allow(...))");
    return true;
  }
  p += 6;
  const std::size_t close = body.find(')', p);
  if (close == std::string::npos) {
    flag("malformed psync-lint directive (unclosed allow)");
    return true;
  }
  const std::string rule = body.substr(p, close - p);
  if (!known_rule(rule)) {
    flag("allow() names unknown rule '" + rule + "'");
    return true;
  }
  std::size_t r = body.find_first_not_of(" \t", close + 1);
  if (r == std::string::npos || body[r] != ':') {
    flag("suppression of '" + rule + "' carries no reason");
    return true;
  }
  r = body.find_first_not_of(" \t", r + 1);
  if (r == std::string::npos) {
    flag("suppression of '" + rule + "' carries an empty reason");
    return true;
  }
  std::string reason = body.substr(r);
  while (!reason.empty() &&
         (reason.back() == ' ' || reason.back() == '\t' ||
          reason.back() == '\r')) {
    reason.pop_back();
  }
  *out = Suppression{rel_path, comment.end_line, rule, reason, 0};
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void lint_file(const std::string& rel_path, const std::string& content,
               const Policy& policy, const LayerGraph& layers,
               Report* report) {
  if (!policy.scanned(rel_path)) return;
  ++report->files_scanned;

  FileContext ctx;
  ctx.rel_path = rel_path;
  ctx.is_header = Policy::is_header(rel_path);
  try {
    ctx.tokens = lex(content);
  } catch (const LexError& e) {
    ++report->parse_failures;
    report->findings.push_back(Finding{rel_path, e.line(), "lex-error",
                                       e.what(),
                                       "fix the unterminated construct"});
    return;
  }

  std::vector<Finding> raw;
  run_rules(ctx, policy, layers, &raw);

  std::vector<Suppression> sups;
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokKind::kComment) continue;
    Suppression s;
    if (parse_suppression(rel_path, t, &s, &raw) && !s.rule.empty()) {
      sups.push_back(std::move(s));
    }
  }

  for (Finding& f : raw) {
    Suppression* hit = nullptr;
    for (Suppression& s : sups) {
      if (s.rule == f.rule && (f.line == s.line || f.line == s.line + 1)) {
        hit = &s;
        break;
      }
    }
    if (hit != nullptr) {
      ++hit->uses;
    } else {
      report->findings.push_back(std::move(f));
    }
  }
  for (Suppression& s : sups) {
    if (s.uses == 0) {
      report->findings.push_back(
          Finding{rel_path, s.line, "lint-unused-suppression",
                  "allow(" + s.rule + ") silences nothing",
                  "delete it; stale allowances hide future regressions"});
    } else {
      report->suppressions.push_back(std::move(s));
    }
  }
}

std::vector<std::string> discover_files(
    const std::string& repo_root, const std::vector<std::string>& tu_paths) {
  std::vector<std::string> files;
  const std::string prefix = repo_root + "/";
  for (const auto& tu : tu_paths) {
    if (tu.rfind(prefix, 0) != 0) continue;
    const std::string rel = tu.substr(prefix.size());
    for (const char* root : kRoots) {
      if (rel.rfind(std::string(root) + "/", 0) == 0) {
        files.push_back(tu);
        break;
      }
    }
  }
  for (const char* root : kRoots) {
    const fs::path dir = fs::path(repo_root) / root;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      if (it->path().extension() == ".hpp") {
        files.push_back(it->path().lexically_normal().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

Report run_lint(const std::string& repo_root,
                const std::vector<std::string>& abs_files,
                const Policy& policy, const LayerGraph& layers) {
  Report report;
  const std::string prefix = repo_root + "/";
  for (const auto& path : abs_files) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rel = path.substr(prefix.size());
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report.findings.push_back(
          Finding{rel, 0, "lex-error", "cannot read file", ""});
      ++report.parse_failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    lint_file(rel, buf.str(), policy, layers, &report);
  }
  return report;
}

std::string render_text(const Report& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.hint.empty()) out << "    hint: " << f.hint << "\n";
  }
  if (!report.suppressions.empty()) {
    out << "audited suppressions:\n";
    for (const Suppression& s : report.suppressions) {
      out << "  " << s.file << ":" << s.line << ": allow(" << s.rule
          << ") x" << s.uses << " — " << s.reason << "\n";
    }
  }
  out << "psync_lint: ";
  if (report.findings.empty()) {
    out << "clean";
  } else {
    out << report.findings.size() << " finding"
        << (report.findings.size() == 1 ? "" : "s");
  }
  out << " (" << report.files_scanned << " files scanned, "
      << report.suppressions.size() << " audited suppression"
      << (report.suppressions.size() == 1 ? "" : "s") << ")\n";
  return out.str();
}

std::string render_json(const Report& report) {
  std::ostringstream out;
  out << "{\"files_scanned\":" << report.files_scanned
      << ",\"parse_failures\":" << report.parse_failures << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) out << ",";
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << json_escape(f.rule) << "\",\"message\":\""
        << json_escape(f.message) << "\",\"hint\":\"" << json_escape(f.hint)
        << "\"}";
  }
  out << "],\"suppressions\":[";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const Suppression& s = report.suppressions[i];
    if (i != 0) out << ",";
    out << "{\"file\":\"" << json_escape(s.file) << "\",\"line\":" << s.line
        << ",\"rule\":\"" << json_escape(s.rule) << "\",\"reason\":\""
        << json_escape(s.reason) << "\",\"uses\":" << s.uses << "}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace psync::lintpass
