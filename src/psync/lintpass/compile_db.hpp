// Reader for compile_commands.json (the clang JSON compilation database).
//
// psync_lint needs exactly two things from it: the set of first-party
// translation units, and a repo root to relativize paths against. The
// parser is a small strict JSON subset reader (arrays, objects, strings
// with escapes, numbers, bools, null) — enough for every database CMake
// emits — and fails loudly on anything malformed rather than guessing.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace psync::lintpass {

class CompileDbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse the database text and return the absolute path of every entry's
/// "file", resolved against its "directory" when relative, deduplicated,
/// sorted. Throws CompileDbError on malformed JSON or missing keys.
std::vector<std::string> compile_db_files(const std::string& json_text);

/// Infer the repo root from the database: the prefix of the first entry
/// containing "/src/psync/". Returns "" when no entry matches.
std::string infer_repo_root(const std::vector<std::string>& files);

}  // namespace psync::lintpass
