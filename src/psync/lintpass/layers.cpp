#include "psync/lintpass/layers.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace psync::lintpass {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("layer file line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

LayerGraph LayerGraph::parse(const std::string& text) {
  LayerGraph g;
  std::vector<std::pair<int, std::string>> pending;  // (line, "a -> b")
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.rfind("layer", 0) != 0) fail(lineno, "expected 'layer <name>'");
    line = trim(line.substr(5));
    std::string name = line;
    std::string deps;
    if (auto colon = line.find(':'); colon != std::string::npos) {
      name = trim(line.substr(0, colon));
      deps = line.substr(colon + 1);
    }
    if (name.empty()) fail(lineno, "empty layer name");
    if (g.deps_.count(name) != 0) fail(lineno, "duplicate layer " + name);
    auto& set = g.deps_[name];
    std::istringstream ds(deps);
    std::string dep;
    while (ds >> dep) {
      set.insert(dep);
      pending.emplace_back(lineno, name + " -> " + dep);
    }
  }
  // Deps must name declared layers; checked after the full read so the
  // file can list modules in any order.
  for (const auto& [line, edge] : pending) {
    const std::string dep = edge.substr(edge.find("-> ") + 3);
    if (g.deps_.count(dep) == 0) {
      fail(line, "edge " + edge + " names undeclared layer " + dep);
    }
  }
  return g;
}

std::string module_of(const std::string& rel_path) {
  const std::string prefix = "src/psync/";
  if (rel_path.rfind(prefix, 0) != 0) return "";
  const std::size_t start = prefix.size();
  const std::size_t slash = rel_path.find('/', start);
  if (slash == std::string::npos) return "";  // a file directly in src/psync
  return rel_path.substr(start, slash - start);
}

}  // namespace psync::lintpass
