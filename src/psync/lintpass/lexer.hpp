// A comment/string/raw-string-aware C++ tokenizer for psync_lint.
//
// This is deliberately NOT a compiler front end: it produces exactly the
// token granularity the lint rules need — identifiers, punctuators (maximal
// munch over the multi-character set the rules match on), string/char
// literals, comments, and whole preprocessor directives — with accurate
// line numbers. Its one hard guarantee is the one the rules depend on:
// nothing inside a string literal, character literal, raw string, or
// comment is ever emitted as an identifier or punctuator, so `"rand()"`
// in a log message can never fire a determinism rule.
//
// Handled: //- and /*-comments, line continuations (backslash-newline,
// including inside directives), ordinary string/char literals with escape
// sequences, encoding prefixes (u8 L u U), raw strings R"delim(...)delim",
// digit separators (1'000'000 must not open a char literal), and
// pp-numbers. Unterminated literals/comments throw LexError, which
// psync_lint reports as a parse failure (exit 3) rather than guessing.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace psync::lintpass {

enum class TokKind {
  kIdent,      // identifier or keyword
  kNumber,     // pp-number
  kString,     // string literal (text = contents, quotes stripped)
  kChar,       // character literal
  kPunct,      // punctuator, maximal munch (::, <<, ++, ==, <<=, ...)
  kComment,    // // or /* */ (text = body without delimiters)
  kDirective,  // whole preprocessor directive (text = after '#', joined)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;      // 1-based line where the token starts
  int end_line = 0;  // last line (differs for multi-line comments/strings)
};

/// Thrown when the input cannot be tokenized (unterminated string, char,
/// raw string, or block comment). `line` is where the offending construct
/// started.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line)
      : std::runtime_error(what), line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Tokenize one source file. Throws LexError on malformed input.
std::vector<Token> lex(const std::string& source);

}  // namespace psync::lintpass
