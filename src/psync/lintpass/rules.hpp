// The psync_lint rule registry.
//
// Three families, all motivated by the repo's byte-identity guarantees
// (parallel==serial sweeps, kill/resume, crash-identical dist merges):
//
//   determinism  det-wall-clock, det-rand, det-pointer-format,
//                det-unordered — ambient time, ambient randomness,
//                address-dependent formatting, and hash-order iteration
//                are the four ways a result-determining path goes
//                non-reproducible without any test noticing.
//   layering     layer-violation, layer-unknown-module,
//                layer-relative-include — the include graph must stay
//                inside the frozen DAG in tools/lint_layers.txt.
//   hygiene      hyg-pragma-once, hyg-using-namespace,
//                hyg-assert-side-effect — include guards, header
//                namespace leaks, and NDEBUG-vanishing side effects on
//                durability paths.
//
// Rules see the token stream (never raw text), so string literals and
// comments cannot fire them.
#pragma once

#include <string>
#include <vector>

#include "psync/lintpass/finding.hpp"
#include "psync/lintpass/layers.hpp"
#include "psync/lintpass/lexer.hpp"
#include "psync/lintpass/policy.hpp"

namespace psync::lintpass {

/// One scanned file, pre-lexed, with the repo-relative path the policy
/// tables key on.
struct FileContext {
  std::string rel_path;
  std::vector<Token> tokens;
  bool is_header = false;
};

/// Catalog entry, for --list-rules and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
  const char* hint;
};

/// Every shipped rule, in stable display order.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a shipped rule (valid in an allow() suppression).
bool known_rule(const std::string& id);

/// Run every applicable rule over one file. Findings are appended in
/// source order; suppressions are NOT applied here (the engine does that,
/// so tests can see raw rule behavior).
void run_rules(const FileContext& ctx, const Policy& policy,
               const LayerGraph& layers, std::vector<Finding>* out);

}  // namespace psync::lintpass
