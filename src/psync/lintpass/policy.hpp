// Per-directory rule policy: which rules apply where, and the explicit,
// committed allowlists that carve out the few places wall-clock time and
// hash-ordered containers are legitimate.
//
// Paths are repo-relative with forward slashes. Matching is by prefix, so
// "src/psync/perf/" covers the whole module and "src/psync/dist/merge"
// covers merge.hpp/merge.cpp. The allowlists are part of the reviewed
// policy: widening one is a diff on this file, not a scattering of inline
// suppressions.
#pragma once

#include <string>

namespace psync::lintpass {

struct Policy {
  /// Fixture snippets under tests/lint_fixtures/ exist to *fire* rules;
  /// the tree scan must never pick them up.
  [[nodiscard]] bool scanned(const std::string& rel_path) const;

  /// Determinism rules guard result-determining code: the library under
  /// src/ and the CLI drivers under tools/. Tests, benches and examples
  /// may time and randomize freely.
  [[nodiscard]] bool determinism_scope(const std::string& rel_path) const;

  /// Wall-clock allowlist: perf/ (that is its job), dist/ supervision
  /// (heartbeat deadlines, reconnect backoff), serve/ socket timeouts,
  /// and the watchdog deadline in common/cancel.hpp. None of these feed
  /// simulation results.
  [[nodiscard]] bool clock_allowed(const std::string& rel_path) const;

  /// Serialization-order-sensitive modules where unordered containers
  /// need an audited suppression: canonical JSON, traces, CSV/journal
  /// writers, the dist merge, and the serve result cache.
  [[nodiscard]] bool order_sensitive(const std::string& rel_path) const;

  /// Durability paths where an assert() side effect would vanish under
  /// NDEBUG: the journal, everything dist/, everything serve/.
  [[nodiscard]] bool assert_sensitive(const std::string& rel_path) const;

  /// Layering rules apply to the library only.
  [[nodiscard]] bool layering_scope(const std::string& rel_path) const;

  [[nodiscard]] static bool is_header(const std::string& rel_path);
};

}  // namespace psync::lintpass
