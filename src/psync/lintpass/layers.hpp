// The frozen module-layer DAG and its text format.
//
// tools/lint_layers.txt commits the *actual* include graph of src/psync at
// module granularity; psync_lint rejects any edge not listed there, so a
// new upward or cross-layer #include is a lint failure until the DAG is
// deliberately amended in review.
//
// File format, one module per line (order irrelevant, '#' comments):
//
//   layer <module>
//   layer <module>: <dep> <dep> ...
//
// Every <dep> must itself be declared a layer; self-edges are implicit.
#pragma once

#include <map>
#include <set>
#include <string>

namespace psync::lintpass {

class LayerGraph {
 public:
  /// Parse the layer-file text. Throws std::runtime_error with a line
  /// number on malformed lines, duplicate layers, or undeclared deps.
  static LayerGraph parse(const std::string& text);

  [[nodiscard]] bool has_layer(const std::string& module) const {
    return deps_.count(module) != 0;
  }

  /// Is a `from` → `to` include edge allowed? Self-edges always are.
  [[nodiscard]] bool allowed(const std::string& from,
                             const std::string& to) const {
    if (from == to) return true;
    auto it = deps_.find(from);
    return it != deps_.end() && it->second.count(to) != 0;
  }

  [[nodiscard]] const std::map<std::string, std::set<std::string>>& deps()
      const {
    return deps_;
  }

 private:
  // module -> allowed dependency modules (sorted for deterministic output)
  std::map<std::string, std::set<std::string>> deps_;
};

/// The module a repo-relative path belongs to for layering purposes:
/// "src/psync/<module>/..." → "<module>", anything else → "".
std::string module_of(const std::string& rel_path);

}  // namespace psync::lintpass
