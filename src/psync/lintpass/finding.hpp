// Finding and suppression records produced by the lint engine.
#pragma once

#include <string>
#include <vector>

namespace psync::lintpass {

/// One rule violation at a source location. `file` is repo-relative.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // rule id, e.g. "det-wall-clock"
  std::string message;  // what fired, with the offending token
  std::string hint;     // how to fix or how to justify-and-suppress
};

/// One `// psync-lint: allow(<rule>): <reason>` comment that silenced a
/// finding. Counted and reported so audited exceptions stay visible.
struct Suppression {
  std::string file;
  int line = 0;        // line of the suppression comment
  std::string rule;
  std::string reason;
  int uses = 0;        // findings it silenced
};

/// Everything one lint run produced.
struct Report {
  std::vector<Finding> findings;        // unsuppressed — these gate CI
  std::vector<Suppression> suppressions;  // used, justified exceptions
  int files_scanned = 0;
  int parse_failures = 0;  // files the lexer rejected (exit code 3)
};

}  // namespace psync::lintpass
