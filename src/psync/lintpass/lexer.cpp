#include "psync/lintpass/lexer.hpp"

#include <array>
#include <cctype>

namespace psync::lintpass {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character punctuators the rules match on, longest first so a
// linear scan implements maximal munch. Single characters fall through.
constexpr std::array<const char*, 22> kPuncts = {
    "<<=", ">>=", "->*", "...", "->", "::", "<<", ">>", "++", "--", "==",
    "!=",  "<=",  ">=",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    while (!at_end()) {
      if (skip_continuation()) continue;
      const char c = peek();
      if (c == '\n') {
        ++pos_;
        ++line_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (is_ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      lex_punct();
    }
    return std::move(tokens_);
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // Consume a backslash-newline splice wherever it occurs.
  bool skip_continuation() {
    if (peek() == '\\' && (peek(1) == '\n' ||
                           (peek(1) == '\r' && peek(2) == '\n'))) {
      pos_ += peek(1) == '\r' ? 3 : 2;
      ++line_;
      return true;
    }
    return false;
  }

  void push(TokKind kind, std::string text, int start_line) {
    tokens_.push_back(Token{kind, std::move(text), start_line, line_});
  }

  void lex_line_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    while (!at_end()) {
      if (skip_continuation()) continue;  // spliced comment spans lines
      if (peek() == '\n') break;
      body.push_back(peek());
      ++pos_;
    }
    push(TokKind::kComment, std::move(body), start);
  }

  void lex_block_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    while (true) {
      if (at_end()) throw LexError("unterminated /* comment", start);
      if (peek() == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (peek() == '\n') ++line_;
      body.push_back(peek());
      ++pos_;
    }
    push(TokKind::kComment, std::move(body), start);
  }

  // A directive runs to the end of line, honoring splices and comments; a
  // // comment ends it, a /* */ comment inside is skipped (and its newlines
  // counted). The body keeps quoted filenames verbatim for include parsing.
  void lex_directive() {
    const int start = line_;
    ++pos_;  // '#'
    std::string body;
    while (!at_end()) {
      if (skip_continuation()) {
        body.push_back(' ');
        continue;
      }
      const char c = peek();
      if (c == '\n') break;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        body.push_back(' ');
        continue;
      }
      body.push_back(c);
      ++pos_;
    }
    push(TokKind::kDirective, std::move(body), start);
    at_line_start_ = false;
  }

  void lex_ident_or_prefixed_literal() {
    const int start = line_;
    std::string text;
    while (!at_end()) {
      if (skip_continuation()) continue;
      if (!is_ident_cont(peek())) break;
      text.push_back(peek());
      ++pos_;
    }
    // Encoding prefixes and raw-string markers bind to a following quote:
    // R"(...)", u8"...", L'x', u8R"(...)". Without this, the body of a raw
    // string would be tokenized as code.
    const bool raw = !text.empty() && text.back() == 'R';
    const bool prefix =
        text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
        text == "LR" || text == "u8" || text == "u" || text == "U" ||
        text == "L";
    if (prefix && peek() == '"') {
      lex_string(raw);
      return;
    }
    if (prefix && !raw && peek() == '\'') {
      lex_char();
      return;
    }
    push(TokKind::kIdent, std::move(text), start);
  }

  void lex_number() {
    const int start = line_;
    std::string text;
    while (!at_end()) {
      if (skip_continuation()) continue;
      const char c = peek();
      if (is_ident_cont(c) || c == '.') {
        text.push_back(c);
        ++pos_;
        continue;
      }
      // Digit separator: 1'000'000 — consume the quote only when it sits
      // between digits, so it cannot open a character literal.
      if (c == '\'' && !text.empty() && is_ident_cont(peek(1))) {
        text.push_back(c);
        ++pos_;
        continue;
      }
      // Exponent sign: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
           text.back() == 'P')) {
        text.push_back(c);
        ++pos_;
        continue;
      }
      break;
    }
    push(TokKind::kNumber, std::move(text), start);
  }

  void lex_string(bool raw) {
    const int start = line_;
    ++pos_;  // opening quote
    std::string body;
    if (raw) {
      std::string delim;
      while (!at_end() && peek() != '(') {
        delim.push_back(peek());
        ++pos_;
      }
      if (at_end()) throw LexError("unterminated raw string delimiter", start);
      ++pos_;  // '('
      const std::string close = ")" + delim + "\"";
      while (true) {
        if (at_end()) throw LexError("unterminated raw string", start);
        if (src_.compare(pos_, close.size(), close) == 0) {
          pos_ += close.size();
          break;
        }
        if (peek() == '\n') ++line_;
        body.push_back(peek());
        ++pos_;
      }
    } else {
      while (true) {
        if (at_end() || peek() == '\n') {
          throw LexError("unterminated string literal", start);
        }
        if (skip_continuation()) continue;
        if (peek() == '\\') {
          body.push_back(peek());
          body.push_back(peek(1));
          pos_ += 2;
          continue;
        }
        if (peek() == '"') {
          ++pos_;
          break;
        }
        body.push_back(peek());
        ++pos_;
      }
    }
    push(TokKind::kString, std::move(body), start);
  }

  void lex_char() {
    const int start = line_;
    ++pos_;  // opening quote
    std::string body;
    while (true) {
      if (at_end() || peek() == '\n') {
        throw LexError("unterminated character literal", start);
      }
      if (peek() == '\\') {
        body.push_back(peek());
        body.push_back(peek(1));
        pos_ += 2;
        continue;
      }
      if (peek() == '\'') {
        ++pos_;
        break;
      }
      body.push_back(peek());
      ++pos_;
    }
    push(TokKind::kChar, std::move(body), start);
  }

  void lex_punct() {
    const int start = line_;
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (src_.compare(pos_, n, p) == 0) {
        pos_ += n;
        push(TokKind::kPunct, p, start);
        return;
      }
    }
    push(TokKind::kPunct, std::string(1, peek()), start);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace psync::lintpass
