// LLMORE-style high-level application simulator (paper Section VI).
//
// The paper evaluates the full 2D FFT flow (deliver -> row FFTs ->
// reorganize -> column FFTs [-> writeback]) on two architecture models
// (Fig. 12): an electronic mesh with four corner memory interfaces and a
// P-sync machine with one photonically-attached memory, with equal
// link bandwidth and latency. This library reimplements that phase-level
// simulation and regenerates Fig. 13 (GFLOPS vs cores) and Fig. 14
// (fraction of runtime spent reorganizing).
//
// Phase model (Model I delivery, as the paper's runs use):
//  * Work distribution is by rows; with fewer rows than cores the extra
//    cores idle (effective parallelism min(P, rows)) — together with the
//    fixed aggregate memory bandwidth this is why even the *ideal* curve
//    (red in Fig. 13) flattens.
//  * Delivery: the memory ports stream every processor's block serially;
//    the mesh additionally pays sqrt(P)*t_r routing latency per packet
//    (Eq. 21); P-sync pays only waveguide flight time.
//  * Mesh reorganization: each processor's contribution to the transpose is
//    C column-segments ("pieces") of R/P elements. Every piece costs its
//    port serialization (payload + header), t_p reorder cycles per element,
//    and DRAM time. While pieces hold >= row_elements/buffer_partials
//    elements, the interface's reorder buffer can assemble full DRAM rows
//    (amortized row cost); smaller pieces overflow the partial-row buffer
//    and a growing fraction of writes pay the row-switch penalty — this is
//    the congestion/reordering collapse that makes the mesh curve peak
//    around 256 cores and fall.
//  * P-sync reorganization: one gap-free SCA at full waveguide utilization,
//    DRAM-row aligned (Eq. 23/24) — constant time regardless of P.
#pragma once

#include <cstdint>
#include <vector>

namespace psync::llmore {

struct LlmoreParams {
  std::uint64_t matrix_rows = 1024;
  std::uint64_t matrix_cols = 1024;
  std::uint64_t sample_bits = 64;

  // Per-core compute model (same as the analysis library defaults).
  double fp_mult_ns = 2.0;
  std::uint32_t mults_per_butterfly = 4;

  // Memory system: equal aggregate bandwidth on both architectures.
  std::uint32_t mesh_memory_ports = 4;
  double port_gbps = 80.0;        // per mesh port (4 x 80 = 320 aggregate)
  double psync_gbps = 320.0;      // single PSCAN link

  // Mesh microarchitecture.
  double clock_ghz = 2.5;         // network clock
  double t_r_cycles = 1.0;        // per-router header delay
  double t_p_cycles = 1.0;        // per-element reorder time at the port
  std::uint32_t buffer_partials = 8;  // partial DRAM rows the MI can hold

  // DRAM (both sides).
  std::uint64_t dram_row_bits = 2048;
  std::uint64_t dram_header_bits = 64;
  std::uint64_t dram_bus_bits = 64;
  std::uint64_t dram_row_switch_cycles = 24;  // precharge+activate, bus cycles

  // P-sync physical layer.
  double waveguide_flight_ns = 1.2;  // one-way flight over the serpentine
};

struct PhaseBreakdown {
  double deliver1_ns = 0.0;
  double compute1_ns = 0.0;
  double reorg_ns = 0.0;     // transpose write-out (mesh) / SCA (P-sync)
  double deliver2_ns = 0.0;  // reload of reorganized data
  double compute2_ns = 0.0;
  double writeback_ns = 0.0;

  double total_ns() const {
    return deliver1_ns + compute1_ns + reorg_ns + deliver2_ns + compute2_ns +
           writeback_ns;
  }
  /// Fig. 14 numerator: time reorganizing between the two FFT passes.
  double reorg_total_ns() const { return reorg_ns + deliver2_ns; }
};

struct AppPoint {
  std::uint64_t cores = 0;
  PhaseBreakdown mesh;
  PhaseBreakdown psync;
  double gflops_mesh = 0.0;
  double gflops_psync = 0.0;
  double gflops_ideal = 0.0;
  double reorg_frac_mesh = 0.0;   // Fig. 14 blue
  double reorg_frac_psync = 0.0;  // Fig. 14 green
};

/// Total useful flops of the 2D FFT (10 real ops per radix-2 butterfly).
double total_flops(const LlmoreParams& p);

/// Phase timings for one architecture at `cores`.
PhaseBreakdown simulate_mesh(const LlmoreParams& p, std::uint64_t cores);
PhaseBreakdown simulate_psync(const LlmoreParams& p, std::uint64_t cores);

/// Ideal runtime: perfectly parallel compute (bounded by rows) plus four
/// full-matrix transfers at the aggregate memory bandwidth.
double ideal_time_ns(const LlmoreParams& p, std::uint64_t cores);

/// One Fig. 13/14 point.
AppPoint simulate_point(const LlmoreParams& p, std::uint64_t cores);

/// Core sweep (paper: 4 to 4096 in powers of 4, i.e. mesh dim 2..64).
std::vector<AppPoint> sweep(const LlmoreParams& p, std::uint64_t min_cores = 4,
                            std::uint64_t max_cores = 4096);

}  // namespace psync::llmore
