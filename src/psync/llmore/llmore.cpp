#include "psync/llmore/llmore.hpp"

#include <algorithm>
#include <cmath>

#include "psync/common/check.hpp"

namespace psync::llmore {
namespace {

double ilog2d(std::uint64_t n) {
  std::uint64_t l = 0;
  while ((std::uint64_t{1} << l) < n) ++l;
  return static_cast<double>(l);
}

/// Multiplies for one pass of `rows` FFTs of `points` points each.
double pass_mults(std::uint64_t rows, std::uint64_t points) {
  return static_cast<double>(rows) * 2.0 * static_cast<double>(points) *
         ilog2d(points);
}

struct Common {
  double bits_total;       // whole matrix, bits
  double comp1_ns;         // pass-1 compute on the critical processor
  double comp2_ns;
  std::uint64_t active1;   // effective parallelism per pass
  std::uint64_t active2;
};

Common common_of(const LlmoreParams& p, std::uint64_t cores) {
  PSYNC_CHECK(cores >= 1);
  Common c;
  c.bits_total = static_cast<double>(p.matrix_rows) *
                 static_cast<double>(p.matrix_cols) *
                 static_cast<double>(p.sample_bits);
  c.active1 = std::min<std::uint64_t>(cores, p.matrix_rows);
  c.active2 = std::min<std::uint64_t>(cores, p.matrix_cols);
  const double rows_per1 =
      static_cast<double>(p.matrix_rows) / static_cast<double>(c.active1);
  const double cols_per2 =
      static_cast<double>(p.matrix_cols) / static_cast<double>(c.active2);
  c.comp1_ns = rows_per1 * 2.0 * static_cast<double>(p.matrix_cols) *
               ilog2d(p.matrix_cols) * p.fp_mult_ns;
  c.comp2_ns = cols_per2 * 2.0 * static_cast<double>(p.matrix_rows) *
               ilog2d(p.matrix_rows) * p.fp_mult_ns;
  return c;
}

/// DRAM row-aligned streaming overhead factor (S_r + S_h) / S_r.
double row_overhead(const LlmoreParams& p) {
  return static_cast<double>(p.dram_row_bits + p.dram_header_bits) /
         static_cast<double>(p.dram_row_bits);
}

}  // namespace

double total_flops(const LlmoreParams& p) {
  // 10 real ops per butterfly; mults account 4 of them.
  const double mults = pass_mults(p.matrix_rows, p.matrix_cols) +
                       pass_mults(p.matrix_cols, p.matrix_rows);
  return mults / static_cast<double>(p.mults_per_butterfly) * 10.0;
}

double ideal_time_ns(const LlmoreParams& p, std::uint64_t cores) {
  const Common c = common_of(p, cores);
  const double w_total =
      static_cast<double>(p.mesh_memory_ports) * p.port_gbps;
  // In, transpose out, transpose in, final out: four full-matrix transfers.
  return c.comp1_ns + c.comp2_ns + 4.0 * c.bits_total / w_total;
}

PhaseBreakdown simulate_psync(const LlmoreParams& p, std::uint64_t cores) {
  const Common c = common_of(p, cores);
  PhaseBreakdown out;
  const double oh = row_overhead(p);
  // Monolithic bursts at full waveguide rate; DRAM row headers add the
  // (S_r+S_h)/S_r factor when the stream is DRAM-bound (Eq. 23/24).
  out.deliver1_ns = c.bits_total / p.psync_gbps + p.waveguide_flight_ns;
  out.compute1_ns = c.comp1_ns;
  out.reorg_ns = c.bits_total * oh / p.psync_gbps + p.waveguide_flight_ns;
  out.deliver2_ns = c.bits_total / p.psync_gbps + p.waveguide_flight_ns;
  out.compute2_ns = c.comp2_ns;
  out.writeback_ns = c.bits_total * oh / p.psync_gbps + p.waveguide_flight_ns;
  return out;
}

PhaseBreakdown simulate_mesh(const LlmoreParams& p, std::uint64_t cores) {
  const Common c = common_of(p, cores);
  PhaseBreakdown out;

  const double cycle_ns = 1.0 / p.clock_ghz;
  const double ports = static_cast<double>(p.mesh_memory_ports);
  const double hops = std::sqrt(static_cast<double>(cores));
  const double lambda_ns = hops * p.t_r_cycles * cycle_ns;  // per packet

  // ---- Delivery (Model I, serialized per port; one packet per row) ----
  const double packets1 = static_cast<double>(p.matrix_rows);
  out.deliver1_ns = c.bits_total / (ports * p.port_gbps) +
                    packets1 / ports * lambda_ns;
  out.compute1_ns = c.comp1_ns;

  // ---- Transpose write-out through the memory interfaces ----
  // Piece = one column segment per processor: R / active rows of the same
  // column, i.e. R/active consecutive elements of the column-major output.
  const double piece_elems = std::max(
      1.0, static_cast<double>(p.matrix_rows) / static_cast<double>(c.active1));
  const double elements =
      static_cast<double>(p.matrix_rows) * static_cast<double>(p.matrix_cols);
  const double pieces = elements / piece_elems;
  const double piece_bits =
      piece_elems * static_cast<double>(p.sample_bits) +
      static_cast<double>(p.dram_header_bits);

  // Port serialization + per-element reorder time.
  const double port_ns =
      pieces / ports *
      (piece_bits / p.port_gbps + piece_elems * p.t_p_cycles * cycle_ns);

  // DRAM behind each port. While a piece carries at least
  // row_elems/buffer_partials elements, the interface can gather full rows
  // (amortized cost); a growing fraction of smaller pieces forces partial-
  // row writes that each pay the row-switch penalty.
  const double bus_cycle_ns =
      static_cast<double>(p.dram_bus_bits) / p.port_gbps;
  const double row_elems = static_cast<double>(p.dram_row_bits) /
                           static_cast<double>(p.sample_bits);
  const double row_txn_cycles =
      static_cast<double>(p.dram_row_bits + p.dram_header_bits) /
      static_cast<double>(p.dram_bus_bits);
  const double needed_partials = row_elems / piece_elems;
  const double thrash_frac = std::clamp(
      1.0 - static_cast<double>(p.buffer_partials) / needed_partials, 0.0,
      1.0);
  const double rows_total =
      elements * static_cast<double>(p.sample_bits) /
      static_cast<double>(p.dram_row_bits);
  const double dram_amortized_ns =
      (1.0 - thrash_frac) * rows_total * row_txn_cycles * bus_cycle_ns / ports;
  const double thrash_pieces = thrash_frac * pieces;
  const double dram_thrash_ns =
      thrash_pieces *
      (static_cast<double>(p.dram_row_switch_cycles) + piece_elems +
       static_cast<double>(p.dram_header_bits) /
           static_cast<double>(p.dram_bus_bits)) *
      bus_cycle_ns / ports;
  const double dram_ns = dram_amortized_ns + dram_thrash_ns;

  out.reorg_ns = std::max(port_ns, dram_ns) + lambda_ns;

  // ---- Reload of the reorganized data ----
  const double packets2 = static_cast<double>(p.matrix_cols);
  out.deliver2_ns = c.bits_total / (ports * p.port_gbps) +
                    packets2 / ports * lambda_ns;
  out.compute2_ns = c.comp2_ns;

  // ---- Final writeback: contiguous rows, full-row DRAM bursts ----
  out.writeback_ns = c.bits_total * row_overhead(p) / (ports * p.port_gbps) +
                     packets2 / ports * lambda_ns;
  return out;
}

AppPoint simulate_point(const LlmoreParams& p, std::uint64_t cores) {
  AppPoint pt;
  pt.cores = cores;
  pt.mesh = simulate_mesh(p, cores);
  pt.psync = simulate_psync(p, cores);
  const double flops = total_flops(p);
  pt.gflops_mesh = flops / pt.mesh.total_ns();
  pt.gflops_psync = flops / pt.psync.total_ns();
  pt.gflops_ideal = flops / ideal_time_ns(p, cores);
  pt.reorg_frac_mesh = pt.mesh.reorg_total_ns() / pt.mesh.total_ns();
  pt.reorg_frac_psync = pt.psync.reorg_total_ns() / pt.psync.total_ns();
  return pt;
}

std::vector<AppPoint> sweep(const LlmoreParams& p, std::uint64_t min_cores,
                            std::uint64_t max_cores) {
  std::vector<AppPoint> out;
  for (std::uint64_t cores = min_cores; cores <= max_cores; cores *= 4) {
    out.push_back(simulate_point(p, cores));
  }
  return out;
}

}  // namespace psync::llmore
