#include "psync/fft/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numbers>

#include "psync/common/check.hpp"
#include "psync/fft/fft_kernels.hpp"

namespace psync::fft {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

std::atomic<bool> g_fast_kernel{true};

// -1 = auto (use the vector bodies whenever the CPU supports them),
// 0 = forced scalar, 1 = forced on (still gated on availability).
std::atomic<int> g_vector_kernel{-1};

}  // namespace

void set_fast_kernel(bool on) {
  g_fast_kernel.store(on, std::memory_order_relaxed);
}

bool fast_kernel() { return g_fast_kernel.load(std::memory_order_relaxed); }

void set_vector_kernel(bool on) {
  g_vector_kernel.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool vector_kernel() {
  if (!detail::vector_kernel_available()) return false;
  const int v = g_vector_kernel.load(std::memory_order_relaxed);
  return v != 0;
}

std::uint64_t block_phase_mults(std::size_t n, std::size_t k) {
  PSYNC_CHECK(is_pow2(n) && is_pow2(k) && k <= n);
  const std::size_t bs = n / k;
  return 2ULL * bs * ilog2(bs);
}

std::uint64_t final_phase_mults(std::size_t n, std::size_t k) {
  PSYNC_CHECK(is_pow2(n) && is_pow2(k) && k <= n);
  return 2ULL * n * ilog2(k);
}

std::uint64_t full_fft_mults(std::size_t n) {
  PSYNC_CHECK(is_pow2(n));
  return 2ULL * n * ilog2(n);
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw SimulationError("FftPlan: size must be a power of two");
  }
  log2n_ = ilog2(n);
  rev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n_; ++b) {
      r |= ((i >> b) & 1U) << (log2n_ - 1 - b);
    }
    rev_[i] = r;
  }
  twiddle_.resize(std::max<std::size_t>(n / 2, 1));
  for (std::size_t j = 0; j < twiddle_.size(); ++j) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(n);
    twiddle_[j] = Complex(std::cos(ang), std::sin(ang));
  }
  // Stage-major copy: stage s uses factors twiddle_[j * (n >> (s+1))] for
  // j < 2^s; laying them out contiguously per stage turns the fast kernel's
  // twiddle loads into sequential reads.
  stage_off_.resize(log2n_ + 1);
  stage_tw_re_.resize(n_ > 1 ? n_ - 1 : 1);
  stage_tw_im_.resize(n_ > 1 ? n_ - 1 : 1);
  std::size_t off = 0;
  for (std::size_t s = 0; s < log2n_; ++s) {
    stage_off_[s] = off;
    const std::size_t half = std::size_t{1} << s;
    const std::size_t stride = n_ >> (s + 1);
    for (std::size_t j = 0; j < half; ++j) {
      stage_tw_re_[off + j] = twiddle_[j * stride].real();
      stage_tw_im_[off + j] = twiddle_[j * stride].imag();
    }
    off += half;
  }
  stage_off_[log2n_] = off;
}

void FftPlan::bit_reverse(std::span<Complex> data) const {
  PSYNC_CHECK(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = rev_[i];
    if (i < r) std::swap(data[i], data[r]);
  }
}

OpCount FftPlan::run_stages(std::span<Complex> data, std::size_t first_stage,
                            std::size_t last_stage, std::size_t block_offset,
                            std::size_t block_size) const {
  if (fast_kernel()) {
    return run_stages_fast(data, first_stage, last_stage, block_offset,
                           block_size);
  }
  return run_stages_reference(data, first_stage, last_stage, block_offset,
                              block_size);
}

OpCount FftPlan::run_stages_reference(std::span<Complex> data,
                                      std::size_t first_stage,
                                      std::size_t last_stage,
                                      std::size_t block_offset,
                                      std::size_t block_size) const {
  PSYNC_CHECK(data.size() == n_);
  PSYNC_CHECK(first_stage <= last_stage && last_stage <= log2n_);
  if (block_size == 0) {
    block_offset = 0;
    block_size = n_;
  }
  PSYNC_CHECK(block_offset + block_size <= n_);

  OpCount ops;
  for (std::size_t s = first_stage; s < last_stage; ++s) {
    const std::size_t m = std::size_t{1} << (s + 1);
    PSYNC_CHECK_MSG(m <= block_size,
                    "butterfly span exceeds the block being computed");
    const std::size_t half = m / 2;
    const std::size_t stride = n_ / m;  // twiddle index stride
    for (std::size_t start = block_offset; start < block_offset + block_size;
         start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const Complex w = twiddle_[j * stride];
        const Complex t = w * data[start + half + j];
        const Complex u = data[start + j];
        data[start + j] = u + t;
        data[start + half + j] = u - t;
      }
    }
    const std::uint64_t bf = block_size / 2;
    ops.butterflies += bf;
    ops.real_mults += 4 * bf;  // one complex multiply
    ops.real_adds += 6 * bf;   // complex multiply adds + two complex adds
  }
  return ops;
}

// Fast stage kernel. Two consecutive radix-2 stages are fused into one pass
// over each 4*2^s-element group (a radix-4 decomposition that keeps radix-2
// arithmetic): the stage-s butterflies of a group feed its stage-(s+1)
// butterflies directly from registers, halving the number of passes over the
// data. Complex multiplies are written out as the four real multiplies and
// two adds that operator*(complex, complex) performs for finite values, on
// factors copied bit-for-bit into the contiguous stage tables — so every
// element sees the exact arithmetic sequence of run_stages_reference and the
// results match to the bit.
OpCount FftPlan::run_stages_fast(std::span<Complex> data,
                                 std::size_t first_stage,
                                 std::size_t last_stage,
                                 std::size_t block_offset,
                                 std::size_t block_size) const {
  PSYNC_CHECK(data.size() == n_);
  PSYNC_CHECK(first_stage <= last_stage && last_stage <= log2n_);
  if (block_size == 0) {
    block_offset = 0;
    block_size = n_;
  }
  PSYNC_CHECK(block_offset + block_size <= n_);

  OpCount ops;
  const auto count_stage = [&ops, block_size]() {
    const std::uint64_t bf = block_size / 2;
    ops.butterflies += bf;
    ops.real_mults += 4 * bf;
    ops.real_adds += 6 * bf;
  };

  double* const d = reinterpret_cast<double*>(data.data());
  // The vector bodies need >= 2 complexes per butterfly half (half >= 2);
  // stages below that stay on the scalar loops.
  const bool vec = vector_kernel();
  std::size_t s = first_stage;
  while (s < last_stage) {
    const std::size_t half = std::size_t{1} << s;
    const double* const w1r = stage_tw_re_.data() + stage_off_[s];
    const double* const w1i = stage_tw_im_.data() + stage_off_[s];

    if (s + 1 < last_stage) {
      // Fused stages s and s+1 over groups of 4*half elements.
      const std::size_t quad = half << 2;
      PSYNC_CHECK_MSG(quad <= block_size,
                      "butterfly span exceeds the block being computed");
      const double* const w2r = stage_tw_re_.data() + stage_off_[s + 1];
      const double* const w2i = stage_tw_im_.data() + stage_off_[s + 1];
      const std::size_t end = block_offset + block_size;
      if (vec && half >= 2) {
        detail::fused_pair_vec(d, w1r, w1i, w2r, w2i, half, block_offset, end);
        count_stage();
        count_stage();
        s += 2;
        continue;
      }
      for (std::size_t start = block_offset; start < end; start += quad) {
        double* const p0 = d + 2 * start;
        double* const p1 = p0 + 2 * half;
        double* const p2 = p1 + 2 * half;
        double* const p3 = p2 + 2 * half;
        for (std::size_t j = 0; j < half; ++j) {
          const double wr = w1r[j];
          const double wi = w1i[j];
          // Stage s: butterfly (p0, p1) and (p2, p3), same twiddle.
          const double t0r = wr * p1[2 * j] - wi * p1[2 * j + 1];
          const double t0i = wr * p1[2 * j + 1] + wi * p1[2 * j];
          const double a0r = p0[2 * j];
          const double a0i = p0[2 * j + 1];
          const double u0r = a0r + t0r;
          const double u0i = a0i + t0i;
          const double u1r = a0r - t0r;
          const double u1i = a0i - t0i;
          const double t1r = wr * p3[2 * j] - wi * p3[2 * j + 1];
          const double t1i = wr * p3[2 * j + 1] + wi * p3[2 * j];
          const double a2r = p2[2 * j];
          const double a2i = p2[2 * j + 1];
          const double u2r = a2r + t1r;
          const double u2i = a2i + t1i;
          const double u3r = a2r - t1r;
          const double u3i = a2i - t1i;
          // Stage s+1: butterfly (u0, u2) with w2[j], (u1, u3) with
          // w2[j + half].
          const double v0r = w2r[j];
          const double v0i = w2i[j];
          const double t2r = v0r * u2r - v0i * u2i;
          const double t2i = v0r * u2i + v0i * u2r;
          p0[2 * j] = u0r + t2r;
          p0[2 * j + 1] = u0i + t2i;
          p2[2 * j] = u0r - t2r;
          p2[2 * j + 1] = u0i - t2i;
          const double v1r = w2r[j + half];
          const double v1i = w2i[j + half];
          const double t3r = v1r * u3r - v1i * u3i;
          const double t3i = v1r * u3i + v1i * u3r;
          p1[2 * j] = u1r + t3r;
          p1[2 * j + 1] = u1i + t3i;
          p3[2 * j] = u1r - t3r;
          p3[2 * j + 1] = u1i - t3i;
        }
      }
      count_stage();
      count_stage();
      s += 2;
      continue;
    }

    // Single tail stage.
    const std::size_t m = half << 1;
    PSYNC_CHECK_MSG(m <= block_size,
                    "butterfly span exceeds the block being computed");
    const std::size_t end = block_offset + block_size;
    if (vec && half >= 2) {
      detail::single_stage_vec(d, w1r, w1i, half, block_offset, end);
      count_stage();
      ++s;
      continue;
    }
    for (std::size_t start = block_offset; start < end; start += m) {
      double* const lo = d + 2 * start;
      double* const hi = lo + 2 * half;
      for (std::size_t j = 0; j < half; ++j) {
        const double wr = w1r[j];
        const double wi = w1i[j];
        const double tr = wr * hi[2 * j] - wi * hi[2 * j + 1];
        const double ti = wr * hi[2 * j + 1] + wi * hi[2 * j];
        const double ar = lo[2 * j];
        const double ai = lo[2 * j + 1];
        lo[2 * j] = ar + tr;
        lo[2 * j + 1] = ai + ti;
        hi[2 * j] = ar - tr;
        hi[2 * j + 1] = ai - ti;
      }
    }
    count_stage();
    ++s;
  }
  return ops;
}

OpCount FftPlan::forward(std::span<Complex> data) const {
  bit_reverse(data);
  return run_stages(data, 0, log2n_);
}

OpCount FftPlan::inverse(std::span<Complex> data) const {
  PSYNC_CHECK(data.size() == n_);
  for (auto& v : data) v = std::conj(v);
  const OpCount ops = forward(data);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v = std::conj(v) * inv_n;
  return ops;
}

OpCount FftPlan::forward_blocked(std::span<Complex> data, std::size_t k,
                                 std::vector<OpCount>* block_ops) const {
  PSYNC_CHECK(data.size() == n_);
  if (!is_pow2(k) || k > n_) {
    throw SimulationError("forward_blocked: k must be a power of two <= N");
  }
  bit_reverse(data);
  const std::size_t bs = n_ / k;
  const std::size_t local_stages = ilog2(bs);
  if (block_ops != nullptr) block_ops->assign(k, OpCount{});
  for (std::size_t b = 0; b < k; ++b) {
    const OpCount ops = run_stages(data, 0, local_stages, b * bs, bs);
    if (block_ops != nullptr) (*block_ops)[b] = ops;
  }
  return run_stages(data, local_stages, log2n_);
}

std::vector<Complex> naive_dft(std::span<const Complex> in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(i) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[i] = acc;
  }
  return out;
}

std::vector<Complex> naive_idft(std::span<const Complex> in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = 2.0 * std::numbers::pi * static_cast<double>(i) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  PSYNC_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace psync::fft
