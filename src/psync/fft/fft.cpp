#include "psync/fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "psync/common/check.hpp"

namespace psync::fft {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

std::uint64_t block_phase_mults(std::size_t n, std::size_t k) {
  PSYNC_CHECK(is_pow2(n) && is_pow2(k) && k <= n);
  const std::size_t bs = n / k;
  return 2ULL * bs * ilog2(bs);
}

std::uint64_t final_phase_mults(std::size_t n, std::size_t k) {
  PSYNC_CHECK(is_pow2(n) && is_pow2(k) && k <= n);
  return 2ULL * n * ilog2(k);
}

std::uint64_t full_fft_mults(std::size_t n) {
  PSYNC_CHECK(is_pow2(n));
  return 2ULL * n * ilog2(n);
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw SimulationError("FftPlan: size must be a power of two");
  }
  log2n_ = ilog2(n);
  rev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n_; ++b) {
      r |= ((i >> b) & 1U) << (log2n_ - 1 - b);
    }
    rev_[i] = r;
  }
  twiddle_.resize(std::max<std::size_t>(n / 2, 1));
  for (std::size_t j = 0; j < twiddle_.size(); ++j) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(n);
    twiddle_[j] = Complex(std::cos(ang), std::sin(ang));
  }
}

void FftPlan::bit_reverse(std::span<Complex> data) const {
  PSYNC_CHECK(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = rev_[i];
    if (i < r) std::swap(data[i], data[r]);
  }
}

OpCount FftPlan::run_stages(std::span<Complex> data, std::size_t first_stage,
                            std::size_t last_stage, std::size_t block_offset,
                            std::size_t block_size) const {
  PSYNC_CHECK(data.size() == n_);
  PSYNC_CHECK(first_stage <= last_stage && last_stage <= log2n_);
  if (block_size == 0) {
    block_offset = 0;
    block_size = n_;
  }
  PSYNC_CHECK(block_offset + block_size <= n_);

  OpCount ops;
  for (std::size_t s = first_stage; s < last_stage; ++s) {
    const std::size_t m = std::size_t{1} << (s + 1);
    PSYNC_CHECK_MSG(m <= block_size,
                    "butterfly span exceeds the block being computed");
    const std::size_t half = m / 2;
    const std::size_t stride = n_ / m;  // twiddle index stride
    for (std::size_t start = block_offset; start < block_offset + block_size;
         start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const Complex w = twiddle_[j * stride];
        const Complex t = w * data[start + half + j];
        const Complex u = data[start + j];
        data[start + j] = u + t;
        data[start + half + j] = u - t;
      }
    }
    const std::uint64_t bf = block_size / 2;
    ops.butterflies += bf;
    ops.real_mults += 4 * bf;  // one complex multiply
    ops.real_adds += 6 * bf;   // complex multiply adds + two complex adds
  }
  return ops;
}

OpCount FftPlan::forward(std::span<Complex> data) const {
  bit_reverse(data);
  return run_stages(data, 0, log2n_);
}

OpCount FftPlan::inverse(std::span<Complex> data) const {
  PSYNC_CHECK(data.size() == n_);
  for (auto& v : data) v = std::conj(v);
  const OpCount ops = forward(data);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v = std::conj(v) * inv_n;
  return ops;
}

OpCount FftPlan::forward_blocked(std::span<Complex> data, std::size_t k,
                                 std::vector<OpCount>* block_ops) const {
  PSYNC_CHECK(data.size() == n_);
  if (!is_pow2(k) || k > n_) {
    throw SimulationError("forward_blocked: k must be a power of two <= N");
  }
  bit_reverse(data);
  const std::size_t bs = n_ / k;
  const std::size_t local_stages = ilog2(bs);
  if (block_ops != nullptr) block_ops->assign(k, OpCount{});
  for (std::size_t b = 0; b < k; ++b) {
    const OpCount ops = run_stages(data, 0, local_stages, b * bs, bs);
    if (block_ops != nullptr) (*block_ops)[b] = ops;
  }
  return run_stages(data, local_stages, log2n_);
}

std::vector<Complex> naive_dft(std::span<const Complex> in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(i) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[i] = acc;
  }
  return out;
}

std::vector<Complex> naive_idft(std::span<const Complex> in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = 2.0 * std::numbers::pi * static_cast<double>(i) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  PSYNC_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace psync::fft
