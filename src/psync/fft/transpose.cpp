#include "psync/fft/transpose.hpp"

#include <algorithm>

#include "psync/common/check.hpp"

namespace psync::fft {

void transpose(std::span<const Complex> in, std::span<Complex> out,
               std::size_t rows, std::size_t cols) {
  PSYNC_CHECK(in.size() == rows * cols);
  PSYNC_CHECK(out.size() == rows * cols);
  PSYNC_CHECK(in.data() != out.data());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

void transpose_square_inplace(std::span<Complex> m, std::size_t n) {
  PSYNC_CHECK(m.size() == n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      std::swap(m[r * n + c], m[c * n + r]);
    }
  }
}

void transpose_blocked(std::span<const Complex> in, std::span<Complex> out,
                       std::size_t rows, std::size_t cols, std::size_t tile) {
  PSYNC_CHECK(in.size() == rows * cols);
  PSYNC_CHECK(out.size() == rows * cols);
  PSYNC_CHECK(tile > 0);
  for (std::size_t rb = 0; rb < rows; rb += tile) {
    const std::size_t rend = std::min(rb + tile, rows);
    for (std::size_t cb = 0; cb < cols; cb += tile) {
      const std::size_t cend = std::min(cb + tile, cols);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          out[c * rows + r] = in[r * cols + c];
        }
      }
    }
  }
}

std::size_t transpose_index(std::size_t i, std::size_t rows,
                            std::size_t cols) {
  PSYNC_CHECK(i < rows * cols);
  const std::size_t r = i / cols;
  const std::size_t c = i % cols;
  return c * rows + r;
}

}  // namespace psync::fft
