// Matrix transpose kernels. The transpose between the two 1D FFT passes of
// the 2D FFT is the paper's headline non-local access pattern.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "psync/fft/fft.hpp"

namespace psync::fft {

/// Row-major rows x cols matrix view over a flat buffer.
template <typename T>
struct MatrixView {
  std::span<T> data;
  std::size_t rows = 0;
  std::size_t cols = 0;

  T& at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

/// Out-of-place transpose: out(c, r) = in(r, c). out must hold rows*cols.
void transpose(std::span<const Complex> in, std::span<Complex> out,
               std::size_t rows, std::size_t cols);

/// In-place transpose of a square matrix.
void transpose_square_inplace(std::span<Complex> m, std::size_t n);

/// Cache-blocked out-of-place transpose (tile x tile blocks).
void transpose_blocked(std::span<const Complex> in, std::span<Complex> out,
                       std::size_t rows, std::size_t cols,
                       std::size_t tile = 32);

/// Linear-address map of the transpose: element at flat index i of the
/// row-major (rows x cols) input lands at flat index transpose_index(...) of
/// the row-major (cols x rows) output. This is the address stream the
/// PSCAN communication program encodes.
std::size_t transpose_index(std::size_t i, std::size_t rows, std::size_t cols);

}  // namespace psync::fft
