#include "psync/fft/plan_cache.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace psync::fft {
namespace {

struct PlanCache {
  std::mutex mu;
  // unique_ptr keeps plan addresses stable across map rehash/rebalance.
  std::map<std::size_t, std::unique_ptr<const FftPlan>> plans;
};

PlanCache& cache() {
  // Leaked intentionally: sweep worker threads may outlive static
  // destruction order, and plans must stay valid until process exit.
  static PlanCache* c = new PlanCache();
  return *c;
}

}  // namespace

const FftPlan& shared_plan(std::size_t n) {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.plans.find(n);
  if (it == c.plans.end()) {
    auto plan = std::make_unique<const FftPlan>(n);  // may throw; map untouched
    it = c.plans.emplace(n, std::move(plan)).first;
  }
  return *it->second;
}

std::size_t shared_plan_cache_size() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.plans.size();
}

}  // namespace psync::fft
