#include "psync/fft/plan_cache.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>

#include "psync/common/check.hpp"

namespace psync::fft {
namespace {

struct PlanCache {
  std::mutex mu;
  // unique_ptr keeps plan addresses stable across map rehash/rebalance.
  std::map<std::size_t, std::unique_ptr<const FftPlan>> plans;
  std::map<std::size_t, std::unique_ptr<const std::vector<Complex>>> roots;
};

PlanCache& cache() {
  // Leaked intentionally: sweep worker threads may outlive static
  // destruction order, and plans must stay valid until process exit.
  static PlanCache* c = new PlanCache();
  return *c;
}

}  // namespace

const FftPlan& shared_plan(std::size_t n) {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.plans.find(n);
  if (it == c.plans.end()) {
    auto plan = std::make_unique<const FftPlan>(n);  // may throw; map untouched
    it = c.plans.emplace(n, std::move(plan)).first;
  }
  return *it->second;
}

std::size_t shared_plan_cache_size() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.plans.size();
}

const std::vector<Complex>& shared_roots(std::size_t n) {
  if (n == 0) throw SimulationError("shared_roots: size must be positive");
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.roots.find(n);
  if (it == c.roots.end()) {
    auto table = std::make_unique<std::vector<Complex>>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(n);
      (*table)[j] = Complex(std::cos(ang), std::sin(ang));
    }
    it = c.roots.emplace(n, std::move(table)).first;
  }
  return *it->second;
}

}  // namespace psync::fft
