// NEON (AArch64) bodies for the fast FFT stage kernel. One complex per
// 128-bit vector: [re im]. The complex multiply w*b is
//   (wr * b) + sign_flip_lane0(wi * swap(b))
// where a - b is realized as a + (-b) via an IEEE-exact sign flip, so each
// element sees the same two multiplies and one add/subtract as the scalar
// kernel and results stay bit-identical (no FMA contraction is used). NEON
// is baseline on AArch64, so this TU needs no special compile flags.
#include "psync/fft/fft_kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "psync/common/simd_dispatch.hpp"

namespace psync::fft::detail {
namespace {

// (wr + i*wi) * [br bi] = [wr*br - wi*bi, wr*bi + wi*br].
inline float64x2_t cmul(double wr, double wi, float64x2_t b) {
  const float64x2_t m1 = vmulq_n_f64(b, wr);
  const float64x2_t m2 = vmulq_n_f64(vextq_f64(b, b, 1), wi);
  // Negate lane 0 of m2, then add: lane0 = m1 - m2, lane1 = m1 + m2.
  const uint64x2_t sign = {0x8000000000000000ull, 0};
  const float64x2_t m2s =
      vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(m2), sign));
  return vaddq_f64(m1, m2s);
}

}  // namespace

bool fft_neon_available() { return simd::have_neon(); }

void fused_pair_neon(double* d, const double* w1r, const double* w1i,
                     const double* w2r, const double* w2i, std::size_t half,
                     std::size_t begin, std::size_t end) {
  const std::size_t quad = half << 2;
  for (std::size_t start = begin; start < end; start += quad) {
    double* const p0 = d + 2 * start;
    double* const p1 = p0 + 2 * half;
    double* const p2 = p1 + 2 * half;
    double* const p3 = p2 + 2 * half;
    for (std::size_t j = 0; j < half; ++j) {
      const double wr = w1r[j];
      const double wi = w1i[j];
      const float64x2_t t0 = cmul(wr, wi, vld1q_f64(p1 + 2 * j));
      const float64x2_t a0 = vld1q_f64(p0 + 2 * j);
      const float64x2_t u0 = vaddq_f64(a0, t0);
      const float64x2_t u1 = vsubq_f64(a0, t0);
      const float64x2_t t1 = cmul(wr, wi, vld1q_f64(p3 + 2 * j));
      const float64x2_t a2 = vld1q_f64(p2 + 2 * j);
      const float64x2_t u2 = vaddq_f64(a2, t1);
      const float64x2_t u3 = vsubq_f64(a2, t1);
      const float64x2_t t2 = cmul(w2r[j], w2i[j], u2);
      vst1q_f64(p0 + 2 * j, vaddq_f64(u0, t2));
      vst1q_f64(p2 + 2 * j, vsubq_f64(u0, t2));
      const float64x2_t t3 = cmul(w2r[j + half], w2i[j + half], u3);
      vst1q_f64(p1 + 2 * j, vaddq_f64(u1, t3));
      vst1q_f64(p3 + 2 * j, vsubq_f64(u1, t3));
    }
  }
}

void single_stage_neon(double* d, const double* w1r, const double* w1i,
                       std::size_t half, std::size_t begin, std::size_t end) {
  const std::size_t m = half << 1;
  for (std::size_t start = begin; start < end; start += m) {
    double* const lo = d + 2 * start;
    double* const hi = lo + 2 * half;
    for (std::size_t j = 0; j < half; ++j) {
      const float64x2_t t = cmul(w1r[j], w1i[j], vld1q_f64(hi + 2 * j));
      const float64x2_t a = vld1q_f64(lo + 2 * j);
      vst1q_f64(lo + 2 * j, vaddq_f64(a, t));
      vst1q_f64(hi + 2 * j, vsubq_f64(a, t));
    }
  }
}

}  // namespace psync::fft::detail

#endif  // AArch64 NEON
