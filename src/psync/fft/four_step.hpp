// Bailey's four-step 1D FFT ("FFTs in external or hierarchical memory",
// the paper's reference [7]): a large N-point transform decomposed as an
// R x C matrix problem —
//
//   1. C-point FFTs over the rows of M[r][c] = x[c*R + r],
//   2. twiddle scaling Z[r][q] = W_N^{r*q} * Y[r][q],
//   3. R-point FFTs over the columns,
//   4. transpose-style output reordering X[s*C + q] = column-FFT result.
//
// This is why the paper treats the 2D FFT + transpose as the general case:
// "large 1D vector FFTs are typically implemented as 2D matrix FFTs ...
// Therefore, the optimization of the 2D FFT is generalizable to the 1D
// case" (Section II). The P-sync machine runs exactly this flow with the
// transposes carried by SCAs.
#pragma once

#include <cstddef>
#include <vector>

#include "psync/fft/fft.hpp"

namespace psync::fft {

/// Factor N into R x C with both powers of two and R <= C (R = the
/// "row count" of the four-step view). Throws for non-power-of-two N.
void four_step_factor(std::size_t n, std::size_t* rows, std::size_t* cols);

/// In-place N-point forward DFT via the four-step method (N a power of two,
/// N >= 4). Returns total operation counts (twiddle multiplies included).
OpCount fft1d_four_step(std::span<Complex> data);

/// The twiddle factor W_N^{r*q} applied between the two passes.
Complex four_step_twiddle(std::size_t n, std::size_t r, std::size_t q);

/// Step-by-step access for machine simulators running the flow across
/// distributed memory: each call mutates `matrix` (R x C row-major, where
/// row r holds x[c*R + r] for step 1).
OpCount four_step_pass1(std::span<Complex> matrix, std::size_t rows,
                        std::size_t cols);
/// Twiddle scaling of rows [row0, row0+row_count); returns op counts
/// (4 real multiplies + 2 adds per element).
OpCount four_step_twiddle_rows(std::span<Complex> matrix, std::size_t rows,
                               std::size_t cols, std::size_t row0,
                               std::size_t row_count);
/// Pass 2 runs on the transposed matrix (C x R row-major).
OpCount four_step_pass2(std::span<Complex> matrix_t, std::size_t rows,
                        std::size_t cols);

/// Gather the input into the four-step matrix view: M[r][c] = x[c*R + r].
std::vector<Complex> four_step_load(std::span<const Complex> x,
                                    std::size_t rows, std::size_t cols);

/// Scatter the pass-2 result (C x R row-major) back to the natural output
/// order: X[s*C + q] = matrix_t[q][s].
std::vector<Complex> four_step_store(std::span<const Complex> matrix_t,
                                     std::size_t rows, std::size_t cols);

}  // namespace psync::fft
