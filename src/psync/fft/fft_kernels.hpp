// Vectorized bodies for the fast FFT stage kernel. Each ISA-specific
// translation unit (fft_kernels_avx2.cpp, fft_kernels_neon.cpp) performs the
// exact real multiplies and adds of the scalar loops in run_stages_fast, in
// the same order per element, so the transforms stay bit-identical whichever
// path runs. The wrappers below pick the ISA that matches the build target;
// availability is still a *runtime* question (CPUID + PSYNC_FORCE_SCALAR),
// answered by vector_kernel_available().
//
// `d` points at the interleaved re/im doubles of the whole row;
// [begin, end) are complex-element indices covering whole butterfly groups.
// Callers only dispatch here for half >= 2 (the AVX2 path consumes two
// complexes per 256-bit vector).
#pragma once

#include <cstddef>

namespace psync::fft::detail {

#if defined(__x86_64__) || defined(__i386__)

bool fft_avx2_available();
void fused_pair_avx2(double* d, const double* w1r, const double* w1i,
                     const double* w2r, const double* w2i, std::size_t half,
                     std::size_t begin, std::size_t end);
void single_stage_avx2(double* d, const double* w1r, const double* w1i,
                       std::size_t half, std::size_t begin, std::size_t end);

inline bool vector_kernel_available() { return fft_avx2_available(); }
inline void fused_pair_vec(double* d, const double* w1r, const double* w1i,
                           const double* w2r, const double* w2i,
                           std::size_t half, std::size_t begin,
                           std::size_t end) {
  fused_pair_avx2(d, w1r, w1i, w2r, w2i, half, begin, end);
}
inline void single_stage_vec(double* d, const double* w1r, const double* w1i,
                             std::size_t half, std::size_t begin,
                             std::size_t end) {
  single_stage_avx2(d, w1r, w1i, half, begin, end);
}

#elif defined(__aarch64__) && defined(__ARM_NEON)

bool fft_neon_available();
void fused_pair_neon(double* d, const double* w1r, const double* w1i,
                     const double* w2r, const double* w2i, std::size_t half,
                     std::size_t begin, std::size_t end);
void single_stage_neon(double* d, const double* w1r, const double* w1i,
                       std::size_t half, std::size_t begin, std::size_t end);

inline bool vector_kernel_available() { return fft_neon_available(); }
inline void fused_pair_vec(double* d, const double* w1r, const double* w1i,
                           const double* w2r, const double* w2i,
                           std::size_t half, std::size_t begin,
                           std::size_t end) {
  fused_pair_neon(d, w1r, w1i, w2r, w2i, half, begin, end);
}
inline void single_stage_vec(double* d, const double* w1r, const double* w1i,
                             std::size_t half, std::size_t begin,
                             std::size_t end) {
  single_stage_neon(d, w1r, w1i, half, begin, end);
}

#else

// No vector backend for this target; run_stages_fast never dispatches here.
inline bool vector_kernel_available() { return false; }
inline void fused_pair_vec(double*, const double*, const double*,
                           const double*, const double*, std::size_t,
                           std::size_t, std::size_t) {}
inline void single_stage_vec(double*, const double*, const double*,
                             std::size_t, std::size_t, std::size_t) {}

#endif

}  // namespace psync::fft::detail
