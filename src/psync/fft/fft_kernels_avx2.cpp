// AVX2 bodies for the fast FFT stage kernel. Two complexes ride in each
// 256-bit vector as [re0 im0 re1 im1]. A complex multiply w*b is computed as
//   addsub(wr * b, wi * swap(b))
// which performs, per element, the same two multiplies and one add/subtract
// as the scalar kernel — vmulpd/vaddsubpd round exactly like their scalar
// counterparts and no FMA contraction is used, so results are bit-identical.
// This TU alone is compiled with -mavx2 (see CMakeLists); when the compiler
// lacks the flag it degrades to stubs that report the path unavailable.
#include "psync/fft/fft_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include "psync/common/simd_dispatch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace psync::fft::detail {
namespace {

// [a, b] from memory -> [a, a, b, b]: one twiddle per complex lane pair.
inline __m256d dup_pairs(const double* p) {
  return _mm256_permute4x64_pd(_mm256_castpd128_pd256(_mm_loadu_pd(p)), 0x50);
}

// [re0 im0 re1 im1] -> [im0 re0 im1 re1].
inline __m256d swap_halves(__m256d v) { return _mm256_permute_pd(v, 0x5); }

// (wr + i*wi) * b for two interleaved complexes.
inline __m256d cmul(__m256d wr, __m256d wi, __m256d b) {
  return _mm256_addsub_pd(_mm256_mul_pd(wr, b),
                          _mm256_mul_pd(wi, swap_halves(b)));
}

}  // namespace

bool fft_avx2_available() { return simd::have_avx2(); }

void fused_pair_avx2(double* d, const double* w1r, const double* w1i,
                     const double* w2r, const double* w2i, std::size_t half,
                     std::size_t begin, std::size_t end) {
  const std::size_t quad = half << 2;
  for (std::size_t start = begin; start < end; start += quad) {
    double* const p0 = d + 2 * start;
    double* const p1 = p0 + 2 * half;
    double* const p2 = p1 + 2 * half;
    double* const p3 = p2 + 2 * half;
    for (std::size_t j = 0; j < half; j += 2) {
      const __m256d wr = dup_pairs(w1r + j);
      const __m256d wi = dup_pairs(w1i + j);
      // Stage s: butterfly (p0, p1) and (p2, p3), same twiddle.
      const __m256d t0 = cmul(wr, wi, _mm256_loadu_pd(p1 + 2 * j));
      const __m256d a0 = _mm256_loadu_pd(p0 + 2 * j);
      const __m256d u0 = _mm256_add_pd(a0, t0);
      const __m256d u1 = _mm256_sub_pd(a0, t0);
      const __m256d t1 = cmul(wr, wi, _mm256_loadu_pd(p3 + 2 * j));
      const __m256d a2 = _mm256_loadu_pd(p2 + 2 * j);
      const __m256d u2 = _mm256_add_pd(a2, t1);
      const __m256d u3 = _mm256_sub_pd(a2, t1);
      // Stage s+1: butterfly (u0, u2) with w2[j], (u1, u3) with w2[j+half].
      const __m256d v0r = dup_pairs(w2r + j);
      const __m256d v0i = dup_pairs(w2i + j);
      const __m256d t2 = cmul(v0r, v0i, u2);
      _mm256_storeu_pd(p0 + 2 * j, _mm256_add_pd(u0, t2));
      _mm256_storeu_pd(p2 + 2 * j, _mm256_sub_pd(u0, t2));
      const __m256d v1r = dup_pairs(w2r + half + j);
      const __m256d v1i = dup_pairs(w2i + half + j);
      const __m256d t3 = cmul(v1r, v1i, u3);
      _mm256_storeu_pd(p1 + 2 * j, _mm256_add_pd(u1, t3));
      _mm256_storeu_pd(p3 + 2 * j, _mm256_sub_pd(u1, t3));
    }
  }
}

void single_stage_avx2(double* d, const double* w1r, const double* w1i,
                       std::size_t half, std::size_t begin, std::size_t end) {
  const std::size_t m = half << 1;
  for (std::size_t start = begin; start < end; start += m) {
    double* const lo = d + 2 * start;
    double* const hi = lo + 2 * half;
    for (std::size_t j = 0; j < half; j += 2) {
      const __m256d wr = dup_pairs(w1r + j);
      const __m256d wi = dup_pairs(w1i + j);
      const __m256d t = cmul(wr, wi, _mm256_loadu_pd(hi + 2 * j));
      const __m256d a = _mm256_loadu_pd(lo + 2 * j);
      _mm256_storeu_pd(lo + 2 * j, _mm256_add_pd(a, t));
      _mm256_storeu_pd(hi + 2 * j, _mm256_sub_pd(a, t));
    }
  }
}

}  // namespace psync::fft::detail

#else  // x86 but the compiler could not target AVX2: keep the path off.

namespace psync::fft::detail {

bool fft_avx2_available() { return false; }

void fused_pair_avx2(double*, const double*, const double*, const double*,
                     const double*, std::size_t, std::size_t, std::size_t) {}

void single_stage_avx2(double*, const double*, const double*, std::size_t,
                       std::size_t, std::size_t) {}

}  // namespace psync::fft::detail

#endif  // __AVX2__

#endif  // x86
