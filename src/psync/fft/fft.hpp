// Radix-2 decimation-in-time FFT with the blocked execution mode the paper's
// Model II exploits (Section V-B-1, Fig. 10).
//
// A DIT FFT over bit-reversed input runs its early butterfly stages entirely
// within contiguous sub-blocks; non-locality (butterfly span) doubles each
// stage. Delivering a row in k blocks therefore allows each block's local
// sub-FFT — the first log2(N/k) stages — to run as soon as that block
// arrives, leaving only the last log2(k) global stages for a final
// compute-only phase. Operation counts match the paper's Eq. 17/18 and are
// exposed so the analysis library can be cross-checked against real code.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace psync::fft {

using Complex = std::complex<double>;

/// Multiply/add accounting. The paper counts 4 real multiplies per butterfly
/// (one complex multiply) and only multiplies toward compute time.
struct OpCount {
  std::uint64_t butterflies = 0;
  std::uint64_t real_mults = 0;
  std::uint64_t real_adds = 0;

  OpCount& operator+=(const OpCount& o) {
    butterflies += o.butterflies;
    real_mults += o.real_mults;
    real_adds += o.real_adds;
    return *this;
  }
};

/// Expected multiplies for one block's local sub-FFT under k-block delivery:
/// Eq. 17, (2N/k) * log2(N/k).
std::uint64_t block_phase_mults(std::size_t n, std::size_t k);
/// Expected multiplies for the final global phase: Eq. 18, 2N * log2(k).
std::uint64_t final_phase_mults(std::size_t n, std::size_t k);
/// Expected multiplies for a full N-point FFT: 2N * log2(N).
std::uint64_t full_fft_mults(std::size_t n);

/// Select the FFT stage kernel globally (default: fast). The fast kernel is
/// a two-stage-fused (radix-4 style) cache-blocked loop over contiguous
/// per-stage twiddle tables; it performs the exact same real multiplies and
/// adds as the reference radix-2 loop, in the same order per element, so
/// results are bit-identical for finite data. The toggle exists so
/// equivalence tests and benchmarks can pin either path.
void set_fast_kernel(bool on);
bool fast_kernel();

/// Select the vectorized (AVX2 on x86, NEON on AArch64) butterfly bodies
/// inside the fast kernel. Default: on whenever the CPU supports them; the
/// PSYNC_FORCE_SCALAR environment variable pins the scalar loops regardless.
/// The vector bodies perform the same real multiplies and adds per element
/// as the scalar fast kernel (no FMA contraction), so results stay
/// bit-identical across all three paths. vector_kernel() reports the
/// *effective* state: false when the hardware or build cannot run the
/// vector path, whatever was requested.
void set_vector_kernel(bool on);
bool vector_kernel();

/// Precomputed plan for N-point transforms (N a power of two, N >= 1).
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t log2n() const { return log2n_; }

  /// In-place forward DIT FFT. Returns the operation count.
  OpCount forward(std::span<Complex> data) const;

  /// In-place inverse FFT (scaled by 1/N).
  OpCount inverse(std::span<Complex> data) const;

  /// Blocked forward FFT in k delivery blocks (k a power of two dividing N):
  /// 1. bit-reversal permutation of the whole row (addressing only),
  /// 2. per block b in [0, k): local sub-FFT of the first log2(N/k) stages,
  /// 3. final log2(k) global stages.
  /// `block_ops` (optional, size k) receives per-block op counts; the
  /// returned count is the final phase only. The result equals forward().
  OpCount forward_blocked(std::span<Complex> data, std::size_t k,
                          std::vector<OpCount>* block_ops = nullptr) const;

  /// Runs stages [first_stage, last_stage) on `data` (already bit-reversed).
  /// Stage s in [0, log2 N) has butterfly span 2^s. Exposed so machine
  /// simulators can interleave stage execution with delivery.
  OpCount run_stages(std::span<Complex> data, std::size_t first_stage,
                     std::size_t last_stage, std::size_t block_offset = 0,
                     std::size_t block_size = 0) const;

  /// The original strided radix-2 stage loop, kept as the ground truth the
  /// fast kernel is tested against (and as the slow side of before/after
  /// benchmark pairs). run_stages() dispatches here when fast_kernel() is
  /// off.
  OpCount run_stages_reference(std::span<Complex> data,
                               std::size_t first_stage,
                               std::size_t last_stage,
                               std::size_t block_offset = 0,
                               std::size_t block_size = 0) const;

  /// Bit-reversal permutation of `data` (size N).
  void bit_reverse(std::span<Complex> data) const;

  /// Source index that lands at position i after bit reversal.
  std::size_t bit_reversed_index(std::size_t i) const { return rev_[i]; }

 private:
  OpCount run_stages_fast(std::span<Complex> data, std::size_t first_stage,
                          std::size_t last_stage, std::size_t block_offset,
                          std::size_t block_size) const;

  std::size_t n_;
  std::size_t log2n_;
  std::vector<std::size_t> rev_;
  std::vector<Complex> twiddle_;  // twiddle_[j] = exp(-2*pi*i*j/N), j < N/2
  // Stage-major twiddles for the fast kernel: stage s's 2^s factors start at
  // stage_off_[s], stored as split real/imag arrays so the inner loops read
  // contiguous doubles (SIMD-friendly) instead of striding through twiddle_.
  // Values are copied verbatim from twiddle_, so both kernels multiply by
  // bit-identical factors.
  std::vector<std::size_t> stage_off_;
  std::vector<double> stage_tw_re_;
  std::vector<double> stage_tw_im_;
};

/// O(N^2) reference DFT used to validate the fast paths.
std::vector<Complex> naive_dft(std::span<const Complex> in);
std::vector<Complex> naive_idft(std::span<const Complex> in);

/// Max |a-b| over two sequences; validation helper.
double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b);

}  // namespace psync::fft
