#include "psync/fft/four_step.hpp"

#include <algorithm>

#include <cmath>
#include <numbers>

#include "psync/common/check.hpp"
#include "psync/fft/plan_cache.hpp"
#include "psync/fft/transpose.hpp"

namespace psync::fft {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void four_step_factor(std::size_t n, std::size_t* rows, std::size_t* cols) {
  if (!is_pow2(n) || n < 4) {
    throw SimulationError("four_step_factor: N must be a power of two >= 4");
  }
  std::size_t r = 1;
  while (r * r < n) r *= 2;
  // r*r == n (even log2) or r*r == 2n (odd log2): pick R <= C.
  if (r * r != n) r /= 2;
  *rows = r;
  *cols = n / r;
  PSYNC_CHECK(*rows <= *cols);
}

Complex four_step_twiddle(std::size_t n, std::size_t r, std::size_t q) {
  // Table lookup with the exponent reduced mod N. Reducing before the trig
  // call (instead of evaluating cos/sin at the full angle -2*pi*r*q/N) is
  // both faster and at least as accurate; every consumer of W_N^{rq} —
  // scalar calls, row batches, kernel-VM programs — reads the same shared
  // table, so all paths stay mutually consistent.
  const auto& roots = shared_roots(n);
  return roots[((r % n) * (q % n)) % n];
}

std::vector<Complex> four_step_load(std::span<const Complex> x,
                                    std::size_t rows, std::size_t cols) {
  PSYNC_CHECK(x.size() == rows * cols);
  std::vector<Complex> m(x.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m[r * cols + c] = x[c * rows + r];
    }
  }
  return m;
}

OpCount four_step_pass1(std::span<Complex> matrix, std::size_t rows,
                        std::size_t cols) {
  PSYNC_CHECK(matrix.size() == rows * cols);
  const FftPlan& plan = shared_plan(cols);
  OpCount ops;
  for (std::size_t r = 0; r < rows; ++r) {
    ops += plan.forward(matrix.subspan(r * cols, cols));
  }
  return ops;
}

OpCount four_step_twiddle_rows(std::span<Complex> matrix, std::size_t rows,
                               std::size_t cols, std::size_t row0,
                               std::size_t row_count) {
  PSYNC_CHECK(matrix.size() == rows * cols);
  PSYNC_CHECK(row0 + row_count <= rows);
  const std::size_t n = rows * cols;
  // r*q < rows*cols for r < rows, q < cols, so the table index needs no
  // reduction; one shared_roots fetch amortizes the cache lock per call.
  const auto& roots = shared_roots(n);
  OpCount ops;
  for (std::size_t r = row0; r < row0 + row_count; ++r) {
    Complex* row = matrix.data() + r * cols;
    for (std::size_t q = 0; q < cols; ++q) {
      const Complex w = roots[r * q];
      const double xr = row[q].real();
      const double xi = row[q].imag();
      row[q] = Complex(xr * w.real() - xi * w.imag(),
                       xr * w.imag() + xi * w.real());
    }
  }
  ops.real_mults += 4 * row_count * cols;
  ops.real_adds += 2 * row_count * cols;
  return ops;
}

OpCount four_step_pass2(std::span<Complex> matrix_t, std::size_t rows,
                        std::size_t cols) {
  PSYNC_CHECK(matrix_t.size() == rows * cols);
  const FftPlan& plan = shared_plan(rows);
  OpCount ops;
  for (std::size_t q = 0; q < cols; ++q) {
    ops += plan.forward(matrix_t.subspan(q * rows, rows));
  }
  return ops;
}

std::vector<Complex> four_step_store(std::span<const Complex> matrix_t,
                                     std::size_t rows, std::size_t cols) {
  PSYNC_CHECK(matrix_t.size() == rows * cols);
  // matrix_t is C x R row-major: matrix_t[q][s]; output X[s*C + q].
  std::vector<Complex> out(rows * cols);
  for (std::size_t q = 0; q < cols; ++q) {
    for (std::size_t s = 0; s < rows; ++s) {
      out[s * cols + q] = matrix_t[q * rows + s];
    }
  }
  return out;
}

OpCount fft1d_four_step(std::span<Complex> data) {
  std::size_t rows = 0, cols = 0;
  four_step_factor(data.size(), &rows, &cols);

  std::vector<Complex> m = four_step_load(data, rows, cols);
  OpCount ops = four_step_pass1(m, rows, cols);
  ops += four_step_twiddle_rows(m, rows, cols, 0, rows);

  std::vector<Complex> mt(m.size());
  transpose(m, mt, rows, cols);
  ops += four_step_pass2(mt, rows, cols);

  const auto out = four_step_store(mt, rows, cols);
  std::copy(out.begin(), out.end(), data.begin());
  return ops;
}

}  // namespace psync::fft
