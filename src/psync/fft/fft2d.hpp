// 2D FFT built from 1D row FFTs and a transpose, mirroring the distributed
// flow the paper maps onto both architectures (Section V-B):
//   row FFTs -> transpose -> row FFTs (-> optional transpose back).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "psync/fft/fft.hpp"

namespace psync::fft {

struct Fft2dOps {
  OpCount row_pass;
  OpCount col_pass;
  OpCount total() const {
    OpCount t = row_pass;
    t += col_pass;
    return t;
  }
};

/// In-place 2D FFT of a row-major rows x cols matrix via the
/// row-transpose-row method. When `restore_layout` is true a final
/// transpose returns the result to natural (row-major, untransposed)
/// orientation; when false the result is left transposed (cols x rows),
/// which is how the distributed flow leaves it in DRAM.
Fft2dOps fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols,
               bool restore_layout = true);

/// Reference 2D DFT (O(n^2) per dimension) for validation on small sizes.
std::vector<Complex> naive_dft2d(std::span<const Complex> in,
                                 std::size_t rows, std::size_t cols);

}  // namespace psync::fft
