// Process-wide cache of immutable FFT plans, keyed by transform size.
//
// An FftPlan is read-only after construction (bit-reversal table + twiddle
// factors), so one instance can serve any number of concurrent transforms.
// Before this cache existed every Processor row/column pass rebuilt the
// twiddle tables from scratch — O(N) trig per pass — which both wasted time
// and made parallel sweep runs allocate identical tables per thread.
//
// Plans are built once under a mutex, never evicted, and never moved: the
// returned reference is stable for the life of the process, so callers may
// hold it across phases and threads may share it freely.
#pragma once

#include <cstddef>

#include "psync/fft/fft.hpp"

namespace psync::fft {

/// The shared plan for N-point transforms (N a power of two; throws
/// SimulationError otherwise, same as the FftPlan constructor). Thread-safe.
const FftPlan& shared_plan(std::size_t n);

/// Number of distinct sizes currently cached (for tests/benchmarks).
std::size_t shared_plan_cache_size();

}  // namespace psync::fft
