// Process-wide cache of immutable FFT plans, keyed by transform size.
//
// An FftPlan is read-only after construction (bit-reversal table + twiddle
// factors), so one instance can serve any number of concurrent transforms.
// Before this cache existed every Processor row/column pass rebuilt the
// twiddle tables from scratch — O(N) trig per pass — which both wasted time
// and made parallel sweep runs allocate identical tables per thread.
//
// Plans are built once under a mutex, never evicted, and never moved: the
// returned reference is stable for the life of the process, so callers may
// hold it across phases and threads may share it freely.
#pragma once

#include <cstddef>

#include "psync/fft/fft.hpp"

namespace psync::fft {

/// The shared plan for N-point transforms (N a power of two; throws
/// SimulationError otherwise, same as the FftPlan constructor). Thread-safe.
const FftPlan& shared_plan(std::size_t n);

/// Number of distinct sizes currently cached (for tests/benchmarks).
std::size_t shared_plan_cache_size();

/// The shared table of all N complex roots of unity for size N:
/// roots[j] = exp(-2*pi*i*j/N). Built once per size, never evicted; the
/// returned reference is stable for the life of the process. Thread-safe.
/// Backing store for four_step_twiddle and the machine twiddle phases,
/// which index this table instead of calling cos/sin per element.
const std::vector<Complex>& shared_roots(std::size_t n);

}  // namespace psync::fft
