#include "psync/fft/fft2d.hpp"

#include <algorithm>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/fft/plan_cache.hpp"
#include "psync/fft/transpose.hpp"

namespace psync::fft {

Fft2dOps fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols,
               bool restore_layout) {
  PSYNC_CHECK(data.size() == rows * cols);
  Fft2dOps ops;

  const FftPlan& row_plan = shared_plan(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    ops.row_pass += row_plan.forward(data.subspan(r * cols, cols));
  }

  std::vector<Complex> scratch(data.size());
  transpose(data, scratch, rows, cols);  // scratch is cols x rows

  const FftPlan& col_plan = shared_plan(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    ops.col_pass += col_plan.forward(
        std::span<Complex>(scratch).subspan(c * rows, rows));
  }

  if (restore_layout) {
    transpose(scratch, data, cols, rows);
  } else {
    std::copy(scratch.begin(), scratch.end(), data.begin());
  }
  return ops;
}

std::vector<Complex> naive_dft2d(std::span<const Complex> in,
                                 std::size_t rows, std::size_t cols) {
  PSYNC_CHECK(in.size() == rows * cols);
  // Rows first.
  std::vector<Complex> tmp(in.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = naive_dft(in.subspan(r * cols, cols));
    std::copy(row.begin(), row.end(), tmp.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  // Then columns.
  std::vector<Complex> out(in.size());
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = tmp[r * cols + c];
    const auto f = naive_dft(col);
    for (std::size_t r = 0; r < rows; ++r) out[r * cols + c] = f[r];
  }
  return out;
}

}  // namespace psync::fft
