// StreamingMerger: the live, in-order view of a distributed sweep.
//
// The batch merge (merge.hpp) runs once at the end over the journal
// files — it is the truth the final SweepResult comes from. This class is
// its streaming twin: the supervisor offers journal records as they land
// (off the socket, or tailed from a pipe-mode shard journal) in whatever
// order shards produce them, and the merger emits the longest contiguous
// grid-order prefix to its sink. Subscribers of a served campaign see
// partial tables grow front-to-back while late shards still compute,
// instead of waiting for the last one.
//
// Dedup semantics mirror merge_journals exactly: first record per index
// wins, a later duplicate that agrees on status is tolerated and counted
// (retransmitted frames, a steal overlap), a disagreeing duplicate throws
// JournalConflictError — better a loud failure than silently picking one
// of two contradictory results.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "psync/driver/workload.hpp"

namespace psync::dist {

class StreamingMerger {
 public:
  using Emit = std::function<void(std::size_t, const driver::RunRecord&)>;

  /// `grid` is the full sweep size; `emit` receives (index, record) in
  /// strictly ascending index order. `emit` may be empty (count-only).
  StreamingMerger(std::size_t grid, Emit emit);

  /// Offer one record (any arrival order). Returns true when the record
  /// was fresh — first seen for its index. Throws JournalConflictError on
  /// an out-of-grid index or a status-disagreeing duplicate.
  bool offer(const driver::RunRecord& rec);

  /// Indices [0, emitted()) have been delivered to the sink.
  [[nodiscard]] std::size_t emitted() const { return next_; }
  /// Fresh records seen so far (emitted + held).
  [[nodiscard]] std::size_t arrived() const { return arrived_; }
  /// Records waiting on a lower-index gap.
  [[nodiscard]] std::size_t held() const { return held_.size(); }
  /// Agreeing duplicates tolerated.
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }

 private:
  std::size_t grid_;
  Emit emit_;
  std::size_t next_ = 0;
  std::size_t arrived_ = 0;
  std::size_t duplicates_ = 0;
  std::vector<char> seen_;
  std::vector<driver::PointStatus> status_;  // for post-emit dup checks
  std::map<std::size_t, driver::RunRecord> held_;
};

}  // namespace psync::dist
