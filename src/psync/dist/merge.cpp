#include "psync/dist/merge.hpp"

#include <algorithm>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"

namespace psync::dist {

MergedJournal merge_journals(const std::vector<driver::RunPoint>& points,
                             const std::string& workload,
                             std::vector<std::string> paths) {
  // Sorted paths make "first record wins" a deterministic rule rather than
  // an accident of supervisor scheduling.
  std::sort(paths.begin(), paths.end());

  MergedJournal merged;
  merged.records.resize(points.size());
  merged.present.assign(points.size(), 0);

  for (const auto& path : paths) {
    for (const auto& line : read_journal_lines(path)) {
      driver::JournalEntry entry;
      if (!driver::parse_journal_line(line, &entry)) {
        throw JournalCorruptError("journal merge: corrupt line in '" + path +
                                  "'");
      }
      const std::size_t idx = entry.rec.index;
      if (idx >= points.size()) {
        throw JournalConflictError(
            "journal merge: '" + path + "' records point " +
            std::to_string(idx) + " outside this sweep's grid of " +
            std::to_string(points.size()) + " point(s)");
      }
      if (entry.seed != points[idx].seed || entry.rec.workload != workload) {
        throw JournalConflictError(
            "journal merge: '" + path + "' point " + std::to_string(idx) +
            " does not match this sweep (seed/workload differ); refusing to "
            "mix campaigns");
      }
      if (merged.present[idx] != 0) {
        // Legitimate duplicate: a straggler finished a point after its
        // remaining range was stolen, so the thief's journal re-records it.
        // Both are re-derivations of the same deterministic point, so their
        // verdicts must agree; wall-clock and retry counts may differ and
        // are not output-bearing.
        if (entry.rec.status != merged.records[idx].status) {
          throw JournalConflictError(
              "journal merge: point " + std::to_string(idx) +
              " recorded with conflicting status ('" +
              driver::to_string(entry.rec.status) + "' in '" + path +
              "' vs '" + driver::to_string(merged.records[idx].status) +
              "' seen earlier)");
        }
        ++merged.duplicates;
        continue;
      }
      merged.records[idx] = std::move(entry.rec);
      merged.present[idx] = 1;
    }
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (merged.present[i] == 0) merged.missing.push_back(i);
  }
  return merged;
}

}  // namespace psync::dist
