#include "psync/dist/stream_merge.hpp"

#include <utility>

#include "psync/common/check.hpp"

namespace psync::dist {

StreamingMerger::StreamingMerger(std::size_t grid, Emit emit)
    : grid_(grid),
      emit_(std::move(emit)),
      seen_(grid, 0),
      status_(grid, driver::PointStatus::kOk) {}

bool StreamingMerger::offer(const driver::RunRecord& rec) {
  const std::size_t idx = rec.index;
  if (idx >= grid_) {
    throw JournalConflictError(
        "streaming merge: record index " + std::to_string(idx) +
        " outside the sweep grid of " + std::to_string(grid_) + " points");
  }
  if (seen_[idx] != 0) {
    if (status_[idx] != rec.status) {
      throw JournalConflictError(
          "streaming merge: two records for point " + std::to_string(idx) +
          " disagree on status (" +
          std::string(driver::to_string(status_[idx])) + " vs " +
          std::string(driver::to_string(rec.status)) + ")");
    }
    ++duplicates_;
    return false;
  }
  seen_[idx] = 1;
  status_[idx] = rec.status;
  ++arrived_;
  if (idx != next_) {
    held_.emplace(idx, rec);
    return true;
  }
  // Contiguous prefix grows: emit this record, then drain every held
  // record it unblocked.
  if (emit_) emit_(next_, rec);
  ++next_;
  auto it = held_.begin();
  while (it != held_.end() && it->first == next_) {
    if (emit_) emit_(next_, it->second);
    ++next_;
    it = held_.erase(it);
  }
  return true;
}

}  // namespace psync::dist
