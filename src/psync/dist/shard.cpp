#include "psync/dist/shard.hpp"

#include <algorithm>

namespace psync::dist {

std::vector<ShardRange> plan_shards(std::size_t points, std::size_t workers) {
  return split_range(ShardRange{0, points}, std::max<std::size_t>(workers, 1));
}

std::vector<ShardRange> split_range(const ShardRange& range,
                                    std::size_t pieces) {
  std::vector<ShardRange> out;
  const std::size_t n = range.size();
  if (n == 0) return out;
  pieces = std::clamp<std::size_t>(pieces, 1, n);
  const std::size_t base = n / pieces;
  const std::size_t extra = n % pieces;
  std::size_t at = range.begin;
  for (std::size_t i = 0; i < pieces; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  return out;
}

std::string shard_journal_path(const std::string& base, std::size_t shard,
                               std::size_t steal_chunk) {
  std::string path = base + ".shard" + std::to_string(shard);
  if (steal_chunk > 0) path += ".steal" + std::to_string(steal_chunk);
  return path + ".jsonl";
}

}  // namespace psync::dist
