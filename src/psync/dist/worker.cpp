#include "psync/dist/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/dist/heartbeat.hpp"
#include "psync/dist/transport.hpp"
#include "psync/driver/campaign.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"

namespace psync::dist {

namespace {

// Process-wide shutdown token for worker processes. SIGTERM (the leader
// reclaiming a straggler's range, or an operator) and SIGINT both request
// a graceful wind-down: finish/abandon at the next cycle-batch boundary,
// leave the journal tail durable, exit kWorkerExitCancelled. In socket
// mode the link also cancels this token when the leader fences the
// worker's epoch — same wind-down, exit kWorkerExitFenced.
CancelToken g_worker_cancel;

void worker_signal_handler(int /*signo*/) { g_worker_cancel.cancel(); }

void install_worker_signals() {
  struct sigaction sa = {};
  sa.sa_handler = worker_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A dead leader surfaces as EPIPE on the heartbeat write (handled by the
  // link), never as a fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
}

// Observer layered over the heartbeat emitter that applies the
// fault-injection hooks. The crash fires *after* the start heartbeat goes
// out, so the leader's liveness bookkeeping has seen the in-flight index —
// exactly what a real mid-point crash looks like on the wire.
class FaultHookObserver final : public driver::PointObserver {
 public:
  FaultHookObserver(HeartbeatEmitter* emitter, const WorkerConfig& cfg)
      : emitter_(emitter), cfg_(cfg) {}

  void on_point_start(std::size_t index) override {
    emitter_->on_point_start(index);
    const auto idx = static_cast<std::int64_t>(index);
    if (cfg_.crash_on_index == idx) {
      // Simulated hard crash: no unwinding, no journal line, no exit
      // handlers — indistinguishable from SIGKILL for the supervisor.
      ::_exit(kWorkerExitInjectedCrash);
    }
    if (cfg_.stall_on_index == idx) {
      // Simulated wedge: silence the timer thread, then hang. The leader
      // must notice the quiet channel and SIGKILL us.
      emitter_->stop();
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
  }

  void on_point_done(std::size_t index, driver::PointStatus status) override {
    emitter_->on_point_done(index, status);
  }

 private:
  HeartbeatEmitter* const emitter_;
  const WorkerConfig& cfg_;
};

/// Socket mode: stream every completed point's journal line to the
/// leader as the campaign produces events, then drain and flush. The
/// event log is the bridge — Session::execute publishes each record
/// after its (leader-side, in our case nonexistent) journal write, in
/// completion order, so the shipped stream carries exactly the lines a
/// local JournalWriter would have appended.
void ship_journal_stream(driver::CampaignHandle& handle,
                         const std::vector<driver::RunPoint>& points,
                         SocketWorkerLink* link) {
  std::size_t cursor = 0;
  std::vector<driver::CampaignEvent> events;
  for (;;) {
    events.clear();
    cursor = handle.events_since(cursor, 50.0, &events);
    for (const auto& ev : events) {
      link->send_journal(
          ev.index, driver::journal_line(ev.record, points[ev.index].seed,
                                         points[ev.index].digest));
    }
    if (handle.done() && events.empty()) break;
    if (link->fenced()) break;  // the campaign is being cancelled anyway
  }
}

/// Post-run flush: keep pumping until the leader acked every record or
/// the budget runs out. Exiting with unacked records is safe — the leader
/// treats an incomplete journal as undone work and re-runs it — this just
/// avoids that re-run in the common case of a transient disconnect.
void flush_unacked(SocketWorkerLink* link, double heartbeat_ms) {
  const double budget_ms =
      std::max(2000.0, heartbeat_ms > 0.0 ? 100.0 * heartbeat_ms : 0.0);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(budget_ms));
  while (link->unacked() > 0 && !link->fenced() &&
         std::chrono::steady_clock::now() < deadline) {
    (void)link->flush(50.0);
  }
}

}  // namespace

int run_worker(driver::ExperimentSpec spec, const WorkerConfig& cfg) {
  install_worker_signals();
  g_worker_cancel.reset();
  const bool socket_mode = !cfg.connect_host.empty();

  std::unique_ptr<SocketWorkerLink> socket_link;
  std::unique_ptr<PipeWorkerLink> pipe_link;
  WorkerLink* link = nullptr;
  try {
    if (socket_mode) {
      SocketLinkOptions lopts;
      lopts.host = cfg.connect_host;
      lopts.port = cfg.connect_port;
      lopts.shard = cfg.shard;
      lopts.epoch = cfg.epoch;
      // Jitter seed: decorrelate reconnect schedules across shards and
      // generations so one partition's survivors don't stampede back in
      // lockstep.
      lopts.reconnect_seed =
          0x9E3779B97F4A7C15ULL ^ (cfg.epoch * 0x2545F4914F6CDD1DULL + 1) ^
          (static_cast<std::uint64_t>(cfg.shard) << 32);
      lopts.chaos = cfg.chaos;
      socket_link = std::make_unique<SocketWorkerLink>(lopts, &g_worker_cancel);
      link = socket_link.get();
    } else {
      pipe_link =
          std::make_unique<PipeWorkerLink>(cfg.heartbeat_fd, &g_worker_cancel);
      link = pipe_link.get();
    }

    HeartbeatEmitter emitter(link, cfg.shard, cfg.heartbeat_ms);
    FaultHookObserver observer(&emitter, cfg);

    spec.shard_begin = cfg.range.begin;
    spec.shard_end = cfg.range.end;
    if (socket_mode) {
      // No local journal: the leader appends shipped records to the shard
      // journal on its side of the wire. Restart resume happens by the
      // leader narrowing cfg.range to the undone suffix.
      spec.journal_path.clear();
      spec.resume = false;
    } else {
      spec.journal_path = cfg.journal_path;
      spec.resume = true;  // a fresh journal resumes trivially; a restarted
                           // worker picks up where its predecessor died
    }
    spec.quarantine_indices = cfg.quarantine;
    spec.cancel = &g_worker_cancel;
    spec.observer = &observer;

    // Submit through the Session API and join: same executor as the
    // serial path, but the validate/freeze phase runs before the shard
    // journal is touched.
    driver::Session session;
    driver::FrozenSpec frozen = driver::Session::freeze(spec);
    const std::vector<driver::RunPoint> points = frozen.points;
    auto handle = session.submit(std::move(frozen));
    if (socket_mode) {
      ship_journal_stream(handle, points, socket_link.get());
    }
    handle.wait();
    (void)handle.result();  // rethrows on failure/cancel
    if (socket_mode) flush_unacked(socket_link.get(), cfg.heartbeat_ms);
    return kWorkerExitOk;
  } catch (const CancelledError&) {
    if (link != nullptr && link->fenced()) return kWorkerExitFenced;
    if (socket_link != nullptr) {
      // A SIGTERMed straggler still owes the leader whatever it finished
      // (a steal reclaim reads the journal to split the remainder).
      flush_unacked(socket_link.get(), cfg.heartbeat_ms);
      if (socket_link->fenced()) return kWorkerExitFenced;
    }
    return kWorkerExitCancelled;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync worker (shard %zu): %s\n", cfg.shard,
                 e.what());
    return kWorkerExitError;
  }
}

}  // namespace psync::dist
