#include "psync/dist/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "psync/common/check.hpp"
#include "psync/dist/heartbeat.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"

namespace psync::dist {

namespace {

// Process-wide shutdown token for worker processes. SIGTERM (the leader
// reclaiming a straggler's range, or an operator) and SIGINT both request
// a graceful wind-down: finish/abandon at the next cycle-batch boundary,
// leave the journal tail durable, exit kWorkerExitCancelled.
CancelToken g_worker_cancel;

void worker_signal_handler(int /*signo*/) { g_worker_cancel.cancel(); }

void install_worker_signals() {
  struct sigaction sa = {};
  sa.sa_handler = worker_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A dead leader surfaces as EPIPE on the heartbeat write (handled by the
  // emitter), never as a fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
}

// Observer layered over the heartbeat emitter that applies the
// fault-injection hooks. The crash fires *after* the start heartbeat goes
// out, so the leader's liveness bookkeeping has seen the in-flight index —
// exactly what a real mid-point crash looks like on the wire.
class FaultHookObserver final : public driver::PointObserver {
 public:
  FaultHookObserver(HeartbeatEmitter* emitter, const WorkerConfig& cfg)
      : emitter_(emitter), cfg_(cfg) {}

  void on_point_start(std::size_t index) override {
    emitter_->on_point_start(index);
    const auto idx = static_cast<std::int64_t>(index);
    if (cfg_.crash_on_index == idx) {
      // Simulated hard crash: no unwinding, no journal line, no exit
      // handlers — indistinguishable from SIGKILL for the supervisor.
      ::_exit(kWorkerExitInjectedCrash);
    }
    if (cfg_.stall_on_index == idx) {
      // Simulated wedge: silence the timer thread, then hang. The leader
      // must notice the quiet pipe and SIGKILL us.
      emitter_->stop();
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
  }

  void on_point_done(std::size_t index, driver::PointStatus status) override {
    emitter_->on_point_done(index, status);
  }

 private:
  HeartbeatEmitter* const emitter_;
  const WorkerConfig& cfg_;
};

}  // namespace

int run_worker(driver::ExperimentSpec spec, const WorkerConfig& cfg) {
  install_worker_signals();
  g_worker_cancel.reset();

  try {
    HeartbeatEmitter emitter(cfg.heartbeat_fd, cfg.shard, cfg.heartbeat_ms,
                             &g_worker_cancel);
    FaultHookObserver observer(&emitter, cfg);

    spec.shard_begin = cfg.range.begin;
    spec.shard_end = cfg.range.end;
    spec.journal_path = cfg.journal_path;
    spec.resume = true;  // a fresh journal resumes trivially; a restarted
                         // worker picks up where its predecessor died
    spec.quarantine_indices = cfg.quarantine;
    spec.cancel = &g_worker_cancel;
    spec.observer = &observer;

    // Submit through the Session API and join: same executor as the
    // serial path, but the validate/freeze phase runs before the shard
    // journal is touched.
    driver::Session session;
    auto handle = session.submit(spec);
    handle.wait();
    (void)handle.result();  // rethrows on failure/cancel
    return kWorkerExitOk;
  } catch (const CancelledError&) {
    return kWorkerExitCancelled;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psync worker (shard %zu): %s\n", cfg.shard,
                 e.what());
    return kWorkerExitError;
  }
}

}  // namespace psync::dist
