// The sweep leader: shards one ExperimentSpec grid across worker
// *processes* and survives their deaths.
//
// Supervision model, in one paragraph: the grid is cut into contiguous
// ranges (shard.hpp), each range is an *assignment* with its own
// checkpoint journal, and `workers` process seats execute assignments.
// Every worker heartbeats over its transport (heartbeat.hpp over an
// inherited pipe, or framed over TCP — transport.hpp); silence longer
// than the liveness timeout means the process is wedged and it is
// SIGKILLed. A dead or wedged worker's assignment is relaunched in place
// with decorrelated-jitter backoff, resuming its journal, so only the
// points that were never durably recorded re-run. A point that kills its
// worker K launches in a row is quarantined — recorded as
// kQuarantined/worker_crash — instead of being allowed to crash-loop the
// sweep. When a seat runs out of work it steals: the straggler with the
// most unfinished points is asked to stop (SIGTERM -> graceful exit), its
// unfinished suffix is re-partitioned across the idle seats, and each
// stolen chunk gets its own `.steal<k>` journal. At the end every journal
// the run produced — including those left by SIGKILLed workers — is merged
// (merge.hpp) into one grid-order SweepResult.
//
// The socket transport (TransportKind::kSocket) moves the journal to the
// leader's side of the wire: workers stream each completed point's
// journal line over TCP, the leader appends it to the local per-shard
// journal (fsync before ack — journal remains truth), dedups
// retransmissions by grid index, and *fences* zombie workers by lease
// epoch: every launch gets a fresh epoch, the epoch is revoked when the
// leader moves on (relaunch after connection loss, steal reclaim, exit),
// and a worker reconnecting with a revoked epoch is refused before it can
// write a single record. Connection loss is its own failure class
// (kConnectionLost): a disconnected worker that stays silent past the
// liveness window is presumed partitioned — it is *not* killed (the
// process may be unreachable, not dead); its shard is relaunched and the
// fence keeps the survivor out.
//
// Determinism: per-point seeds come from the global grid index and merged
// records are journal round-trips, so the rendered JSON/CSV is
// byte-identical to a single-process serial run no matter how many workers
// died along the way. All supervision accounting (restarts, steals,
// reconnects, fences, incident list) lives in the non-serialized
// CampaignReport fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "psync/common/cancel.hpp"
#include "psync/dist/transport.hpp"
#include "psync/dist/worker.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"

namespace psync::dist {

struct SupervisorOptions {
  /// Worker process seats (and initial shard count). 0 is treated as 1.
  std::size_t workers = 2;

  /// Channel the leader drives its workers over. kPipe is PR 6 unchanged
  /// (inherited heartbeat pipe, workers journal to the shared
  /// filesystem); kSocket listens on TCP, workers dial back, and journal
  /// records ship to the leader (transport.hpp).
  TransportKind transport = TransportKind::kPipe;
  /// Socket transport: where the leader listens (port 0 = ephemeral) and
  /// the host workers are told to dial. advertise_host defaults to
  /// listen_host — set it when workers run on other machines and must
  /// dial a routable address rather than the bind address.
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  std::string advertise_host;

  /// Streaming merge sink: called with (index, record) in strictly
  /// ascending grid order as completed points become contiguous
  /// (stream_merge.hpp), while later shards still compute. Socket mode
  /// feeds it straight off the journal frames; pipe mode tails the shard
  /// journal files (only when the sink is set, so the plain pipe path
  /// stays zero-overhead). The final SweepResult still comes from the
  /// end-of-run journal merge — this is a live view, not a second truth.
  std::function<void(std::size_t, const driver::RunRecord&)> on_record;

  /// Worker heartbeat interval; liveness timeout is
  /// heartbeat_ms * liveness_factor (a worker is presumed wedged — and
  /// SIGKILLed — after that much silence). The factor leaves room for
  /// scheduler jitter; with a 100 ms beat a worker must go a full second
  /// without any traffic before it is declared dead.
  double heartbeat_ms = 100.0;
  double liveness_factor = 10.0;

  /// Restart policy per assignment: relaunch n waits a decorrelated-
  /// jitter draw (backoff.hpp) from [restart_backoff_ms,
  /// min(restart_backoff_max_ms, 3 * previous wait)] — first relaunch
  /// waits exactly restart_backoff_ms. After max_restarts an assignment
  /// is abandoned and its unfinished points are reported as
  /// kFailed/worker_crash instead of looping forever.
  double restart_backoff_ms = 50.0;
  double restart_backoff_max_ms = 2000.0;
  std::size_t max_restarts = 5;
  /// Seed of the restart jitter (mixed with the seat index so seats never
  /// share a schedule). Fixed default keeps runs reproducible.
  std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ULL;

  /// Quarantine a grid point after this many consecutive worker crashes
  /// with that point in flight (the crash analogue of PointGuard's retry
  /// budget; uses the same taxonomy via kWorkerCrash).
  std::size_t crash_quarantine_after = 3;

  /// Work stealing: an idle seat may reclaim the unfinished suffix of the
  /// busiest running seat, but only when at least min_steal_points remain
  /// (smaller remainders finish faster than a SIGTERM round-trip).
  bool steal = true;
  std::size_t min_steal_points = 4;
  /// How long a SIGTERMed straggler gets to flush and exit before SIGKILL.
  double term_grace_ms = 5000.0;

  /// Shard journals are "<journal_base>.shard<i>[.steal<k>].jsonl"
  /// (shard.hpp). Required — the journals *are* the crash-safety story.
  std::string journal_base;

  /// SweepEngine threads inside each worker (default 1: ascending-order
  /// execution keeps a shard's unfinished remainder a contiguous suffix,
  /// which is what makes stealing cheap).
  std::size_t worker_threads = 1;

  /// Leader-side graceful shutdown (SIGTERM/SIGINT handler token):
  /// once cancelled the leader SIGTERMs every worker, waits for the grace
  /// period, reaps, and throws CancelledError — all journal tails durable.
  const CancelToken* cancel = nullptr;
};

/// Runs in the forked child, never returns control flow to the leader:
/// either executes the shard in-process (default: run_worker) or execs a
/// fresh binary (psync_sim's `--worker-shard` / `--connect` modes, or a
/// launch template that ships the worker to another host). Its return
/// value becomes the child's exit code.
using WorkerBody =
    std::function<int(const driver::ExperimentSpec&, const WorkerConfig&)>;

/// Leader-side hook applied to each WorkerConfig just before fork — how
/// tests and the fault smokes inject crash_on_index / stall_on_index /
/// chaos options for specific shards and generations. May be empty.
using LaunchHook = std::function<void(WorkerConfig&)>;

/// Execute `spec`'s sweep across worker processes and merge the shard
/// journals into one grid-order SweepResult. Throws ConfigError for a
/// missing journal_base, CancelledError on leader shutdown, and the merge
/// layer's typed errors if the journals are corrupt or mismatched.
driver::SweepResult run_distributed(const driver::ExperimentSpec& spec,
                                    const SupervisorOptions& opts,
                                    const WorkerBody& body = {},
                                    const LaunchHook& hook = {});

/// Adapt run_distributed into a driver::CampaignExecutor, so a Session —
/// and therefore the serve daemon — executes submitted campaigns across
/// worker processes instead of an in-process thread pool. Per campaign:
/// `opts.journal_base` defaults to "<spec.journal_path>.dist" (or a
/// digest-named path under /tmp when the spec has no journal), the
/// campaign's cancel token becomes the leader shutdown token, and the
/// streaming merge feeds each contiguous record to the campaign's event
/// stream while the sweep still runs — subscribers see partial results
/// live. Records the stream never carried (abandoned-shard back-fill)
/// are emitted after the merge, so every point is published exactly once.
driver::CampaignExecutor distributed_executor(SupervisorOptions opts);

}  // namespace psync::dist
