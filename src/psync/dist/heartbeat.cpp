#include "psync/dist/heartbeat.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "psync/dist/transport.hpp"

namespace psync::dist {

namespace {

char kind_char(Heartbeat::Kind kind) {
  switch (kind) {
    case Heartbeat::Kind::kProgress: return 'p';
    case Heartbeat::Kind::kPointStart: return 's';
    case Heartbeat::Kind::kPointDone: return 'd';
  }
  return '?';
}

}  // namespace

std::string heartbeat_line(const Heartbeat& hb) {
  std::string line = "hb ";
  line += std::to_string(hb.shard);
  line += ' ';
  line += kind_char(hb.kind);
  line += ' ';
  line += std::to_string(hb.points_done);
  line += ' ';
  line += hb.inflight < 0 ? std::string("-") : std::to_string(hb.inflight);
  return line;
}

bool parse_heartbeat_line(const std::string& line, Heartbeat* out) {
  // "hb <shard> <kind> <done> <inflight>" — strict: exactly five fields,
  // single spaces, decimal numbers. Anything else is noise off the pipe.
  const char* p = line.c_str();
  if (line.size() < 3 || p[0] != 'h' || p[1] != 'b' || p[2] != ' ') {
    return false;
  }
  p += 3;
  Heartbeat hb;
  char* endp = nullptr;
  errno = 0;
  const unsigned long long shard = std::strtoull(p, &endp, 10);
  if (endp == p || errno != 0 || *endp != ' ') return false;
  hb.shard = static_cast<std::size_t>(shard);
  p = endp + 1;
  switch (*p) {
    case 'p': hb.kind = Heartbeat::Kind::kProgress; break;
    case 's': hb.kind = Heartbeat::Kind::kPointStart; break;
    case 'd': hb.kind = Heartbeat::Kind::kPointDone; break;
    default: return false;
  }
  if (p[1] != ' ') return false;
  p += 2;
  errno = 0;
  const unsigned long long done = std::strtoull(p, &endp, 10);
  if (endp == p || errno != 0 || *endp != ' ') return false;
  hb.points_done = done;
  p = endp + 1;
  if (p[0] == '-' && p[1] == '\0') {
    hb.inflight = -1;
  } else {
    errno = 0;
    const unsigned long long inflight = std::strtoull(p, &endp, 10);
    if (endp == p || errno != 0 || *endp != '\0') return false;
    hb.inflight = static_cast<std::int64_t>(inflight);
  }
  *out = hb;
  return true;
}

HeartbeatEmitter::HeartbeatEmitter(WorkerLink* link, std::size_t shard,
                                   double interval_ms)
    : link_(link), shard_(shard), interval_ms_(interval_ms) {
  if (link_ != nullptr && interval_ms_ > 0.0) {
    timer_ = std::thread([this] { timer_loop(); });
  }
}

HeartbeatEmitter::~HeartbeatEmitter() { stop(); }

void HeartbeatEmitter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

std::uint64_t HeartbeatEmitter::points_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void HeartbeatEmitter::on_point_start(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_ = static_cast<std::int64_t>(index);
  emit_locked(Heartbeat::Kind::kPointStart);
}

void HeartbeatEmitter::on_point_done(std::size_t index,
                                     driver::PointStatus /*status*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ == static_cast<std::int64_t>(index)) inflight_ = -1;
  ++done_;
  emit_locked(Heartbeat::Kind::kPointDone);
}

void HeartbeatEmitter::timer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double, std::milli>(interval_ms_);
  while (!stopped_) {
    cv_.wait_for(lock, interval);
    if (stopped_) return;
    emit_locked(Heartbeat::Kind::kProgress);
  }
}

void HeartbeatEmitter::emit_locked(Heartbeat::Kind kind) {
  if (link_ == nullptr || link_dead_) return;
  Heartbeat hb;
  hb.shard = shard_;
  hb.kind = kind;
  hb.points_done = done_;
  hb.inflight = inflight_;
  // The link owns delivery and death: a pipe link fails (and cancels the
  // worker) when the leader is gone, a socket link absorbs outages by
  // reconnecting and only reports false once this epoch is fenced.
  if (!link_->send_heartbeat(hb)) link_dead_ = true;
}

}  // namespace psync::dist
