// ChaosTransport: deterministic, seeded fault injection at frame
// granularity for the socket transport.
//
// The decorator sits on a worker link's *outbound* path: every frame the
// link wants to transmit is offered to the injector, which may drop it,
// duplicate it, delay it, or hold it to reorder with the next one — and on
// a schedule, sever the connection entirely and refuse reconnects for a
// window (a network partition). All decisions come from one psync::Rng
// stream, so a given seed replays the identical fault sequence: the chaos
// tests and the net-chaos-smoke CI job are reproducible, not flaky.
//
// The correctness claim under test is end-to-end: journal records are
// acked and retransmitted, the leader dedups, epochs fence zombies — so
// the merged sweep output stays byte-identical to a serial run no matter
// what this injector does. Heartbeats get no retransmission on purpose
// (they are liveness samples; dropping them IS the fault being modeled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/dist/frame.hpp"

namespace psync::dist {

struct ChaosOptions {
  /// Master switch: 0 disables every fault below (the default link).
  std::uint64_t seed = 0;
  /// Per-frame probabilities, each drawn independently in order
  /// drop -> duplicate -> reorder -> delay.
  double drop = 0.0;       // frame silently discarded
  double duplicate = 0.0;  // frame transmitted twice
  double reorder = 0.0;    // frame held, emitted after the next one
  double delay = 0.0;      // frame held for delay_ms
  double delay_ms = 20.0;
  /// Partition schedule: after this many offered frames (0 = never) the
  /// connection is severed and reconnects are refused for partition_ms.
  std::size_t partition_after = 0;
  double partition_ms = 0.0;
  /// Re-arm the partition every partition_after frames instead of firing
  /// once.
  bool partition_repeat = false;
};

class ChaosTransport {
 public:
  explicit ChaosTransport(const ChaosOptions& opts);

  [[nodiscard]] bool enabled() const { return opts_.seed != 0; }

  /// Run one outbound frame through the injector. Returns the frames to
  /// put on the wire *now* (possibly none, possibly several — a held
  /// reorder predecessor rides along with its successor). `now_ms` is any
  /// monotonic millisecond clock; only differences matter.
  std::vector<Frame> offer(const Frame& frame, double now_ms);

  /// Delayed frames whose release time has passed; call periodically.
  std::vector<Frame> due(double now_ms);

  /// True exactly once per armed partition: the caller must sever the
  /// connection now. Checking is what consumes the trigger.
  bool take_partition(double now_ms);
  /// While a partition heals, connection attempts must fail.
  [[nodiscard]] bool partitioned(double now_ms) const;

  // Injection accounting, for tests and the smoke harness's stderr.
  [[nodiscard]] std::size_t offered() const { return offered_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::size_t reordered() const { return reordered_; }
  [[nodiscard]] std::size_t delayed() const { return delayed_; }
  [[nodiscard]] std::size_t partitions() const { return partitions_; }

 private:
  struct Held {
    Frame frame;
    double release_ms = 0.0;
  };

  ChaosOptions opts_;
  Rng rng_;
  std::vector<Held> delayed_frames_;
  bool have_reorder_hold_ = false;
  Frame reorder_hold_;
  bool partition_armed_ = false;   // threshold crossed, not yet taken
  double partition_heal_ms_ = -1.0;
  std::size_t frames_since_partition_ = 0;
  std::size_t offered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t reordered_ = 0;
  std::size_t delayed_ = 0;
  std::size_t partitions_ = 0;
};

}  // namespace psync::dist
