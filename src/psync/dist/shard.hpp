// Shard planning for distributed sweeps: how one sweep grid is cut into
// contiguous per-worker ranges, and how shard checkpoint journals are
// named. Pure functions — the supervisor owns all runtime state.
//
// Ranges are contiguous because workers execute their window in ascending
// grid order (threads = 1 per worker by default), which makes "the
// unfinished remainder of a shard" a suffix — the property the
// work-stealing re-partitioner leans on. Correctness never depends on it:
// the journal merger dedupes and validates by global index.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace psync::dist {

/// Half-open window [begin, end) of global sweep-grid indices.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool contains(std::size_t index) const {
    return index >= begin && index < end;
  }
};

/// Partition `points` grid indices into at most `workers` contiguous,
/// non-empty, gap-free ranges covering [0, points). The first
/// `points % workers` shards get the extra point, so sizes differ by at
/// most one. `workers` == 0 is treated as 1; more workers than points
/// yields `points` single-point shards.
std::vector<ShardRange> plan_shards(std::size_t points, std::size_t workers);

/// Split `range` into at most `pieces` contiguous non-empty sub-ranges
/// (same balancing rule). Used when a straggler's or dead worker's
/// remaining window is re-partitioned across idle slots.
std::vector<ShardRange> split_range(const ShardRange& range,
                                    std::size_t pieces);

/// Canonical shard-journal filename: "<base>.shard<i>.jsonl" for a
/// first-generation shard, "<base>.shard<i>.steal<k>.jsonl" (k >= 1) for
/// the k-th range stolen off shard i. Keeping every generation's file
/// distinct means the merger can always read the union.
std::string shard_journal_path(const std::string& base, std::size_t shard,
                               std::size_t steal_chunk = 0);

}  // namespace psync::dist
