#include "psync/dist/chaos.hpp"

#include <algorithm>

namespace psync::dist {

ChaosTransport::ChaosTransport(const ChaosOptions& opts)
    : opts_(opts), rng_(opts.seed == 0 ? 1 : opts.seed) {}

std::vector<Frame> ChaosTransport::offer(const Frame& frame, double now_ms) {
  std::vector<Frame> out;
  if (!enabled()) {
    out.push_back(frame);
    return out;
  }
  ++offered_;
  ++frames_since_partition_;
  // One-shot partitions must never re-arm after healing: the frame
  // counter stays past the threshold forever, so gate on partitions_.
  if (opts_.partition_after > 0 && partition_heal_ms_ < 0.0 &&
      !partition_armed_ && (opts_.partition_repeat || partitions_ == 0) &&
      frames_since_partition_ >= opts_.partition_after) {
    partition_armed_ = true;
  }

  // Decision order is fixed (drop, duplicate, reorder, delay) and every
  // probability draws from the one Rng stream whether or not it fires —
  // that is what makes a seed replay the identical schedule even when a
  // different frame mix flows through.
  const bool do_drop = rng_.next_bool(opts_.drop);
  const bool do_dup = rng_.next_bool(opts_.duplicate);
  const bool do_reorder = rng_.next_bool(opts_.reorder);
  const bool do_delay = rng_.next_bool(opts_.delay);
  if (do_drop) {
    ++dropped_;
    return out;  // the reorder hold, if any, keeps waiting
  }

  std::vector<Frame> ready;
  if (do_reorder && !have_reorder_hold_) {
    // Hold this frame; it rides out *after* the next transmitted one.
    have_reorder_hold_ = true;
    reorder_hold_ = frame;
    ++reordered_;
  } else if (do_delay) {
    delayed_frames_.push_back({frame, now_ms + opts_.delay_ms});
    ++delayed_;
  } else {
    ready.push_back(frame);
  }

  for (auto& f : ready) {
    out.push_back(std::move(f));
    if (have_reorder_hold_) {
      out.push_back(std::move(reorder_hold_));
      have_reorder_hold_ = false;
    }
  }
  if (do_dup && !out.empty()) {
    out.push_back(out.front());
    ++duplicated_;
  }
  return out;
}

std::vector<Frame> ChaosTransport::due(double now_ms) {
  std::vector<Frame> out;
  auto it = delayed_frames_.begin();
  while (it != delayed_frames_.end()) {
    if (it->release_ms <= now_ms) {
      out.push_back(std::move(it->frame));
      it = delayed_frames_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

bool ChaosTransport::take_partition(double now_ms) {
  if (partition_heal_ms_ >= 0.0 && now_ms >= partition_heal_ms_) {
    // Healed: forget the window; re-arm only in repeat mode.
    partition_heal_ms_ = -1.0;
    if (opts_.partition_repeat) frames_since_partition_ = 0;
  }
  if (!partition_armed_) return false;
  partition_armed_ = false;
  partition_heal_ms_ = now_ms + opts_.partition_ms;
  ++partitions_;
  // A severed connection also strands anything the injector was holding —
  // exactly like a real network dropping queued packets.
  delayed_frames_.clear();
  have_reorder_hold_ = false;
  return true;
}

bool ChaosTransport::partitioned(double now_ms) const {
  return partition_heal_ms_ >= 0.0 && now_ms < partition_heal_ms_;
}

}  // namespace psync::dist
