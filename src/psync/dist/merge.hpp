// Crash-identical journal merge: fold every shard journal a distributed
// sweep produced — including journals left by SIGKILLed workers and the
// .steal<k> fragments of re-partitioned ranges — back into one
// grid-ordered record set.
//
// Determinism contract: a merged record is exactly the journaled record
// (PR 4's %.17g round-trip plus verbatim raw report fragments), placed by
// its *global* grid index, so sweep_json/sweep_csv over the merged set are
// byte-identical to a single-process serial run. Which worker ran a point,
// in which generation, through which journal file — none of it can leak
// into the output.
//
// Trust model: the journals are ours but the run that wrote them may have
// died at any instruction. Torn tails were already dropped by
// read_journal_lines; everything else must either parse cleanly or raise a
// typed error (JournalCorruptError / JournalConflictError) — never UB,
// never a silently dropped point.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "psync/driver/campaign.hpp"
#include "psync/driver/experiment.hpp"
#include "psync/driver/workload.hpp"

namespace psync::dist {

struct MergedJournal {
  /// Grid-ordered records; slots listed in `missing` are default-empty.
  std::vector<driver::RunRecord> records;
  /// records[i] holds a journaled record (1) or is an empty slot (0).
  std::vector<char> present;
  /// Grid indices no journal covered, ascending.
  std::vector<std::size_t> missing;
  /// Lines dropped as agreeing duplicates (a point journaled by both a
  /// straggler and the thief that took over its range).
  std::size_t duplicates = 0;
};

/// Merge the journals at `paths` against the expanded grid `points` of a
/// `workload` sweep. Paths are read in sorted order and the first record
/// seen for an index wins; later duplicates must agree on status (the
/// records are re-derivations of the same deterministic point) and are
/// counted, a disagreement is a JournalConflictError. Other typed errors:
/// JournalCorruptError for an unparseable non-tail line, and
/// JournalConflictError for an out-of-grid index, a seed mismatch, or a
/// workload mismatch — signs the file belongs to a different campaign.
/// Missing files read as empty (a worker may die before its first append).
MergedJournal merge_journals(const std::vector<driver::RunPoint>& points,
                             const std::string& workload,
                             std::vector<std::string> paths);

}  // namespace psync::dist
