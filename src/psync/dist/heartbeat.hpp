// Heartbeat protocol between shard workers and the sweep leader.
//
// Wire format: one short text line per message over an inherited pipe,
//
//   hb <shard> <kind> <points_done> <inflight>\n
//
// where <kind> is p (periodic progress), s (point start), or d (point
// done) and <inflight> is the global grid index of the point currently
// executing, or "-" when none is. Lines are written with a single
// write(2) well under PIPE_BUF, so they never interleave even though the
// emitter's timer thread and the sweep thread both write.
//
// Liveness is "any traffic at all": the worker-side emitter runs a timer
// thread that sends a progress line every interval even while one point
// computes for a long time, so a silent pipe means the *process* is
// wedged (deadlocked, stopped, or looping outside the sim), not merely
// busy — exactly the condition the leader answers with SIGKILL + restart.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include <condition_variable>

#include "psync/common/cancel.hpp"
#include "psync/driver/workload.hpp"

namespace psync::dist {

struct Heartbeat {
  enum class Kind { kProgress, kPointStart, kPointDone };

  std::size_t shard = 0;
  Kind kind = Kind::kProgress;
  /// Points this worker has completed (journaled) so far this launch.
  std::uint64_t points_done = 0;
  /// Global grid index currently executing, or -1 when idle.
  std::int64_t inflight = -1;
};

/// Render one wire line (no trailing newline).
std::string heartbeat_line(const Heartbeat& hb);

/// Parse one wire line; returns false (out untouched) on anything
/// malformed — a torn or garbled pipe read is dropped, never trusted.
bool parse_heartbeat_line(const std::string& line, Heartbeat* out);

/// Worker-side emitter: implements the driver's PointObserver so the
/// Runner announces point starts/completions, plus a timer thread that
/// keeps beating while a single point runs long.
///
/// A broken pipe (the leader died) cancels `on_broken_pipe` so the worker
/// winds down instead of computing for nobody. With fd < 0 every write is
/// a no-op (single-process use, tests).
class HeartbeatEmitter final : public driver::PointObserver {
 public:
  /// Does not own `fd`. `on_broken_pipe` may be nullptr.
  HeartbeatEmitter(int fd, std::size_t shard, double interval_ms,
                   CancelToken* on_broken_pipe);
  ~HeartbeatEmitter() override;
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  void on_point_start(std::size_t index) override;
  void on_point_done(std::size_t index, driver::PointStatus status) override;

  /// Stop the timer thread (idempotent). Exposed so the wedge-injection
  /// test hook can silence a worker the way a real deadlock would.
  void stop();

  std::uint64_t points_done() const;

 private:
  void timer_loop();
  /// Write one line; requires mu_ held.
  void emit_locked(Heartbeat::Kind kind);

  const int fd_;
  const std::size_t shard_;
  const double interval_ms_;
  CancelToken* const on_broken_pipe_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  bool pipe_broken_ = false;
  std::uint64_t done_ = 0;
  std::int64_t inflight_ = -1;
  std::thread timer_;
};

}  // namespace psync::dist
