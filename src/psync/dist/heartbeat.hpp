// Heartbeat protocol between shard workers and the sweep leader.
//
// Wire format: one short text line per message,
//
//   hb <shard> <kind> <points_done> <inflight>\n
//
// where <kind> is p (periodic progress), s (point start), or d (point
// done) and <inflight> is the global grid index of the point currently
// executing, or "-" when none is. Over the pipe transport a line is
// written with a single write(2) well under PIPE_BUF, so lines never
// interleave even though the emitter's timer thread and the sweep thread
// both write; over the socket transport the identical line rides as one
// heartbeat frame's payload (transport.hpp) — same codec, new envelope.
//
// Liveness is "any traffic at all": the worker-side emitter runs a timer
// thread that sends a progress line every interval even while one point
// computes for a long time, so a silent channel means the *process* is
// wedged (deadlocked, stopped, or looping outside the sim), not merely
// busy — exactly the condition the leader answers with SIGKILL + restart.
// (Socket mode adds a second failure class the leader tells apart: a
// *disconnected* worker is partitioned, not wedged.)
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include <condition_variable>

#include "psync/common/cancel.hpp"
#include "psync/driver/workload.hpp"

namespace psync::dist {

class WorkerLink;  // transport.hpp

struct Heartbeat {
  enum class Kind { kProgress, kPointStart, kPointDone };

  std::size_t shard = 0;
  Kind kind = Kind::kProgress;
  /// Points this worker has completed (journaled) so far this launch.
  std::uint64_t points_done = 0;
  /// Global grid index currently executing, or -1 when idle.
  std::int64_t inflight = -1;
};

/// Render one wire line (no trailing newline).
std::string heartbeat_line(const Heartbeat& hb);

/// Parse one wire line; returns false (out untouched) on anything
/// malformed — a torn or garbled pipe read is dropped, never trusted.
bool parse_heartbeat_line(const std::string& line, Heartbeat* out);

/// Worker-side emitter: implements the driver's PointObserver so the
/// Runner announces point starts/completions, plus a timer thread that
/// keeps beating while a single point runs long.
///
/// The emitter writes through a WorkerLink (transport.hpp), which owns
/// the channel's failure story: a pipe link cancels the worker when the
/// leader's read end is gone, a socket link reconnects on its own and
/// only goes dead when the leader fences this worker's epoch. Either way
/// a dead link stops the timer — no point beating into the void. The
/// timer tick doubles as the socket link's I/O pump, so acks drain and
/// reconnects progress even while the sweep thread computes one long
/// point. With a null link every write is a no-op (tests).
class HeartbeatEmitter final : public driver::PointObserver {
 public:
  /// Does not own `link` (which may be nullptr: heartbeats disabled).
  HeartbeatEmitter(WorkerLink* link, std::size_t shard, double interval_ms);
  ~HeartbeatEmitter() override;
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  void on_point_start(std::size_t index) override;
  void on_point_done(std::size_t index, driver::PointStatus status) override;

  /// Stop the timer thread (idempotent). Exposed so the wedge-injection
  /// test hook can silence a worker the way a real deadlock would.
  void stop();

  std::uint64_t points_done() const;

 private:
  void timer_loop();
  /// Write one line; requires mu_ held.
  void emit_locked(Heartbeat::Kind kind);

  WorkerLink* const link_;
  const std::size_t shard_;
  const double interval_ms_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  bool link_dead_ = false;
  std::uint64_t done_ = 0;
  std::int64_t inflight_ = -1;
  std::thread timer_;
};

}  // namespace psync::dist
