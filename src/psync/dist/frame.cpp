#include "psync/dist/frame.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace psync::dist {

bool frame_kind_valid(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kJournalAck);
}

std::string encode_frame(const Frame& frame) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + frame.payload.size());
  wire.push_back(static_cast<char>(kFrameMagic));
  wire.push_back(static_cast<char>(frame.kind));
  const auto len = static_cast<std::uint32_t>(frame.payload.size());
  wire.push_back(static_cast<char>(len & 0xFF));
  wire.push_back(static_cast<char>((len >> 8) & 0xFF));
  wire.push_back(static_cast<char>((len >> 16) & 0xFF));
  wire.push_back(static_cast<char>((len >> 24) & 0xFF));
  wire += frame.payload;
  return wire;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact before growing: keeps the buffer bounded by one frame plus one
  // read, not by connection lifetime.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(Frame* out) {
  if (corrupt_) return Result::kCorrupt;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Result::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  if (p[0] != kFrameMagic || !frame_kind_valid(p[1])) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(p[2]) |
                            (static_cast<std::uint32_t>(p[3]) << 8) |
                            (static_cast<std::uint32_t>(p[4]) << 16) |
                            (static_cast<std::uint32_t>(p[5]) << 24);
  if (len > kMaxFramePayload) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + len) return Result::kNeedMore;
  out->kind = static_cast<FrameKind>(p[1]);
  out->payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return Result::kFrame;
}

void FrameDecoder::reset() {
  buf_.clear();
  pos_ = 0;
  corrupt_ = false;
}

namespace {

/// Parse one decimal field at *p; advances *p past it. Returns false on
/// no digits or overflow.
bool parse_u64(const char** p, std::uint64_t* out) {
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(*p, &endp, 10);
  if (endp == *p || errno != 0) return false;
  *p = endp;
  *out = v;
  return true;
}

}  // namespace

std::string hello_payload(const HelloClaim& claim) {
  return "shard " + std::to_string(claim.shard) + " epoch " +
         std::to_string(claim.epoch);
}

bool parse_hello_payload(const std::string& payload, HelloClaim* out) {
  const char* p = payload.c_str();
  if (std::strncmp(p, "shard ", 6) != 0) return false;
  p += 6;
  std::uint64_t shard = 0;
  if (!parse_u64(&p, &shard)) return false;
  if (std::strncmp(p, " epoch ", 7) != 0) return false;
  p += 7;
  std::uint64_t epoch = 0;
  if (!parse_u64(&p, &epoch) || *p != '\0') return false;
  out->shard = static_cast<std::size_t>(shard);
  out->epoch = epoch;
  return true;
}

std::string journal_payload(std::size_t index, const std::string& line) {
  return std::to_string(index) + " " + line;
}

bool parse_journal_payload(const std::string& payload, std::size_t* index,
                           std::string* line) {
  const char* p = payload.c_str();
  std::uint64_t idx = 0;
  if (!parse_u64(&p, &idx) || *p != ' ') return false;
  *index = static_cast<std::size_t>(idx);
  line->assign(p + 1);
  return true;
}

std::string journal_ack_payload(std::size_t index) {
  return std::to_string(index);
}

bool parse_journal_ack_payload(const std::string& payload,
                               std::size_t* index) {
  const char* p = payload.c_str();
  std::uint64_t idx = 0;
  if (!parse_u64(&p, &idx) || *p != '\0') return false;
  *index = static_cast<std::size_t>(idx);
  return true;
}

bool hello_ack_fenced(const std::string& payload) {
  return payload.rfind("fenced", 0) == 0;
}

}  // namespace psync::dist
