// Decorrelated-jitter backoff (the AWS architecture-blog variant):
//
//   sleep(n) = min(cap, uniform(base, prev * 3))
//
// Exponential backoff with identical parameters makes every worker killed
// by one partition retry on the same schedule — the reconnect stampede
// arrives as synchronized waves that can re-trigger the overload that
// killed them. Drawing each interval uniformly from [base, 3*prev] keeps
// the exponential *envelope* (expected growth factor 1.5-2x per attempt)
// while decorrelating individual workers: two seeds never share a
// schedule, and the spread within one attempt number covers the whole
// [base, cap] band once enough attempts have passed.
//
// Deterministic per seed, so supervisor tests replay exact schedules.
#pragma once

#include <algorithm>
#include <cstdint>

#include "psync/common/rng.hpp"

namespace psync::dist {

class DecorrelatedBackoff {
 public:
  DecorrelatedBackoff(double base_ms, double cap_ms, std::uint64_t seed)
      : base_ms_(base_ms), cap_ms_(std::max(cap_ms, base_ms)), rng_(seed) {}

  /// The next backoff interval, in [base_ms, cap_ms]. Attempt 1 is always
  /// exactly base_ms (fast first retry); jitter starts at attempt 2.
  double next_ms() {
    if (prev_ms_ <= 0.0) {
      prev_ms_ = base_ms_;
      return prev_ms_;
    }
    const double hi = std::min(cap_ms_, prev_ms_ * 3.0);
    prev_ms_ = base_ms_ + (hi - base_ms_) * rng_.next_double();
    return prev_ms_;
  }

  /// Back to the initial state (after a success, retry from the bottom).
  void reset() { prev_ms_ = 0.0; }

 private:
  double base_ms_;
  double cap_ms_;
  double prev_ms_ = 0.0;
  Rng rng_;
};

}  // namespace psync::dist
