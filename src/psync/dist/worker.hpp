// Shard-worker execution: the body every distributed worker process runs,
// whether it got here by fork() (in-process launcher: tests, benches) or
// by fork+exec of `psync_sim --worker-shard` (the CLI leader).
//
// A worker owns one contiguous window of the sweep grid and one shard
// journal. It always opens the journal in resume mode, so a replacement
// for a SIGKILLed worker re-runs only the points its predecessor did not
// durably finish; flock ownership (common/journal) guarantees the
// predecessor is actually gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psync/dist/chaos.hpp"
#include "psync/dist/shard.hpp"
#include "psync/driver/experiment.hpp"

namespace psync::dist {

/// Worker exit codes the supervisor keys its state machine on. Anything
/// else — including death by signal — is a crash.
inline constexpr int kWorkerExitOk = 0;         // shard window complete
inline constexpr int kWorkerExitError = 1;      // typed failure (see stderr)
inline constexpr int kWorkerExitCancelled = 4;  // graceful SIGTERM/SIGINT
/// Socket mode: the leader refused this worker's lease epoch (the shard
/// was given away while this worker was partitioned). Not a crash — the
/// zombie found out it is one and stood down; its seat moved on long ago.
inline constexpr int kWorkerExitFenced = 5;
/// _exit code of the crash-injection hook below; outside the documented
/// 0-5 band so it always lands in the supervisor's crash path.
inline constexpr int kWorkerExitInjectedCrash = 86;

struct WorkerConfig {
  /// Shard id (stable across restarts; steal chunks get fresh ids).
  std::size_t shard = 0;
  /// Restart generation: 0 on first launch, +1 per relaunch. Informational
  /// for launchers (e.g. "inject a fault only on generation 0").
  std::size_t generation = 0;
  /// Global grid window this worker executes.
  ShardRange range;
  /// Shard journal (always opened keep_existing: resume semantics).
  std::string journal_path;
  /// Grid indices the leader quarantined; recorded, not executed.
  std::vector<std::size_t> quarantine;
  /// Heartbeat pipe write end (< 0 = no heartbeats) and interval.
  int heartbeat_fd = -1;
  double heartbeat_ms = 100.0;

  // --- socket transport (transport.hpp) ---------------------------------
  /// Leader address to dial; non-empty selects the socket transport. The
  /// worker then journals nothing locally — it streams each completed
  /// point's journal line to the leader (at-least-once, leader dedups)
  /// and `journal_path` stays empty.
  std::string connect_host;
  std::uint16_t connect_port = 0;
  /// Lease epoch the leader issued for exactly this launch; the HELLO
  /// fencing identity. Meaningless in pipe mode.
  std::uint64_t epoch = 0;
  /// Seeded frame-level fault injection on the worker's link (tests and
  /// the net-chaos smoke); seed 0 = clean link.
  ChaosOptions chaos;

  // --- fault-injection hooks (tests and the dist fault smoke) -----------
  /// _exit(kWorkerExitInjectedCrash) when this grid index starts (< 0 off).
  std::int64_t crash_on_index = -1;
  /// Silence heartbeats and hang forever when this grid index starts
  /// (< 0 off) — a synthetic deadlock the leader must detect by liveness
  /// timeout and answer with SIGKILL.
  std::int64_t stall_on_index = -1;
};

/// Run one shard worker to completion in this process. Installs
/// SIGTERM/SIGINT handlers (graceful cancel -> kWorkerExitCancelled) and
/// ignores SIGPIPE (a broken heartbeat pipe cancels the run instead), so
/// call it only from a process dedicated to being a worker — a forked
/// child or a `psync_sim --worker-shard` invocation. Never throws.
///
/// `spec` is the full-sweep spec; the shard window, journal, quarantine
/// list, cancel token and heartbeat observer are overlaid from `cfg`.
/// With `cfg.connect_host` set the worker dials the leader instead of
/// journaling locally: completed points stream over the socket and the
/// leader appends them to the shard journal (exit kWorkerExitFenced when
/// the leader refuses this launch's epoch).
int run_worker(driver::ExperimentSpec spec, const WorkerConfig& cfg);

}  // namespace psync::dist
