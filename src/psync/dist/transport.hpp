// The pluggable leader<->worker transport.
//
// PR 6's supervisor spoke to workers over one inherited pipe per seat:
// heartbeat lines flowed up, and the journal never traveled at all — the
// worker wrote it to a shared filesystem. That is exactly right on one
// host and exactly wrong across a network. This layer splits the channel
// behind a small interface:
//
//   WorkerLink        what a worker writes to (heartbeats + journal)
//   PipeWorkerLink    today's behavior, byte-compatible: heartbeat text
//                     lines on the inherited fd, journal written locally
//   SocketWorkerLink  TCP to the leader: length-prefixed frames
//                     (frame.hpp) carrying the same heartbeat lines plus
//                     a journal-shipping stream — each completed point's
//                     journal record goes to the leader, which appends it
//                     to the local per-shard journal. Journal-remains-
//                     truth, and the PR 6 merge stays crash-identical.
//
// Socket-mode robustness lives here, worker-side:
//
//   * Reconnect with decorrelated-jitter backoff (backoff.hpp). A broken
//     connection is not a death sentence — the worker keeps computing and
//     keeps trying; completed records queue as unacked.
//   * At-least-once journal shipping: every record is retransmitted until
//     the leader acks it (on reconnect, and periodically against drops).
//     The leader dedups by index, so retransmission is idempotent.
//   * Lease-epoch fencing: every connection opens with a HELLO claiming
//     (shard, epoch). The leader issued that epoch for exactly one launch
//     and revokes it when it gives the shard away; a zombie worker
//     reconnecting after its partition healed is answered "fenced", its
//     link goes permanently dead, and it can never double-write a shard
//     someone else now owns.
//   * ChaosTransport (chaos.hpp) decorates the outbound frame path for
//     deterministic fault injection in tests and the net-chaos smoke.
//
// Leader-side state (who owns which epoch) is EpochLedger, kept here so
// the fencing decision is a pure, unit-testable object instead of
// supervisor plumbing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "psync/common/cancel.hpp"
#include "psync/dist/backoff.hpp"
#include "psync/dist/chaos.hpp"
#include "psync/dist/frame.hpp"
#include "psync/dist/heartbeat.hpp"

namespace psync::dist {

/// Which channel a supervisor drives its workers over.
enum class TransportKind {
  kPipe,    // inherited pipe, local journals (PR 6, byte-compatible)
  kSocket,  // TCP frames, journal shipped to the leader
};

/// What a worker process writes to. Implementations are thread-safe: the
/// heartbeat timer thread and the sweep thread both call in.
class WorkerLink {
 public:
  virtual ~WorkerLink() = default;
  /// Emit one heartbeat. Returns false once the link is permanently dead
  /// (pipe: the leader's read end is gone; socket: this epoch was fenced)
  /// — the worker should wind down.
  virtual bool send_heartbeat(const Heartbeat& hb) = 0;
  /// Ship one completed point's journal line (socket), or no-op (pipe:
  /// the worker journals to the local filesystem itself).
  virtual void send_journal(std::size_t index, const std::string& line) = 0;
  /// Permanently dead because the leader refused this worker's epoch.
  [[nodiscard]] virtual bool fenced() const { return false; }
  /// Journal records shipped but not yet acked durable by the leader.
  [[nodiscard]] virtual std::size_t unacked() const { return 0; }
  /// Block until every queued journal record is acked or `timeout_ms`
  /// passes (pumping I/O while waiting). True when the queue drained.
  virtual bool flush(double timeout_ms) {
    (void)timeout_ms;
    return true;
  }
};

/// PR 6's channel, unchanged on the wire: heartbeat text lines over the
/// inherited pipe fd, one write(2) per line. A failed write (the leader
/// died) cancels `on_dead` so the worker stops computing for nobody.
class PipeWorkerLink final : public WorkerLink {
 public:
  /// Does not own `fd`; fd < 0 makes every send a no-op (single-process
  /// use, tests). `on_dead` may be nullptr.
  PipeWorkerLink(int fd, CancelToken* on_dead);

  bool send_heartbeat(const Heartbeat& hb) override;
  void send_journal(std::size_t index, const std::string& line) override {
    (void)index;
    (void)line;  // journal-by-filesystem: the worker's JournalWriter owns it
  }

 private:
  const int fd_;
  CancelToken* const on_dead_;
  std::mutex mu_;
  bool broken_ = false;
};

struct SocketLinkOptions {
  std::string host;
  std::uint16_t port = 0;
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  /// Reconnect backoff band (decorrelated jitter) and its seed.
  double reconnect_base_ms = 20.0;
  double reconnect_cap_ms = 1000.0;
  std::uint64_t reconnect_seed = 1;
  /// Unacked journal records are retransmitted this often (drop defense).
  double resend_ms = 250.0;
  /// How long to wait for the leader's hello-ack before treating the
  /// connection attempt as failed.
  double handshake_timeout_ms = 2000.0;
  /// Seeded outbound fault injection (tests, smoke); seed 0 = off.
  ChaosOptions chaos;
};

class SocketWorkerLink final : public WorkerLink {
 public:
  /// Attempts the first connection immediately (failures just schedule a
  /// retry). `on_fenced` (may be nullptr) is cancelled when the leader
  /// refuses this epoch — the worker must stop, its shard belongs to
  /// someone else now.
  SocketWorkerLink(const SocketLinkOptions& opts, CancelToken* on_fenced);
  ~SocketWorkerLink() override;

  bool send_heartbeat(const Heartbeat& hb) override;
  void send_journal(std::size_t index, const std::string& line) override;
  [[nodiscard]] bool fenced() const override;
  [[nodiscard]] std::size_t unacked() const override;
  bool flush(double timeout_ms) override;

  [[nodiscard]] bool connected() const;
  /// Successful handshakes beyond the first (for tests and stderr).
  [[nodiscard]] std::size_t reconnects() const;
  /// Injection accounting of the decorating ChaosTransport.
  [[nodiscard]] const ChaosTransport& chaos() const { return chaos_; }

 private:
  double now_ms() const;
  /// Reconnect / drain acks / retransmit / release chaos holds. The
  /// heartbeat timer thread calls this every interval, so the link makes
  /// progress even while the sweep thread computes one long point.
  void pump_locked(double now);
  bool ensure_connected_locked(double now);
  void drain_locked(double now);
  void transmit_locked(const Frame& frame, double now);
  void raw_send_locked(const std::string& wire, double now);
  void disconnect_locked(double now);
  void fence_locked();

  SocketLinkOptions opts_;
  CancelToken* const on_fenced_;
  mutable std::mutex mu_;
  int fd_ = -1;
  FrameDecoder decoder_;
  ChaosTransport chaos_;
  DecorrelatedBackoff backoff_;
  std::chrono::steady_clock::time_point t0_;
  double next_connect_ms_ = 0.0;
  bool connected_once_ = false;
  bool fenced_ = false;
  std::size_t reconnects_ = 0;
  struct Pending {
    std::string line;
    double last_sent_ms = -1.0;  // < 0: never transmitted
  };
  std::map<std::size_t, Pending> unacked_;
};

/// Leader-side lease ledger: which (shard, epoch) claims are currently
/// valid. One epoch is issued per launch and revoked when the launch's
/// seat moves on (exit handled, shard stolen, connection-loss relaunch);
/// a HELLO claiming a revoked epoch is fenced.
class EpochLedger {
 public:
  /// Mint the epoch for a new launch of `shard`. Epochs are unique across
  /// the ledger's lifetime and never reused.
  std::uint64_t issue(std::size_t shard);
  /// The launch is over; any future claim of this epoch is a zombie.
  void revoke(std::uint64_t epoch);
  [[nodiscard]] bool valid(std::uint64_t epoch) const;
  /// The shard an active epoch was issued for (epoch must be valid()).
  [[nodiscard]] std::size_t shard_of(std::uint64_t epoch) const;
  [[nodiscard]] std::size_t active() const { return active_.size(); }

 private:
  std::uint64_t next_ = 1;
  std::map<std::uint64_t, std::size_t> active_;
};

// --- TCP plumbing ------------------------------------------------------

/// Bind + listen on host:port (port 0 = ephemeral; the chosen port comes
/// back through *actual_port). Returns the nonblocking listen fd; throws
/// SimulationError on failure.
int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* actual_port);

/// Blocking connect; returns the fd or -1 (errno holds the reason).
int tcp_connect(const std::string& host, std::uint16_t port);

/// Parse "host:port" or bare "port" (host defaults to 127.0.0.1).
bool parse_host_port(const std::string& s, std::string* host,
                     std::uint16_t* port);

}  // namespace psync::dist
