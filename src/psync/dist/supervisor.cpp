#include "psync/dist/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/dist/heartbeat.hpp"
#include "psync/dist/merge.hpp"
#include "psync/driver/campaign.hpp"
#include "psync/driver/sweep.hpp"

namespace psync::dist {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

Clock::time_point after_ms(Clock::time_point t, double ms) {
  return t + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
}

/// One unit of schedulable work: a contiguous grid range bound to its own
/// checkpoint journal. Assignments outlive the workers that execute them —
/// a crashed worker's assignment is relaunched, a straggler's is split.
struct Assignment {
  std::size_t shard = 0;        // original shard id (journal naming)
  ShardRange range;
  std::string journal;
  std::size_t launches = 0;     // processes started for this assignment
};

enum class SeatState {
  kIdle,     // no assignment; may pull from the queue or steal
  kRunning,  // child executing
  kBackoff,  // child crashed; relaunch at backoff_until
  kTerming,  // SIGTERM sent (steal reclaim or shutdown); awaiting exit
};

/// A worker process seat. Seats are fixed (opts.workers of them);
/// assignments flow through them.
struct Seat {
  SeatState state = SeatState::kIdle;
  Assignment asg;
  pid_t pid = -1;
  int pipe_fd = -1;  // heartbeat read end
  std::string rdbuf;
  Clock::time_point last_beat{};
  Clock::time_point backoff_until{};
  Clock::time_point term_deadline{};
  std::int64_t inflight = -1;      // grid index last reported in flight
  std::uint64_t reported_done = 0; // points finished this launch (heartbeat)
  bool wedge_killed = false;  // liveness SIGKILL sent; incident recorded
  bool stealing = false;      // kTerming is a steal reclaim, not shutdown
};

class Supervisor {
 public:
  Supervisor(const driver::ExperimentSpec& spec, const SupervisorOptions& opts,
             const WorkerBody& body, const LaunchHook& hook)
      : spec_(spec), opts_(opts), body_(body), hook_(hook) {
    if (opts_.journal_base.empty()) {
      throw ConfigError(
          "distributed sweep requires a journal base path (the shard "
          "journals are the crash-safety mechanism, not an option)");
    }
    if (opts_.workers == 0) opts_.workers = 1;
    worker_spec_ = spec;
    worker_spec_.threads = std::max<std::size_t>(opts_.worker_threads, 1);
    worker_spec_.journal_path.clear();
    worker_spec_.cancel = nullptr;     // workers install their own token
    worker_spec_.observer = nullptr;   // workers attach their own emitter
    worker_spec_.quarantine_indices.clear();
    worker_spec_.shard_begin = 0;
    worker_spec_.shard_end = static_cast<std::size_t>(-1);
    points_ = driver::SweepEngine::expand(spec);
  }

  driver::SweepResult run() {
    for (const auto& range : plan_shards(points_.size(), opts_.workers)) {
      Assignment asg;
      asg.shard = next_shard_id_++;
      asg.range = range;
      asg.journal = shard_journal_path(opts_.journal_base, asg.shard);
      journal_paths_.push_back(asg.journal);
      queue_.push_back(std::move(asg));
    }
    seats_.resize(opts_.workers);

    while (work_remains()) {
      const auto now = Clock::now();
      check_cancel(now);
      schedule(now);
      wait_for_events(now);
      reap();
      enforce_deadlines(Clock::now());
    }
    if (shutdown_) {
      throw CancelledError(
          "distributed sweep cancelled; shard journal tails are durable");
    }
    return assemble();
  }

 private:
  bool work_remains() const {
    if (!queue_.empty() && !shutdown_) return true;
    for (const auto& seat : seats_) {
      if (seat.state != SeatState::kIdle) return true;
    }
    return false;
  }

  // --- cancellation ----------------------------------------------------

  void check_cancel(Clock::time_point now) {
    if (shutdown_) return;
    const CancelToken* token =
        opts_.cancel != nullptr ? opts_.cancel : spec_.cancel;
    if (token == nullptr || !token->cancelled()) return;
    shutdown_ = true;
    queue_.clear();
    for (auto& seat : seats_) {
      switch (seat.state) {
        case SeatState::kRunning:
          ::kill(seat.pid, SIGTERM);
          seat.state = SeatState::kTerming;
          seat.stealing = false;
          seat.term_deadline = after_ms(now, opts_.term_grace_ms);
          break;
        case SeatState::kBackoff:
          seat.state = SeatState::kIdle;  // never relaunched
          break;
        case SeatState::kTerming:
          seat.stealing = false;  // the exit now just winds down
          break;
        case SeatState::kIdle:
          break;
      }
    }
  }

  // --- scheduling ------------------------------------------------------

  void schedule(Clock::time_point now) {
    if (shutdown_) return;
    for (auto& seat : seats_) {
      if (seat.state == SeatState::kBackoff && now >= seat.backoff_until) {
        launch(seat);
      }
    }
    for (auto& seat : seats_) {
      if (queue_.empty()) break;
      if (seat.state != SeatState::kIdle) continue;
      seat.asg = std::move(queue_.front());
      queue_.pop_front();
      launch(seat);
    }
    maybe_steal(now);
  }

  void maybe_steal(Clock::time_point now) {
    if (!opts_.steal || !queue_.empty()) return;
    // One reclaim in flight at a time keeps the bookkeeping linear; further
    // idle seats wait for the re-partitioned chunks to hit the queue.
    std::size_t idle = 0;
    for (const auto& seat : seats_) {
      if (seat.state == SeatState::kIdle) ++idle;
      if (seat.state == SeatState::kTerming) return;
      if (seat.state == SeatState::kBackoff) return;  // restart first
    }
    if (idle == 0) return;
    Seat* victim = nullptr;
    std::size_t victim_remaining = 0;
    for (auto& seat : seats_) {
      if (seat.state != SeatState::kRunning) continue;
      const std::size_t remaining = remaining_estimate(seat);
      if (remaining >= opts_.min_steal_points && remaining > victim_remaining) {
        victim = &seat;
        victim_remaining = remaining;
      }
    }
    if (victim == nullptr) return;
    ::kill(victim->pid, SIGTERM);
    victim->state = SeatState::kTerming;
    victim->stealing = true;
    victim->term_deadline = after_ms(now, opts_.term_grace_ms);
  }

  /// How many points a running seat still has, from heartbeat state. With
  /// ascending single-thread execution the in-flight index is exact even
  /// across a resume; the per-launch done count is the fallback before the
  /// first point starts.
  std::size_t remaining_estimate(const Seat& seat) const {
    const auto idx = seat.inflight;
    if (idx >= 0 && seat.asg.range.contains(static_cast<std::size_t>(idx))) {
      return seat.asg.range.end - static_cast<std::size_t>(idx);
    }
    const auto done = static_cast<std::size_t>(seat.reported_done);
    return seat.asg.range.size() - std::min(seat.asg.range.size(), done);
  }

  // --- process lifecycle -----------------------------------------------

  void launch(Seat& seat) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      throw SimulationError("distributed sweep: pipe(2) failed: " +
                            std::string(std::strerror(errno)));
    }

    WorkerConfig cfg;
    cfg.shard = seat.asg.shard;
    cfg.generation = seat.asg.launches;
    cfg.range = seat.asg.range;
    cfg.journal_path = seat.asg.journal;
    cfg.quarantine.assign(quarantine_.begin(), quarantine_.end());
    cfg.heartbeat_fd = fds[1];
    cfg.heartbeat_ms = opts_.heartbeat_ms;
    if (hook_) hook_(cfg);

    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      throw SimulationError("distributed sweep: fork(2) failed: " + err);
    }
    if (pid == 0) {
      // Child: keep only our heartbeat write end. Inherited read ends of
      // other seats' pipes would otherwise keep those pipes from ever
      // reporting EOF to the leader.
      ::close(fds[0]);
      for (const auto& other : seats_) {
        if (other.pipe_fd >= 0) ::close(other.pipe_fd);
      }
      const int rc = body_ ? body_(worker_spec_, cfg)
                           : run_worker(worker_spec_, cfg);
      ::_exit(rc);
    }
    ::close(fds[1]);
    const int fl = ::fcntl(fds[0], F_GETFL);
    ::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);

    seat.pid = pid;
    seat.pipe_fd = fds[0];
    seat.rdbuf.clear();
    seat.state = SeatState::kRunning;
    seat.last_beat = Clock::now();
    seat.inflight = -1;
    seat.reported_done = 0;
    seat.wedge_killed = false;
    seat.stealing = false;
    ++seat.asg.launches;
  }

  void wait_for_events(Clock::time_point now) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s].pipe_fd >= 0) {
        fds.push_back({seats_[s].pipe_fd, POLLIN, 0});
        owner.push_back(s);
      }
    }
    const int timeout = poll_timeout_ms(now);
    const int n = ::poll(fds.empty() ? nullptr : fds.data(),
                         static_cast<nfds_t>(fds.size()), timeout);
    if (n <= 0) return;  // timeout or EINTR: deadlines handled by caller
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        drain_pipe(seats_[owner[i]]);
      }
    }
  }

  /// Sleep until the nearest deadline: a backoff expiry, a liveness
  /// timeout, or a SIGTERM grace cutoff — capped so child exits (reaped
  /// with WNOHANG) are noticed promptly even when no deadline is near.
  int poll_timeout_ms(Clock::time_point now) const {
    double next = 250.0;
    const double liveness = liveness_ms();
    for (const auto& seat : seats_) {
      if (seat.pid > 0 && seat.pipe_fd < 0) {
        // Heartbeat EOF seen but the exit not yet reaped: the process is
        // mid-_exit — fds close before the zombie becomes waitable — so
        // there is nothing to poll. Tick fast until waitpid catches it
        // instead of sleeping out a full deadline (a worker that closed
        // its pipe but lives on stops beating and hits the liveness kill,
        // so this fast path is bounded).
        return 2;
      }
      switch (seat.state) {
        case SeatState::kBackoff:
          next = std::min(next, ms_between(now, seat.backoff_until));
          break;
        case SeatState::kRunning:
          if (liveness > 0.0) {
            next = std::min(
                next, ms_between(now, after_ms(seat.last_beat, liveness)));
          }
          break;
        case SeatState::kTerming:
          next = std::min(next, ms_between(now, seat.term_deadline));
          break;
        case SeatState::kIdle:
          break;
      }
    }
    return std::max(10, static_cast<int>(std::ceil(next)));
  }

  double liveness_ms() const {
    if (opts_.heartbeat_ms <= 0.0) return 0.0;  // liveness disabled
    return opts_.heartbeat_ms * opts_.liveness_factor;
  }

  void drain_pipe(Seat& seat) {
    char buf[4096];
    bool got_bytes = false;
    for (;;) {
      const ssize_t n = ::read(seat.pipe_fd, buf, sizeof(buf));
      if (n > 0) {
        got_bytes = true;
        seat.rdbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF (or a read error): the write end is gone. The exit itself is
      // observed via waitpid; here we only retire the fd.
      ::close(seat.pipe_fd);
      seat.pipe_fd = -1;
      break;
    }
    // Any traffic at all proves the process is scheduling — that is the
    // liveness signal. Parsed lines additionally update progress state.
    if (got_bytes) seat.last_beat = Clock::now();
    std::size_t nl = 0;
    while ((nl = seat.rdbuf.find('\n')) != std::string::npos) {
      const std::string line = seat.rdbuf.substr(0, nl);
      seat.rdbuf.erase(0, nl + 1);
      Heartbeat hb;
      if (!parse_heartbeat_line(line, &hb)) continue;  // torn/garbled: drop
      seat.reported_done = hb.points_done;
      seat.inflight = hb.kind == Heartbeat::Kind::kPointStart ? hb.inflight
                      : hb.kind == Heartbeat::Kind::kPointDone ? -1
                                                               : seat.inflight;
    }
  }

  void reap() {
    // Wait on our own pids only: a host process (test binary, CLI) may have
    // children of its own, and waitpid(-1) would swallow their statuses.
    for (auto& seat : seats_) {
      if (seat.pid <= 0) continue;
      int wstatus = 0;
      const pid_t pid = ::waitpid(seat.pid, &wstatus, WNOHANG);
      if (pid == seat.pid) handle_exit(seat, wstatus);
    }
  }

  void enforce_deadlines(Clock::time_point now) {
    const double liveness = liveness_ms();
    for (auto& seat : seats_) {
      if (seat.state == SeatState::kRunning && liveness > 0.0 &&
          ms_between(seat.last_beat, now) > liveness) {
        // Wedged: the pipe has been silent past the liveness timeout even
        // though the worker-side timer thread beats through long points.
        // SIGKILL is the only safe answer to a process we can't trust to
        // unwind; its journal is fsync'd line-by-line so nothing durable
        // is lost.
        record_incident(
            driver::FailureKind::kTimeout,
            "shard " + std::to_string(seat.asg.shard) + " worker (pid " +
                std::to_string(seat.pid) + ") heartbeat silent for " +
                std::to_string(static_cast<long>(ms_between(seat.last_beat,
                                                            now))) +
                " ms (liveness timeout " +
                std::to_string(static_cast<long>(liveness)) +
                " ms); killing",
            seat.asg.launches);
        seat.wedge_killed = true;
        ::kill(seat.pid, SIGKILL);
        // Exit flows through the normal reap path; stay out of kRunning so
        // the incident isn't re-recorded next tick.
        seat.state = SeatState::kTerming;
        seat.term_deadline = after_ms(now, opts_.term_grace_ms);
      } else if (seat.state == SeatState::kTerming &&
                 now >= seat.term_deadline && seat.pid > 0) {
        ::kill(seat.pid, SIGKILL);
        seat.term_deadline = after_ms(now, opts_.term_grace_ms);
      }
    }
  }

  void handle_exit(Seat& seat, int wstatus) {
    if (seat.pipe_fd >= 0) {
      drain_pipe(seat);  // salvage the final heartbeats
      if (seat.pipe_fd >= 0) {
        ::close(seat.pipe_fd);
        seat.pipe_fd = -1;
      }
    }
    seat.pid = -1;

    if (shutdown_) {
      seat.state = SeatState::kIdle;
      return;
    }

    const bool graceful = WIFEXITED(wstatus) &&
                          (WEXITSTATUS(wstatus) == kWorkerExitOk ||
                           WEXITSTATUS(wstatus) == kWorkerExitCancelled);
    const std::vector<std::size_t> undone = undone_in(seat.asg);

    if (seat.stealing) {
      // Steal reclaim: however the victim died (graceful exit 4, or a
      // crash racing the SIGTERM), its journal says what is left; split
      // that across the idle capacity. An ungraceful end is still an
      // incident worth recording.
      if (!graceful) {
        record_incident(driver::FailureKind::kInternalError,
                        exit_description(seat, wstatus), seat.asg.launches);
        note_crash_point(seat, undone);
      }
      repartition(seat, undone);
      seat.state = SeatState::kIdle;
      seat.stealing = false;
      return;
    }

    if (undone.empty()) {
      // Assignment complete. The journal, not the exit code, is the truth:
      // a worker that crashed after durably recording its last point owes
      // us nothing.
      seat.state = SeatState::kIdle;
      return;
    }

    // Crash (or an exit-0 liar with an incomplete journal — treat the
    // same; trusting it would silently drop points).
    if (!seat.wedge_killed) {
      record_incident(driver::FailureKind::kInternalError,
                      exit_description(seat, wstatus), seat.asg.launches);
    }
    note_crash_point(seat, undone);

    if (seat.asg.launches > opts_.max_restarts) {
      record_incident(
          driver::FailureKind::kWorkerCrash,
          "shard " + std::to_string(seat.asg.shard) + " abandoned after " +
              std::to_string(seat.asg.launches - 1) + " restart(s); " +
              std::to_string(undone.size()) +
              " unfinished point(s) will be reported as failed",
          seat.asg.launches);
      gave_up_ = true;
      seat.state = SeatState::kIdle;
      return;
    }
    ++restarts_;
    const std::size_t nth_restart = seat.asg.launches;  // 1-based
    double backoff = opts_.restart_backoff_ms;
    for (std::size_t i = 1; i < nth_restart && backoff < opts_.restart_backoff_max_ms;
         ++i) {
      backoff *= 2.0;
    }
    backoff = std::min(backoff, opts_.restart_backoff_max_ms);
    seat.state = SeatState::kBackoff;
    seat.backoff_until = after_ms(Clock::now(), backoff);
  }

  std::string exit_description(const Seat& seat, int wstatus) const {
    std::string msg = "shard " + std::to_string(seat.asg.shard) + " worker ";
    if (WIFSIGNALED(wstatus)) {
      msg += "killed by signal " + std::to_string(WTERMSIG(wstatus));
    } else if (WIFEXITED(wstatus)) {
      msg += "exited with status " + std::to_string(WEXITSTATUS(wstatus));
    } else {
      msg += "ended abnormally";
    }
    if (seat.inflight >= 0) {
      msg += " while point " + std::to_string(seat.inflight) + " was in flight";
    }
    return msg;
  }

  /// Crash-streak bookkeeping: K consecutive crashes with the same point
  /// in flight quarantine that point (the next launch journals the
  /// kQuarantined verdict instead of executing it again).
  void note_crash_point(const Seat& seat,
                        const std::vector<std::size_t>& undone) {
    if (seat.inflight < 0) return;
    const auto idx = static_cast<std::size_t>(seat.inflight);
    // Only an unfinished point can be the culprit; a crash after the
    // journal line landed is not the point's fault.
    if (!std::binary_search(undone.begin(), undone.end(), idx)) return;
    const std::size_t streak = ++crash_streak_[idx];
    if (streak >= opts_.crash_quarantine_after &&
        quarantine_.insert(idx).second) {
      record_incident(
          driver::FailureKind::kWorkerCrash,
          "point " + std::to_string(idx) + " quarantined after " +
              std::to_string(streak) + " consecutive worker crash(es)",
          streak);
    }
  }

  /// Grid indices in the assignment's window with no journaled record,
  /// ascending. Unparseable lines are skipped here (their points read as
  /// undone and re-run); the final merge still applies the strict typed
  /// checks to every line.
  std::vector<std::size_t> undone_in(const Assignment& asg) const {
    std::vector<char> done(asg.range.size(), 0);
    for (const auto& line : read_journal_lines(asg.journal)) {
      driver::JournalEntry entry;
      if (!driver::parse_journal_line(line, &entry)) continue;
      if (asg.range.contains(entry.rec.index)) {
        done[entry.rec.index - asg.range.begin] = 1;
      }
    }
    std::vector<std::size_t> undone;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (done[i] == 0) undone.push_back(asg.range.begin + i);
    }
    return undone;
  }

  /// Split a reclaimed range across the idle capacity. Chunk 0 keeps the
  /// original journal (resume skips everything already recorded); chunks
  /// k >= 1 get fresh `.steal<k>` journals so every file has exactly one
  /// sequence of owners.
  void repartition(Seat& seat, const std::vector<std::size_t>& undone) {
    if (undone.empty()) return;
    std::size_t idle = 0;
    for (const auto& other : seats_) {
      if (other.state == SeatState::kIdle) ++idle;
    }
    const ShardRange remaining{undone.front(), seat.asg.range.end};
    const auto chunks = split_range(remaining, 1 + idle);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      Assignment asg;
      asg.shard = seat.asg.shard;
      asg.range = chunks[c];
      if (c == 0) {
        asg.journal = seat.asg.journal;
        asg.launches = seat.asg.launches;
      } else {
        const std::size_t k = ++steal_counter_[seat.asg.shard];
        asg.journal = shard_journal_path(opts_.journal_base, seat.asg.shard, k);
        journal_paths_.push_back(asg.journal);
        ++steals_;
      }
      queue_.push_back(std::move(asg));
    }
  }

  void record_incident(driver::FailureKind kind, std::string message,
                       std::size_t attempts) {
    incidents_.push_back(
        driver::PointFailure{kind, std::move(message), attempts});
  }

  // --- final assembly --------------------------------------------------

  driver::SweepResult assemble() {
    MergedJournal merged =
        merge_journals(points_, spec_.workload, journal_paths_);
    if (!merged.missing.empty() && !gave_up_) {
      throw SimulationError(
          "distributed sweep finished with " +
          std::to_string(merged.missing.size()) +
          " unrecorded point(s) but no abandoned shard — supervisor bug");
    }
    for (const std::size_t idx : merged.missing) {
      driver::RunRecord rec;
      rec.index = idx;
      rec.workload = spec_.workload;
      rec.knobs = points_[idx].knobs;
      rec.status = driver::PointStatus::kFailed;
      rec.failure = driver::PointFailure{
          driver::FailureKind::kWorkerCrash,
          "shard abandoned after exhausting worker restarts", 0};
      merged.records[idx] = std::move(rec);
    }
    driver::SweepResult result;
    result.spec = spec_;
    result.records = std::move(merged.records);
    result.campaign = driver::summarize_campaign(result.records);
    result.campaign.worker_restarts = restarts_;
    result.campaign.worker_steals = steals_;
    result.campaign.worker_failures = std::move(incidents_);
    return result;
  }

  driver::ExperimentSpec spec_;         // as given (result.spec)
  driver::ExperimentSpec worker_spec_;  // scrubbed copy workers overlay
  SupervisorOptions opts_;
  const WorkerBody& body_;
  const LaunchHook& hook_;

  std::vector<driver::RunPoint> points_;
  std::vector<Seat> seats_;
  std::deque<Assignment> queue_;
  std::vector<std::string> journal_paths_;
  std::size_t next_shard_id_ = 0;
  std::map<std::size_t, std::size_t> steal_counter_;  // per original shard
  std::map<std::size_t, std::size_t> crash_streak_;   // per grid index
  std::set<std::size_t> quarantine_;
  std::vector<driver::PointFailure> incidents_;
  std::uint64_t restarts_ = 0;
  std::uint64_t steals_ = 0;
  bool gave_up_ = false;
  bool shutdown_ = false;
};

}  // namespace

driver::SweepResult run_distributed(const driver::ExperimentSpec& spec,
                                    const SupervisorOptions& opts,
                                    const WorkerBody& body,
                                    const LaunchHook& hook) {
  Supervisor supervisor(spec, opts, body, hook);
  return supervisor.run();
}

}  // namespace psync::dist
