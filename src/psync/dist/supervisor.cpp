#include "psync/dist/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/dist/backoff.hpp"
#include "psync/dist/frame.hpp"
#include "psync/dist/heartbeat.hpp"
#include "psync/dist/merge.hpp"
#include "psync/dist/stream_merge.hpp"
#include "psync/dist/transport.hpp"
#include "psync/driver/campaign.hpp"
#include "psync/driver/sweep.hpp"

namespace psync::dist {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

Clock::time_point after_ms(Clock::time_point t, double ms) {
  return t + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
}

/// A connection that sent HELLO gets this long from accept() to do so
/// before the leader drops it (a dialer that never identifies itself is
/// noise, not a worker).
constexpr double kHelloGraceMs = 2000.0;

/// Best-effort frame write on a (possibly nonblocking) connection fd.
/// Small control frames normally land in the socket buffer whole; a full
/// buffer gets one short POLLOUT wait per chunk. Returns false on a hard
/// error — the caller treats the connection as dropped.
bool send_frame_fd(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Leader-side journal ownership for one socket-mode assignment: the
/// writer holding the shard journal's flock, plus the per-index status
/// map that makes retransmitted journal frames idempotent. Shared because
/// a steal re-partition hands chunk 0 the same journal file.
struct LeaderJournal {
  JournalWriter writer;
  std::map<std::size_t, driver::PointStatus> status;
};

/// One unit of schedulable work: a contiguous grid range bound to its own
/// checkpoint journal. Assignments outlive the workers that execute them —
/// a crashed worker's assignment is relaunched, a straggler's is split.
struct Assignment {
  std::size_t shard = 0;        // original shard id (journal naming)
  ShardRange range;
  std::string journal;
  std::size_t launches = 0;     // processes started for this assignment
  std::shared_ptr<LeaderJournal> led;  // socket transport only
};

enum class SeatState {
  kIdle,     // no assignment; may pull from the queue or steal
  kRunning,  // child executing
  kBackoff,  // child crashed; relaunch at backoff_until
  kTerming,  // SIGTERM sent (steal reclaim or shutdown); awaiting exit
};

/// A worker process seat. Seats are fixed (opts.workers of them);
/// assignments flow through them.
struct Seat {
  SeatState state = SeatState::kIdle;
  Assignment asg;
  pid_t pid = -1;
  int pipe_fd = -1;  // pipe transport: heartbeat read end
  std::string rdbuf;
  int conn_fd = -1;  // socket transport: attached worker connection
  FrameDecoder decoder;
  std::uint64_t epoch = 0;     // lease epoch of the current launch
  bool connected_once = false; // a handshake landed this launch
  Clock::time_point last_beat{};
  Clock::time_point backoff_until{};
  Clock::time_point term_deadline{};
  std::int64_t inflight = -1;      // grid index last reported in flight
  std::uint64_t reported_done = 0; // points finished this launch (heartbeat)
  bool wedge_killed = false;  // liveness SIGKILL sent; incident recorded
  bool lost = false;          // connection-loss incident recorded
  bool stealing = false;      // kTerming is a steal reclaim, not shutdown
  std::optional<DecorrelatedBackoff> restart_backoff;
};

/// An accepted connection that has not yet claimed a (shard, epoch).
struct PendingConn {
  int fd = -1;
  FrameDecoder decoder;
  Clock::time_point deadline{};
};

class Supervisor {
 public:
  Supervisor(const driver::ExperimentSpec& spec, const SupervisorOptions& opts,
             const WorkerBody& body, const LaunchHook& hook)
      : spec_(spec), opts_(opts), body_(body), hook_(hook) {
    if (opts_.journal_base.empty()) {
      throw ConfigError(
          "distributed sweep requires a journal base path (the shard "
          "journals are the crash-safety mechanism, not an option)");
    }
    if (opts_.workers == 0) opts_.workers = 1;
    socket_ = opts_.transport == TransportKind::kSocket;
    worker_spec_ = spec;
    worker_spec_.threads = std::max<std::size_t>(opts_.worker_threads, 1);
    worker_spec_.journal_path.clear();
    worker_spec_.cancel = nullptr;     // workers install their own token
    worker_spec_.observer = nullptr;   // workers attach their own emitter
    worker_spec_.quarantine_indices.clear();
    worker_spec_.shard_begin = 0;
    worker_spec_.shard_end = static_cast<std::size_t>(-1);
    points_ = driver::SweepEngine::expand(spec);
  }

  ~Supervisor() { teardown(); }

  driver::SweepResult run() {
    if (socket_) {
      listen_fd_ = tcp_listen(opts_.listen_host, opts_.listen_port,
                              &listen_port_);
    }
    if (opts_.on_record) merger_.emplace(points_.size(), opts_.on_record);
    for (const auto& range : plan_shards(points_.size(), opts_.workers)) {
      Assignment asg;
      asg.shard = next_shard_id_++;
      asg.range = range;
      asg.journal = shard_journal_path(opts_.journal_base, asg.shard);
      journal_paths_.push_back(asg.journal);
      queue_.push_back(std::move(asg));
    }
    seats_.resize(opts_.workers);
    for (std::size_t s = 0; s < seats_.size(); ++s) {
      seats_[s].restart_backoff.emplace(
          opts_.restart_backoff_ms, opts_.restart_backoff_max_ms,
          opts_.backoff_seed + 0x9E3779B97F4A7C15ULL * (s + 1));
    }

    while (work_remains()) {
      const auto now = Clock::now();
      check_cancel(now);
      schedule(now);
      wait_for_events(now);
      reap();
      enforce_deadlines(Clock::now());
      if (merger_ && !socket_) tail_journals();
    }
    if (merger_ && !socket_) tail_journals();
    teardown();
    if (shutdown_) {
      throw CancelledError(
          "distributed sweep cancelled; shard journal tails are durable");
    }
    return assemble();
  }

 private:
  bool work_remains() const {
    if (!queue_.empty() && !shutdown_) return true;
    for (const auto& seat : seats_) {
      if (seat.state != SeatState::kIdle) return true;
    }
    return false;
  }

  /// Close every leader-side fd and dispose of orphaned worker processes.
  /// Idempotent; runs both on the normal exit path and from the
  /// destructor (an exception mid-loop must not leak fds or children).
  void teardown() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& pc : pending_) {
      if (pc.fd >= 0) ::close(pc.fd);
    }
    pending_.clear();
    for (auto& seat : seats_) {
      if (seat.conn_fd >= 0) {
        ::close(seat.conn_fd);
        seat.conn_fd = -1;
      }
    }
    // Orphans are partitioned workers the loop deliberately left alive so
    // fencing could turn them away. The run is over: nobody will answer
    // their reconnects, so end them.
    for (const pid_t pid : orphans_) {
      ::kill(pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
    }
    orphans_.clear();
  }

  // --- cancellation ----------------------------------------------------

  void check_cancel(Clock::time_point now) {
    if (shutdown_) return;
    const CancelToken* token =
        opts_.cancel != nullptr ? opts_.cancel : spec_.cancel;
    if (token == nullptr || !token->cancelled()) return;
    shutdown_ = true;
    queue_.clear();
    for (auto& seat : seats_) {
      switch (seat.state) {
        case SeatState::kRunning:
          if (seat.pid > 0) ::kill(seat.pid, SIGTERM);
          seat.state = SeatState::kTerming;
          seat.stealing = false;
          seat.term_deadline = after_ms(now, opts_.term_grace_ms);
          break;
        case SeatState::kBackoff:
          seat.state = SeatState::kIdle;  // never relaunched
          break;
        case SeatState::kTerming:
          seat.stealing = false;  // the exit now just winds down
          break;
        case SeatState::kIdle:
          break;
      }
    }
  }

  // --- scheduling ------------------------------------------------------

  void schedule(Clock::time_point now) {
    if (shutdown_) return;
    for (auto& seat : seats_) {
      if (seat.state == SeatState::kBackoff && now >= seat.backoff_until) {
        launch(seat);
      }
    }
    for (auto& seat : seats_) {
      if (queue_.empty()) break;
      if (seat.state != SeatState::kIdle) continue;
      seat.asg = std::move(queue_.front());
      queue_.pop_front();
      seat.restart_backoff->reset();
      launch(seat);
    }
    maybe_steal(now);
  }

  void maybe_steal(Clock::time_point now) {
    if (!opts_.steal || !queue_.empty()) return;
    // One reclaim in flight at a time keeps the bookkeeping linear; further
    // idle seats wait for the re-partitioned chunks to hit the queue.
    std::size_t idle = 0;
    for (const auto& seat : seats_) {
      if (seat.state == SeatState::kIdle) ++idle;
      if (seat.state == SeatState::kTerming) return;
      if (seat.state == SeatState::kBackoff) return;  // restart first
    }
    if (idle == 0) return;
    Seat* victim = nullptr;
    std::size_t victim_remaining = 0;
    for (auto& seat : seats_) {
      if (seat.state != SeatState::kRunning) continue;
      const std::size_t remaining = remaining_estimate(seat);
      if (remaining >= opts_.min_steal_points && remaining > victim_remaining) {
        victim = &seat;
        victim_remaining = remaining;
      }
    }
    if (victim == nullptr) return;
    ::kill(victim->pid, SIGTERM);
    victim->state = SeatState::kTerming;
    victim->stealing = true;
    victim->term_deadline = after_ms(now, opts_.term_grace_ms);
  }

  /// How many points a running seat still has, from heartbeat state. With
  /// ascending single-thread execution the in-flight index is exact even
  /// across a resume; the per-launch done count is the fallback before the
  /// first point starts.
  std::size_t remaining_estimate(const Seat& seat) const {
    const auto idx = seat.inflight;
    if (idx >= 0 && seat.asg.range.contains(static_cast<std::size_t>(idx))) {
      return seat.asg.range.end - static_cast<std::size_t>(idx);
    }
    const auto done = static_cast<std::size_t>(seat.reported_done);
    return seat.asg.range.size() - std::min(seat.asg.range.size(), done);
  }

  // --- process lifecycle -----------------------------------------------

  void launch(Seat& seat) {
    WorkerConfig cfg;
    cfg.shard = seat.asg.shard;
    cfg.generation = seat.asg.launches;
    cfg.range = seat.asg.range;
    cfg.quarantine.assign(quarantine_.begin(), quarantine_.end());
    cfg.heartbeat_ms = opts_.heartbeat_ms;

    int fds[2] = {-1, -1};
    if (socket_) {
      // Leader-side journal ownership: open (resume) on the assignment's
      // first launch and seed the dedup map from whatever a predecessor
      // durably recorded.
      if (!seat.asg.led) attach_leader_journal(seat.asg);
      // A socket worker has no local journal to resume from, so the
      // leader narrows its window past the durably-done prefix. Interior
      // gaps (a steal overlap) re-run and land as agreeing duplicates.
      while (cfg.range.begin < cfg.range.end &&
             seat.asg.led->status.count(cfg.range.begin) != 0) {
        ++cfg.range.begin;
      }
      if (cfg.range.begin >= cfg.range.end) {
        // The previous worker recorded everything before dying — the
        // assignment is already complete, nothing to launch.
        seat.state = SeatState::kIdle;
        seat.restart_backoff->reset();
        return;
      }
      cfg.connect_host = opts_.advertise_host.empty() ? opts_.listen_host
                                                      : opts_.advertise_host;
      cfg.connect_port = listen_port_;
      cfg.epoch = ledger_.issue(seat.asg.shard);
    } else {
      cfg.journal_path = seat.asg.journal;
      if (::pipe(fds) != 0) {
        throw SimulationError("distributed sweep: pipe(2) failed: " +
                              std::string(std::strerror(errno)));
      }
      cfg.heartbeat_fd = fds[1];
    }
    if (hook_) hook_(cfg);

    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      if (fds[0] >= 0) ::close(fds[0]);
      if (fds[1] >= 0) ::close(fds[1]);
      if (socket_) ledger_.revoke(cfg.epoch);
      throw SimulationError("distributed sweep: fork(2) failed: " + err);
    }
    if (pid == 0) {
      // Child: drop every leader-side fd — the listener, attached and
      // pending connections, and other seats' pipe read ends (an
      // inherited read end would keep a pipe from ever reporting EOF).
      if (fds[0] >= 0) ::close(fds[0]);
      if (listen_fd_ >= 0) ::close(listen_fd_);
      for (const auto& pc : pending_) {
        if (pc.fd >= 0) ::close(pc.fd);
      }
      for (const auto& other : seats_) {
        if (other.pipe_fd >= 0) ::close(other.pipe_fd);
        if (other.conn_fd >= 0) ::close(other.conn_fd);
      }
      const int rc = body_ ? body_(worker_spec_, cfg)
                           : run_worker(worker_spec_, cfg);
      ::_exit(rc);
    }
    if (!socket_) {
      ::close(fds[1]);
      const int fl = ::fcntl(fds[0], F_GETFL);
      ::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);
    }

    seat.pid = pid;
    seat.pipe_fd = fds[0];
    seat.rdbuf.clear();
    seat.conn_fd = -1;
    seat.decoder.reset();
    seat.epoch = cfg.epoch;
    seat.connected_once = false;
    seat.state = SeatState::kRunning;
    seat.last_beat = Clock::now();
    seat.inflight = -1;
    seat.reported_done = 0;
    seat.wedge_killed = false;
    seat.lost = false;
    seat.stealing = false;
    ++seat.asg.launches;
  }

  /// Open the leader's writer on a socket-mode assignment's journal and
  /// replay its existing records into the dedup map (and the streaming
  /// merger — a resumed file is history subscribers have not seen).
  void attach_leader_journal(Assignment& asg) {
    asg.led = std::make_shared<LeaderJournal>();
    for (const auto& line : read_journal_lines(asg.journal)) {
      driver::JournalEntry entry;
      // Unparseable lines read as undone here and re-run; the final merge
      // still applies the strict typed checks to every line.
      if (!driver::parse_journal_line(line, &entry)) continue;
      asg.led->status.emplace(entry.rec.index, entry.rec.status);
      if (merger_) merger_->offer(entry.rec);
    }
    asg.led->writer.open(asg.journal, /*keep_existing=*/true);
  }

  void wait_for_events(Clock::time_point now) {
    enum class Ref { kListen, kPending, kConn, kPipe };
    std::vector<pollfd> fds;
    std::vector<std::pair<Ref, std::size_t>> owner;
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      owner.emplace_back(Ref::kListen, 0);
    }
    for (std::size_t p = 0; p < pending_.size(); ++p) {
      fds.push_back({pending_[p].fd, POLLIN, 0});
      owner.emplace_back(Ref::kPending, p);
    }
    for (std::size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s].pipe_fd >= 0) {
        fds.push_back({seats_[s].pipe_fd, POLLIN, 0});
        owner.emplace_back(Ref::kPipe, s);
      }
      if (seats_[s].conn_fd >= 0) {
        fds.push_back({seats_[s].conn_fd, POLLIN, 0});
        owner.emplace_back(Ref::kConn, s);
      }
    }
    const int timeout = poll_timeout_ms(now);
    const int n = ::poll(fds.empty() ? nullptr : fds.data(),
                         static_cast<nfds_t>(fds.size()), timeout);
    if (n <= 0) return;  // timeout or EINTR: deadlines handled by caller
    bool accepted = false;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      switch (owner[i].first) {
        case Ref::kListen:
          accepted = true;  // accept after the loop: pending_ may grow
          break;
        case Ref::kPending:
          service_pending(pending_[owner[i].second]);
          break;
        case Ref::kConn:
          // The seat may have been re-attached (its old fd closed) by an
          // earlier service_pending this round; match by fd to be safe.
          if (seats_[owner[i].second].conn_fd == fds[i].fd) {
            drain_socket(seats_[owner[i].second]);
          }
          break;
        case Ref::kPipe:
          drain_pipe(seats_[owner[i].second]);
          break;
      }
    }
    // Drop pending slots that attached (fd moved to a seat) or closed.
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [](const PendingConn& pc) {
                                    return pc.fd < 0;
                                  }),
                   pending_.end());
    if (accepted) accept_connections();
  }

  void accept_connections() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN drained the backlog; anything else (ECONNABORTED,
        // EMFILE, ...) is transient from the leader's point of view — the
        // worker retries with backoff, so just move on.
        break;
      }
      const int fl = ::fcntl(fd, F_GETFL);
      ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
      PendingConn pc;
      pc.fd = fd;
      pc.deadline = after_ms(Clock::now(), kHelloGraceMs);
      pending_.push_back(std::move(pc));
    }
  }

  /// Read a not-yet-identified connection. A valid HELLO attaches the
  /// connection (and its decoder, which may already hold trailing frames)
  /// to the claimed seat; anything else — a revoked epoch, a non-HELLO
  /// first frame, framing garbage — closes it.
  void service_pending(PendingConn& pc) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(pc.fd, buf, sizeof(buf));
      if (n > 0) {
        pc.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      ::close(pc.fd);  // EOF or error before HELLO: not a worker
      pc.fd = -1;
      return;
    }
    Frame frame;
    const auto r = pc.decoder.next(&frame);
    if (r == FrameDecoder::Result::kNeedMore) return;
    if (r == FrameDecoder::Result::kCorrupt ||
        frame.kind != FrameKind::kHello) {
      ::close(pc.fd);
      pc.fd = -1;
      return;
    }
    HelloClaim claim;
    if (!parse_hello_payload(frame.payload, &claim)) {
      ::close(pc.fd);
      pc.fd = -1;
      return;
    }
    Seat* seat = seat_by_epoch(claim.epoch);
    if (seat == nullptr || !ledger_.valid(claim.epoch) ||
        ledger_.shard_of(claim.epoch) != claim.shard) {
      // Fence: this launch's lease was revoked (its shard was given away
      // while the worker was partitioned, or its exit was already
      // handled). The zombie is told so and refused — it can never write
      // a record into a shard someone else now owns.
      ++fenced_;
      (void)send_frame_fd(
          pc.fd, Frame{FrameKind::kHelloAck,
                       std::string("fenced stale epoch ") +
                           std::to_string(claim.epoch)});
      ::close(pc.fd);
      pc.fd = -1;
      return;
    }
    if (!send_frame_fd(pc.fd, Frame{FrameKind::kHelloAck, kHelloAckOk})) {
      ::close(pc.fd);
      pc.fd = -1;
      return;
    }
    if (seat->conn_fd >= 0) ::close(seat->conn_fd);
    seat->conn_fd = pc.fd;
    seat->decoder = std::move(pc.decoder);  // trailing frames come along
    pc.fd = -1;
    pc.decoder.reset();
    if (seat->connected_once) ++reconnects_;
    seat->connected_once = true;
    seat->last_beat = Clock::now();
    process_frames(*seat);
  }

  Seat* seat_by_epoch(std::uint64_t epoch) {
    if (epoch == 0) return nullptr;
    for (auto& seat : seats_) {
      if (seat.epoch == epoch) return &seat;
    }
    return nullptr;
  }

  /// Sleep until the nearest deadline: a backoff expiry, a liveness
  /// timeout, a SIGTERM grace cutoff, or a pending handshake deadline —
  /// capped so child exits (reaped with WNOHANG) are noticed promptly
  /// even when no deadline is near.
  int poll_timeout_ms(Clock::time_point now) const {
    double next = socket_ ? 50.0 : 250.0;
    const double liveness = liveness_ms();
    for (const auto& pc : pending_) {
      next = std::min(next, ms_between(now, pc.deadline));
    }
    for (const auto& seat : seats_) {
      if (!socket_ && seat.pid > 0 && seat.pipe_fd < 0) {
        // Heartbeat EOF seen but the exit not yet reaped: the process is
        // mid-_exit — fds close before the zombie becomes waitable — so
        // there is nothing to poll. Tick fast until waitpid catches it
        // instead of sleeping out a full deadline (a worker that closed
        // its pipe but lives on stops beating and hits the liveness kill,
        // so this fast path is bounded).
        return 2;
      }
      switch (seat.state) {
        case SeatState::kBackoff:
          next = std::min(next, ms_between(now, seat.backoff_until));
          break;
        case SeatState::kRunning:
          if (liveness > 0.0) {
            next = std::min(
                next, ms_between(now, after_ms(seat.last_beat, liveness)));
          }
          break;
        case SeatState::kTerming:
          next = std::min(next, ms_between(now, seat.term_deadline));
          break;
        case SeatState::kIdle:
          break;
      }
    }
    return std::max(socket_ ? 5 : 10, static_cast<int>(std::ceil(next)));
  }

  double liveness_ms() const {
    if (opts_.heartbeat_ms <= 0.0) return 0.0;  // liveness disabled
    return opts_.heartbeat_ms * opts_.liveness_factor;
  }

  void drain_pipe(Seat& seat) {
    char buf[4096];
    bool got_bytes = false;
    for (;;) {
      const ssize_t n = ::read(seat.pipe_fd, buf, sizeof(buf));
      if (n > 0) {
        got_bytes = true;
        seat.rdbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF (or a read error): the write end is gone. The exit itself is
      // observed via waitpid; here we only retire the fd.
      ::close(seat.pipe_fd);
      seat.pipe_fd = -1;
      break;
    }
    // Any traffic at all proves the process is scheduling — that is the
    // liveness signal. Parsed lines additionally update progress state.
    if (got_bytes) seat.last_beat = Clock::now();
    std::size_t nl = 0;
    while ((nl = seat.rdbuf.find('\n')) != std::string::npos) {
      const std::string line = seat.rdbuf.substr(0, nl);
      seat.rdbuf.erase(0, nl + 1);
      Heartbeat hb;
      if (!parse_heartbeat_line(line, &hb)) continue;  // torn/garbled: drop
      apply_heartbeat(seat, hb);
    }
  }

  void drain_socket(Seat& seat) {
    char buf[4096];
    bool got_bytes = false;
    for (;;) {
      const ssize_t n = ::read(seat.conn_fd, buf, sizeof(buf));
      if (n > 0) {
        got_bytes = true;
        seat.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or error: the connection dropped. Unlike a pipe EOF this is
      // not evidence of death — the worker may be mid-reconnect behind a
      // partition. Liveness (kConnectionLost) decides later.
      ::close(seat.conn_fd);
      seat.conn_fd = -1;
      break;
    }
    if (got_bytes) seat.last_beat = Clock::now();
    process_frames(seat);
  }

  void process_frames(Seat& seat) {
    Frame frame;
    for (;;) {
      const auto r = seat.decoder.next(&frame);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kCorrupt) {
        // Framing desync is unrecoverable on a byte stream: drop the
        // connection, the worker reconnects and the codec starts clean.
        if (seat.conn_fd >= 0) {
          ::close(seat.conn_fd);
          seat.conn_fd = -1;
        }
        seat.decoder.reset();
        break;
      }
      switch (frame.kind) {
        case FrameKind::kHeartbeat: {
          Heartbeat hb;
          if (parse_heartbeat_line(frame.payload, &hb)) {
            apply_heartbeat(seat, hb);
          }
          break;
        }
        case FrameKind::kJournal:
          handle_journal_frame(seat, frame.payload);
          break;
        default:
          break;  // wrong-direction or unknown control frame: ignore
      }
    }
  }

  void apply_heartbeat(Seat& seat, const Heartbeat& hb) {
    seat.reported_done = hb.points_done;
    seat.inflight = hb.kind == Heartbeat::Kind::kPointStart ? hb.inflight
                    : hb.kind == Heartbeat::Kind::kPointDone
                        ? -1
                        : seat.inflight;
  }

  /// One shipped journal record: append-once (fsync before the ack, so an
  /// acked record is durable), dedup retransmissions by grid index, and
  /// feed the streaming merger. A status-disagreeing duplicate or a
  /// record that contradicts the grid is a JournalConflictError — the
  /// same trust model as the batch merge.
  void handle_journal_frame(Seat& seat, const std::string& payload) {
    std::size_t index = 0;
    std::string line;
    if (!parse_journal_payload(payload, &index, &line)) return;  // garbled
    driver::JournalEntry entry;
    if (!driver::parse_journal_line(line, &entry) ||
        entry.rec.index != index) {
      return;  // no ack: the worker retransmits (or dies trying)
    }
    if (index >= points_.size() || entry.seed != points_[index].seed) {
      throw JournalConflictError(
          "shard " + std::to_string(seat.asg.shard) +
          " shipped a record that does not match this sweep (point " +
          std::to_string(index) + "); refusing to mix campaigns");
    }
    PSYNC_CHECK(seat.asg.led != nullptr);
    LeaderJournal& led = *seat.asg.led;
    const auto it = led.status.find(index);
    if (it != led.status.end()) {
      if (it->second != entry.rec.status) {
        throw JournalConflictError(
            "point " + std::to_string(index) +
            " shipped twice with disagreeing status (" +
            std::string(driver::to_string(it->second)) + " vs " +
            driver::to_string(entry.rec.status) + ")");
      }
      ++shipped_duplicates_;  // idempotent retransmission: ack again
    } else {
      led.writer.append(line);  // durable before the ack goes out
      led.status.emplace(index, entry.rec.status);
      if (merger_) merger_->offer(entry.rec);
    }
    if (seat.conn_fd >= 0) {
      (void)send_frame_fd(seat.conn_fd, Frame{FrameKind::kJournalAck,
                                              journal_ack_payload(index)});
    }
  }

  /// Pipe-mode streaming: tail every shard journal file for complete new
  /// lines and feed them to the merger. Only runs when a streaming sink
  /// is configured, so the plain pipe path pays nothing.
  void tail_journals() {
    for (const auto& path : journal_paths_) {
      auto& tail = tails_[path];
      const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) continue;  // not created yet
      if (tail.offset > 0) {
        ::lseek(fd, static_cast<off_t>(tail.offset), SEEK_SET);
      }
      char buf[8192];
      ssize_t n = 0;
      while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
        tail.buf.append(buf, static_cast<std::size_t>(n));
        tail.offset += static_cast<std::size_t>(n);
      }
      ::close(fd);
      std::size_t nl = 0;
      while ((nl = tail.buf.find('\n')) != std::string::npos) {
        const std::string line = tail.buf.substr(0, nl);
        tail.buf.erase(0, nl + 1);
        driver::JournalEntry entry;
        if (!driver::parse_journal_line(line, &entry)) continue;
        if (entry.rec.index >= points_.size() ||
            entry.seed != points_[entry.rec.index].seed) {
          continue;  // the batch merge raises the typed error
        }
        merger_->offer(entry.rec);
      }
    }
  }

  void reap() {
    // Wait on our own pids only: a host process (test binary, CLI) may have
    // children of its own, and waitpid(-1) would swallow their statuses.
    for (auto& seat : seats_) {
      if (seat.pid <= 0) continue;
      int wstatus = 0;
      const pid_t pid = ::waitpid(seat.pid, &wstatus, WNOHANG);
      if (pid == seat.pid) handle_exit(seat, wstatus);
    }
    // Orphans (partitioned workers whose shard moved on) exit on their own
    // once fencing turns them away; collect them opportunistically.
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      int wstatus = 0;
      const pid_t pid = ::waitpid(*it, &wstatus, WNOHANG);
      if (pid == *it || (pid < 0 && errno == ECHILD)) {
        it = orphans_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void enforce_deadlines(Clock::time_point now) {
    const double liveness = liveness_ms();
    for (auto& pc : pending_) {
      if (pc.fd >= 0 && now >= pc.deadline) {
        ::close(pc.fd);  // never said HELLO: not a worker
        pc.fd = -1;
      }
    }
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [](const PendingConn& pc) {
                                    return pc.fd < 0;
                                  }),
                   pending_.end());
    for (auto& seat : seats_) {
      if (seat.state != SeatState::kRunning || liveness <= 0.0 ||
          ms_between(seat.last_beat, now) <= liveness) {
        if (seat.state == SeatState::kTerming && now >= seat.term_deadline &&
            seat.pid > 0) {
          ::kill(seat.pid, SIGKILL);
          seat.term_deadline = after_ms(now, opts_.term_grace_ms);
        }
        continue;
      }
      if (socket_ && seat.conn_fd < 0) {
        // Silent *and* disconnected: the worker is on the far side of a
        // partition (or its host died). Two reasons not to SIGKILL the
        // pid: it may be a launch wrapper whose real worker is remote,
        // and killing is not needed for safety — revoking the epoch is.
        // The shard relaunches; if the original ever reconnects it is
        // fenced and stands down by itself.
        record_incident(
            driver::FailureKind::kConnectionLost,
            "shard " + std::to_string(seat.asg.shard) + " worker (pid " +
                std::to_string(seat.pid) + ", epoch " +
                std::to_string(seat.epoch) + ") disconnected and silent for " +
                std::to_string(static_cast<long>(
                    ms_between(seat.last_beat, now))) +
                " ms (liveness timeout " +
                std::to_string(static_cast<long>(liveness)) +
                " ms); fencing its epoch and relaunching",
            seat.asg.launches);
        ledger_.revoke(seat.epoch);
        seat.epoch = 0;
        if (seat.pid > 0) orphans_.push_back(seat.pid);
        seat.pid = -1;
        seat.lost = true;
        schedule_relaunch(seat);
        continue;
      }
      // Wedged: the channel has been silent past the liveness timeout even
      // though the worker-side timer thread beats through long points.
      // SIGKILL is the only safe answer to a process we can't trust to
      // unwind; the journal is fsync'd line-by-line so nothing durable
      // is lost.
      record_incident(
          driver::FailureKind::kTimeout,
          "shard " + std::to_string(seat.asg.shard) + " worker (pid " +
              std::to_string(seat.pid) + ") heartbeat silent for " +
              std::to_string(
                  static_cast<long>(ms_between(seat.last_beat, now))) +
              " ms (liveness timeout " +
              std::to_string(static_cast<long>(liveness)) + " ms); killing",
          seat.asg.launches);
      seat.wedge_killed = true;
      ::kill(seat.pid, SIGKILL);
      // Exit flows through the normal reap path; stay out of kRunning so
      // the incident isn't re-recorded next tick.
      seat.state = SeatState::kTerming;
      seat.term_deadline = after_ms(now, opts_.term_grace_ms);
    }
  }

  void handle_exit(Seat& seat, int wstatus) {
    if (seat.pipe_fd >= 0) {
      drain_pipe(seat);  // salvage the final heartbeats
      if (seat.pipe_fd >= 0) {
        ::close(seat.pipe_fd);
        seat.pipe_fd = -1;
      }
    }
    if (seat.conn_fd >= 0) {
      drain_socket(seat);  // salvage frames still in the socket buffer
      if (seat.conn_fd >= 0) {
        ::close(seat.conn_fd);
        seat.conn_fd = -1;
      }
    }
    if (seat.epoch != 0) {
      // This launch is over; any later claim of its epoch is a zombie.
      ledger_.revoke(seat.epoch);
      seat.epoch = 0;
    }
    seat.pid = -1;

    if (shutdown_) {
      seat.state = SeatState::kIdle;
      return;
    }

    const bool graceful = WIFEXITED(wstatus) &&
                          (WEXITSTATUS(wstatus) == kWorkerExitOk ||
                           WEXITSTATUS(wstatus) == kWorkerExitCancelled ||
                           WEXITSTATUS(wstatus) == kWorkerExitFenced);
    const std::vector<std::size_t> undone = undone_in(seat.asg);

    if (seat.stealing) {
      // Steal reclaim: however the victim died (graceful exit 4, or a
      // crash racing the SIGTERM), its journal says what is left; split
      // that across the idle capacity. An ungraceful end is still an
      // incident worth recording.
      if (!graceful) {
        record_incident(driver::FailureKind::kInternalError,
                        exit_description(seat, wstatus), seat.asg.launches);
        note_crash_point(seat, undone);
      }
      repartition(seat, undone);
      seat.state = SeatState::kIdle;
      seat.stealing = false;
      return;
    }

    if (undone.empty()) {
      // Assignment complete. The journal, not the exit code, is the truth:
      // a worker that crashed after durably recording its last point owes
      // us nothing.
      seat.state = SeatState::kIdle;
      seat.restart_backoff->reset();
      return;
    }

    // Crash (or an exit-0 liar with an incomplete journal — treat the
    // same; trusting it would silently drop points).
    if (!seat.wedge_killed && !seat.lost) {
      record_incident(driver::FailureKind::kInternalError,
                      exit_description(seat, wstatus), seat.asg.launches);
    }
    note_crash_point(seat, undone);
    schedule_relaunch(seat);
  }

  /// Relaunch policy shared by crash exits and connection loss: give up
  /// after max_restarts, otherwise back off with decorrelated jitter.
  void schedule_relaunch(Seat& seat) {
    if (seat.asg.launches > opts_.max_restarts) {
      record_incident(
          driver::FailureKind::kWorkerCrash,
          "shard " + std::to_string(seat.asg.shard) + " abandoned after " +
              std::to_string(seat.asg.launches - 1) + " restart(s); " +
              "unfinished point(s) will be reported as failed",
          seat.asg.launches);
      gave_up_ = true;
      seat.state = SeatState::kIdle;
      return;
    }
    ++restarts_;
    seat.state = SeatState::kBackoff;
    seat.backoff_until =
        after_ms(Clock::now(), seat.restart_backoff->next_ms());
  }

  std::string exit_description(const Seat& seat, int wstatus) const {
    std::string msg = "shard " + std::to_string(seat.asg.shard) + " worker ";
    if (WIFSIGNALED(wstatus)) {
      msg += "killed by signal " + std::to_string(WTERMSIG(wstatus));
    } else if (WIFEXITED(wstatus)) {
      msg += "exited with status " + std::to_string(WEXITSTATUS(wstatus));
    } else {
      msg += "ended abnormally";
    }
    if (seat.inflight >= 0) {
      msg += " while point " + std::to_string(seat.inflight) + " was in flight";
    }
    return msg;
  }

  /// Crash-streak bookkeeping: K consecutive crashes with the same point
  /// in flight quarantine that point (the next launch journals the
  /// kQuarantined verdict instead of executing it again).
  void note_crash_point(const Seat& seat,
                        const std::vector<std::size_t>& undone) {
    if (seat.inflight < 0) return;
    const auto idx = static_cast<std::size_t>(seat.inflight);
    // Only an unfinished point can be the culprit; a crash after the
    // journal line landed is not the point's fault.
    if (!std::binary_search(undone.begin(), undone.end(), idx)) return;
    const std::size_t streak = ++crash_streak_[idx];
    if (streak >= opts_.crash_quarantine_after &&
        quarantine_.insert(idx).second) {
      record_incident(
          driver::FailureKind::kWorkerCrash,
          "point " + std::to_string(idx) + " quarantined after " +
              std::to_string(streak) + " consecutive worker crash(es)",
          streak);
    }
  }

  /// Grid indices in the assignment's window with no journaled record,
  /// ascending. Unparseable lines are skipped here (their points read as
  /// undone and re-run); the final merge still applies the strict typed
  /// checks to every line.
  std::vector<std::size_t> undone_in(const Assignment& asg) const {
    std::vector<char> done(asg.range.size(), 0);
    for (const auto& line : read_journal_lines(asg.journal)) {
      driver::JournalEntry entry;
      if (!driver::parse_journal_line(line, &entry)) continue;
      if (asg.range.contains(entry.rec.index)) {
        done[entry.rec.index - asg.range.begin] = 1;
      }
    }
    std::vector<std::size_t> undone;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (done[i] == 0) undone.push_back(asg.range.begin + i);
    }
    return undone;
  }

  /// Split a reclaimed range across the idle capacity. Chunk 0 keeps the
  /// original journal (resume skips everything already recorded); chunks
  /// k >= 1 get fresh `.steal<k>` journals so every file has exactly one
  /// sequence of owners.
  void repartition(Seat& seat, const std::vector<std::size_t>& undone) {
    if (undone.empty()) return;
    std::size_t idle = 0;
    for (const auto& other : seats_) {
      if (other.state == SeatState::kIdle) ++idle;
    }
    const ShardRange remaining{undone.front(), seat.asg.range.end};
    const auto chunks = split_range(remaining, 1 + idle);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      Assignment asg;
      asg.shard = seat.asg.shard;
      asg.range = chunks[c];
      if (c == 0) {
        asg.journal = seat.asg.journal;
        asg.launches = seat.asg.launches;
        asg.led = seat.asg.led;  // same file, same writer, same dedup map
      } else {
        const std::size_t k = ++steal_counter_[seat.asg.shard];
        asg.journal = shard_journal_path(opts_.journal_base, seat.asg.shard, k);
        journal_paths_.push_back(asg.journal);
        ++steals_;
      }
      queue_.push_back(std::move(asg));
    }
  }

  void record_incident(driver::FailureKind kind, std::string message,
                       std::size_t attempts) {
    incidents_.push_back(
        driver::PointFailure{kind, std::move(message), attempts});
  }

  // --- final assembly --------------------------------------------------

  driver::SweepResult assemble() {
    // Release the leader-held journal writers (and their flocks) before
    // the merge reads the files back.
    for (auto& seat : seats_) {
      if (seat.asg.led) seat.asg.led->writer.close();
    }
    MergedJournal merged =
        merge_journals(points_, spec_.workload, journal_paths_);
    if (!merged.missing.empty() && !gave_up_) {
      throw SimulationError(
          "distributed sweep finished with " +
          std::to_string(merged.missing.size()) +
          " unrecorded point(s) but no abandoned shard — supervisor bug");
    }
    for (const std::size_t idx : merged.missing) {
      driver::RunRecord rec;
      rec.index = idx;
      rec.workload = spec_.workload;
      rec.knobs = points_[idx].knobs;
      rec.status = driver::PointStatus::kFailed;
      rec.failure = driver::PointFailure{
          driver::FailureKind::kWorkerCrash,
          "shard abandoned after exhausting worker restarts", 0};
      merged.records[idx] = std::move(rec);
    }
    driver::SweepResult result;
    result.spec = spec_;
    result.records = std::move(merged.records);
    result.campaign = driver::summarize_campaign(result.records);
    result.campaign.worker_restarts = restarts_;
    result.campaign.worker_steals = steals_;
    result.campaign.worker_reconnects = reconnects_;
    result.campaign.worker_fenced = fenced_;
    result.campaign.worker_failures = std::move(incidents_);
    return result;
  }

  driver::ExperimentSpec spec_;         // as given (result.spec)
  driver::ExperimentSpec worker_spec_;  // scrubbed copy workers overlay
  SupervisorOptions opts_;
  const WorkerBody& body_;
  const LaunchHook& hook_;

  std::vector<driver::RunPoint> points_;
  std::vector<Seat> seats_;
  std::deque<Assignment> queue_;
  std::vector<std::string> journal_paths_;
  std::size_t next_shard_id_ = 0;
  std::map<std::size_t, std::size_t> steal_counter_;  // per original shard
  std::map<std::size_t, std::size_t> crash_streak_;   // per grid index
  std::set<std::size_t> quarantine_;
  std::vector<driver::PointFailure> incidents_;
  std::uint64_t restarts_ = 0;
  std::uint64_t steals_ = 0;
  bool gave_up_ = false;
  bool shutdown_ = false;

  // --- socket transport state ------------------------------------------
  bool socket_ = false;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  EpochLedger ledger_;
  std::vector<PendingConn> pending_;
  std::vector<pid_t> orphans_;  // partitioned pids awaiting self-exit
  std::uint64_t reconnects_ = 0;
  std::uint64_t fenced_ = 0;
  std::uint64_t shipped_duplicates_ = 0;

  // --- streaming merge -------------------------------------------------
  std::optional<StreamingMerger> merger_;
  struct TailState {
    std::size_t offset = 0;
    std::string buf;
  };
  std::map<std::string, TailState> tails_;  // pipe-mode journal tailing
};

}  // namespace

driver::SweepResult run_distributed(const driver::ExperimentSpec& spec,
                                    const SupervisorOptions& opts,
                                    const WorkerBody& body,
                                    const LaunchHook& hook) {
  Supervisor supervisor(spec, opts, body, hook);
  return supervisor.run();
}

driver::CampaignExecutor distributed_executor(SupervisorOptions opts) {
  return [opts](const driver::FrozenSpec& frozen,
                driver::CampaignFeed& feed) -> driver::SweepResult {
    SupervisorOptions run_opts = opts;
    if (run_opts.journal_base.empty()) {
      if (!frozen.spec.journal_path.empty()) {
        run_opts.journal_base = frozen.spec.journal_path + ".dist";
      } else {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(frozen.digest));
        run_opts.journal_base = "/tmp/psync-dist-" + std::string(hex);
      }
    }
    run_opts.cancel = feed.token();
    std::vector<char> streamed(frozen.points.size(), 0);
    const auto chained = run_opts.on_record;
    run_opts.on_record = [&feed, &streamed, &chained](
                             std::size_t index,
                             const driver::RunRecord& rec) {
      if (index < streamed.size()) streamed[index] = 1;
      feed.emit(index, rec);
      if (chained) chained(index, rec);
    };
    driver::SweepResult result = run_distributed(frozen.spec, run_opts);
    // Back-fill: records the stream never carried (e.g. the synthesized
    // failures of an abandoned shard) so subscribers see every point
    // exactly once.
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      if (i >= streamed.size() || streamed[i] == 0) {
        feed.emit(i, result.records[i]);
      }
    }
    return result;
  };
}

}  // namespace psync::dist
