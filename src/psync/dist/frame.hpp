// Length-prefixed binary framing for the socket transport.
//
// Wire format, little-endian:
//
//   magic(0xF5) | kind(u8) | payload_len(u32) | payload bytes
//
// Payloads are the *existing* text codecs — a heartbeat frame carries
// exactly one heartbeat.hpp wire line, a journal frame carries exactly one
// campaign.hpp journal line — so the socket transport adds delivery, not a
// second serialization of campaign state. Control frames (hello, acks) use
// the same space-separated text style.
//
// FrameDecoder is an incremental parser: feed() it whatever read(2)
// returned — one byte at a time if the kernel feels like it — and next()
// yields complete frames. A bad magic, unknown kind, or oversized length
// marks the stream corrupt permanently: framing desync on a byte stream is
// unrecoverable, the only safe answer is to drop the connection and let
// the reconnect handshake start clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace psync::dist {

inline constexpr unsigned char kFrameMagic = 0xF5;
inline constexpr std::size_t kFrameHeaderBytes = 6;
/// A journal line for one point is well under a megabyte; anything claiming
/// more is framing desync, not data.
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

enum class FrameKind : std::uint8_t {
  kHello = 1,       // worker -> leader: "shard <id> epoch <e>" lease claim
  kHelloAck = 2,    // leader -> worker: "ok" | "fenced <reason>"
  kHeartbeat = 3,   // worker -> leader: one heartbeat.hpp text line
  kJournal = 4,     // worker -> leader: "<index> <journal line>"
  kJournalAck = 5,  // leader -> worker: "<index>" durably appended
};

[[nodiscard]] bool frame_kind_valid(std::uint8_t kind);

struct Frame {
  FrameKind kind = FrameKind::kHeartbeat;
  std::string payload;
};

/// Render one frame as wire bytes (header + payload).
[[nodiscard]] std::string encode_frame(const Frame& frame);

class FrameDecoder {
 public:
  enum class Result {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // the buffered prefix is an incomplete frame
    kCorrupt,   // framing broken (sticky): drop the connection
  };

  /// Append raw bytes off the wire.
  void feed(const char* data, std::size_t n);

  /// Extract the next complete frame. Call in a loop after each feed():
  /// one read may complete several frames.
  Result next(Frame* out);

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t pending_bytes() const {
    return buf_.size() - pos_;
  }
  /// Forget all buffered bytes and the corrupt flag — a reconnected stream
  /// starts from a clean frame boundary.
  void reset();

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  bool corrupt_ = false;
};

// --- control-frame payload codecs ------------------------------------

/// The lease claim a worker opens every connection with. `epoch` is the
/// fencing identity: the leader issued it for exactly one launch of one
/// assignment, and refuses any epoch it has since revoked.
struct HelloClaim {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
};

[[nodiscard]] std::string hello_payload(const HelloClaim& claim);
[[nodiscard]] bool parse_hello_payload(const std::string& payload,
                                       HelloClaim* out);

/// Render/parse a journal frame: "<index> <journal line>". The index is
/// carried outside the JSON so the leader can ack and dedup without
/// parsing the record body first.
[[nodiscard]] std::string journal_payload(std::size_t index,
                                          const std::string& line);
[[nodiscard]] bool parse_journal_payload(const std::string& payload,
                                         std::size_t* index,
                                         std::string* line);

/// Render/parse a journal ack payload: the decimal index.
[[nodiscard]] std::string journal_ack_payload(std::size_t index);
[[nodiscard]] bool parse_journal_ack_payload(const std::string& payload,
                                             std::size_t* index);

inline constexpr const char* kHelloAckOk = "ok";
/// "fenced ..." prefix check for hello-ack payloads.
[[nodiscard]] bool hello_ack_fenced(const std::string& payload);

}  // namespace psync::dist
