#include "psync/dist/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "psync/common/check.hpp"

namespace psync::dist {

// --- PipeWorkerLink ----------------------------------------------------

PipeWorkerLink::PipeWorkerLink(int fd, CancelToken* on_dead)
    : fd_(fd), on_dead_(on_dead) {}

bool PipeWorkerLink::send_heartbeat(const Heartbeat& hb) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return true;  // heartbeats disabled: never "dead"
  if (broken_) return false;
  std::string line = heartbeat_line(hb);
  line.push_back('\n');
  // One write(2) per line, far below PIPE_BUF: atomic against the other
  // writer thread. EPIPE means the leader is gone — stop beating and ask
  // the worker to wind down (SIGPIPE is ignored in worker processes).
  ssize_t n = -1;
  do {
    n = ::write(fd_, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    broken_ = true;
    if (on_dead_ != nullptr) on_dead_->cancel();
    return false;
  }
  return true;
}

// --- SocketWorkerLink --------------------------------------------------

SocketWorkerLink::SocketWorkerLink(const SocketLinkOptions& opts,
                                   CancelToken* on_fenced)
    : opts_(opts),
      on_fenced_(on_fenced),
      chaos_(opts.chaos),
      backoff_(opts.reconnect_base_ms, opts.reconnect_cap_ms,
               opts.reconnect_seed),
      t0_(std::chrono::steady_clock::now()) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)ensure_connected_locked(now_ms());
}

SocketWorkerLink::~SocketWorkerLink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double SocketWorkerLink::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

bool SocketWorkerLink::send_heartbeat(const Heartbeat& hb) {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_ms();
  pump_locked(now);
  if (fenced_) return false;
  if (fd_ >= 0) {
    transmit_locked({FrameKind::kHeartbeat, heartbeat_line(hb)}, now);
  }
  // Disconnected is not dead: the reconnect loop keeps trying, and a
  // missed heartbeat during an outage is exactly what the leader's
  // connection-loss taxonomy is for.
  return !fenced_;
}

void SocketWorkerLink::send_journal(std::size_t index,
                                    const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return;
  const double now = now_ms();
  unacked_[index] = Pending{line, -1.0};
  pump_locked(now);
  if (fd_ >= 0) {
    transmit_locked({FrameKind::kJournal, journal_payload(index, line)}, now);
    const auto it = unacked_.find(index);
    if (it != unacked_.end()) it->second.last_sent_ms = now;
  }
}

bool SocketWorkerLink::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

std::size_t SocketWorkerLink::unacked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unacked_.size();
}

bool SocketWorkerLink::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

std::size_t SocketWorkerLink::reconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconnects_;
}

bool SocketWorkerLink::flush(double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fenced_) return false;
      if (unacked_.empty()) return true;
      pump_locked(now_ms());
      if (unacked_.empty()) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(mu_);
  return unacked_.empty();
}

void SocketWorkerLink::pump_locked(double now) {
  if (fenced_) return;
  if (!ensure_connected_locked(now)) return;
  drain_locked(now);
  if (fd_ < 0 || fenced_) return;
  // Retransmit shipped-but-unacked records (a dropped frame, or a
  // reconnect that raced the ack). The leader dedups by index, so an ack
  // that was merely delayed costs one agreeing duplicate, nothing more.
  for (auto& [index, pending] : unacked_) {
    if (pending.last_sent_ms >= 0.0 &&
        now - pending.last_sent_ms < opts_.resend_ms) {
      continue;
    }
    transmit_locked({FrameKind::kJournal, journal_payload(index, pending.line)},
                    now);
    pending.last_sent_ms = now;
    if (fd_ < 0) return;  // transmit noticed a dead connection
  }
  // Release chaos-delayed frames whose hold expired.
  for (const Frame& frame : chaos_.due(now)) {
    if (fd_ < 0) break;
    raw_send_locked(encode_frame(frame), now);
  }
}

bool SocketWorkerLink::ensure_connected_locked(double now) {
  if (fd_ >= 0) return true;
  if (fenced_) return false;
  if (chaos_.partitioned(now)) return false;  // the net is "down"
  if (now < next_connect_ms_) return false;
  const int fd = tcp_connect(opts_.host, opts_.port);
  if (fd < 0) {
    next_connect_ms_ = now + backoff_.next_ms();
    return false;
  }
  // Handshake, in the clear (chaos applies to post-handshake frames only:
  // a HELLO that never arrives is indistinguishable from the connect
  // failing, which the partition injection already covers).
  const HelloClaim claim{opts_.shard, opts_.epoch};
  const std::string hello =
      encode_frame({FrameKind::kHello, hello_payload(claim)});
  std::size_t off = 0;
  while (off < hello.size()) {
    const ssize_t n = ::write(fd, hello.data() + off, hello.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      next_connect_ms_ = now + backoff_.next_ms();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // Wait (bounded) for the ack.
  decoder_.reset();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              opts_.handshake_timeout_ms));
  Frame ack;
  for (;;) {
    FrameDecoder::Result r = decoder_.next(&ack);
    if (r == FrameDecoder::Result::kFrame) break;
    if (r == FrameDecoder::Result::kCorrupt ||
        std::chrono::steady_clock::now() >= deadline) {
      ::close(fd);
      decoder_.reset();
      next_connect_ms_ = now + backoff_.next_ms();
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pn = ::poll(&pfd, 1, 50);
    if (pn < 0 && errno != EINTR) {
      ::close(fd);
      next_connect_ms_ = now + backoff_.next_ms();
      return false;
    }
    if (pn <= 0) continue;
    char buf[1024];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      next_connect_ms_ = now + backoff_.next_ms();
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
  if (ack.kind != FrameKind::kHelloAck) {
    ::close(fd);
    decoder_.reset();
    next_connect_ms_ = now + backoff_.next_ms();
    return false;
  }
  if (hello_ack_fenced(ack.payload)) {
    ::close(fd);
    decoder_.reset();
    fence_locked();
    return false;
  }
  // Accepted. Nonblocking from here on; the pump drains acks.
  const int fl = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  fd_ = fd;
  if (connected_once_) ++reconnects_;
  connected_once_ = true;
  backoff_.reset();
  next_connect_ms_ = 0.0;
  // Everything unacked goes again right away — the previous connection
  // may have died with records in flight.
  for (auto& [index, pending] : unacked_) {
    transmit_locked({FrameKind::kJournal, journal_payload(index, pending.line)},
                    now);
    pending.last_sent_ms = now;
    if (fd_ < 0) return false;
  }
  return fd_ >= 0;
}

void SocketWorkerLink::drain_locked(double now) {
  if (fd_ < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    disconnect_locked(now);  // EOF or a hard error
    return;
  }
  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(&frame);
    if (r == FrameDecoder::Result::kNeedMore) break;
    if (r == FrameDecoder::Result::kCorrupt) {
      disconnect_locked(now);  // framing desync: only a fresh stream helps
      return;
    }
    switch (frame.kind) {
      case FrameKind::kJournalAck: {
        std::size_t index = 0;
        if (parse_journal_ack_payload(frame.payload, &index)) {
          unacked_.erase(index);
        }
        break;
      }
      case FrameKind::kHelloAck:
        // A late fence: the leader decided mid-stream this epoch is done.
        if (hello_ack_fenced(frame.payload)) {
          disconnect_locked(now);
          fence_locked();
          return;
        }
        break;
      default:
        break;  // leader never sends other kinds; ignore
    }
  }
}

void SocketWorkerLink::transmit_locked(const Frame& frame, double now) {
  for (const Frame& out : chaos_.offer(frame, now)) {
    if (fd_ < 0) break;
    raw_send_locked(encode_frame(out), now);
  }
  if (chaos_.take_partition(now) && fd_ >= 0) {
    disconnect_locked(now);
  }
}

void SocketWorkerLink::raw_send_locked(const std::string& wire, double now) {
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The kernel buffer is full (tiny frames, so this is rare). A short
      // blocking wait beats dropping the frame on the floor.
      pollfd pfd{fd_, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0) {
      disconnect_locked(now);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void SocketWorkerLink::disconnect_locked(double now) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.reset();
  next_connect_ms_ = now + backoff_.next_ms();
}

void SocketWorkerLink::fence_locked() {
  fenced_ = true;
  if (on_fenced_ != nullptr) on_fenced_->cancel();
}

// --- EpochLedger -------------------------------------------------------

std::uint64_t EpochLedger::issue(std::size_t shard) {
  const std::uint64_t epoch = next_++;
  active_[epoch] = shard;
  return epoch;
}

void EpochLedger::revoke(std::uint64_t epoch) { active_.erase(epoch); }

bool EpochLedger::valid(std::uint64_t epoch) const {
  return active_.count(epoch) != 0;
}

std::size_t EpochLedger::shard_of(std::uint64_t epoch) const {
  const auto it = active_.find(epoch);
  PSYNC_CHECK(it != active_.end());
  return it->second;
}

// --- TCP plumbing ------------------------------------------------------

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* actual_port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &res);
  if (rc != 0) {
    throw SimulationError("dist: cannot resolve listen address '" + host +
                          "': " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string err = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      break;
    }
    err = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw SimulationError("dist: cannot listen on " + host + ":" +
                          std::to_string(port) + ": " + err);
  }
  if (actual_port != nullptr) {
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      if (addr.ss_family == AF_INET) {
        *actual_port =
            ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        *actual_port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
      }
    }
  }
  const int fl = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  return fd;
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(fd);
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

bool parse_host_port(const std::string& s, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = s.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    port_str = s;
  } else {
    *host = s.substr(0, colon);
    port_str = s.substr(colon + 1);
  }
  if (host->empty() || port_str.empty()) return false;
  char* endp = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(port_str.c_str(), &endp, 10);
  if (endp == port_str.c_str() || *endp != '\0' || errno != 0 || v > 65535) {
    return false;
  }
  *port = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace psync::dist
