#include "psync/perf/bench_report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "psync/common/check.hpp"

namespace psync::perf {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

// --- minimal parser for the JSON bench_report_json emits ---------------

class Cursor {
 public:
  explicit Cursor(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        out.push_back(e == 'n' ? '\n' : e);
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(s_.substr(start, pos_ - start));
  }

  bool parse_bool() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected bool");
    return false;
  }

  /// Skip any value (used for keys added by future schema versions).
  void skip_value() {
    skip_ws();
    if (peek('"')) {
      parse_string();
    } else if (eat('[')) {
      if (!eat(']')) {
        do {
          skip_value();
        } while (eat(','));
        expect(']');
      }
    } else if (eat('{')) {
      if (!eat('}')) {
        do {
          parse_string();
          expect(':');
          skip_value();
        } while (eat(','));
        expect('}');
      }
    } else if (peek('t') || peek('f')) {
      parse_bool();
    } else {
      parse_number();
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw SimulationError("bench report parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

BenchEntry parse_entry(Cursor& cur) {
  BenchEntry e;
  cur.expect('{');
  if (!cur.eat('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "name") {
        e.name = cur.parse_string();
      } else if (key == "wall_ms") {
        e.wall_ms = cur.parse_number();
      } else if (key == "min_iter_ms") {
        e.min_iter_ms = cur.parse_number();
      } else if (key == "iters") {
        e.iters = static_cast<std::uint64_t>(cur.parse_number());
      } else if (key == "events") {
        e.events = static_cast<std::uint64_t>(cur.parse_number());
      } else if (key == "note") {
        e.note = cur.parse_string();
      } else {
        cur.skip_value();  // per_iter_ms / events_per_sec are derived
      }
    } while (cur.eat(','));
    cur.expect('}');
  }
  if (e.name.empty()) cur.fail("benchmark entry without a name");
  return e;
}

}  // namespace

const BenchEntry* BenchReport::find(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string bench_report_json(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"schema_version\": " + std::to_string(report.schema_version) +
         ",\n";
  out += std::string("  \"quick\": ") + (report.quick ? "true" : "false") +
         ",\n";
  out += "  \"benchmarks\": [";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const BenchEntry& e = report.entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(&out, e.name);
    out += ", \"wall_ms\": " + fmt_double(e.wall_ms);
    out += ", \"iters\": " + std::to_string(e.iters);
    out += ", \"per_iter_ms\": " + fmt_double(e.per_iter_ms());
    if (e.min_iter_ms > 0.0) {
      out += ", \"min_iter_ms\": " + fmt_double(e.min_iter_ms);
    }
    if (e.events > 0) {
      out += ", \"events\": " + std::to_string(e.events);
      out += ", \"events_per_sec\": " + fmt_double(e.events_per_sec());
    }
    if (!e.note.empty()) {
      out += ", \"note\": ";
      append_escaped(&out, e.note);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

BenchReport parse_bench_report(const std::string& json) {
  BenchReport report;
  Cursor cur(json);
  cur.expect('{');
  if (!cur.eat('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "schema_version") {
        report.schema_version = static_cast<int>(cur.parse_number());
      } else if (key == "quick") {
        report.quick = cur.parse_bool();
      } else if (key == "benchmarks") {
        cur.expect('[');
        if (!cur.eat(']')) {
          do {
            report.entries.push_back(parse_entry(cur));
          } while (cur.eat(','));
          cur.expect(']');
        }
      } else {
        cur.skip_value();
      }
    } while (cur.eat(','));
    cur.expect('}');
  }
  return report;
}

std::string BenchComparison::table() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-32s %14s %14s %9s\n", "benchmark",
                "baseline_ms", "current_ms", "change");
  out += buf;
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf), "%-32s %14.3f %14.3f %+8.1f%%%s\n",
                  r.name.c_str(), r.baseline_ms, r.current_ms, r.change_pct,
                  r.regressed ? "  REGRESSED" : "");
    out += buf;
  }
  for (const auto& name : missing) {
    std::snprintf(buf, sizeof(buf), "%-32s %14s (not re-run)\n", name.c_str(),
                  "-");
    out += buf;
  }
  return out;
}

BenchComparison compare_bench_reports(const BenchReport& baseline,
                                      const BenchReport& current,
                                      double max_regress_pct) {
  BenchComparison cmp;
  for (const auto& base : baseline.entries) {
    const BenchEntry* cur = current.find(base.name);
    if (cur == nullptr) {
      cmp.missing.push_back(base.name);
      continue;
    }
    BenchDelta d;
    d.name = base.name;
    d.baseline_ms = base.best_iter_ms();
    d.current_ms = cur->best_iter_ms();
    d.change_pct = d.baseline_ms > 0.0
                       ? 100.0 * (d.current_ms - d.baseline_ms) / d.baseline_ms
                       : 0.0;
    d.regressed = d.change_pct > max_regress_pct &&
                  d.current_ms - d.baseline_ms > kMinAbsDeltaMs;
    if (d.regressed) cmp.ok = false;
    cmp.rows.push_back(d);
  }
  return cmp;
}

}  // namespace psync::perf
