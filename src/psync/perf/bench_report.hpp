// Benchmark result emission and baseline comparison.
//
// bench_driver times a fixed set of simulator workloads and serializes the
// results as BENCH_psync.json. The same schema is what CI archives and what
// the baseline-compare mode reads back: `bench_driver --baseline old.json`
// re-runs the suite and fails (non-zero exit) if any benchmark regressed by
// more than the allowed percentage. The parser below is deliberately small
// and tolerant — it understands exactly the JSON this module writes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psync::perf {

/// One benchmark's timing: total wall time over `iters` runs, plus an
/// optional domain-event count (simulated cycles, words, flits...) that
/// turns into an events/sec rate in the report.
struct BenchEntry {
  std::string name;
  double wall_ms = 0.0;        // total wall time across all iterations
  double min_iter_ms = 0.0;    // fastest single iteration (0 = not tracked)
  std::uint64_t iters = 1;     // timed repetitions
  std::uint64_t events = 0;    // domain events across all iterations
  std::string note;            // what the benchmark exercises

  double per_iter_ms() const {
    return iters > 0 ? wall_ms / static_cast<double>(iters) : wall_ms;
  }
  /// The comparison statistic: min-of-N when tracked (robust against
  /// scheduler noise on shared machines), mean otherwise.
  double best_iter_ms() const {
    return min_iter_ms > 0.0 ? min_iter_ms : per_iter_ms();
  }
  double events_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms * 1e-3)
                         : 0.0;
  }
};

struct BenchReport {
  int schema_version = 1;
  bool quick = false;  // reduced-size run (CI smoke)
  std::vector<BenchEntry> entries;

  const BenchEntry* find(const std::string& name) const;
};

/// Serialize a report (stable key order, newline-terminated).
std::string bench_report_json(const BenchReport& report);

/// Parse a report previously written by bench_report_json. Throws
/// SimulationError on malformed input.
BenchReport parse_bench_report(const std::string& json);

/// One row of a baseline comparison.
struct BenchDelta {
  std::string name;
  double baseline_ms = 0.0;  // per-iteration
  double current_ms = 0.0;   // per-iteration
  double change_pct = 0.0;   // >0 means slower than baseline
  bool regressed = false;
};

struct BenchComparison {
  std::vector<BenchDelta> rows;
  std::vector<std::string> missing;  // in baseline but not re-run
  bool ok = true;                    // no row regressed

  std::string table() const;
};

/// Compare current against baseline: a benchmark regresses when its
/// per-iteration time exceeds the baseline by more than max_regress_pct
/// AND by more than kMinAbsDeltaMs (microsecond-scale entries would
/// otherwise trip the percentage gate on timer noise alone).
/// Benchmarks present on only one side are reported but never fail the
/// comparison (the suite may legitimately grow).
inline constexpr double kMinAbsDeltaMs = 0.05;
BenchComparison compare_bench_reports(const BenchReport& baseline,
                                      const BenchReport& current,
                                      double max_regress_pct);

}  // namespace psync::perf
