#include "psync/perf/stopwatch.hpp"

#include <cstdio>

namespace psync::perf {

std::string format_rate(double events_per_sec, const std::string& unit) {
  const char* scale = "";
  double v = events_per_sec;
  if (v >= 1e9) {
    v *= 1e-9;
    scale = "G";
  } else if (v >= 1e6) {
    v *= 1e-6;
    scale = "M";
  } else if (v >= 1e3) {
    v *= 1e-3;
    scale = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s%s/s", v, scale,
                unit.empty() ? "events" : unit.c_str());
  return buf;
}

std::string PhaseProfiler::table() const {
  const double total = total_ns();
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %12s %7s  %s\n", "phase", "wall_ms",
                "share", "throughput");
  out += buf;
  for (const auto& s : samples_) {
    const double share = total > 0.0 ? 100.0 * s.wall_ns / total : 0.0;
    std::string rate = "-";
    if (s.events > 0 && s.wall_ns > 0.0) {
      rate = format_rate(static_cast<double>(s.events) / (s.wall_ns * 1e-9),
                         s.event_unit);
    }
    std::snprintf(buf, sizeof(buf), "%-24s %12.3f %6.1f%%  %s\n",
                  s.name.c_str(), s.wall_ns * 1e-6, share, rate.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-24s %12.3f %6.1f%%\n", "total",
                total * 1e-6, total > 0.0 ? 100.0 : 0.0);
  out += buf;
  return out;
}

}  // namespace psync::perf
