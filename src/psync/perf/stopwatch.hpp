// Wall-clock timing primitives for the perf harness.
//
// Everything else in the repository measures *simulated* time; this header
// is the one place that reads the host clock. Stopwatch is a steady-clock
// interval timer; PhaseProfiler accumulates named (wall time, event count)
// phases and renders the per-phase breakdown `psync_sim --profile` prints.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace psync::perf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(Clock::now() - start_)
        .count();
  }
  double elapsed_ms() const { return elapsed_ns() * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// One named phase of a profiled run: how long it took on the wall and how
/// many domain events (cycles, words, sweep points...) it processed.
struct PhaseSample {
  std::string name;
  double wall_ns = 0.0;
  std::uint64_t events = 0;
  std::string event_unit;  // what `events` counts, for display
};

/// Accumulates phases begin()/end() style (or pre-timed via add) and
/// renders them as a table with wall share and events/sec columns.
class PhaseProfiler {
 public:
  /// Open a phase; the matching end() closes it. Phases do not nest.
  void begin(const std::string& name) {
    open_ = name;
    watch_.reset();
  }

  /// Close the phase begin() opened, attributing `events` to it.
  void end(std::uint64_t events = 0, const std::string& event_unit = {}) {
    add(open_, watch_.elapsed_ns(), events, event_unit);
    open_.clear();
  }

  /// Record an externally timed phase.
  void add(const std::string& name, double wall_ns, std::uint64_t events = 0,
           const std::string& event_unit = {}) {
    samples_.push_back(PhaseSample{name, wall_ns, events, event_unit});
  }

  const std::vector<PhaseSample>& samples() const { return samples_; }

  double total_ns() const {
    double t = 0.0;
    for (const auto& s : samples_) t += s.wall_ns;
    return t;
  }

  /// Multi-line breakdown: phase | wall ms | share | events | events/sec.
  std::string table() const;

 private:
  std::vector<PhaseSample> samples_;
  std::string open_;
  Stopwatch watch_;
};

/// Human-readable rate: "123.4 M<unit>/s" style, empty unit -> "events".
std::string format_rate(double events_per_sec, const std::string& unit);

}  // namespace psync::perf
