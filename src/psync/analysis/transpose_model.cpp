#include "psync/analysis/transpose_model.hpp"

#include "psync/common/check.hpp"

namespace psync::analysis {

std::uint64_t transactions(const TransposeParams& p) {
  PSYNC_CHECK(p.dram_row_bits > 0);
  return p.row_samples * p.sample_bits * p.processors / p.dram_row_bits;
}

std::uint64_t transaction_cycles(const TransposeParams& p) {
  PSYNC_CHECK(p.bus_bits > 0);
  return (p.dram_row_bits + p.header_bits) / p.bus_bits;
}

std::uint64_t pscan_writeback_cycles(const TransposeParams& p) {
  return transactions(p) * transaction_cycles(p);
}

std::uint64_t mesh_writeback_cycles_estimate(const TransposeParams& p,
                                             std::uint64_t t_p) {
  const std::uint64_t elements_per_row = p.dram_row_bits / p.sample_bits;
  const std::uint64_t packets = transactions(p);  // one DRAM row per packet
  const std::uint64_t per_packet = (elements_per_row + 1)        // ejection
                                   + elements_per_row * t_p      // reorder
                                   + transaction_cycles(p);      // DRAM write
  return packets * per_packet;
}

}  // namespace psync::analysis
