#include "psync/analysis/fft_model.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::analysis {
namespace {

std::uint64_t ilog2(std::uint64_t n) {
  std::uint64_t l = 0;
  while ((std::uint64_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

std::uint64_t block_mults(const FftWorkload& w, std::uint64_t k) {
  PSYNC_CHECK(k >= 1 && k <= w.fft_points);
  const std::uint64_t bs = w.fft_points / k;
  return 2 * bs * ilog2(bs);
}

std::uint64_t final_mults(const FftWorkload& w, std::uint64_t k) {
  return 2 * w.fft_points * ilog2(k);
}

FftBlockRow table1_row(const FftWorkload& w, std::uint64_t k) {
  FftBlockRow row;
  row.k = k;
  row.block_size = w.fft_points / k;
  row.t_ck_ns = static_cast<double>(block_mults(w, k)) * w.fp_mult_ns;
  row.t_cf_ns = static_cast<double>(final_mults(w, k)) * w.fp_mult_ns;
  const double block_bits =
      static_cast<double>(row.block_size) * static_cast<double>(w.sample_bits);
  row.bandwidth_gbps = balanced_bandwidth_gbps(
      static_cast<double>(w.processors), block_bits, row.t_ck_ns);

  ModelInputs in;
  in.processors = static_cast<double>(w.processors);
  in.blocks = static_cast<double>(k);
  in.t_ck_ns = row.t_ck_ns;
  in.t_dk_ns = row.t_ck_ns / static_cast<double>(w.processors);  // balanced
  in.t_cf_ns = row.t_cf_ns;
  row.efficiency = efficiency(in);
  return row;
}

std::vector<FftBlockRow> table1(const FftWorkload& w, std::uint64_t max_k) {
  std::vector<FftBlockRow> rows;
  for (std::uint64_t k = 1; k <= max_k; k *= 2) {
    rows.push_back(table1_row(w, k));
  }
  return rows;
}

double efficiency_at_bandwidth(const FftWorkload& w, std::uint64_t k,
                               GigabitsPerSec bandwidth_gbps, Ns lambda_ns) {
  FftBlockRow row = table1_row(w, k);
  const double block_bits =
      static_cast<double>(row.block_size) * static_cast<double>(w.sample_bits);
  ModelInputs in;
  in.processors = static_cast<double>(w.processors);
  in.blocks = static_cast<double>(k);
  in.t_ck_ns = row.t_ck_ns;
  in.t_dk_ns = delivery_time_ns(lambda_ns, block_bits, bandwidth_gbps);
  in.t_cf_ns = row.t_cf_ns;
  return efficiency(in);
}

}  // namespace psync::analysis
