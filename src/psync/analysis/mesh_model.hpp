// Electronic-mesh delivery model: regenerates paper Table II and the mesh
// curve of Fig. 11 (Section V-B-2).
//
// Assumptions (the paper's): square array, flit = FFT element, wormhole
// routing with t_r cycles of header processing per router, packets injected
// serially from a memory node at the periphery. Delivery time in cycles is
//
//     P*F + P*sqrt(P)*t_r                                   (Eq. 21)
//
// giving per-processor delivery efficiency
//
//     eta_d = (S_b*S_s/W_p) / (lambda + S_b*S_s/W_p)        (Eq. 22)
//
// with lambda = sqrt(P)*t_r cycles of routing overhead per packet. The
// mesh's overall compute efficiency is the Table I efficiency multiplied by
// eta_d.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/analysis/fft_model.hpp"

namespace psync::analysis {

struct MeshDeliveryParams {
  /// Header routing delay per router, cycles (paper: 1).
  double t_r_cycles = 1.0;
};

struct Table2Row {
  std::uint64_t k = 0;
  double delivery_efficiency = 0.0;  // eta_d
  double compute_efficiency = 0.0;   // eta_d * Table I eta
};

/// Delivery time in cycles for P packets of F flits each (Eq. 21).
double mesh_delivery_cycles(double processors, double flits_per_packet,
                            double t_r_cycles);

/// Refinement of Eq. 21 that our cycle-level mesh validates: a pipelined
/// source pays one header flit per packet at the injection port, while the
/// sqrt(P)*t_r routing latency is paid once per round (it overlaps the
/// next packet's injection), not once per packet:
///
///     P*(F + 1) + sqrt(P)*t_r    per delivery round
///
/// Eq. 21 is the conservative bound (their TLM source apparently serialized
/// header traversal); this is the throughput-limited behaviour of a real
/// wormhole injection port. See bench_fig11_k_sweep's cycle-level check.
double mesh_delivery_cycles_pipelined(double processors,
                                      double flits_per_packet,
                                      double t_r_cycles);

/// Delivery efficiency under the pipelined-source model.
double mesh_delivery_efficiency_pipelined(double processors,
                                          double flits_per_packet,
                                          double t_r_cycles);

/// Delivery efficiency eta_d for a packet of `flits_per_packet` flits on a
/// P-processor square mesh (Eq. 21/22 with F-cycle serialization).
double mesh_delivery_efficiency(double processors, double flits_per_packet,
                                double t_r_cycles);

/// One Table II row: blocked FFT (workload `w`), k delivery blocks.
Table2Row table2_row(const FftWorkload& w, std::uint64_t k,
                     const MeshDeliveryParams& mesh);

/// All Table II rows for k in {1, 2, ..., max_k}.
std::vector<Table2Row> table2(const FftWorkload& w,
                              const MeshDeliveryParams& mesh,
                              std::uint64_t max_k = 64);

/// Fig. 11 series: compute efficiency vs k for the ideal/P-sync case
/// (Table I) and the latency-burdened mesh (Table II).
struct Fig11Point {
  std::uint64_t k = 0;
  double psync = 0.0;  // P-sync tracks the zero-latency bound
  double mesh = 0.0;
};
std::vector<Fig11Point> fig11(const FftWorkload& w,
                              const MeshDeliveryParams& mesh,
                              std::uint64_t max_k = 64);

}  // namespace psync::analysis
