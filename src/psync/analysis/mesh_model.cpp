#include "psync/analysis/mesh_model.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::analysis {

double mesh_delivery_cycles(double processors, double flits_per_packet,
                            double t_r_cycles) {
  PSYNC_CHECK(processors >= 1.0);
  return processors * flits_per_packet +
         processors * std::sqrt(processors) * t_r_cycles;
}

double mesh_delivery_cycles_pipelined(double processors,
                                      double flits_per_packet,
                                      double t_r_cycles) {
  PSYNC_CHECK(processors >= 1.0);
  return processors * (flits_per_packet + 1.0) +
         std::sqrt(processors) * t_r_cycles;
}

double mesh_delivery_efficiency_pipelined(double processors,
                                          double flits_per_packet,
                                          double t_r_cycles) {
  const double ideal = processors * flits_per_packet;
  return ideal / mesh_delivery_cycles_pipelined(processors, flits_per_packet,
                                                t_r_cycles);
}

double mesh_delivery_efficiency(double processors, double flits_per_packet,
                                double t_r_cycles) {
  const double serialization = flits_per_packet;         // S_b*S_s/W_p cycles
  const double lambda = std::sqrt(processors) * t_r_cycles;
  return serialization / (lambda + serialization);
}

Table2Row table2_row(const FftWorkload& w, std::uint64_t k,
                     const MeshDeliveryParams& mesh) {
  const FftBlockRow ideal = table1_row(w, k);
  Table2Row row;
  row.k = k;
  row.delivery_efficiency = mesh_delivery_efficiency(
      static_cast<double>(w.processors),
      static_cast<double>(ideal.block_size), mesh.t_r_cycles);
  row.compute_efficiency = row.delivery_efficiency * ideal.efficiency;
  return row;
}

std::vector<Table2Row> table2(const FftWorkload& w,
                              const MeshDeliveryParams& mesh,
                              std::uint64_t max_k) {
  std::vector<Table2Row> rows;
  for (std::uint64_t k = 1; k <= max_k; k *= 2) {
    rows.push_back(table2_row(w, k, mesh));
  }
  return rows;
}

std::vector<Fig11Point> fig11(const FftWorkload& w,
                              const MeshDeliveryParams& mesh,
                              std::uint64_t max_k) {
  std::vector<Fig11Point> out;
  for (std::uint64_t k = 1; k <= max_k; k *= 2) {
    Fig11Point p;
    p.k = k;
    p.psync = table1_row(w, k).efficiency;
    p.mesh = table2_row(w, k, mesh).compute_efficiency;
    out.push_back(p);
  }
  return out;
}

}  // namespace psync::analysis
