// Blocked-FFT delivery efficiency: regenerates paper Table I
// ("Compute efficiency for zero latency") and the machinery behind Fig. 11.
//
// Parameters (paper Section V-B-1): 1024-point row FFTs on 256 processors,
// floating-point multiplies take 2 ns, 4 real multiplies per butterfly,
// 64-bit samples, only multiplies are charged. Bandwidth W_p is chosen per
// row so that delivery exactly balances compute (Eq. 19/20).
#pragma once

#include <cstdint>
#include <vector>

#include "psync/analysis/perf_model.hpp"

namespace psync::analysis {

struct FftWorkload {
  std::uint64_t fft_points = 1024;   // N, samples per processor row
  std::uint64_t processors = 256;    // P
  Ns fp_mult_ns{2.0};                // multiply latency
  std::uint32_t mults_per_butterfly = 4;
  std::uint64_t sample_bits = 64;    // S_s
};

struct FftBlockRow {
  std::uint64_t k = 1;          // delivery blocks
  std::uint64_t block_size = 0; // S_b = N/k samples
  Ns t_ck_ns{0.0};              // per-block compute time (Eq. 17 * mult cost)
  Ns t_cf_ns{0.0};              // final-phase compute time (Eq. 18 * cost)
  GigabitsPerSec bandwidth_gbps{0.0};  // W_p for balance (Eq. 20)
  double efficiency = 0.0;      // eta at zero network latency
};

/// Multiplies per delivered block: Eq. 17, (2N/k) log2(N/k).
std::uint64_t block_mults(const FftWorkload& w, std::uint64_t k);
/// Multiplies in the final compute-only phase: Eq. 18, 2N log2 k.
std::uint64_t final_mults(const FftWorkload& w, std::uint64_t k);

/// One Table I row for block count `k`.
FftBlockRow table1_row(const FftWorkload& w, std::uint64_t k);

/// All Table I rows for k in {1, 2, ..., max_k} (powers of two).
std::vector<FftBlockRow> table1(const FftWorkload& w, std::uint64_t max_k = 64);

/// Zero-latency efficiency at block count k with *fixed* bandwidth
/// `bandwidth_gbps` (instead of the balanced W_p); used for sweeps.
double efficiency_at_bandwidth(const FftWorkload& w, std::uint64_t k,
                               GigabitsPerSec bandwidth_gbps,
                               Ns lambda_ns = Ns{0.0});

}  // namespace psync::analysis
