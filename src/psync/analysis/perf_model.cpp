#include "psync/analysis/perf_model.hpp"

#include <algorithm>

#include "psync/common/check.hpp"

namespace psync::analysis {

Ns compute_time_ns(const ModelInputs& in) {
  return in.blocks * in.t_ck_ns + in.t_cf_ns;
}

Ns total_time_ns(const ModelInputs& in) {
  PSYNC_CHECK(in.processors >= 1.0);
  PSYNC_CHECK(in.blocks >= 1.0);
  const Ns pd = in.processors * in.t_dk_ns;
  return pd + (in.blocks - 1.0) * std::max(in.t_ck_ns, pd) + in.t_ck_ns +
         in.t_cf_ns;
}

double efficiency(const ModelInputs& in) {
  const Ns t = total_time_ns(in);
  return t > Ns(0.0) ? compute_time_ns(in) / t : 0.0;
}

bool compute_bound(const ModelInputs& in) {
  return in.processors * in.t_dk_ns <= in.t_ck_ns;
}

double model1_efficiency(double processors, Ns t_d_ns, Ns t_c_ns) {
  const Ns t = processors * t_d_ns + t_c_ns;
  return t > Ns(0.0) ? t_c_ns / t : 0.0;
}

Ns delivery_time_ns(Ns lambda_ns, double block_bits,
                    GigabitsPerSec bandwidth_gbps) {
  PSYNC_CHECK(bandwidth_gbps > GigabitsPerSec(0.0));
  return lambda_ns + Ns(block_bits / bandwidth_gbps.value());
}

GigabitsPerSec balanced_bandwidth_gbps(double processors, double block_bits,
                                       Ns t_ck_ns) {
  PSYNC_CHECK(t_ck_ns > Ns(0.0));
  return GigabitsPerSec(block_bits * processors / t_ck_ns.value());
}

}  // namespace psync::analysis
