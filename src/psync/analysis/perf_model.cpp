#include "psync/analysis/perf_model.hpp"

#include <algorithm>

#include "psync/common/check.hpp"

namespace psync::analysis {

double compute_time_ns(const ModelInputs& in) {
  return in.blocks * in.t_ck_ns + in.t_cf_ns;
}

double total_time_ns(const ModelInputs& in) {
  PSYNC_CHECK(in.processors >= 1.0);
  PSYNC_CHECK(in.blocks >= 1.0);
  const double pd = in.processors * in.t_dk_ns;
  return pd + (in.blocks - 1.0) * std::max(in.t_ck_ns, pd) + in.t_ck_ns +
         in.t_cf_ns;
}

double efficiency(const ModelInputs& in) {
  const double t = total_time_ns(in);
  return t > 0.0 ? compute_time_ns(in) / t : 0.0;
}

bool compute_bound(const ModelInputs& in) {
  return in.processors * in.t_dk_ns <= in.t_ck_ns;
}

double model1_efficiency(double processors, double t_d_ns, double t_c_ns) {
  const double t = processors * t_d_ns + t_c_ns;
  return t > 0.0 ? t_c_ns / t : 0.0;
}

double delivery_time_ns(double lambda_ns, double block_bits,
                        double bandwidth_gbps) {
  PSYNC_CHECK(bandwidth_gbps > 0.0);
  return lambda_ns + block_bits / bandwidth_gbps;
}

double balanced_bandwidth_gbps(double processors, double block_bits,
                               double t_ck_ns) {
  PSYNC_CHECK(t_ck_ns > 0.0);
  return block_bits * processors / t_ck_ns;
}

}  // namespace psync::analysis
