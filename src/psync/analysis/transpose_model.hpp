// Transpose writeback model: regenerates the PSCAN side of paper Table III
// (Section V-C-1, Eq. 23/24) and a first-order mesh estimate used to sanity
// check the cycle-level simulator.
#pragma once

#include <cstdint>

namespace psync::analysis {

struct TransposeParams {
  std::uint64_t row_samples = 1024;   // N, FFT row size in samples
  std::uint64_t sample_bits = 64;     // S_s
  std::uint64_t processors = 1024;    // P
  std::uint64_t dram_row_bits = 2048; // S_r
  std::uint64_t bus_bits = 64;        // S_b (memory bus width)
  std::uint64_t header_bits = 64;     // S_h
};

/// Number of full-row transactions P_t = N*S_s*P / S_r  (Eq. 23).
std::uint64_t transactions(const TransposeParams& p);

/// Bus cycles per transaction t_t = (S_r + S_h) / S_b  (Eq. 24).
std::uint64_t transaction_cycles(const TransposeParams& p);

/// Optimal PSCAN writeback time in bus cycles: P_t * t_t. For the paper's
/// parameters this is 1,081,344 cycles for the 2^20-sample transpose.
std::uint64_t pscan_writeback_cycles(const TransposeParams& p);

/// First-order mesh estimate: the memory interface serializes, per packet of
/// E elements, (E + 1) ejection cycles + E*t_p reorder cycles + one DRAM row
/// write of (S_r + S_h)/S_b cycles (stages not overlapped, as the paper's
/// TLM model behaves); network congestion adds more on top of this bound.
std::uint64_t mesh_writeback_cycles_estimate(const TransposeParams& p,
                                             std::uint64_t t_p);

/// The paper's reported mesh numbers for reference: 3,526,620 cycles at
/// t_p = 1 and 6,553,448 at t_p = 4.
inline constexpr std::uint64_t kPaperMeshCyclesTp1 = 3'526'620;
inline constexpr std::uint64_t kPaperMeshCyclesTp4 = 6'553'448;
inline constexpr std::uint64_t kPaperPscanCycles = 1'081'344;

}  // namespace psync::analysis
