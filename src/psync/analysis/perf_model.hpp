// Generalized performance model of paper Section V-A.
//
// A parallel computation is decomposed into data delivery and compute.
// Model I (k = 1): a processor receives all data before computing; delivery
// to the P processors is serialized. Model II (k > 1): data arrives in k
// round-robin blocks, overlapping delivery with computation.
//
//   Model I:    eta = t_c / (P*t_d + t_c)                       (Eq. 7)
//   Model II:   T = P*t_dk + (k-1)*max(t_ck, P*t_dk) + t_ck     (Eq. 11)
//     case 1 (P*t_dk <= t_ck, compute bound):  eta = t_c / (P*t_dk + t_c)
//     case 2 (communication bound):            eta = t_c / (P*k*t_dk + t_ck)
//
// All times are strongly typed nanoseconds (`Ns`); mixing them with other
// dimensions (rates, energies) is a compile error.
#pragma once

#include <cstdint>

#include "psync/common/quantity.hpp"

namespace psync::analysis {

using psync::GigabitsPerSec;
using psync::Ns;

struct ModelInputs {
  double processors = 1;      // P
  double blocks = 1;          // k
  Ns t_dk_ns{0.0};            // time to deliver one block to one processor
  Ns t_ck_ns{0.0};            // time to compute on one block
  /// Extra compute after the last block that does not depend on delivery
  /// (the FFT's final log2(k) stages); 0 for perfectly divisible work.
  Ns t_cf_ns{0.0};
};

/// Total wall time T (Eq. 11 extended with the trailing t_cf term).
[[nodiscard]] Ns total_time_ns(const ModelInputs& in);

/// Total per-processor compute time t_c = k*t_ck + t_cf.
[[nodiscard]] Ns compute_time_ns(const ModelInputs& in);

/// Efficiency eta = t_c / T (Eq. 14).
[[nodiscard]] double efficiency(const ModelInputs& in);

/// True when delivery keeps up with compute (Case 1, Eq. 15).
[[nodiscard]] bool compute_bound(const ModelInputs& in);

/// Model I special case (k = 1): eta = t_c / (P*t_d + t_c)  (Eq. 7).
[[nodiscard]] double model1_efficiency(double processors, Ns t_d_ns,
                                       Ns t_c_ns);

/// Eq. 9/10: delivery time of one block over a network with latency
/// `lambda_ns` and bandwidth `bandwidth_gbps`, for `block_bits` bits.
[[nodiscard]] Ns delivery_time_ns(Ns lambda_ns, double block_bits,
                                  GigabitsPerSec bandwidth_gbps);

/// Eq. 19/20: bandwidth (Gb/s) required to balance delivery against compute
/// (P * t_dk = t_ck) for blocks of `block_bits` bits.
[[nodiscard]] GigabitsPerSec balanced_bandwidth_gbps(double processors,
                                                     double block_bits,
                                                     Ns t_ck_ns);

}  // namespace psync::analysis
