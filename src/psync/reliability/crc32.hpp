// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for per-block
// framing of PSCAN streams.
//
// SECDED corrects the common case (one flipped bit per word); the CRC is
// the backstop that catches what the code cannot — miscorrections under
// multi-bit upsets, double errors, and whole-word losses — and is what
// arms the head node's retry machinery (channel.hpp). One CRC word per
// block keeps the framing overhead at a single extra slot per block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psync::reliability {

inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFU;

/// Fold `len` bytes into a running CRC (pass kCrc32Init to start; the
/// return value is NOT finalized — call crc32_finalize when done).
/// Implemented slice-by-8: eight bytes fold per table round, same remainder
/// as the classic byte-at-a-time loop for every input.
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len);

/// The byte-at-a-time loop the slice-by-8 path is verified against
/// (identity tests, before/after benchmarks).
std::uint32_t crc32_update_reference(std::uint32_t crc, const void* data,
                                     std::size_t len);

inline std::uint32_t crc32_finalize(std::uint32_t crc) { return ~crc; }

/// One-shot CRC of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t len);

/// CRC of a span of 64-bit words, each folded little-endian (byte order is
/// fixed so the framing is portable across hosts).
std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count);

}  // namespace psync::reliability
