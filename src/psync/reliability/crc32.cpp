#include "psync/reliability/crc32.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>

#include "psync/reliability/reliability_kernels.hpp"
#include "psync/reliability/vector_codec.hpp"

namespace psync::reliability {
namespace {

std::atomic<bool> g_vector_codec{true};

// Slice-by-8 CRC-32: eight 256-entry tables let the hot loop fold eight
// message bytes per iteration with eight independent lookups instead of
// eight serial table steps. kTables[0] is the classic byte-at-a-time table;
// kTables[k][i] advances kTables[k-1][i] by one more zero byte, so XOR-ing
// one lookup per input byte position yields exactly the same remainder the
// byte-wise loop computes.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::size_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFU] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}
constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = make_tables();

inline std::uint32_t update_bytewise(std::uint32_t crc,
                                     const unsigned char* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTables[0][(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

void set_vector_codec(bool on) {
  g_vector_codec.store(on, std::memory_order_relaxed);
}

bool vector_codec() { return g_vector_codec.load(std::memory_order_relaxed); }

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  // Long buffers fold 64 bytes per round with carry-less multiplies when
  // the CPU has PCLMULQDQ; the remainder is identical to the table loops'.
  if (len >= 64 && vector_codec() && detail::crc32_pclmul_available()) {
    std::size_t consumed = 0;
    crc = detail::crc32_fold_pclmul(crc, p, len, &consumed);
    p += consumed;
    len -= consumed;
  }
  // Eight bytes per iteration. The 64-bit gather below assembles the bytes
  // little-endian regardless of host order, so the result always matches
  // the byte-wise loop.
  while (len >= 8) {
    std::uint64_t w;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&w, p, 8);
    } else {
      w = 0;
      for (int b = 0; b < 8; ++b) {
        w |= static_cast<std::uint64_t>(p[b]) << (8 * b);
      }
    }
    w ^= crc;
    crc = kTables[7][w & 0xFFU] ^ kTables[6][(w >> 8) & 0xFFU] ^
          kTables[5][(w >> 16) & 0xFFU] ^ kTables[4][(w >> 24) & 0xFFU] ^
          kTables[3][(w >> 32) & 0xFFU] ^ kTables[2][(w >> 40) & 0xFFU] ^
          kTables[1][(w >> 48) & 0xFFU] ^ kTables[0][(w >> 56) & 0xFFU];
    p += 8;
    len -= 8;
  }
  return update_bytewise(crc, p, len);
}

std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_finalize(crc32_update(kCrc32Init, data, len));
}

std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count) {
  std::uint32_t crc = kCrc32Init;
  if constexpr (std::endian::native == std::endian::little) {
    // Each word is folded little-endian, which on a little-endian host is
    // the array's own byte layout: fold the whole span in one call.
    crc = crc32_update(crc, words, count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      unsigned char bytes[8];
      for (int b = 0; b < 8; ++b) {
        bytes[b] = static_cast<unsigned char>(words[i] >> (8 * b));
      }
      crc = crc32_update(crc, bytes, 8);
    }
  }
  return crc32_finalize(crc);
}

/// Byte-at-a-time reference kept for identity tests and before/after
/// benchmarks; produces the same value as crc32_update for every input.
std::uint32_t crc32_update_reference(std::uint32_t crc, const void* data,
                                     std::size_t len) {
  return update_bytewise(crc, static_cast<const unsigned char*>(data), len);
}

}  // namespace psync::reliability
