#include "psync/reliability/crc32.hpp"

#include <array>

namespace psync::reliability {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}
constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_finalize(crc32_update(kCrc32Init, data, len));
}

std::uint32_t crc32_words(const std::uint64_t* words, std::size_t count) {
  std::uint32_t crc = kCrc32Init;
  for (std::size_t i = 0; i < count; ++i) {
    unsigned char bytes[8];
    for (int b = 0; b < 8; ++b) {
      bytes[b] = static_cast<unsigned char>(words[i] >> (8 * b));
    }
    crc = crc32_update(crc, bytes, 8);
  }
  return crc32_finalize(crc);
}

}  // namespace psync::reliability
