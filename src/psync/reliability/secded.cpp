#include "psync/reliability/secded.hpp"

#include <bit>

#include "psync/reliability/reliability_kernels.hpp"
#include "psync/reliability/secded_tables.hpp"
#include "psync/reliability/vector_codec.hpp"

namespace psync::reliability {
namespace {

// Construction tables (kDataPos / kPosToBit / kSynMask) live in
// secded_tables.hpp, shared with the AVX2 syndrome kernel.
using detail::kPosToBit;
using detail::kSynMask;

// Syndrome contribution of the data bits alone.
unsigned data_syndrome(std::uint64_t d) {
  unsigned syn = 0;
  for (int i = 0; i < 7; ++i) {
    syn |= static_cast<unsigned>(
               std::popcount(d & kSynMask[static_cast<std::size_t>(i)]) & 1)
           << i;
  }
  return syn;
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
  const unsigned syn = data_syndrome(data);
  // Parity bit p_i sits at position 2^i and is chosen so the syndrome of
  // the whole codeword is zero, i.e. p_i = bit i of the data syndrome.
  const unsigned overall =
      static_cast<unsigned>((std::popcount(data) + std::popcount(syn)) & 1);
  return static_cast<std::uint8_t>(syn | (overall << 7));
}

void secded_encode_words(const std::uint64_t* data, std::size_t count,
                         std::uint8_t* checks) {
  std::size_t i = 0;
  if (vector_codec() && detail::secded_avx2_available()) {
    for (; i + 4 <= count; i += 4) {
      detail::secded_encode4_avx2(data + i, checks + i);
    }
  }
  for (; i < count; ++i) {
    const std::uint64_t d = data[i];
    const unsigned syn = data_syndrome(d);
    const unsigned overall =
        static_cast<unsigned>((std::popcount(d) + std::popcount(syn)) & 1);
    checks[i] = static_cast<std::uint8_t>(syn | (overall << 7));
  }
}

void secded_decode_words(const std::uint64_t* data, const std::uint8_t* checks,
                         std::size_t count, bool correct, std::uint64_t* out,
                         SecdedWordStats* stats) {
  // Decode one word exactly as the scalar loop always has; the vector path
  // below only pre-screens groups of four for the all-clean common case.
  const auto decode_one = [&](std::size_t i) {
    const std::uint64_t d = data[i];
    const std::uint8_t check = checks[i];
    const unsigned syn = data_syndrome(d) ^ (check & 0x7FU);
    const unsigned parity = static_cast<unsigned>(
        (std::popcount(d) + std::popcount(static_cast<unsigned>(check))) & 1);
    if (syn == 0 && parity == 0) {  // clean: no classification needed
      out[i] = d;
      return;
    }
    const SecdedResult dec = secded_decode(d, check);
    ++stats->flagged_words;
    if (correct && dec.status == SecdedStatus::kCorrectedData) {
      ++stats->corrected_bits;
    }
    if (dec.double_error()) ++stats->double_errors;
    out[i] = correct ? dec.data : d;
  };

  std::size_t i = 0;
  if (vector_codec() && detail::secded_avx2_available()) {
    for (; i + 4 <= count; i += 4) {
      if (detail::secded_flagged4_avx2(data + i, checks + i) == 0) {
        out[i] = data[i];
        out[i + 1] = data[i + 1];
        out[i + 2] = data[i + 2];
        out[i + 3] = data[i + 3];
        continue;
      }
      for (std::size_t k = i; k < i + 4; ++k) decode_one(k);
    }
  }
  for (; i < count; ++i) decode_one(i);
}

SecdedResult secded_decode(std::uint64_t data, std::uint8_t check) {
  SecdedResult out;
  out.data = data;

  const unsigned stored = check & 0x7FU;
  const unsigned syn = data_syndrome(data) ^ stored;
  const unsigned parity = static_cast<unsigned>(
      (std::popcount(data) + std::popcount(static_cast<unsigned>(check))) & 1);

  if (syn == 0 && parity == 0) return out;  // clean

  if (parity == 1) {
    // Odd number of flips observed -> assume a single error at `syn`.
    if (syn == 0) {
      out.status = SecdedStatus::kCorrectedCheck;  // overall-parity bit itself
      return out;
    }
    if ((syn & (syn - 1)) == 0) {
      out.status = SecdedStatus::kCorrectedCheck;  // parity bit p_log2(syn)
      return out;
    }
    const int bit = syn < 128 ? kPosToBit[syn] : -1;
    if (bit >= 0) {
      out.data = data ^ (std::uint64_t{1} << bit);
      out.status = SecdedStatus::kCorrectedData;
      out.corrected_bit = bit;
      return out;
    }
    // Syndrome points outside the codeword: more than one flip after all.
    out.status = SecdedStatus::kDoubleError;
    return out;
  }

  // Even parity with a nonzero syndrome: two flips, not correctable.
  out.status = SecdedStatus::kDoubleError;
  return out;
}

}  // namespace psync::reliability
