#include "psync/reliability/secded.hpp"

#include <array>
#include <bit>

namespace psync::reliability {
namespace {

// Codeword position of each data bit: positions 1..71 that are not powers
// of two (the powers of two hold the parity bits). 71 positions minus 7
// parity positions leaves exactly the 64 we need.
constexpr std::array<std::uint8_t, 64> make_data_pos() {
  std::array<std::uint8_t, 64> pos{};
  int k = 0;
  for (int j = 1; j <= 71; ++j) {
    if ((j & (j - 1)) != 0) pos[static_cast<std::size_t>(k++)] =
        static_cast<std::uint8_t>(j);
  }
  return pos;
}
constexpr std::array<std::uint8_t, 64> kDataPos = make_data_pos();

// Inverse map: codeword position -> data bit index (or -1).
constexpr std::array<std::int8_t, 128> make_pos_to_bit() {
  std::array<std::int8_t, 128> inv{};
  for (auto& v : inv) v = -1;
  for (int k = 0; k < 64; ++k) inv[kDataPos[static_cast<std::size_t>(k)]] =
      static_cast<std::int8_t>(k);
  return inv;
}
constexpr std::array<std::int8_t, 128> kPosToBit = make_pos_to_bit();

// Per-data-bit position, folded into seven 64-bit masks: kSynMask[i] has a
// 1 at data bit k iff bit i of kDataPos[k] is set. The syndrome of a data
// word is then seven popcount parities instead of a 64-iteration loop.
constexpr std::array<std::uint64_t, 7> make_syn_masks() {
  std::array<std::uint64_t, 7> m{};
  for (int k = 0; k < 64; ++k) {
    for (int i = 0; i < 7; ++i) {
      if ((kDataPos[static_cast<std::size_t>(k)] >> i) & 1) {
        m[static_cast<std::size_t>(i)] |= (std::uint64_t{1} << k);
      }
    }
  }
  return m;
}
constexpr std::array<std::uint64_t, 7> kSynMask = make_syn_masks();

// Syndrome contribution of the data bits alone.
unsigned data_syndrome(std::uint64_t d) {
  unsigned syn = 0;
  for (int i = 0; i < 7; ++i) {
    syn |= static_cast<unsigned>(
               std::popcount(d & kSynMask[static_cast<std::size_t>(i)]) & 1)
           << i;
  }
  return syn;
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
  const unsigned syn = data_syndrome(data);
  // Parity bit p_i sits at position 2^i and is chosen so the syndrome of
  // the whole codeword is zero, i.e. p_i = bit i of the data syndrome.
  const unsigned overall =
      static_cast<unsigned>((std::popcount(data) + std::popcount(syn)) & 1);
  return static_cast<std::uint8_t>(syn | (overall << 7));
}

void secded_encode_words(const std::uint64_t* data, std::size_t count,
                         std::uint8_t* checks) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t d = data[i];
    const unsigned syn = data_syndrome(d);
    const unsigned overall =
        static_cast<unsigned>((std::popcount(d) + std::popcount(syn)) & 1);
    checks[i] = static_cast<std::uint8_t>(syn | (overall << 7));
  }
}

void secded_decode_words(const std::uint64_t* data, const std::uint8_t* checks,
                         std::size_t count, bool correct, std::uint64_t* out,
                         SecdedWordStats* stats) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t d = data[i];
    const std::uint8_t check = checks[i];
    const unsigned syn = data_syndrome(d) ^ (check & 0x7FU);
    const unsigned parity = static_cast<unsigned>(
        (std::popcount(d) + std::popcount(static_cast<unsigned>(check))) & 1);
    if (syn == 0 && parity == 0) {  // clean: no classification needed
      out[i] = d;
      continue;
    }
    const SecdedResult dec = secded_decode(d, check);
    ++stats->flagged_words;
    if (correct && dec.status == SecdedStatus::kCorrectedData) {
      ++stats->corrected_bits;
    }
    if (dec.double_error()) ++stats->double_errors;
    out[i] = correct ? dec.data : d;
  }
}

SecdedResult secded_decode(std::uint64_t data, std::uint8_t check) {
  SecdedResult out;
  out.data = data;

  const unsigned stored = check & 0x7FU;
  const unsigned syn = data_syndrome(data) ^ stored;
  const unsigned parity = static_cast<unsigned>(
      (std::popcount(data) + std::popcount(static_cast<unsigned>(check))) & 1);

  if (syn == 0 && parity == 0) return out;  // clean

  if (parity == 1) {
    // Odd number of flips observed -> assume a single error at `syn`.
    if (syn == 0) {
      out.status = SecdedStatus::kCorrectedCheck;  // overall-parity bit itself
      return out;
    }
    if ((syn & (syn - 1)) == 0) {
      out.status = SecdedStatus::kCorrectedCheck;  // parity bit p_log2(syn)
      return out;
    }
    const int bit = syn < 128 ? kPosToBit[syn] : -1;
    if (bit >= 0) {
      out.data = data ^ (std::uint64_t{1} << bit);
      out.status = SecdedStatus::kCorrectedData;
      out.corrected_bit = bit;
      return out;
    }
    // Syndrome points outside the codeword: more than one flip after all.
    out.status = SecdedStatus::kDoubleError;
    return out;
  }

  // Even parity with a nonzero syndrome: two flips, not correctable.
  out.status = SecdedStatus::kDoubleError;
  return out;
}

}  // namespace psync::reliability
