// Runtime toggle for the vectorized reliability codecs: PCLMUL carry-less
// CRC-32 folding and AVX2 SECDED syndrome batches. Mirrors
// fft::set_fast_kernel: a process-wide switch so equivalence tests and
// before/after benchmarks can pin either path.
#pragma once

namespace psync::reliability {

/// Request (default) or decline the vector codec paths. This is the
/// *requested* state; each call site additionally requires the matching CPU
/// feature (simd::have_pclmul / simd::have_avx2), and PSYNC_FORCE_SCALAR in
/// the environment pins the scalar loops regardless. All paths produce
/// byte-identical results — the toggle only trades speed.
void set_vector_codec(bool on);
bool vector_codec();

}  // namespace psync::reliability
