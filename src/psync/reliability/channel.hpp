// ProtectedChannel: the error-handling layer above the optical PHY that
// large photonic interconnect proposals assume and the paper leaves
// implicit. It closes the fault loop for SCA/SCA^-1 word streams:
//
//   * SECDED(72,64) + per-block CRC-32 framing (framing.hpp), with the
//     extra code slots surfaced so the machine can charge slot-exact
//     timing and photonic energy for them;
//   * head-node retry/replay — a block whose CRC fails, whose SECDED saw a
//     double error, or whose slots the collision checker flagged is
//     re-driven in fresh slots, with bounded retries and a per-retry
//     backoff gap;
//   * dead-wavelength failover — a stuck-at-0 column scan over an all-ones
//     training burst finds dead lanes; traffic is remapped onto spare
//     wavelengths, and when spares run out the word rate degrades to
//     ceil(64 / usable_lanes) slots per word rather than losing bits.
//
// Policies:
//   kOff          raw transport: faults land in the payload, no overhead;
//   kDetectOnly   framing + lane scan run and errors are counted, but
//                 nothing is corrected, remapped, or retried;
//   kCorrectRetry full recovery: correction, failover, bounded replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/reliability/fault_model.hpp"

namespace psync::reliability {

/// The lane scan found every wavelength dead and no spare can restore even
/// one: the channel cannot carry traffic, so the collective must fail-stop
/// rather than pretend to deliver. Derives from DivergenceError so the
/// driver's failure taxonomy files it under sim_diverged.
class LaneExhaustionError : public DivergenceError {
 public:
  using DivergenceError::DivergenceError;
};

enum class ReliabilityPolicy {
  kOff,
  kDetectOnly,
  kCorrectRetry,
};

const char* to_string(ReliabilityPolicy policy);
/// Parse "off" | "detect" | "correct" (throws SimulationError otherwise).
ReliabilityPolicy policy_from_string(const std::string& s);

struct ReliabilityParams {
  ReliabilityPolicy policy = ReliabilityPolicy::kOff;
  /// Payload words per CRC block (one CRC slot + ceil((n+1)/8) check slots
  /// of framing overhead each).
  std::size_t block_words = 64;
  /// Bounded replay: give up on a block after this many re-drives.
  std::size_t max_retries = 4;
  /// Idle slots the head node waits before each replay (decode + turnaround).
  std::size_t retry_backoff_slots = 8;
  /// Spare wavelengths available for dead-lane failover.
  std::size_t spare_lanes = 4;
  /// All-ones training words driven for the stuck-at-0 column scan.
  std::size_t training_words = 16;

  void validate() const;  // throws SimulationError on nonsense
};

/// Recovery-side outcome counters (the tentpole's RetryReport).
struct RetryReport {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_retried = 0;   // blocks needing >= 1 replay
  std::uint64_t retries = 0;          // replays issued in total
  std::uint64_t slots_replayed = 0;   // wire slots spent on replays
  std::uint64_t backoff_slots = 0;    // idle slots between replays
  std::uint64_t corrected_bits = 0;   // single-bit SECDED repairs
  std::uint64_t double_errors = 0;    // SECDED double-detects seen
  std::uint64_t crc_failures = 0;     // block CRC mismatches seen
  std::uint64_t detected_errors = 0;  // words flagged by syndrome/CRC
  /// Payload words still wrong after the policy ran out (ground truth).
  std::uint64_t residual_errors = 0;

  void merge(const RetryReport& o);
};

/// Lane-failover outcome of the training scan.
struct LaneReport {
  std::vector<std::uint32_t> dead_lanes;  // detected stuck-at-0 lanes
  std::size_t spares_used = 0;            // dead lanes remapped to spares
  std::size_t residual_dead = 0;          // dead lanes left unmapped
  /// Slots per 64-bit word after failover (1 = full rate; >1 = the word is
  /// serialized over the surviving lanes because spares ran out).
  std::size_t slots_per_word = 1;

  [[nodiscard]] bool degraded() const { return slots_per_word > 1; }
};

class ProtectedChannel {
 public:
  /// Construction runs the lane-training scan (unless the policy is kOff),
  /// consuming `params.training_words` slots of bus time that the caller
  /// should account once per session (calibration_slots()).
  ProtectedChannel(FaultModel fault, ReliabilityParams params);

  [[nodiscard]] const ReliabilityParams& params() const { return params_; }
  [[nodiscard]] const LaneReport& lanes() const { return lanes_; }
  [[nodiscard]] std::uint64_t calibration_slots() const {
    return calibration_slots_;
  }

  struct Transmission {
    /// Delivered payload words (post-policy; same length as the input).
    std::vector<std::uint64_t> words;
    std::uint64_t payload_slots = 0;
    /// Slots actually modulated: payload + code + replays, times the
    /// failover serialization factor.
    std::uint64_t wire_slots = 0;
    /// Words modulated (for per-bit energy accounting).
    std::uint64_t wire_words = 0;
    std::uint64_t backoff_slots = 0;  // idle slots between replays
    RetryReport retry;
    FaultReport fault;

    /// Extra bus time beyond the raw payload burst, in slots.
    [[nodiscard]] std::uint64_t overhead_slots() const {
      return wire_slots + backoff_slots - payload_slots;
    }
  };

  /// Push `payload` through the faulty link under the configured policy.
  /// `corrupted_slots` (optional) lists payload slot indices the caller's
  /// collision checker flagged; blocks containing them are re-driven even
  /// if the coding checks pass. Discarding the result discards the
  /// delivered words *and* the retry/energy accounting, so it is flagged.
  [[nodiscard]] Transmission transmit(const std::vector<std::uint64_t>& payload,
                        const std::vector<std::int64_t>* corrupted_slots =
                            nullptr);

 private:
  void calibrate();

  ReliabilityParams params_;
  FaultModel fault_;
  FaultStream stream_;
  LaneReport lanes_;
  std::uint64_t calibration_slots_ = 0;
};

}  // namespace psync::reliability
