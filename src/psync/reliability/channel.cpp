#include "psync/reliability/channel.hpp"

#include <algorithm>
#include <bit>

#include "psync/common/check.hpp"
#include "psync/reliability/framing.hpp"

namespace psync::reliability {

const char* to_string(ReliabilityPolicy policy) {
  switch (policy) {
    case ReliabilityPolicy::kOff: return "off";
    case ReliabilityPolicy::kDetectOnly: return "detect";
    case ReliabilityPolicy::kCorrectRetry: return "correct";
  }
  return "?";
}

ReliabilityPolicy policy_from_string(const std::string& s) {
  if (s == "off") return ReliabilityPolicy::kOff;
  if (s == "detect" || s == "detect-only") return ReliabilityPolicy::kDetectOnly;
  if (s == "correct" || s == "correct+retry" || s == "retry") {
    return ReliabilityPolicy::kCorrectRetry;
  }
  throw SimulationError("unknown reliability policy: " + s);
}

void ReliabilityParams::validate() const {
  if (block_words == 0) {
    throw ConfigError("ReliabilityParams: block_words must be > 0");
  }
  if (policy == ReliabilityPolicy::kCorrectRetry && training_words == 0) {
    throw ConfigError(
        "ReliabilityParams: correct+retry needs a training burst");
  }
}

void RetryReport::merge(const RetryReport& o) {
  blocks_total += o.blocks_total;
  blocks_retried += o.blocks_retried;
  retries += o.retries;
  slots_replayed += o.slots_replayed;
  backoff_slots += o.backoff_slots;
  corrected_bits += o.corrected_bits;
  double_errors += o.double_errors;
  crc_failures += o.crc_failures;
  detected_errors += o.detected_errors;
  residual_errors += o.residual_errors;
}

ProtectedChannel::ProtectedChannel(FaultModel fault, ReliabilityParams params)
    : params_(params), fault_(std::move(fault)), stream_(fault_) {
  params_.validate();
  if (params_.policy != ReliabilityPolicy::kOff) calibrate();
}

void ProtectedChannel::calibrate() {
  // Drive an all-ones training burst and scan for stuck-at-0 columns. A
  // dead lane reads 0 on every training word (random flips can light it
  // occasionally, so "dead" tolerates up to a quarter of the burst).
  const std::size_t T = params_.training_words;
  if (T == 0) return;
  std::vector<std::uint32_t> ones_seen(64, 0);
  for (std::size_t t = 0; t < T; ++t) {
    const std::uint64_t got = stream_.corrupt(~std::uint64_t{0});
    for (int b = 0; b < 64; ++b) {
      if ((got >> b) & 1U) ++ones_seen[static_cast<std::size_t>(b)];
    }
  }
  calibration_slots_ = T;
  for (std::uint32_t b = 0; b < 64; ++b) {
    if (ones_seen[b] <= T / 4) lanes_.dead_lanes.push_back(b);
  }

  if (params_.policy != ReliabilityPolicy::kCorrectRetry) return;

  // Failover: remap dead lanes onto spares; serialize over the survivors
  // once spares run out. Either way the stuck-at columns carry no traffic,
  // so the silenced mask drops to the lanes the scan missed (none, for a
  // deterministic stuck-at fault).
  const std::size_t dead = lanes_.dead_lanes.size();
  lanes_.spares_used = std::min(dead, params_.spare_lanes);
  lanes_.residual_dead = dead - lanes_.spares_used;
  const std::size_t usable = 64 - lanes_.residual_dead;
  if (usable == 0) {
    // Every lane is dead and the spare pool could not restore even one:
    // there is no width left to serialize over. Before this check the
    // degraded-width division below hit zero and the channel carried on as
    // if traffic still flowed. Fail-stop with a typed error instead so the
    // campaign layer can classify the point.
    throw LaneExhaustionError(
        "ProtectedChannel: all 64 lanes dead and spares exhausted (" +
        std::to_string(params_.spare_lanes) +
        " spare(s)); the channel cannot carry traffic");
  }
  lanes_.slots_per_word = usable >= 64 ? 1 : (64 + usable - 1) / usable;

  std::uint64_t detected_mask = 0;
  for (std::uint32_t b : lanes_.dead_lanes) {
    detected_mask |= (std::uint64_t{1} << b);
  }
  stream_.set_silenced_mask(stream_.silenced_mask() & ~detected_mask);
}

ProtectedChannel::Transmission ProtectedChannel::transmit(
    const std::vector<std::uint64_t>& payload,
    const std::vector<std::int64_t>* corrupted_slots) {
  Transmission tx;
  tx.payload_slots = payload.size();
  tx.words.reserve(payload.size());

  if (params_.policy == ReliabilityPolicy::kOff) {
    tx.words.resize(payload.size());
    stream_.corrupt_words(payload.data(), tx.words.data(), payload.size(),
                          &tx.fault);
    tx.wire_slots = tx.wire_words = payload.size();
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (tx.words[i] != payload[i]) ++tx.retry.residual_errors;
    }
    return tx;
  }

  const std::size_t spw = lanes_.slots_per_word;
  const std::size_t B = params_.block_words;
  std::size_t next_flagged = 0;  // cursor into corrupted_slots (sorted)
  std::vector<std::int64_t> flagged;
  if (corrupted_slots != nullptr) {
    flagged = *corrupted_slots;
    std::sort(flagged.begin(), flagged.end());
  }

  std::vector<std::uint64_t> wire;
  std::vector<std::uint64_t> received;
  BlockDecode dec;  // payload buffer reused across blocks and attempts
  for (std::size_t off = 0; off < payload.size(); off += B) {
    const std::size_t n = std::min(B, payload.size() - off);
    ++tx.retry.blocks_total;

    wire.clear();
    encode_block(payload.data() + off, n, &wire);

    // Collision-flagged slots inside this block force a replay even when
    // the coding checks pass (the checker saw overlapping energy).
    bool collision_flagged = false;
    while (next_flagged < flagged.size() &&
           flagged[next_flagged] < static_cast<std::int64_t>(off + n)) {
      if (flagged[next_flagged] >= static_cast<std::int64_t>(off)) {
        collision_flagged = true;
      }
      ++next_flagged;
    }

    const bool correct =
        params_.policy == ReliabilityPolicy::kCorrectRetry;
    const std::size_t max_retries = correct ? params_.max_retries : 0;
    for (std::size_t attempt = 0;; ++attempt) {
      received.resize(wire.size());
      stream_.corrupt_words(wire.data(), received.data(), wire.size(),
                            &tx.fault);
      tx.wire_words += wire.size();
      tx.wire_slots += wire.size() * spw;
      if (attempt > 0) {
        tx.retry.slots_replayed += wire.size() * spw;
        tx.retry.backoff_slots += params_.retry_backoff_slots;
        tx.backoff_slots += params_.retry_backoff_slots;
        ++tx.retry.retries;
      }

      decode_block_into(received.data(), n, correct, &dec);
      tx.retry.corrected_bits += dec.corrected_bits;
      tx.retry.double_errors += dec.double_errors;
      tx.retry.detected_errors += dec.flagged_words;
      if (!dec.crc_ok) {
        ++tx.retry.crc_failures;
        ++tx.retry.detected_errors;
      }

      const bool bad = !dec.good() || (attempt == 0 && collision_flagged);
      if (!bad || attempt == max_retries) {
        if (attempt > 0) ++tx.retry.blocks_retried;
        break;
      }
    }

    tx.words.insert(tx.words.end(), dec.payload.begin(), dec.payload.end());
  }

  PSYNC_CHECK(tx.words.size() == payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (tx.words[i] != payload[i]) ++tx.retry.residual_errors;
  }
  return tx;
}

}  // namespace psync::reliability
