// ISA-specific kernel entry points for the reliability codecs. The real
// bodies live in crc32_pclmul.cpp and secded_avx2.cpp, which are compiled
// with per-source ISA flags (see CMakeLists); on targets without those
// instruction sets the inline stubs below keep every call site portable.
// Availability is a runtime question (CPUID + PSYNC_FORCE_SCALAR) answered
// by the *_available() predicates; the kernels themselves must only be
// called when their predicate holds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psync::reliability::detail {

#if defined(__x86_64__) || defined(__i386__)

bool crc32_pclmul_available();
/// Fold `len` bytes (len >= 64) into the raw CRC register using PCLMULQDQ.
/// Consumes the largest multiple of 16 bytes and stores it in *consumed;
/// the caller folds the remaining tail with the table loops.
std::uint32_t crc32_fold_pclmul(std::uint32_t crc, const unsigned char* p,
                                std::size_t len, std::size_t* consumed);

bool secded_avx2_available();
/// checks[0..3] = secded_encode(data[0..3]), four words per call.
void secded_encode4_avx2(const std::uint64_t* data, std::uint8_t* checks);
/// Bit i of the result is set iff word i of the group of four has a nonzero
/// syndrome or odd overall parity — exactly the words the scalar decoder
/// would classify via secded_decode.
unsigned secded_flagged4_avx2(const std::uint64_t* data,
                              const std::uint8_t* checks);

#else

inline bool crc32_pclmul_available() { return false; }
inline std::uint32_t crc32_fold_pclmul(std::uint32_t crc,
                                       const unsigned char*, std::size_t,
                                       std::size_t* consumed) {
  *consumed = 0;
  return crc;
}
inline bool secded_avx2_available() { return false; }
inline void secded_encode4_avx2(const std::uint64_t*, std::uint8_t*) {}
inline unsigned secded_flagged4_avx2(const std::uint64_t*,
                                     const std::uint8_t*) {
  return 0;
}

#endif

}  // namespace psync::reliability::detail
