// PCLMULQDQ CRC-32 folding, after Gopal et al., "Fast CRC Computation for
// Generic Polynomials Using PCLMULQDQ Instruction" (Intel whitepaper, 2009).
// Four 128-bit lanes fold 64 input bytes per iteration by carry-less
// multiplication with precomputed x^T mod P factors; a final Barrett
// reduction collapses the 128-bit remainder to the 32-bit CRC. The math is
// exact GF(2) arithmetic, so the result equals the table-driven loops bit
// for bit — the identity tests enforce it. Only this TU is compiled with
// -mpclmul -msse4.1 (see CMakeLists).
#include "psync/reliability/reliability_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include "psync/common/simd_dispatch.hpp"

#if defined(__PCLMUL__) && defined(__SSE4_1__)

#include <immintrin.h>

namespace psync::reliability::detail {
namespace {

// x^T mod P factors for the reflected polynomial 0xEDB88320 at the fold
// distances used below (bit-reflected, as in the whitepaper's tables):
// k1 = x^(4*128+64), k2 = x^(4*128)  — 64-byte fold, four lanes
// k3 = x^(128+64),   k4 = x^128     — 16-byte fold / lane combine
// k5 = x^96                          — 128 -> 64 bit reduction
// P' = reflected polynomial, mu = floor(x^64 / P) for Barrett reduction.
inline __m128i k1k2() {
  return _mm_set_epi64x(0x00000001c6e41596LL, 0x0000000154442bd4LL);
}
inline __m128i k3k4() {
  return _mm_set_epi64x(0x00000000ccaa009eLL, 0x00000001751997d0LL);
}
inline __m128i k5() { return _mm_set_epi64x(0LL, 0x0000000163cd6124LL); }
inline __m128i poly_mu() {
  return _mm_set_epi64x(0x00000001f7011641LL, 0x00000001db710641LL);
}
inline __m128i mask_lo32() { return _mm_setr_epi32(~0, 0, ~0, 0); }

// One 128-bit fold step: advance the accumulator by `dist` bytes and absorb
// the next block.
inline __m128i fold(__m128i acc, __m128i k, __m128i next) {
  const __m128i lo = _mm_clmulepi64_si128(acc, k, 0x00);
  const __m128i hi = _mm_clmulepi64_si128(acc, k, 0x11);
  return _mm_xor_si128(_mm_xor_si128(lo, hi), next);
}

}  // namespace

bool crc32_pclmul_available() { return simd::have_pclmul(); }

std::uint32_t crc32_fold_pclmul(std::uint32_t crc, const unsigned char* p,
                                std::size_t len, std::size_t* consumed) {
  const std::size_t total = len & ~std::size_t{15};
  const auto* b = reinterpret_cast<const __m128i*>(p);
  __m128i x1 = _mm_loadu_si128(b + 0);
  __m128i x2 = _mm_loadu_si128(b + 1);
  __m128i x3 = _mm_loadu_si128(b + 2);
  __m128i x4 = _mm_loadu_si128(b + 3);
  // The running register XORs into the first 4 message bytes, exactly as in
  // the table loops.
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  std::size_t pos = 64;

  const __m128i kq = k1k2();
  while (total - pos >= 64) {
    const auto* nb = reinterpret_cast<const __m128i*>(p + pos);
    x1 = fold(x1, kq, _mm_loadu_si128(nb + 0));
    x2 = fold(x2, kq, _mm_loadu_si128(nb + 1));
    x3 = fold(x3, kq, _mm_loadu_si128(nb + 2));
    x4 = fold(x4, kq, _mm_loadu_si128(nb + 3));
    pos += 64;
  }

  // Collapse the four lanes into one 128-bit accumulator.
  const __m128i ks = k3k4();
  x1 = fold(x1, ks, x2);
  x1 = fold(x1, ks, x3);
  x1 = fold(x1, ks, x4);

  while (total - pos >= 16) {
    x1 = fold(x1, ks,
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + pos)));
    pos += 16;
  }

  // Reduce 128 -> 64 bits: fold the low qword by x^64 (k4), keep the high.
  __m128i t = _mm_clmulepi64_si128(x1, ks, 0x10);
  x1 = _mm_xor_si128(t, _mm_srli_si128(x1, 8));
  // Reduce 96 -> 64: fold the low dword by x^96 (k5).
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask_lo32());
  x1 = _mm_clmulepi64_si128(x1, k5(), 0x00);
  x1 = _mm_xor_si128(x1, t);
  // Barrett reduction to 32 bits.
  const __m128i pm = poly_mu();
  t = _mm_and_si128(x1, mask_lo32());
  t = _mm_clmulepi64_si128(t, pm, 0x10);  // * mu
  t = _mm_and_si128(t, mask_lo32());
  t = _mm_clmulepi64_si128(t, pm, 0x00);  // * P'
  x1 = _mm_xor_si128(x1, t);

  *consumed = pos;
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace psync::reliability::detail

#else  // x86 without PCLMUL compiler support: keep the path off.

namespace psync::reliability::detail {

bool crc32_pclmul_available() { return false; }

std::uint32_t crc32_fold_pclmul(std::uint32_t crc, const unsigned char*,
                                std::size_t, std::size_t* consumed) {
  *consumed = 0;
  return crc;
}

}  // namespace psync::reliability::detail

#endif  // __PCLMUL__ && __SSE4_1__

#endif  // x86
