// Constexpr construction tables for the SECDED(72,64) code, shared between
// the scalar codec (secded.cpp) and the AVX2 syndrome kernel
// (secded_avx2.cpp) so both paths fold exactly the same masks.
#pragma once

#include <array>
#include <cstdint>

namespace psync::reliability::detail {

// Codeword position of each data bit: positions 1..71 that are not powers
// of two (the powers of two hold the parity bits). 71 positions minus 7
// parity positions leaves exactly the 64 we need.
constexpr std::array<std::uint8_t, 64> make_data_pos() {
  std::array<std::uint8_t, 64> pos{};
  int k = 0;
  for (int j = 1; j <= 71; ++j) {
    if ((j & (j - 1)) != 0) pos[static_cast<std::size_t>(k++)] =
        static_cast<std::uint8_t>(j);
  }
  return pos;
}
inline constexpr std::array<std::uint8_t, 64> kDataPos = make_data_pos();

// Inverse map: codeword position -> data bit index (or -1).
constexpr std::array<std::int8_t, 128> make_pos_to_bit() {
  std::array<std::int8_t, 128> inv{};
  for (auto& v : inv) v = -1;
  for (int k = 0; k < 64; ++k) inv[kDataPos[static_cast<std::size_t>(k)]] =
      static_cast<std::int8_t>(k);
  return inv;
}
inline constexpr std::array<std::int8_t, 128> kPosToBit = make_pos_to_bit();

// Per-data-bit position, folded into seven 64-bit masks: kSynMask[i] has a
// 1 at data bit k iff bit i of kDataPos[k] is set. The syndrome of a data
// word is then seven popcount parities instead of a 64-iteration loop.
constexpr std::array<std::uint64_t, 7> make_syn_masks() {
  std::array<std::uint64_t, 7> m{};
  for (int k = 0; k < 64; ++k) {
    for (int i = 0; i < 7; ++i) {
      if ((kDataPos[static_cast<std::size_t>(k)] >> i) & 1) {
        m[static_cast<std::size_t>(i)] |= (std::uint64_t{1} << k);
      }
    }
  }
  return m;
}
inline constexpr std::array<std::uint64_t, 7> kSynMask = make_syn_masks();

}  // namespace psync::reliability::detail
