// Optical fault model for PSCAN words (moved here from core/faults so the
// reliability layer can sit below core in the link order; core/faults.hpp
// re-exports these names and keeps the Gather/ScatterResult injectors).
//
// Two failure modes the physical layer exhibits:
//   * a dead wavelength — a ring stuck off-resonance (thermal drift,
//     fabrication defect) silences one bit lane of every word that passes
//     its modulator bank: a stuck-at-0 column through the whole stream;
//   * random bit errors — the link's BER, which the photonic::ber model
//     derives from the optical margin (Eq. 1's headroom).
//
// FaultStream is the fast path for long streams: the dead-lane mask is
// validated and built once, and random flips are drawn by geometric gap
// sampling (O(flips), not O(bits)) — a 2^20-slot stream at BER 1e-9 costs
// a handful of RNG draws instead of 64M.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"

namespace psync::reliability {

struct FaultModel {
  /// Stuck-at-0 bit lanes (wavelength indices, 0..63 for the one-word-per-
  /// slot stream model).
  std::vector<std::uint32_t> dead_wavelengths;
  /// Independent bit-flip probability per received bit.
  double random_ber = 0.0;
  /// RNG seed for the random flips (deterministic injection).
  std::uint64_t seed = 1;

  // -- Time-varying BER profile (device-level degradation campaigns) --
  //
  // Real photonic links do not sit at one BER: ring resonators drift with
  // temperature, and a laser/driver power sag ("brownout") steps the margin
  // down for a window. Both are modeled on the stream-word axis:
  //
  //   ber(word) = min(1, random_ber + drift_ber_per_mword * word / 1e6)
  //   ber(word) = max(ber(word), brownout_ber)   within the brownout window
  //
  // The drift term is quantized to kProfileStepWords-word steps so the
  // profile stays piecewise-constant and the O(flips) geometric-gap sampler
  // remains exact within each segment.

  /// Additive BER per million stream words (thermal-drift ramp; 0 = off).
  double drift_ber_per_mword = 0.0;
  /// Brownout window: [brownout_start_word, brownout_start_word +
  /// brownout_words) on the stream axis. brownout_ber overrides the base
  /// BER within the window when it is worse.
  std::uint64_t brownout_start_word = 0;
  std::uint64_t brownout_words = 0;
  double brownout_ber = 0.0;

  /// Drift quantization step, words. Segments of this length see one BER.
  static constexpr std::uint64_t kProfileStepWords = 4096;

  bool time_varying() const {
    return drift_ber_per_mword > 0.0 ||
           (brownout_words > 0 && brownout_ber > 0.0);
  }

  /// Effective random BER for the word at stream position `word`.
  double ber_at_word(std::uint64_t word) const;

  /// First stream position after `word` where ber_at_word may change
  /// (segment boundary); uint64 max when the profile is flat from here on.
  std::uint64_t next_profile_change(std::uint64_t word) const;

  bool trivial() const {
    return dead_wavelengths.empty() && random_ber <= 0.0 && !time_varying();
  }

  /// Throws ConfigError if any dead lane index is out of range or a BER
  /// field is not a probability (drift rate must be >= 0).
  void validate() const;

  /// Validates, then folds the dead lanes into a stuck-at-0 mask. Callers
  /// injecting over long streams should build this once (or use
  /// FaultStream, which caches it).
  std::uint64_t silenced_mask() const;

  /// Derive the random BER from an optical margin via the Q-factor model.
  static FaultModel from_margin_db(double margin_db, std::uint64_t seed = 1);
};

struct FaultReport {
  std::uint64_t words_total = 0;
  std::uint64_t words_corrupted = 0;
  std::uint64_t bits_flipped = 0;     // by random BER
  std::uint64_t bits_silenced = 0;    // 1-bits cleared by dead lanes
  void merge(const FaultReport& o);
};

/// Streaming corruptor: one validated mask, one RNG, O(flips) random
/// errors via geometric gap sampling (the Bernoulli process is memoryless,
/// so skipping directly to the next flipped bit is exact).
class FaultStream {
 public:
  explicit FaultStream(const FaultModel& model);

  /// Corrupt the next word of the stream.
  std::uint64_t corrupt(std::uint64_t w, FaultReport* report = nullptr);

  /// Corrupt `count` consecutive stream words in one call: out[i] is what
  /// corrupt(in[i]) would have returned, with identical RNG draw order and
  /// report counters. Whole clean stretches (no dead lanes, next flip
  /// beyond the burst) are bulk-copied instead of stepped word by word.
  /// `out` may alias `in`.
  void corrupt_words(const std::uint64_t* in, std::uint64_t* out,
                     std::size_t count, FaultReport* report = nullptr);

  /// Override the stuck-at mask (lane failover reroutes traffic off dead
  /// lanes; random BER still applies).
  void set_silenced_mask(std::uint64_t mask) { mask_ = mask; }
  std::uint64_t silenced_mask() const { return mask_; }

 private:
  std::uint64_t draw_gap();

  /// Entering a new profile segment: re-evaluate the BER at the current
  /// stream position and redraw the flip horizon. The Bernoulli process is
  /// memoryless, so redrawing at a rate change is distribution-exact for a
  /// piecewise-constant BER. Only reached when the model is time-varying —
  /// a static profile takes byte-identical draws to the pre-profile code.
  void advance_segment();

  std::uint64_t mask_ = 0;
  double ber_ = 0.0;
  Rng rng_;
  std::uint64_t gap_ = 0;  // clean bits before the next random flip

  bool time_varying_ = false;
  FaultModel profile_;           // profile evaluation copy (time-varying only)
  std::uint64_t word_index_ = 0; // stream position (words consumed so far)
  std::uint64_t segment_end_ = 0; // first word of the next profile segment
};

/// Corrupt one word under the model (deterministic given rng state). Slow
/// path — rebuilds the mask per call; use FaultStream for streams.
std::uint64_t apply_fault(const FaultModel& fault, std::uint64_t w, Rng& rng,
                          FaultReport* report = nullptr);

}  // namespace psync::reliability
