#include "psync/reliability/fault_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "psync/common/check.hpp"
#include "psync/photonic/ber.hpp"

namespace psync::reliability {
namespace {

// Geometric gap to the next flipped bit for flip probability `ber`:
// floor(log(1-u) / log(1-ber)) with u uniform in [0,1). Exact for a
// memoryless Bernoulli bit process.
std::uint64_t geometric_gap(double ber, Rng& rng) {
  if (ber >= 1.0) return 0;
  const double u = rng.next_double();
  const double gap = std::floor(std::log1p(-u) / std::log1p(-ber));
  if (gap >= 1.8e19) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(gap);
}

}  // namespace

void FaultModel::validate() const {
  for (std::uint32_t lane : dead_wavelengths) {
    if (lane >= 64) throw ConfigError("FaultModel: lane must be < 64");
  }
  if (random_ber < 0.0 || random_ber > 1.0) {
    throw ConfigError("FaultModel: random_ber must be in [0, 1]");
  }
  if (drift_ber_per_mword < 0.0) {
    throw ConfigError("FaultModel: drift_ber_per_mword must be >= 0");
  }
  if (brownout_ber < 0.0 || brownout_ber > 1.0) {
    throw ConfigError("FaultModel: brownout_ber must be in [0, 1]");
  }
}

double FaultModel::ber_at_word(std::uint64_t word) const {
  double b = random_ber;
  if (drift_ber_per_mword > 0.0) {
    const std::uint64_t step = word / kProfileStepWords * kProfileStepWords;
    b += drift_ber_per_mword * (static_cast<double>(step) * 1e-6);
  }
  if (brownout_words > 0 && word >= brownout_start_word &&
      word - brownout_start_word < brownout_words) {
    b = std::max(b, brownout_ber);
  }
  return std::min(b, 1.0);
}

std::uint64_t FaultModel::next_profile_change(std::uint64_t word) const {
  constexpr auto kNever = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t next = kNever;
  if (drift_ber_per_mword > 0.0) {
    next = (word / kProfileStepWords + 1) * kProfileStepWords;
  }
  if (brownout_words > 0) {
    if (word < brownout_start_word) {
      next = std::min(next, brownout_start_word);
    } else if (word - brownout_start_word < brownout_words) {
      next = std::min(next, brownout_start_word + brownout_words);
    }
  }
  return next;
}

std::uint64_t FaultModel::silenced_mask() const {
  validate();
  std::uint64_t mask = 0;
  for (std::uint32_t lane : dead_wavelengths) {
    mask |= (std::uint64_t{1} << lane);
  }
  return mask;
}

FaultModel FaultModel::from_margin_db(double margin_db, std::uint64_t seed) {
  FaultModel f;
  f.random_ber = photonic::ber_at_margin(DecibelsDb(margin_db));
  f.seed = seed;
  return f;
}

void FaultReport::merge(const FaultReport& o) {
  words_total += o.words_total;
  words_corrupted += o.words_corrupted;
  bits_flipped += o.bits_flipped;
  bits_silenced += o.bits_silenced;
}

FaultStream::FaultStream(const FaultModel& model)
    : mask_(model.silenced_mask()),
      ber_(model.random_ber),
      rng_(model.seed) {
  constexpr auto kNever = std::numeric_limits<std::uint64_t>::max();
  if (model.time_varying()) {
    time_varying_ = true;
    profile_ = model;
    profile_.dead_wavelengths.clear();  // already folded into mask_
    ber_ = profile_.ber_at_word(0);
    segment_end_ = profile_.next_profile_change(0);
  } else {
    segment_end_ = kNever;
  }
  gap_ = ber_ > 0.0 ? geometric_gap(ber_, rng_) : kNever;
}

std::uint64_t FaultStream::draw_gap() { return geometric_gap(ber_, rng_); }

void FaultStream::advance_segment() {
  ber_ = profile_.ber_at_word(word_index_);
  segment_end_ = profile_.next_profile_change(word_index_);
  gap_ = ber_ > 0.0 ? geometric_gap(ber_, rng_)
                    : std::numeric_limits<std::uint64_t>::max();
}

std::uint64_t FaultStream::corrupt(std::uint64_t w, FaultReport* report) {
  if (time_varying_ && word_index_ >= segment_end_) advance_segment();
  ++word_index_;
  const std::uint64_t before = w;
  const std::uint64_t silenced_bits = w & mask_;
  w &= ~mask_;

  std::uint64_t flipped = 0;
  if (ber_ > 0.0) {
    constexpr auto kNever = std::numeric_limits<std::uint64_t>::max();
    while (gap_ < 64) {
      flipped |= (std::uint64_t{1} << gap_);
      const std::uint64_t skip = draw_gap();
      gap_ = skip >= kNever - 64 ? kNever : gap_ + 1 + skip;
    }
    if (gap_ != kNever) gap_ -= 64;
    w ^= flipped;
  }

  if (report != nullptr) {
    ++report->words_total;
    if (w != before) ++report->words_corrupted;
    report->bits_flipped += static_cast<std::uint64_t>(std::popcount(flipped));
    report->bits_silenced +=
        static_cast<std::uint64_t>(std::popcount(silenced_bits));
  }
  return w;
}

void FaultStream::corrupt_words(const std::uint64_t* in, std::uint64_t* out,
                                std::size_t count, FaultReport* report) {
  constexpr auto kNever = std::numeric_limits<std::uint64_t>::max();
  std::size_t i = 0;
  while (i < count) {
    // Bulk path: no stuck-at lanes and the next random flip lies at least a
    // whole word away — every word up to the flip passes through untouched,
    // and per-word corrupt() would only have decremented gap_ by 64 and
    // bumped words_total. Replicate that in one step. A time-varying
    // profile caps the stretch at its segment boundary, where the per-word
    // fall-through re-evaluates the BER.
    if (mask_ == 0 && gap_ >= 64 &&
        (!time_varying_ || word_index_ < segment_end_)) {
      std::uint64_t clean_words =
          gap_ == kNever ? static_cast<std::uint64_t>(count - i)
                         : std::min<std::uint64_t>(count - i, gap_ / 64);
      if (time_varying_) {
        clean_words = std::min(clean_words, segment_end_ - word_index_);
      }
      if (out != in) std::copy(in + i, in + i + clean_words, out + i);
      if (gap_ != kNever) gap_ -= clean_words * 64;
      word_index_ += clean_words;
      if (report != nullptr) report->words_total += clean_words;
      i += static_cast<std::size_t>(clean_words);
      if (i == count) return;
    }
    out[i] = corrupt(in[i], report);
    ++i;
  }
}

std::uint64_t apply_fault(const FaultModel& fault, std::uint64_t w, Rng& rng,
                          FaultReport* report) {
  const std::uint64_t mask = fault.silenced_mask();
  const std::uint64_t before = w;
  const std::uint64_t silenced_bits = w & mask;
  w &= ~mask;

  // Geometric gap sampling within the word; memorylessness makes starting
  // fresh at bit 0 for each call distribution-exact.
  std::uint64_t flipped = 0;
  if (fault.random_ber > 0.0) {
    std::uint64_t bit = geometric_gap(fault.random_ber, rng);
    while (bit < 64) {
      flipped |= (std::uint64_t{1} << bit);
      const std::uint64_t skip = geometric_gap(fault.random_ber, rng);
      if (skip >= std::numeric_limits<std::uint64_t>::max() - 64) break;
      bit += 1 + skip;
    }
    w ^= flipped;
  }

  if (report != nullptr) {
    ++report->words_total;
    if (w != before) ++report->words_corrupted;
    report->bits_flipped += static_cast<std::uint64_t>(std::popcount(flipped));
    report->bits_silenced +=
        static_cast<std::uint64_t>(std::popcount(silenced_bits));
  }
  return w;
}

}  // namespace psync::reliability
