// Block framing for protected PSCAN streams: SECDED(72,64) on every wire
// word plus one CRC-32 word per block.
//
// Wire layout of one block of n payload words:
//
//   [ payload word 0 .. n-1 ][ CRC word ][ check word 0 .. ceil((n+1)/8)-1 ]
//
// The CRC word carries crc32 over the n payload words (low 32 bits) and is
// itself SECDED-protected like the payload. Check word j packs the 8-bit
// SECDED check bytes of data words 8j..8j+7 (byte i at bits 8i..8i+7), so
// eight payload slots cost one extra check slot — the 72/64 code expressed
// in whole slots, which is what the slot-exact timing model charges.
//
// Check words travel unprotected: a flipped bit there surfaces as a check-
// byte error on the corresponding data word, which SECDED classifies as a
// correctable check-bit error (data untouched).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psync::reliability {

/// SECDED check words needed for `data_words` 8-bit check bytes.
inline std::size_t check_words_for(std::size_t data_words) {
  return (data_words + 7) / 8;
}

/// Wire words for one block of `payload_words` words.
inline std::size_t coded_block_words(std::size_t payload_words) {
  return payload_words + 1 + check_words_for(payload_words + 1);
}

/// Wire words for a `payload_words`-word stream framed in blocks of
/// `block_words` (the last block may be short).
std::size_t coded_stream_words(std::size_t payload_words,
                               std::size_t block_words);

/// Append the wire encoding of one block to `wire`.
void encode_block(const std::uint64_t* payload, std::size_t n,
                  std::vector<std::uint64_t>* wire);

struct BlockDecode {
  /// Recovered payload: SECDED-corrected when decoding with `correct`,
  /// otherwise the raw received words.
  std::vector<std::uint64_t> payload;
  std::uint64_t corrected_bits = 0;  // single-bit SECDED repairs applied
  std::uint64_t double_errors = 0;   // SECDED double-detects
  std::uint64_t flagged_words = 0;   // data words with any nonzero syndrome
  bool crc_ok = false;

  /// Block verified end-to-end: every word clean or corrected, CRC matches.
  bool good() const { return crc_ok && double_errors == 0; }
};

/// Decode one received block (`wire` holds coded_block_words(n) words).
/// With `correct` set, single-bit errors are repaired before the CRC check;
/// without it the decoder only counts what it saw (detect-only policy).
BlockDecode decode_block(const std::uint64_t* wire, std::size_t n,
                         bool correct);

/// Same decode, writing into a caller-owned result whose payload buffer is
/// reused across calls — the per-block allocation disappears when a channel
/// decodes a long stream (or retries) block after block.
void decode_block_into(const std::uint64_t* wire, std::size_t n, bool correct,
                       BlockDecode* out);

/// Original per-word encode/decode loops, kept as the ground truth the
/// batched paths are tested against. Behavior is identical.
void encode_block_reference(const std::uint64_t* payload, std::size_t n,
                            std::vector<std::uint64_t>* wire);
BlockDecode decode_block_reference(const std::uint64_t* wire, std::size_t n,
                                   bool correct);

}  // namespace psync::reliability
