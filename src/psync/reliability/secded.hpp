// SECDED(72,64): single-error-correct / double-error-detect extended
// Hamming code over one 64-bit waveguide word.
//
// The PSCAN stream moves one 64-bit sample per slot across the WDM group;
// protecting it costs 8 check bits per word (7 Hamming parity bits plus an
// overall parity bit), i.e. a 72/64 = 12.5% code rate overhead. On the wire
// the check bytes of eight consecutive words are packed into one extra
// 64-bit slot (see framing.hpp), so the slot-exact timing and photonic
// energy models can charge the real cost of the code.
//
// Construction: codeword positions 1..71 hold the 7 parity bits (at the
// powers of two) and the 64 data bits (everywhere else); the check byte's
// bit 7 is the overall parity of all 71 position bits plus itself. A single
// flipped bit anywhere — data, parity, or overall — is located by the
// syndrome and corrected; any two flips are detected but not correctable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psync::reliability {

/// Check bits (8) for a 64-bit data word: bits 0..6 are the Hamming parity
/// bits p0..p6, bit 7 is the overall parity.
std::uint8_t secded_encode(std::uint64_t data);

enum class SecdedStatus {
  kClean,           // syndrome zero, parity even
  kCorrectedData,   // single error in a data bit, repaired
  kCorrectedCheck,  // single error in a check bit, data untouched
  kDoubleError,     // two errors detected, not correctable
};

struct SecdedResult {
  std::uint64_t data = 0;  // corrected data (raw data on kDoubleError)
  SecdedStatus status = SecdedStatus::kClean;
  /// Data bit index repaired (kCorrectedData only), else -1.
  int corrected_bit = -1;

  bool clean() const { return status == SecdedStatus::kClean; }
  bool corrected() const {
    return status == SecdedStatus::kCorrectedData ||
           status == SecdedStatus::kCorrectedCheck;
  }
  bool double_error() const { return status == SecdedStatus::kDoubleError; }
};

/// Decode a received (data, check) pair, correcting at most one flipped bit.
SecdedResult secded_decode(std::uint64_t data, std::uint8_t check);

/// Word-batched encode: checks[i] = secded_encode(data[i]) for i < count.
/// One call per burst instead of one per word.
void secded_encode_words(const std::uint64_t* data, std::size_t count,
                         std::uint8_t* checks);

/// Counters accumulated by secded_decode_words, with the same semantics as
/// classifying each word via secded_decode (corrected_bits counts only
/// repairs that are applied, i.e. when `correct` is set).
struct SecdedWordStats {
  std::uint64_t corrected_bits = 0;
  std::uint64_t double_errors = 0;
  std::uint64_t flagged_words = 0;  // words with any nonzero syndrome/parity
};

/// Word-batched decode of `count` (data[i], checks[i]) pairs. out[i]
/// receives the corrected word when `correct` is set, the raw word
/// otherwise (`out` may alias `data`). Clean words — the overwhelmingly
/// common case — take a branch-light fast path; flagged words fall back to
/// the full secded_decode classification, so results and counters are
/// identical to the per-word API.
void secded_decode_words(const std::uint64_t* data, const std::uint8_t* checks,
                         std::size_t count, bool correct, std::uint64_t* out,
                         SecdedWordStats* stats);

}  // namespace psync::reliability
