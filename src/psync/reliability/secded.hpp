// SECDED(72,64): single-error-correct / double-error-detect extended
// Hamming code over one 64-bit waveguide word.
//
// The PSCAN stream moves one 64-bit sample per slot across the WDM group;
// protecting it costs 8 check bits per word (7 Hamming parity bits plus an
// overall parity bit), i.e. a 72/64 = 12.5% code rate overhead. On the wire
// the check bytes of eight consecutive words are packed into one extra
// 64-bit slot (see framing.hpp), so the slot-exact timing and photonic
// energy models can charge the real cost of the code.
//
// Construction: codeword positions 1..71 hold the 7 parity bits (at the
// powers of two) and the 64 data bits (everywhere else); the check byte's
// bit 7 is the overall parity of all 71 position bits plus itself. A single
// flipped bit anywhere — data, parity, or overall — is located by the
// syndrome and corrected; any two flips are detected but not correctable.
#pragma once

#include <cstdint>

namespace psync::reliability {

/// Check bits (8) for a 64-bit data word: bits 0..6 are the Hamming parity
/// bits p0..p6, bit 7 is the overall parity.
std::uint8_t secded_encode(std::uint64_t data);

enum class SecdedStatus {
  kClean,           // syndrome zero, parity even
  kCorrectedData,   // single error in a data bit, repaired
  kCorrectedCheck,  // single error in a check bit, data untouched
  kDoubleError,     // two errors detected, not correctable
};

struct SecdedResult {
  std::uint64_t data = 0;  // corrected data (raw data on kDoubleError)
  SecdedStatus status = SecdedStatus::kClean;
  /// Data bit index repaired (kCorrectedData only), else -1.
  int corrected_bit = -1;

  bool clean() const { return status == SecdedStatus::kClean; }
  bool corrected() const {
    return status == SecdedStatus::kCorrectedData ||
           status == SecdedStatus::kCorrectedCheck;
  }
  bool double_error() const { return status == SecdedStatus::kDoubleError; }
};

/// Decode a received (data, check) pair, correcting at most one flipped bit.
SecdedResult secded_decode(std::uint64_t data, std::uint8_t check);

}  // namespace psync::reliability
