// AVX2 SECDED(72,64) syndrome batches: four 64-bit words per call. Each of
// the seven folded position masks (and the overall parity) reduces to a
// per-lane parity, computed with the classic nibble-parity shuffle plus a
// byte-sum — pure GF(2) arithmetic, so check bytes and flagged-word masks
// equal the scalar codec's exactly. Only this TU is compiled with -mavx2
// (see CMakeLists).
#include "psync/reliability/reliability_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include "psync/common/simd_dispatch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "psync/reliability/secded_tables.hpp"

namespace psync::reliability::detail {
namespace {

// Parity of each nibble value 0..15, replicated across both 128-bit lanes
// for vpshufb.
inline __m256i nibble_parity_lut() {
  return _mm256_setr_epi8(0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0,
                          1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0);
}

// Per-64-bit-lane parity of x: 0 or 1 in each lane.
inline __m256i parity64(__m256i x) {
  const __m256i lo_mask = _mm256_set1_epi8(0x0F);
  const __m256i lut = nibble_parity_lut();
  const __m256i lo = _mm256_and_si256(x, lo_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), lo_mask);
  const __m256i per_byte = _mm256_xor_si256(_mm256_shuffle_epi8(lut, lo),
                                            _mm256_shuffle_epi8(lut, hi));
  // Byte parities are 0/1; the lane parity is the low bit of their sum.
  const __m256i sums = _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
  return _mm256_and_si256(sums, _mm256_set1_epi64x(1));
}

// 7-bit Hamming syndrome of the data bits, one per lane.
inline __m256i syndrome4(__m256i d) {
  __m256i syn = _mm256_setzero_si256();
  for (int i = 0; i < 7; ++i) {
    const __m256i m = _mm256_set1_epi64x(
        static_cast<long long>(kSynMask[static_cast<std::size_t>(i)]));
    syn = _mm256_or_si256(
        syn, _mm256_slli_epi64(parity64(_mm256_and_si256(d, m)), i));
  }
  return syn;
}

// Parity of the low 8 bits of each lane (lanes hold zero-extended bytes).
inline __m256i parity8(__m256i v) {
  __m256i p = _mm256_xor_si256(v, _mm256_srli_epi64(v, 4));
  p = _mm256_xor_si256(p, _mm256_srli_epi64(p, 2));
  p = _mm256_xor_si256(p, _mm256_srli_epi64(p, 1));
  return _mm256_and_si256(p, _mm256_set1_epi64x(1));
}

}  // namespace

bool secded_avx2_available() { return simd::have_avx2(); }

void secded_encode4_avx2(const std::uint64_t* data, std::uint8_t* checks) {
  const __m256i d =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  const __m256i syn = syndrome4(d);
  // overall = parity(data) ^ parity(syndrome), as in secded_encode.
  const __m256i overall = _mm256_xor_si256(parity64(d), parity8(syn));
  const __m256i check = _mm256_or_si256(syn, _mm256_slli_epi64(overall, 7));
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), check);
  for (int i = 0; i < 4; ++i) {
    checks[i] = static_cast<std::uint8_t>(lanes[i]);
  }
}

unsigned secded_flagged4_avx2(const std::uint64_t* data,
                              const std::uint8_t* checks) {
  const __m256i d =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  std::uint32_t packed;
  std::memcpy(&packed, checks, sizeof packed);
  const __m256i cv =
      _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
  const __m256i stored = _mm256_and_si256(cv, _mm256_set1_epi64x(0x7F));
  const __m256i syn = _mm256_xor_si256(syndrome4(d), stored);
  const __m256i par = _mm256_xor_si256(parity64(d), parity8(cv));
  const __m256i clean = _mm256_cmpeq_epi64(_mm256_or_si256(syn, par),
                                           _mm256_setzero_si256());
  const int clean_mask = _mm256_movemask_pd(_mm256_castsi256_pd(clean));
  return static_cast<unsigned>(~clean_mask) & 0xFU;
}

}  // namespace psync::reliability::detail

#else  // x86 without AVX2 compiler support: keep the path off.

namespace psync::reliability::detail {

bool secded_avx2_available() { return false; }

void secded_encode4_avx2(const std::uint64_t*, std::uint8_t*) {}

unsigned secded_flagged4_avx2(const std::uint64_t*, const std::uint8_t*) {
  return 0;
}

}  // namespace psync::reliability::detail

#endif  // __AVX2__

#endif  // x86
