#include "psync/reliability/framing.hpp"

#include <algorithm>
#include <bit>

#include "psync/common/check.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/secded.hpp"

namespace psync::reliability {
namespace {

// The wire packs check byte i into bits 8i..8i+7 of check word i/8 — which
// is exactly the little-endian byte layout of the check-word array. On LE
// hosts the batched SECDED calls therefore read/write the packed region
// directly; BE hosts take the explicit shift loops below.
constexpr bool kHostLittleEndian = std::endian::native == std::endian::little;

void pack_check_bytes(const std::uint8_t* bytes, std::size_t count,
                      std::uint64_t* words) {
  for (std::size_t i = 0; i < count; ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
  }
}

void unpack_check_bytes(const std::uint64_t* words, std::size_t count,
                        std::uint8_t* bytes) {
  for (std::size_t i = 0; i < count; ++i) {
    bytes[i] = static_cast<std::uint8_t>((words[i / 8] >> (8 * (i % 8))) &
                                         0xFFU);
  }
}

}  // namespace

std::size_t coded_stream_words(std::size_t payload_words,
                               std::size_t block_words) {
  PSYNC_CHECK(block_words > 0);
  std::size_t total = 0;
  for (std::size_t off = 0; off < payload_words; off += block_words) {
    total += coded_block_words(std::min(block_words, payload_words - off));
  }
  return total;
}

void encode_block(const std::uint64_t* payload, std::size_t n,
                  std::vector<std::uint64_t>* wire) {
  PSYNC_CHECK(wire != nullptr && n > 0);
  const std::size_t base = wire->size();
  const std::size_t data_words = n + 1;
  const std::size_t check_words = check_words_for(data_words);
  wire->resize(base + data_words + check_words, 0);

  std::uint64_t* dst = wire->data() + base;
  std::copy(payload, payload + n, dst);
  dst[n] = static_cast<std::uint64_t>(crc32_words(payload, n));

  // resize() zero-filled the check region; bytes past data_words stay zero.
  std::uint64_t* checks = dst + data_words;
  if constexpr (kHostLittleEndian) {
    secded_encode_words(dst, data_words,
                        reinterpret_cast<std::uint8_t*>(checks));
  } else {
    std::uint8_t bytes[8 * ((64 + 1 + 7) / 8)];
    std::vector<std::uint8_t> heap;
    std::uint8_t* b = bytes;
    if (data_words > sizeof(bytes)) {
      heap.resize(data_words);
      b = heap.data();
    }
    secded_encode_words(dst, data_words, b);
    pack_check_bytes(b, data_words, checks);
  }
}

void decode_block_into(const std::uint64_t* wire, std::size_t n, bool correct,
                       BlockDecode* out) {
  PSYNC_CHECK(wire != nullptr && n > 0 && out != nullptr);
  const std::size_t data_words = n + 1;
  const std::uint64_t* checks = wire + data_words;

  out->payload.clear();
  out->payload.resize(data_words);  // payload + CRC word, trimmed below
  out->corrected_bits = 0;
  out->double_errors = 0;
  out->flagged_words = 0;

  SecdedWordStats stats;
  if constexpr (kHostLittleEndian) {
    secded_decode_words(wire, reinterpret_cast<const std::uint8_t*>(checks),
                        data_words, correct, out->payload.data(), &stats);
  } else {
    std::vector<std::uint8_t> bytes(data_words);
    unpack_check_bytes(checks, data_words, bytes.data());
    secded_decode_words(wire, bytes.data(), data_words, correct,
                        out->payload.data(), &stats);
  }
  out->corrected_bits = stats.corrected_bits;
  out->double_errors = stats.double_errors;
  out->flagged_words = stats.flagged_words;

  const std::uint64_t crc_word = out->payload[n];
  out->payload.resize(n);
  out->crc_ok = crc32_words(out->payload.data(), n) ==
                static_cast<std::uint32_t>(crc_word & 0xFFFFFFFFU);
}

BlockDecode decode_block(const std::uint64_t* wire, std::size_t n,
                         bool correct) {
  BlockDecode out;
  decode_block_into(wire, n, correct, &out);
  return out;
}

void encode_block_reference(const std::uint64_t* payload, std::size_t n,
                            std::vector<std::uint64_t>* wire) {
  PSYNC_CHECK(wire != nullptr && n > 0);
  const std::size_t base = wire->size();
  wire->insert(wire->end(), payload, payload + n);
  // Byte-serialize each word little-endian through the reference CRC loop.
  std::uint32_t crc = kCrc32Init;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char bytes[8];
    for (int b = 0; b < 8; ++b) {
      bytes[b] = static_cast<unsigned char>(payload[i] >> (8 * b));
    }
    crc = crc32_update_reference(crc, bytes, 8);
  }
  wire->push_back(static_cast<std::uint64_t>(crc32_finalize(crc)));

  const std::size_t data_words = n + 1;
  std::vector<std::uint64_t> checks(check_words_for(data_words), 0);
  for (std::size_t i = 0; i < data_words; ++i) {
    const std::uint8_t c = secded_encode((*wire)[base + i]);
    checks[i / 8] |= static_cast<std::uint64_t>(c) << (8 * (i % 8));
  }
  wire->insert(wire->end(), checks.begin(), checks.end());
}

BlockDecode decode_block_reference(const std::uint64_t* wire, std::size_t n,
                                   bool correct) {
  PSYNC_CHECK(wire != nullptr && n > 0);
  const std::size_t data_words = n + 1;
  const std::uint64_t* checks = wire + data_words;

  BlockDecode out;
  out.payload.reserve(n);
  std::uint64_t crc_word = 0;
  for (std::size_t i = 0; i < data_words; ++i) {
    const auto check = static_cast<std::uint8_t>(
        (checks[i / 8] >> (8 * (i % 8))) & 0xFFU);
    const SecdedResult dec = secded_decode(wire[i], check);
    if (!dec.clean()) ++out.flagged_words;
    // A repair only counts when it is actually applied; in detect-only
    // decoding a correctable word is just a flagged word.
    if (correct && dec.status == SecdedStatus::kCorrectedData) {
      ++out.corrected_bits;
    }
    if (dec.double_error()) ++out.double_errors;
    const std::uint64_t w = correct ? dec.data : wire[i];
    if (i < n) {
      out.payload.push_back(w);
    } else {
      crc_word = w;
    }
  }
  std::uint32_t crc = kCrc32Init;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char bytes[8];
    for (int b = 0; b < 8; ++b) {
      bytes[b] = static_cast<unsigned char>(out.payload[i] >> (8 * b));
    }
    crc = crc32_update_reference(crc, bytes, 8);
  }
  out.crc_ok = crc32_finalize(crc) ==
               static_cast<std::uint32_t>(crc_word & 0xFFFFFFFFU);
  return out;
}

}  // namespace psync::reliability
