#include "psync/reliability/framing.hpp"

#include "psync/common/check.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/secded.hpp"

namespace psync::reliability {

std::size_t coded_stream_words(std::size_t payload_words,
                               std::size_t block_words) {
  PSYNC_CHECK(block_words > 0);
  std::size_t total = 0;
  for (std::size_t off = 0; off < payload_words; off += block_words) {
    total += coded_block_words(std::min(block_words, payload_words - off));
  }
  return total;
}

void encode_block(const std::uint64_t* payload, std::size_t n,
                  std::vector<std::uint64_t>* wire) {
  PSYNC_CHECK(wire != nullptr && n > 0);
  const std::size_t base = wire->size();
  wire->insert(wire->end(), payload, payload + n);
  wire->push_back(static_cast<std::uint64_t>(crc32_words(payload, n)));

  const std::size_t data_words = n + 1;
  std::vector<std::uint64_t> checks(check_words_for(data_words), 0);
  for (std::size_t i = 0; i < data_words; ++i) {
    const std::uint8_t c = secded_encode((*wire)[base + i]);
    checks[i / 8] |= static_cast<std::uint64_t>(c) << (8 * (i % 8));
  }
  wire->insert(wire->end(), checks.begin(), checks.end());
}

BlockDecode decode_block(const std::uint64_t* wire, std::size_t n,
                         bool correct) {
  PSYNC_CHECK(wire != nullptr && n > 0);
  const std::size_t data_words = n + 1;
  const std::uint64_t* checks = wire + data_words;

  BlockDecode out;
  out.payload.reserve(n);
  std::uint64_t crc_word = 0;
  for (std::size_t i = 0; i < data_words; ++i) {
    const auto check = static_cast<std::uint8_t>(
        (checks[i / 8] >> (8 * (i % 8))) & 0xFFU);
    const SecdedResult dec = secded_decode(wire[i], check);
    if (!dec.clean()) ++out.flagged_words;
    // A repair only counts when it is actually applied; in detect-only
    // decoding a correctable word is just a flagged word.
    if (correct && dec.status == SecdedStatus::kCorrectedData) {
      ++out.corrected_bits;
    }
    if (dec.double_error()) ++out.double_errors;
    const std::uint64_t w = correct ? dec.data : wire[i];
    if (i < n) {
      out.payload.push_back(w);
    } else {
      crc_word = w;
    }
  }
  out.crc_ok = crc32_words(out.payload.data(), n) ==
               static_cast<std::uint32_t>(crc_word & 0xFFFFFFFFU);
  return out;
}

}  // namespace psync::reliability
