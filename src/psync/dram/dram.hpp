// DRAM timing model.
//
// The paper's transpose analysis (Section V-C-1) assumes a DRAM with
// 2048-bit rows: 32 x 64-bit complex samples can be bursted per row before a
// costly precharge. This model captures exactly the parameters that matter
// for PSCAN vs. mesh writeback: row size, burst transfer rate on the memory
// bus, and the activate/precharge penalty for switching rows, plus row
// hit/miss accounting so experiments can report locality.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/common/units.hpp"

namespace psync::dram {

struct DramParams {
  /// Row (page) size, bits. Paper: 2048.
  std::uint64_t row_size_bits = 2048;
  /// Memory bus width, bits transferred per bus cycle. Paper: 64.
  std::uint64_t bus_width_bits = 64;
  /// Address/command header per transaction, bits. Paper: 64.
  std::uint64_t header_bits = 64;
  /// Bus cycles to precharge + activate when switching rows (t_RP + t_RCD
  /// expressed in memory bus cycles).
  std::uint64_t row_switch_cycles = 24;
  /// Number of independent banks; consecutive transactions to different
  /// banks can hide the row-switch penalty.
  std::uint64_t banks = 8;
};

/// Bus cycles for one full-row transaction, Eq. 24: (S_r + S_h) / S_b.
std::uint64_t row_transaction_cycles(const DramParams& p);

/// Number of full-row transactions for a dataset of `total_bits`, Eq. 23.
std::uint64_t row_transactions(const DramParams& p, std::uint64_t total_bits);

/// Open-row DRAM device: accepts word-granularity accesses and accounts
/// bus-cycle cost with open-row (row-buffer) policy per bank.
class Dram {
 public:
  explicit Dram(DramParams params);

  const DramParams& params() const { return params_; }

  /// Access `bits` at `addr_bits` (bit address). Returns bus cycles consumed.
  /// Accesses that cross a row boundary are split internally.
  std::uint64_t access(std::uint64_t addr_bits, std::uint64_t bits);

  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }
  std::uint64_t total_cycles() const { return total_cycles_; }
  std::uint64_t total_bits() const { return total_bits_; }

  void reset_counters();

 private:
  std::uint64_t access_within_row(std::uint64_t addr_bits, std::uint64_t bits);

  DramParams params_;
  std::vector<std::int64_t> open_row_;  // per bank; -1 = closed
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace psync::dram
