// Memory controller: schedules an address stream onto the DRAM device and
// reports total service time.
//
// Two service disciplines matter for the paper:
//  * in-order streaming of full-row bursts (what the PSCAN head node emits:
//    data already reorganized, so every transaction fills a whole row), and
//  * word-granular scattered writes (what a mesh memory interface sees if it
//    forwards transpose elements directly, the "extremely inefficient" case
//    of Section V-C-2).
#pragma once

#include <cstdint>
#include <span>

#include "psync/dram/dram.hpp"

namespace psync::dram {

struct ServiceReport {
  std::uint64_t bus_cycles = 0;
  std::uint64_t transactions = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  double cycles_per_transaction() const {
    return transactions > 0
               ? static_cast<double>(bus_cycles) / static_cast<double>(transactions)
               : 0.0;
  }
};

class MemoryController {
 public:
  explicit MemoryController(DramParams params);

  Dram& dram() { return dram_; }
  const Dram& dram() const { return dram_; }

  /// Stream `row_count` full-row write transactions at consecutive rows
  /// starting from `first_row`. Models the PSCAN writeback: each transaction
  /// is S_r data bits plus an S_h-bit header on the bus (Eq. 24) and lands in
  /// an open row.
  ServiceReport stream_rows(std::uint64_t first_row, std::uint64_t row_count);

  /// Service scattered word accesses: each element of `addrs_bits` is a
  /// write of `bits_each` bits, each carrying its own header.
  ServiceReport scattered(std::span<const std::uint64_t> addrs_bits,
                          std::uint64_t bits_each);

 private:
  Dram dram_;
};

}  // namespace psync::dram
