#include "psync/dram/dram.hpp"

#include <algorithm>

#include "psync/common/check.hpp"

namespace psync::dram {

std::uint64_t row_transaction_cycles(const DramParams& p) {
  PSYNC_CHECK(p.bus_width_bits > 0);
  return (p.row_size_bits + p.header_bits + p.bus_width_bits - 1) /
         p.bus_width_bits;
}

std::uint64_t row_transactions(const DramParams& p, std::uint64_t total_bits) {
  PSYNC_CHECK(p.row_size_bits > 0);
  return (total_bits + p.row_size_bits - 1) / p.row_size_bits;
}

Dram::Dram(DramParams params) : params_(params) {
  if (params_.row_size_bits == 0 || params_.bus_width_bits == 0 ||
      params_.banks == 0) {
    throw SimulationError("Dram: row size, bus width and banks must be > 0");
  }
  if (params_.row_size_bits % params_.bus_width_bits != 0) {
    throw SimulationError("Dram: row size must be a multiple of bus width");
  }
  open_row_.assign(params_.banks, -1);
}

std::uint64_t Dram::access_within_row(std::uint64_t addr_bits,
                                      std::uint64_t bits) {
  const std::uint64_t row = addr_bits / params_.row_size_bits;
  const std::uint64_t bank = row % params_.banks;
  std::uint64_t cycles = 0;
  if (open_row_[bank] != static_cast<std::int64_t>(row)) {
    ++row_misses_;
    cycles += params_.row_switch_cycles;
    open_row_[bank] = static_cast<std::int64_t>(row);
  } else {
    ++row_hits_;
  }
  cycles += (bits + params_.bus_width_bits - 1) / params_.bus_width_bits;
  return cycles;
}

std::uint64_t Dram::access(std::uint64_t addr_bits, std::uint64_t bits) {
  PSYNC_CHECK(bits > 0);
  std::uint64_t cycles = 0;
  std::uint64_t remaining = bits;
  std::uint64_t addr = addr_bits;
  while (remaining > 0) {
    const std::uint64_t row_off = addr % params_.row_size_bits;
    const std::uint64_t in_row =
        std::min<std::uint64_t>(remaining, params_.row_size_bits - row_off);
    cycles += access_within_row(addr, in_row);
    addr += in_row;
    remaining -= in_row;
  }
  total_cycles_ += cycles;
  total_bits_ += bits;
  return cycles;
}

void Dram::reset_counters() {
  row_hits_ = 0;
  row_misses_ = 0;
  total_cycles_ = 0;
  total_bits_ = 0;
  open_row_.assign(params_.banks, -1);
}

}  // namespace psync::dram
