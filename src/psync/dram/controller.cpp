#include "psync/dram/controller.hpp"

#include "psync/common/check.hpp"

namespace psync::dram {

MemoryController::MemoryController(DramParams params) : dram_(params) {}

ServiceReport MemoryController::stream_rows(std::uint64_t first_row,
                                            std::uint64_t row_count) {
  const auto& p = dram_.params();
  dram_.reset_counters();
  ServiceReport rep;
  for (std::uint64_t r = 0; r < row_count; ++r) {
    const std::uint64_t addr = (first_row + r) * p.row_size_bits;
    // Header occupies the bus before the data burst.
    rep.bus_cycles += (p.header_bits + p.bus_width_bits - 1) / p.bus_width_bits;
    rep.bus_cycles += dram_.access(addr, p.row_size_bits);
    ++rep.transactions;
  }
  rep.row_hits = dram_.row_hits();
  rep.row_misses = dram_.row_misses();
  return rep;
}

ServiceReport MemoryController::scattered(
    std::span<const std::uint64_t> addrs_bits, std::uint64_t bits_each) {
  PSYNC_CHECK(bits_each > 0);
  const auto& p = dram_.params();
  dram_.reset_counters();
  ServiceReport rep;
  for (std::uint64_t addr : addrs_bits) {
    rep.bus_cycles += (p.header_bits + p.bus_width_bits - 1) / p.bus_width_bits;
    rep.bus_cycles += dram_.access(addr, bits_each);
    ++rep.transactions;
  }
  rep.row_hits = dram_.row_hits();
  rep.row_misses = dram_.row_misses();
  return rep;
}

}  // namespace psync::dram
