#include "psync/common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace psync {
namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("PSYNC_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  return static_cast<int>(parse_log_level(env));
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  std::string low = name;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "error") return LogLevel::kError;
  if (low == "warn") return LogLevel::kWarn;
  if (low == "info") return LogLevel::kInfo;
  if (low == "debug") return LogLevel::kDebug;
  if (low == "trace") return LogLevel::kTrace;
  return LogLevel::kWarn;
}

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }
void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load();
}

void log_write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[psync %s] %s\n", level_name(level), message.c_str());
}

}  // namespace psync
