#include "psync/common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace psync {

void check_failed(const char* expr, const char* msg,
                  const std::source_location& loc) {
  std::fprintf(stderr, "PSYNC_CHECK failed: %s\n  at %s:%u (%s)\n", expr,
               loc.file_name(), loc.line(), loc.function_name());
  if (msg != nullptr) {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace psync
