// Bucketed calendar queue for cycle-keyed future events.
//
// The mesh NoC used to keep future packet releases in a std::priority_queue,
// paying O(log n) comparisons and a heap shuffle per push/pop on a structure
// that is consumed almost entirely in key order. A calendar queue exploits
// that access pattern: events inside a `kWindow`-cycle horizon live in one
// bucket per cycle (push and pop are O(1) vector appends), and events outside
// the horizon — beyond it, or pushed for a cycle that is already due — wait
// in an overflow list that is folded back in one pass when a pop reaches it.
//
// Determinism contract (matches the old priority queue with an id tiebreak):
// events pop in key order, and events with equal keys pop in push order.
// Every entry carries a push sequence number, so the contract holds even for
// events that detour through the overflow list. Keys must be non-negative and
// pops must be issued with non-decreasing `key` arguments (simulation time
// only moves forward).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "psync/common/check.hpp"

namespace psync {

template <typename T>
class CalendarQueue {
 public:
  static constexpr std::int64_t kWindow = 1024;  // cycles per horizon

  CalendarQueue() : buckets_(static_cast<std::size_t>(kWindow)) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Reserve bucket capacity so steady-state pushes never reallocate.
  void reserve_buckets(std::size_t per_bucket) {
    for (auto& b : buckets_) b.reserve(per_bucket);
  }

  void push(std::int64_t key, T value) {
    PSYNC_CHECK(key >= 0);
    ++size_;
    const std::uint64_t seq = seq_++;
    if (key >= base_ && key < base_ + kWindow) {
      buckets_[index_of(key)].push_back(Entry{key, seq, std::move(value)});
      return;
    }
    // Outside the horizon: beyond it, or already due (key < base_ happens
    // when a packet is injected with a release cycle at or before the
    // current cycle). Either way it parks in overflow until a pop reaches
    // its key.
    if (key < far_min_) far_min_ = key;
    far_.push_back(Entry{key, seq, std::move(value)});
  }

  /// Smallest key still queued at or after `key` — or an even smaller one if
  /// an already-due event is parked in overflow. Returns -1 when empty.
  /// `key` must be >= every previously popped key.
  std::int64_t next_key(std::int64_t key) const {
    if (size_ == 0) return -1;
    std::int64_t cand = far_min_;
    const std::int64_t lo = key > base_ ? key : base_;
    for (std::int64_t c = lo; c < base_ + kWindow; ++c) {
      if (!buckets_[index_of(c)].empty()) {
        if (c < cand) cand = c;
        break;
      }
    }
    return cand;
  }

  /// Move every event with key <= `key` into `out` (appended), in key order
  /// with push order preserved within a key. Keys passed to successive
  /// pop_due calls must be non-decreasing.
  void pop_due(std::int64_t key, std::vector<T>* out) {
    if (size_ == 0) return;
    if (far_min_ <= key || key >= base_ + kWindow) {
      pop_slow(key, out);
      return;
    }
    for (std::int64_t c = base_; c <= key; ++c) {
      drain_bucket(buckets_[index_of(c)], out);
    }
    if (key >= base_) base_ = key + 1;
  }

 private:
  struct Entry {
    std::int64_t key;
    std::uint64_t seq;  // global push order, the equal-key tiebreak
    T value;
  };

  std::size_t index_of(std::int64_t key) const {
    return static_cast<std::size_t>(key & (kWindow - 1));
  }

  /// Empty one bucket into `out` in push order. All entries in a bucket
  /// share one key (the horizon spans kWindow consecutive keys, so indices
  /// are unique per key), but overflow migration can append out of push
  /// order — restore it by seq.
  void drain_bucket(std::vector<Entry>& b, std::vector<T>* out) {
    if (b.empty()) return;
    if (b.size() > 1) {
      std::sort(b.begin(), b.end(),
                [](const Entry& x, const Entry& y) { return x.seq < y.seq; });
    }
    for (auto& e : b) out->push_back(std::move(e.value));
    size_ -= b.size();
    b.clear();
  }

  /// Cold path: the pop reaches into overflow or jumps past the horizon.
  /// Gathers every due entry (buckets and overflow), emits them sorted by
  /// (key, seq), then re-homes the surviving overflow into the new horizon.
  void pop_slow(std::int64_t key, std::vector<T>* out) {
    std::vector<Entry> due;
    const std::int64_t bucket_end =
        key < base_ + kWindow ? key : base_ + kWindow - 1;
    for (std::int64_t c = base_; c <= bucket_end; ++c) {
      auto& b = buckets_[index_of(c)];
      for (auto& e : b) due.push_back(std::move(e));
      b.clear();
    }
    std::vector<Entry> keep;
    keep.reserve(far_.size());
    for (auto& e : far_) {
      (e.key <= key ? due : keep).push_back(std::move(e));
    }
    far_ = std::move(keep);

    std::sort(due.begin(), due.end(), [](const Entry& x, const Entry& y) {
      return x.key != y.key ? x.key < y.key : x.seq < y.seq;
    });
    for (auto& e : due) out->push_back(std::move(e.value));
    size_ -= due.size();
    if (key >= base_) base_ = key + 1;

    // Fold overflow entries that now fit the horizon into their buckets.
    // drain_bucket re-sorts by seq, so append order here is irrelevant.
    far_min_ = std::numeric_limits<std::int64_t>::max();
    std::vector<Entry> still_far;
    for (auto& e : far_) {
      if (e.key >= base_ && e.key < base_ + kWindow) {
        buckets_[index_of(e.key)].push_back(std::move(e));
      } else {
        if (e.key < far_min_) far_min_ = e.key;
        still_far.push_back(std::move(e));
      }
    }
    far_ = std::move(still_far);
  }

  std::vector<std::vector<Entry>> buckets_;  // horizon [base_, base_+kWindow)
  std::vector<Entry> far_;                   // events outside the horizon
  std::int64_t far_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t base_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace psync
