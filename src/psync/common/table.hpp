// ASCII table formatting for the benchmark harnesses. Every bench binary in
// bench/ prints the paper's table/figure rows through this printer so the
// output is diffable against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psync {

enum class Align { kLeft, kRight };

/// A simple column-aligned table: add a header, then rows of cells; widths
/// are computed on render. Numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; cells are appended with add().
  Table& row();

  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  /// Fixed-precision double (default 2 decimals).
  Table& add(double v, int precision = 2);

  std::size_t rows() const { return cells_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with a header rule; column alignment defaults to right for all
  /// but the first column.
  std::string to_string() const;
  void print(std::ostream& os) const;

  void set_align(std::size_t col, Align a);
  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format helper: "12.34" etc.
std::string format_double(double v, int precision);

/// Format a value with an SI-like engineering suffix (k, M, G) for readable
/// cycle counts and rates.
std::string format_eng(double v, int precision = 2);

}  // namespace psync
