// Cooperative cancellation for long-running simulations.
//
// A CancelToken carries an explicit cancel flag plus an optional wall-clock
// deadline (the experiment driver's per-point watchdog). The machines never
// block on it: their run loops call poll() at cycle-batch boundaries, which
// throws CancelledError once the token has expired. Simulation results are
// unaffected by the polls — a run either completes exactly as it would have
// without the token, or aborts with CancelledError.
#pragma once

#include <atomic>
#include <chrono>

#include "psync/common/check.hpp"

namespace psync {

class CancelToken {
 public:
  CancelToken() = default;

  /// Request cancellation explicitly. Thread-safe; poll() on any thread
  /// observes it at its next cycle-batch boundary. Async-signal-safe (a
  /// relaxed atomic store), so SIGTERM/SIGINT handlers may call it.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Disarm: clear the cancel flag and any deadline. For long-lived tokens
  /// reused across runs (e.g. a worker process's signal-handler token).
  /// Not thread-safe against concurrent poll().
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_ = false;
    parent_ = nullptr;
  }

  /// Chain to a parent token: this token reads as cancelled once the
  /// parent is, in addition to its own flag/deadline. Lets the per-point
  /// watchdog token also observe a process-wide shutdown token. Only the
  /// parent's explicit cancel flag propagates, not its deadline. Set
  /// before handing the token to a run (not thread-safe against poll()).
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// Arm the watchdog: expire `ms` milliseconds of host wall clock from
  /// now. Call before handing the token to a run (not thread-safe against
  /// concurrent poll()).
  void set_deadline_ms(double ms) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(ms));
    has_deadline_ = true;
  }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  bool expired() const {
    if (cancelled()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Throw CancelledError if cancelled or past the deadline.
  void poll() const {
    if (cancelled()) throw CancelledError("run cancelled");
    if (has_deadline_ && Clock::now() >= deadline_) {
      throw CancelledError("watchdog deadline exceeded");
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace psync
