// Minimal RFC-4180-ish CSV writer; bench binaries can optionally dump their
// series for external plotting (PSYNC_CSV_DIR environment variable).
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace psync {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// SimulationError when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& row();
  CsvWriter& add(const std::string& cell);
  CsvWriter& add(double v);
  CsvWriter& add(std::int64_t v);
  CsvWriter& add(std::uint64_t v);

  /// Flushes and finishes the in-progress row (if any).
  void close();

  ~CsvWriter();

  static std::string escape(const std::string& cell);

 private:
  void end_row_if_open();

  std::ofstream out_;
  std::size_t cols_;
  std::size_t cells_in_row_ = 0;
  bool row_open_ = false;
};

/// Returns the CSV output directory if the PSYNC_CSV_DIR environment variable
/// is set; bench binaries dump machine-readable series there.
std::optional<std::string> csv_output_dir();

}  // namespace psync
