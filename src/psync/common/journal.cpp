#include "psync/common/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "psync/common/check.hpp"

namespace psync {

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::open(const std::string& path, bool keep_existing) {
  close();
  // Deliberately no O_TRUNC: truncation must wait until the flock below is
  // held, or opening a journal another process owns would wipe it before
  // the lock check could refuse. The ftruncate(fd, keep) path truncates
  // (keep stays 0 when !keep_existing) once ownership is established.
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw SimulationError("journal: cannot open '" + path +
                          "': " + std::strerror(errno));
  }

  // Exclusive append ownership: a second opener fails fast instead of the
  // two writers interleaving partial lines into one file. flock is
  // advisory and per open-file-description, so it also catches two
  // JournalWriters inside one process, and it evaporates when a SIGKILLed
  // owner's descriptors are closed by the kernel.
  int locked = -1;
  do {
    locked = ::flock(fd, LOCK_EX | LOCK_NB);
  } while (locked != 0 && errno == EINTR);
  if (locked != 0) {
    const bool busy = errno == EWOULDBLOCK || errno == EAGAIN;
    const std::string err = std::strerror(errno);
    ::close(fd);
    if (busy) {
      throw JournalBusyError("journal: '" + path +
                             "' is already open for append in another "
                             "process (flock held)");
    }
    throw SimulationError("journal: cannot lock '" + path + "': " + err);
  }

  // Resume after a crash: the file may end in a torn (unterminated) tail
  // from a write the kill interrupted. Appending after it would fuse the
  // fragment with the next record into one corrupt line, so truncate back
  // to the end of the last complete line before writing anything new.
  off_t keep = 0;
  if (keep_existing) {
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size > 0) {
      std::ifstream in(path, std::ios::binary);
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      const auto last_nl = content.rfind('\n');
      keep = last_nl == std::string::npos ? 0
                                          : static_cast<off_t>(last_nl) + 1;
    }
  }
  if (::ftruncate(fd, keep) != 0 || ::lseek(fd, keep, SEEK_SET) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw SimulationError("journal: cannot trim torn tail of '" + path +
                          "': " + err);
  }
  // O_CREAT may have minted a new directory entry; make it durable now.
  // Without this, a crash right after the first fsync'd append could lose
  // the *file name* while its blocks survive — the journal would read as
  // absent even though every acknowledged line was flushed.
  fsync_parent_dir(path);
  fd_ = fd;
  path_ = path;
}

void JournalWriter::append(const std::string& line) {
  PSYNC_CHECK(is_open());
  PSYNC_CHECK_MSG(line.find('\n') == std::string::npos,
                  "journal lines must not contain newlines");
  std::string buf = line;
  buf.push_back('\n');
  // One write(2) per line: '\n' is the last byte, so a crash mid-write can
  // only leave an unterminated tail the reader drops.
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SimulationError("journal: write to '" + path_ +
                            "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw SimulationError("journal: fsync of '" + path_ +
                          "' failed: " + std::strerror(errno));
  }
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : slash == 0 ? std::string("/")
                                           : path.substr(0, slash);
  int fd = -1;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return;  // best-effort: an unreadable parent is not fatal
  int rc = -1;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);  // EINVAL etc. from fsync: fs does not support it; ignore
}

void durable_rename(const std::string& from, const std::string& to) {
  int rc = -1;
  do {
    rc = ::rename(from.c_str(), to.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw SimulationError("journal: rename '" + from + "' -> '" + to +
                          "' failed: " + std::strerror(errno));
  }
  fsync_parent_dir(to);
  // Cross-directory renames also dirty the source's parent (the old entry
  // disappears); persist it too when it differs.
  const auto dir_of = [](const std::string& p) {
    const auto s = p.find_last_of('/');
    return s == std::string::npos ? std::string(".") : p.substr(0, s);
  };
  if (dir_of(from) != dir_of(to)) fsync_parent_dir(from);
}

std::vector<std::string> list_journal_files(const std::string& dir) {
  std::vector<std::string> paths;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return paths;
  const std::string suffix = ".jsonl";
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    paths.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::string> read_journal_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path, std::ios::binary);
  if (!in) return lines;
  std::string line;
  while (std::getline(in, line)) {
    // std::getline strips the delimiter; at EOF-without-'\n' it still
    // returns the torn tail, which eof() before the delimiter flags.
    if (in.eof()) break;  // torn final line: drop it
    lines.push_back(line);
  }
  return lines;
}

}  // namespace psync
