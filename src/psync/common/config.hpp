// Minimal INI-style configuration parser for the psync_sim command-line
// experiment runner (tools/). Supports [sections], key = value pairs,
// '#'/';' comments, and typed accessors with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace psync {

class IniConfig {
 public:
  /// Parse from text; throws SimulationError with a line number on
  /// malformed input (garbage lines, keys outside any section, duplicate
  /// keys within a section).
  static IniConfig parse(const std::string& text);

  /// Parse from a file; throws SimulationError if unreadable.
  static IniConfig load(const std::string& path);

  bool has_section(const std::string& section) const;
  bool has(const std::string& section, const std::string& key) const;
  std::vector<std::string> sections() const;
  std::vector<std::string> keys(const std::string& section) const;

  /// Raw string lookup.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;

  /// Typed accessors; throw SimulationError on unparsable values.
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& section, const std::string& key,
                       std::int64_t fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

 private:
  // section -> key -> value, insertion-ordered via auxiliary lists.
  std::map<std::string, std::map<std::string, std::string>> data_;
  std::vector<std::string> section_order_;
  std::map<std::string, std::vector<std::string>> key_order_;
};

/// One problem found while validating a config against a ConfigSchema.
struct ConfigDiagnostic {
  enum class Kind { kUnknownSection, kUnknownKey, kBadValue };
  Kind kind = Kind::kUnknownKey;
  std::string section;
  std::string key;      // empty for kUnknownSection
  std::string message;  // human-readable, includes did-you-mean suggestions

  std::string to_string() const;
};

/// Declarative description of every section/key a tool understands, with
/// value types, so typos stop silently falling back to defaults: validate()
/// reports unknown sections, unknown keys (with a nearest-name suggestion)
/// and type-mismatched values as a diagnostics list instead of throwing.
/// Tools decide the severity (psync_sim warns by default, fails under
/// --strict).
class ConfigSchema {
 public:
  enum class Type { kString, kInt, kDouble, kBool, kIntList, kDoubleList };

  /// Declare a section with no keys yet (also implied by key()).
  ConfigSchema& section(const std::string& name);
  /// Declare a key and its value type.
  ConfigSchema& key(const std::string& section, const std::string& name,
                    Type type);

  /// Every problem in `cfg`, in section/key insertion order.
  std::vector<ConfigDiagnostic> validate(const IniConfig& cfg) const;

 private:
  std::map<std::string, std::map<std::string, Type>> schema_;
};

}  // namespace psync
