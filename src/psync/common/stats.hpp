// Streaming statistics and simple fixed-width histograms used by the
// simulators to summarize latency, occupancy and utilization measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace psync {

/// Welford streaming accumulator: count/mean/variance plus min/max/sum.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  void merge(const RunningStats& o);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }
  std::uint64_t total() const { return total_; }

  /// Smallest bin upper edge covering at least fraction q of samples.
  double quantile(double q) const;

  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace psync
