// Lightweight always-on invariant checking for the simulators.
//
// PSYNC_CHECK(cond)           - abort with location on violation.
// PSYNC_CHECK_MSG(cond, msg)  - same, with a caller-supplied message.
// PSYNC_DCHECK(cond)          - compiled out in NDEBUG hot paths.
//
// Simulation code prefers throwing SimulationError for *model-level* errors
// (bad configuration, schedule collisions) so tests can assert on them;
// PSYNC_CHECK is reserved for programming errors.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace psync {

/// Thrown for recoverable model-level errors: invalid configurations,
/// schedule collisions, FIFO overflow, and similar conditions a caller or a
/// test may legitimately want to observe.
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

// Refinements of SimulationError that the experiment driver's per-point
// isolation (driver/campaign.hpp) classifies into its failure taxonomy.
// They all derive from SimulationError so existing catch sites and
// EXPECT_THROW(…, SimulationError) assertions keep working.

/// A configuration rejected before any simulation ran (bad machine
/// parameters, out-of-range fault model). Taxonomy: config_invalid.
class ConfigError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// The simulation stopped making forward progress (cycle caps tripped, a
/// channel degraded past usability). Taxonomy: sim_diverged.
class DivergenceError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// Cooperative cancellation observed via CancelToken::poll() — in practice
/// the per-point watchdog deadline. Taxonomy: timeout.
class CancelledError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// A resource estimate or limit was exceeded before committing to the run.
/// Taxonomy: oom_estimate_exceeded.
class ResourceLimitError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

// Journal-layer refinements (common/journal, driver/campaign, dist/merge).
// Typed so the distributed leader and the tests can distinguish "someone
// else owns this file" from "this file is damaged" from "these files
// disagree" without string matching.

/// A checkpoint journal is already open for append in another process (or
/// another writer in this one): the flock(2) advisory lock was held.
/// Retryable by the caller once the owner exits; never silently ignored.
class JournalBusyError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// A journal line that should have parsed did not: mid-file garbage,
/// truncation somewhere other than the final torn tail, or an unknown
/// record format.
class JournalCorruptError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// Journal content that parses but contradicts the sweep being assembled:
/// an out-of-grid index, a seed or workload mismatch, or two shard
/// journals carrying conflicting records for the same point.
class JournalConflictError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

[[noreturn]] void check_failed(const char* expr, const char* msg,
                               const std::source_location& loc);

}  // namespace psync

#define PSYNC_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psync::check_failed(#cond, nullptr, std::source_location::current()); \
    }                                                                      \
  } while (false)

#define PSYNC_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psync::check_failed(#cond, (msg), std::source_location::current()); \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define PSYNC_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define PSYNC_DCHECK(cond) PSYNC_CHECK(cond)
#endif
