// Lightweight always-on invariant checking for the simulators.
//
// PSYNC_CHECK(cond)           - abort with location on violation.
// PSYNC_CHECK_MSG(cond, msg)  - same, with a caller-supplied message.
// PSYNC_DCHECK(cond)          - compiled out in NDEBUG hot paths.
//
// Simulation code prefers throwing SimulationError for *model-level* errors
// (bad configuration, schedule collisions) so tests can assert on them;
// PSYNC_CHECK is reserved for programming errors.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace psync {

/// Thrown for recoverable model-level errors: invalid configurations,
/// schedule collisions, FIFO overflow, and similar conditions a caller or a
/// test may legitimately want to observe.
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* msg,
                               const std::source_location& loc);

}  // namespace psync

#define PSYNC_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psync::check_failed(#cond, nullptr, std::source_location::current()); \
    }                                                                      \
  } while (false)

#define PSYNC_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psync::check_failed(#cond, (msg), std::source_location::current()); \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define PSYNC_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define PSYNC_DCHECK(cond) PSYNC_CHECK(cond)
#endif
