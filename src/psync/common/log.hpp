// Tiny leveled logger. Simulators are silent by default; set the level to
// kDebug/kTrace to watch schedules and waveguide events during development,
// or via the PSYNC_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace psync {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "error|warn|info|debug|trace" (case-insensitive); unknown -> warn.
LogLevel parse_log_level(const std::string& name);

bool log_enabled(LogLevel level);
void log_write(LogLevel level, const std::string& message);

}  // namespace psync

#define PSYNC_LOG(level, expr)                                    \
  do {                                                            \
    if (::psync::log_enabled(level)) {                            \
      std::ostringstream psync_log_os_;                           \
      psync_log_os_ << expr;                                      \
      ::psync::log_write(level, psync_log_os_.str());             \
    }                                                             \
  } while (false)

#define PSYNC_WARN(expr) PSYNC_LOG(::psync::LogLevel::kWarn, expr)
#define PSYNC_INFO(expr) PSYNC_LOG(::psync::LogLevel::kInfo, expr)
#define PSYNC_DEBUG(expr) PSYNC_LOG(::psync::LogLevel::kDebug, expr)
#define PSYNC_TRACE(expr) PSYNC_LOG(::psync::LogLevel::kTrace, expr)
