#include "psync/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_eng(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PSYNC_CHECK(!header_.empty());
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

Table& Table::row() {
  PSYNC_CHECK_MSG(cells_.empty() || cells_.back().size() == header_.size(),
                  "previous row is incomplete");
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  PSYNC_CHECK_MSG(!cells_.empty(), "row() must be called before add()");
  PSYNC_CHECK_MSG(cells_.back().size() < header_.size(), "too many cells in row");
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

void Table::set_align(std::size_t col, Align a) { align_.at(col) = a; }

std::string Table::to_string() const {
  PSYNC_CHECK_MSG(cells_.empty() || cells_.back().size() == header_.size(),
                  "last row is incomplete");
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& s,
                       std::size_t c) {
    const auto pad = width[c] - s.size();
    if (align_[c] == Align::kRight) os << std::string(pad, ' ') << s;
    else os << s << std::string(pad, ' ');
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "  ";
    emit_cell(os, header_[c], c);
  }
  os << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      emit_cell(os, row[c], c);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace psync
