#include "psync/common/event_queue.hpp"

#include <utility>

namespace psync {

void EventQueue::schedule_at(TimePs when, Handler fn) {
  PSYNC_CHECK_MSG(when >= now_, "event scheduled in the past");
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the element is popped immediately and never compared again.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ++fired_;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(TimePs until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace psync
