#include "psync/common/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace psync::simd {
namespace {

bool read_force_scalar() {
  const char* v = std::getenv("PSYNC_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

bool force_scalar() {
  static const bool v = read_force_scalar();
  return v;
}

bool have_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool v = __builtin_cpu_supports("avx2") != 0;
  return v && !force_scalar();
#else
  return false;
#endif
}

bool have_pclmul() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool v = __builtin_cpu_supports("pclmul") != 0 &&
                        __builtin_cpu_supports("sse4.1") != 0;
  return v && !force_scalar();
#else
  return false;
#endif
}

bool have_neon() {
#if defined(__aarch64__) && defined(__ARM_NEON)
  return !force_scalar();
#else
  return false;
#endif
}

}  // namespace psync::simd
