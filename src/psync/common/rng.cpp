#include "psync/common/rng.hpp"

#include "psync/common/check.hpp"

namespace psync {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PSYNC_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  PSYNC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace psync
