#include "psync/common/csv.hpp"

#include <cstdlib>

#include "psync/common/check.hpp"
#include "psync/common/table.hpp"

namespace psync {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) throw SimulationError("CsvWriter: cannot open " + path);
  PSYNC_CHECK(cols_ > 0);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::end_row_if_open() {
  if (row_open_) {
    PSYNC_CHECK_MSG(cells_in_row_ == cols_, "CSV row has wrong cell count");
    out_ << '\n';
    row_open_ = false;
    cells_in_row_ = 0;
  }
}

CsvWriter& CsvWriter::row() {
  end_row_if_open();
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::add(const std::string& cell) {
  PSYNC_CHECK(row_open_);
  PSYNC_CHECK_MSG(cells_in_row_ < cols_, "too many CSV cells");
  if (cells_in_row_ > 0) out_ << ',';
  out_ << escape(cell);
  ++cells_in_row_;
  return *this;
}

CsvWriter& CsvWriter::add(double v) { return add(format_double(v, 6)); }
CsvWriter& CsvWriter::add(std::int64_t v) { return add(std::to_string(v)); }
CsvWriter& CsvWriter::add(std::uint64_t v) { return add(std::to_string(v)); }

void CsvWriter::close() {
  end_row_if_open();
  out_.flush();
}

CsvWriter::~CsvWriter() {
  if (out_.is_open()) close();
}

std::optional<std::string> csv_output_dir() {
  const char* dir = std::getenv("PSYNC_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

}  // namespace psync
