#include "psync/common/stats.hpp"

#include "psync/common/check.hpp"

namespace psync {

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double total = static_cast<double>(n_ + o.n_);
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / total;
  mean_ += delta * static_cast<double>(o.n_) / total;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  PSYNC_CHECK(hi > lo);
  PSYNC_CHECK(bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  PSYNC_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return bin_hi(i);
  }
  return bin_hi(counts_.size() - 1);
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %8llu ", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += buf;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace psync
