// Runtime ISA detection for the optional vector kernels (FFT butterflies,
// CRC32 folding, SECDED syndromes). Queries are cached after the first call
// and honor the PSYNC_FORCE_SCALAR environment variable, so tests and CI can
// pin the scalar fallbacks without rebuilding. Kernel translation units are
// compiled with per-source ISA flags (see the fft/ and reliability/
// CMakeLists); everything here is plain portable C++.
#pragma once

namespace psync::simd {

/// True when PSYNC_FORCE_SCALAR is set to a non-empty value other than "0"
/// in the environment. Read once, then cached for the process lifetime.
bool force_scalar();

/// CPU executes AVX2 and the process is not pinned to scalar paths.
bool have_avx2();

/// CPU executes PCLMULQDQ + SSE4.1 (carry-less multiply CRC folding) and the
/// process is not pinned to scalar paths.
bool have_pclmul();

/// Compiled for a target with NEON (AArch64) and not pinned to scalar.
bool have_neon();

}  // namespace psync::simd
