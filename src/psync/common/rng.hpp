// Deterministic pseudo-random number generation for workload generators and
// property tests: xoshiro256** (Blackman & Vigna), seeded via splitmix64 so
// any 64-bit seed yields a well-mixed state.
#pragma once

#include <cstdint>
#include <vector>

namespace psync {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Spawn an independent stream (for per-node generators).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace psync
