// Append-only, fsync'd line journal — the crash-safety primitive under the
// experiment driver's sweep checkpointing.
//
// Contract: append() returns only after the line (with its trailing
// newline) has been handed to the kernel *and* fsync(2) succeeded, so a
// journal read back after a kill -9 contains every acknowledged line plus
// at most one torn tail. Each line is written with a single write(2) and
// '\n' is its last byte, so a partially-applied write can only produce an
// unterminated tail — which read_journal_lines() drops.
#pragma once

#include <string>
#include <vector>

namespace psync {

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Open `path` for appending. With `keep_existing` the current content
  /// survives (resume); otherwise the file is truncated. Throws
  /// SimulationError when the file cannot be opened.
  ///
  /// Ownership: the writer takes an exclusive flock(2) advisory lock on the
  /// file for as long as it is open, so two processes (or two writers in
  /// one process) can never interleave appends into the same journal — the
  /// second opener gets a JournalBusyError instead of silent corruption.
  /// The lock dies with the holder, so a SIGKILLed worker's journal is
  /// immediately reopenable by its replacement.
  void open(const std::string& path, bool keep_existing);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Durably append one line (a trailing '\n' is added; `line` must not
  /// contain one). Throws SimulationError on write or fsync failure.
  void append(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Every complete ('\n'-terminated) line of `path`, without the newline.
/// A torn final line — the kill -9 signature — is dropped; a missing file
/// reads as empty.
[[nodiscard]] std::vector<std::string> read_journal_lines(
    const std::string& path);

/// Every "*.jsonl" file directly inside `dir`, as full paths, sorted by
/// name (deterministic scan order). A missing or unreadable directory
/// reads as empty — the journal-store index for a cache directory that
/// has not been written to yet.
[[nodiscard]] std::vector<std::string> list_journal_files(
    const std::string& dir);

/// fsync the directory containing `path`, making a just-created (or
/// just-renamed) directory entry itself durable: fsync(file) persists the
/// file's bytes, but the *name* lives in the parent directory's data, and
/// a crash between the two can resurface an empty/absent journal a reader
/// already saw. Best-effort: filesystems that refuse directory fsync
/// (some network mounts) are ignored rather than failed.
void fsync_parent_dir(const std::string& path);

/// rename(2) `from` over `to`, then fsync the destination's parent
/// directory, so the rename survives a crash (a plain rename can be
/// reordered behind it by the filesystem journal — the classic
/// rename-then-crash hole). Throws SimulationError when the rename itself
/// fails.
void durable_rename(const std::string& from, const std::string& to);

}  // namespace psync
