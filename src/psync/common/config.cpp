#include "psync/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

IniConfig IniConfig::parse(const std::string& text) {
  IniConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw SimulationError("IniConfig: malformed section at line " +
                              std::to_string(lineno));
      }
      section = trim(line.substr(1, line.size() - 2));
      if (!cfg.data_.count(section)) {
        cfg.data_[section] = {};
        cfg.section_order_.push_back(section);
        cfg.key_order_[section] = {};
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw SimulationError("IniConfig: expected 'key = value' at line " +
                            std::to_string(lineno));
    }
    if (section.empty()) {
      throw SimulationError("IniConfig: key outside any section at line " +
                            std::to_string(lineno));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw SimulationError("IniConfig: empty key at line " +
                            std::to_string(lineno));
    }
    auto& sec = cfg.data_[section];
    if (sec.count(key)) {
      throw SimulationError("IniConfig: duplicate key '" + key +
                            "' at line " + std::to_string(lineno));
    }
    sec[key] = value;
    cfg.key_order_[section].push_back(key);
  }
  return cfg;
}

IniConfig IniConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SimulationError("IniConfig: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bool IniConfig::has_section(const std::string& section) const {
  return data_.count(section) > 0;
}

bool IniConfig::has(const std::string& section, const std::string& key) const {
  const auto it = data_.find(section);
  return it != data_.end() && it->second.count(key) > 0;
}

std::vector<std::string> IniConfig::sections() const { return section_order_; }

std::vector<std::string> IniConfig::keys(const std::string& section) const {
  const auto it = key_order_.find(section);
  return it != key_order_.end() ? it->second : std::vector<std::string>{};
}

std::optional<std::string> IniConfig::get(const std::string& section,
                                          const std::string& key) const {
  const auto it = data_.find(section);
  if (it == data_.end()) return std::nullopt;
  const auto kit = it->second.find(key);
  if (kit == it->second.end()) return std::nullopt;
  return kit->second;
}

std::string IniConfig::get_string(const std::string& section,
                                  const std::string& key,
                                  const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::int64_t IniConfig::get_int(const std::string& section,
                                const std::string& key,
                                std::int64_t fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(*v, &used, 0);
    if (used != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw SimulationError("IniConfig: '" + section + "." + key +
                          "' is not an integer: " + *v);
  }
}

double IniConfig::get_double(const std::string& section,
                             const std::string& key, double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw SimulationError("IniConfig: '" + section + "." + key +
                          "' is not a number: " + *v);
  }
}

bool IniConfig::get_bool(const std::string& section, const std::string& key,
                         bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string low = lower(*v);
  if (low == "true" || low == "yes" || low == "on" || low == "1") return true;
  if (low == "false" || low == "no" || low == "off" || low == "0") return false;
  throw SimulationError("IniConfig: '" + section + "." + key +
                        "' is not a boolean: " + *v);
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Nearest candidate within an edit distance small enough to be a typo.
template <typename Range>
std::string suggest(const std::string& name, const Range& candidates) {
  std::string best;
  std::size_t best_d = name.size() / 2 + 2;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

bool parses_as(ConfigSchema::Type type, const std::string& value) {
  const auto is_int = [](const std::string& tok) {
    try {
      std::size_t used = 0;
      (void)std::stoll(tok, &used, 0);
      return used == tok.size();
    } catch (const std::exception&) {
      return false;
    }
  };
  const auto is_double = [](const std::string& tok) {
    try {
      std::size_t used = 0;
      (void)std::stod(tok, &used);
      return used == tok.size();
    } catch (const std::exception&) {
      return false;
    }
  };
  switch (type) {
    case ConfigSchema::Type::kString:
      return true;
    case ConfigSchema::Type::kInt:
      return is_int(value);
    case ConfigSchema::Type::kDouble:
      return is_double(value);
    case ConfigSchema::Type::kBool: {
      const std::string low = lower(value);
      return low == "true" || low == "yes" || low == "on" || low == "1" ||
             low == "false" || low == "no" || low == "off" || low == "0";
    }
    case ConfigSchema::Type::kIntList:
    case ConfigSchema::Type::kDoubleList: {
      std::istringstream in(value);
      std::string tok;
      bool any = false;
      while (in >> tok) {
        any = true;
        if (type == ConfigSchema::Type::kIntList ? !is_int(tok)
                                                 : !is_double(tok)) {
          return false;
        }
      }
      return any;
    }
  }
  return false;
}

const char* type_name(ConfigSchema::Type type) {
  switch (type) {
    case ConfigSchema::Type::kString: return "string";
    case ConfigSchema::Type::kInt: return "integer";
    case ConfigSchema::Type::kDouble: return "number";
    case ConfigSchema::Type::kBool: return "boolean";
    case ConfigSchema::Type::kIntList: return "integer list";
    case ConfigSchema::Type::kDoubleList: return "number list";
  }
  return "?";
}

}  // namespace

std::string ConfigDiagnostic::to_string() const {
  switch (kind) {
    case Kind::kUnknownSection:
      return "unknown section [" + section + "]: " + message;
    case Kind::kUnknownKey:
      return "unknown key '" + section + "." + key + "': " + message;
    case Kind::kBadValue:
      return "bad value for '" + section + "." + key + "': " + message;
  }
  return message;
}

ConfigSchema& ConfigSchema::section(const std::string& name) {
  schema_[name];
  return *this;
}

ConfigSchema& ConfigSchema::key(const std::string& section,
                                const std::string& name, Type type) {
  schema_[section][name] = type;
  return *this;
}

std::vector<ConfigDiagnostic> ConfigSchema::validate(
    const IniConfig& cfg) const {
  std::vector<ConfigDiagnostic> out;
  std::vector<std::string> section_names;
  for (const auto& [name, keys] : schema_) section_names.push_back(name);

  for (const auto& sec : cfg.sections()) {
    const auto sit = schema_.find(sec);
    if (sit == schema_.end()) {
      ConfigDiagnostic d;
      d.kind = ConfigDiagnostic::Kind::kUnknownSection;
      d.section = sec;
      const auto near = suggest(sec, section_names);
      d.message = near.empty() ? "not recognized"
                               : "not recognized; did you mean [" + near + "]?";
      out.push_back(std::move(d));
      continue;
    }
    std::vector<std::string> key_names;
    for (const auto& [name, type] : sit->second) key_names.push_back(name);
    for (const auto& key : cfg.keys(sec)) {
      const auto kit = sit->second.find(key);
      if (kit == sit->second.end()) {
        ConfigDiagnostic d;
        d.kind = ConfigDiagnostic::Kind::kUnknownKey;
        d.section = sec;
        d.key = key;
        const auto near = suggest(key, key_names);
        d.message = near.empty()
                        ? "not recognized"
                        : "not recognized; did you mean '" + near + "'?";
        out.push_back(std::move(d));
        continue;
      }
      const auto value = cfg.get(sec, key);
      if (value && !parses_as(kit->second, *value)) {
        ConfigDiagnostic d;
        d.kind = ConfigDiagnostic::Kind::kBadValue;
        d.section = sec;
        d.key = key;
        d.message = "expected " + std::string(type_name(kit->second)) +
                    ", got '" + *value + "'";
        out.push_back(std::move(d));
      }
    }
  }
  return out;
}

}  // namespace psync
