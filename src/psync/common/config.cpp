#include "psync/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "psync/common/check.hpp"

namespace psync {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

IniConfig IniConfig::parse(const std::string& text) {
  IniConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw SimulationError("IniConfig: malformed section at line " +
                              std::to_string(lineno));
      }
      section = trim(line.substr(1, line.size() - 2));
      if (!cfg.data_.count(section)) {
        cfg.data_[section] = {};
        cfg.section_order_.push_back(section);
        cfg.key_order_[section] = {};
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw SimulationError("IniConfig: expected 'key = value' at line " +
                            std::to_string(lineno));
    }
    if (section.empty()) {
      throw SimulationError("IniConfig: key outside any section at line " +
                            std::to_string(lineno));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw SimulationError("IniConfig: empty key at line " +
                            std::to_string(lineno));
    }
    auto& sec = cfg.data_[section];
    if (sec.count(key)) {
      throw SimulationError("IniConfig: duplicate key '" + key +
                            "' at line " + std::to_string(lineno));
    }
    sec[key] = value;
    cfg.key_order_[section].push_back(key);
  }
  return cfg;
}

IniConfig IniConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SimulationError("IniConfig: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bool IniConfig::has_section(const std::string& section) const {
  return data_.count(section) > 0;
}

bool IniConfig::has(const std::string& section, const std::string& key) const {
  const auto it = data_.find(section);
  return it != data_.end() && it->second.count(key) > 0;
}

std::vector<std::string> IniConfig::sections() const { return section_order_; }

std::vector<std::string> IniConfig::keys(const std::string& section) const {
  const auto it = key_order_.find(section);
  return it != key_order_.end() ? it->second : std::vector<std::string>{};
}

std::optional<std::string> IniConfig::get(const std::string& section,
                                          const std::string& key) const {
  const auto it = data_.find(section);
  if (it == data_.end()) return std::nullopt;
  const auto kit = it->second.find(key);
  if (kit == it->second.end()) return std::nullopt;
  return kit->second;
}

std::string IniConfig::get_string(const std::string& section,
                                  const std::string& key,
                                  const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::int64_t IniConfig::get_int(const std::string& section,
                                const std::string& key,
                                std::int64_t fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(*v, &used, 0);
    if (used != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw SimulationError("IniConfig: '" + section + "." + key +
                          "' is not an integer: " + *v);
  }
}

double IniConfig::get_double(const std::string& section,
                             const std::string& key, double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw SimulationError("IniConfig: '" + section + "." + key +
                          "' is not a number: " + *v);
  }
}

bool IniConfig::get_bool(const std::string& section, const std::string& key,
                         bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string low = lower(*v);
  if (low == "true" || low == "yes" || low == "on" || low == "1") return true;
  if (low == "false" || low == "no" || low == "off" || low == "0") return false;
  throw SimulationError("IniConfig: '" + section + "." + key +
                        "' is not a boolean: " + *v);
}

}  // namespace psync
