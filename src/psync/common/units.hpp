// Time, frequency, bandwidth, energy and power units used across the
// P-sync simulators.
//
// Convention:
//  * Event-driven and cycle-level simulation uses integer picoseconds
//    (TimePs). A 10 Gb/s photonic bit slot is exactly 100 ps and a 2.5 GHz
//    mesh cycle is exactly 400 ps, so every quantity in the paper's
//    parameterization is exactly representable.
//  * Closed-form analytic models (Section V of the paper) use double
//    seconds/nanoseconds; helpers below convert between the two domains.
#pragma once

#include <cstdint>

#include "psync/common/check.hpp"

namespace psync {

/// Simulation time in integer picoseconds.
using TimePs = std::int64_t;

/// Cycle index in a clock domain.
using Cycle = std::int64_t;

namespace units {

inline constexpr TimePs kPicosecond = 1;
inline constexpr TimePs kNanosecond = 1'000;
inline constexpr TimePs kMicrosecond = 1'000'000;
inline constexpr TimePs kMillisecond = 1'000'000'000;

/// Picoseconds for one bit at `gbps` gigabits per second. The rate must be
/// exactly representable on the integer picosecond clock (10 Gb/s -> 100 ps,
/// 2.5 GHz -> 400 ps, 3.125 GHz -> 320 ps); a rate whose period would have
/// to round (3 GHz -> 333.3 ps) throws ConfigError, because silently rounded
/// periods accumulate drift over a multi-million-slot SCA burst. In a
/// constexpr context the throw is a compile error instead.
constexpr TimePs bit_period_ps(double gbps) {
  if (!(gbps > 0.0)) {
    throw ConfigError("bit_period_ps: rate must be positive");
  }
  const auto period = static_cast<TimePs>(1000.0 / gbps + 0.5);
  // Tolerance covers only the binary representation error of a decimally
  // exact rate (0.1 GHz -> 10000 ps has |err| ~ 1e-13); a genuinely rounded
  // period (3 GHz -> 333 ps) misses 1000 by >= 0.1 and is rejected.
  const double err = static_cast<double>(period) * gbps - 1000.0;
  if (period <= 0 || err > 1e-9 || err < -1e-9) {
    throw ConfigError(
        "bit_period_ps: rate does not divide 1000 ps exactly; the integer "
        "picosecond clock cannot represent its period without drift");
  }
  return period;
}

/// Period of a clock at `ghz` gigahertz, in picoseconds. Same exactness
/// contract as bit_period_ps: a frequency whose period is not a whole
/// number of picoseconds throws ConfigError.
constexpr TimePs clock_period_ps(double ghz) {
  if (!(ghz > 0.0)) {
    throw ConfigError("clock_period_ps: frequency must be positive");
  }
  const auto period = static_cast<TimePs>(1000.0 / ghz + 0.5);
  const double err = static_cast<double>(period) * ghz - 1000.0;
  if (period <= 0 || err > 1e-9 || err < -1e-9) {
    throw ConfigError(
        "clock_period_ps: frequency does not divide 1000 ps exactly; the "
        "integer picosecond clock cannot represent its period without drift");
  }
  return period;
}

constexpr double ps_to_ns(TimePs t) { return static_cast<double>(t) * 1e-3; }
constexpr double ps_to_us(TimePs t) { return static_cast<double>(t) * 1e-6; }
constexpr double ps_to_s(TimePs t) { return static_cast<double>(t) * 1e-12; }
constexpr TimePs ns_to_ps(double ns) {
  return static_cast<TimePs>(ns * 1e3 + (ns >= 0 ? 0.5 : -0.5));
}

/// Bits transferred in `t` picoseconds at `gbps` Gb/s.
constexpr double bits_in(TimePs t, double gbps) {
  return static_cast<double>(t) * 1e-3 * gbps;
}

/// Gb/s given bits moved over a picosecond interval.
constexpr double gbps_of(double bits, TimePs t) {
  return t > 0 ? bits / (static_cast<double>(t) * 1e-3) : 0.0;
}

// Energy units: femtojoules as the integer-free base (double), since device
// energies in the Fig. 5 models are quoted in fJ/bit and pJ/bit.
inline constexpr double kFemtojoule = 1.0;
inline constexpr double kPicojoule = 1e3;   // in fJ
inline constexpr double kNanojoule = 1e6;   // in fJ

constexpr double fj_to_pj(double fj) { return fj * 1e-3; }
constexpr double pj_to_fj(double pj) { return pj * 1e3; }

/// Power (watts) from energy (fJ) over time (ps): W = fJ/ps * 1e-3.
constexpr double watts_of(double energy_fj, TimePs t) {
  return t > 0 ? energy_fj * 1e-3 / static_cast<double>(t) : 0.0;
}

/// Energy (fJ) consumed by `watts` over `t` picoseconds.
constexpr double energy_fj(double watts, TimePs t) {
  return watts * static_cast<double>(t) * 1e3;
}

// Length: micrometres as the base (double), chips are O(cm).
inline constexpr double kMicrometer = 1.0;
inline constexpr double kMillimeter = 1e3;  // in um
inline constexpr double kCentimeter = 1e4;  // in um

constexpr double um_to_cm(double um) { return um * 1e-4; }
constexpr double cm_to_um(double cm) { return cm * 1e4; }
constexpr double mm_to_um(double mm) { return mm * 1e3; }

}  // namespace units
}  // namespace psync
