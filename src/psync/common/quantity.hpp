// Dimensional strong types: the type system as a static analyzer.
//
// The simulators juggle at least seven physical dimensions as scalars —
// dB, dBm, mW, fJ, pJ, Gb/s, GHz, ps — and the paper's Eq. 1-3 loss-budget
// math is exactly the kind of code where a silently mixed dB <-> linear or
// fJ <-> pJ operand produces a plausible-but-wrong figure. `Quantity<Tag>`
// wraps a representation in a zero-overhead, constexpr strong type whose
// arithmetic is tag-checked at compile time:
//
//   * same-dimension arithmetic (dB + dB, fJ + fJ, scaling by a plain
//     count) works as usual;
//   * mixing dimensions (dB + mW, fJ + pJ, GHz + Gb/s) does not compile;
//   * dBm is an *affine level*, not a vector: level + level does not
//     compile, level - level yields a dB ratio, and level +/- dB shifts
//     the level — which is the entire link-budget algebra of Eq. 1-3;
//   * crossing dimensions requires a named conversion (db_to_linear,
//     dbm_to_mw, fj_to_pj, ...) whose formula is written exactly once.
//
// Strong index types (NodeId, LaneId, SlotId) apply the same idea to the
// scheduling code's integer spaces, where a transposed (node, lane) or
// (node, slot) argument pair is the classic silent bug.
//
// Everything here is a literal class over its representation: no virtuals,
// no storage beyond the raw value, fully constexpr — the optimizer sees
// through it and the generated code is identical to bare doubles.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>

#include "psync/common/check.hpp"
#include "psync/common/units.hpp"

namespace psync {

// ---------------------------------------------------------------------------
// Dimension tags.

struct DbTag {};              ///< Relative power ratio, decibels.
struct DbmTag {};             ///< Absolute power level, dB-milliwatts.
struct MilliWattTag {};       ///< Absolute power, linear milliwatts.
struct MicroWattTag {};       ///< Absolute power, linear microwatts.
struct FemtoJouleTag {};      ///< Energy, femtojoules.
struct PicoJouleTag {};       ///< Energy, picojoules.
struct GigabitsPerSecTag {};  ///< Data rate, gigabits per second.
struct GigaHertzTag {};       ///< Frequency, gigahertz.
struct PsTag {};              ///< Duration, picoseconds (real-valued).
struct NsTag {};              ///< Duration, nanoseconds (real-valued).

/// Per-tag algebra. The default is a plain vector dimension: q + q and
/// q - q stay in the dimension, scalar scaling is allowed, q / q is a
/// dimensionless ratio.
template <typename Tag>
struct QuantityTraits {
  static constexpr bool kAdditive = true;
};

/// dBm is an affine *level* over the dB delta dimension: adding two
/// absolute levels is physically meaningless (3 dBm + 3 dBm is not 6 dBm),
/// so only level - level -> dB and level +/- dB -> level exist.
template <>
struct QuantityTraits<DbmTag> {
  static constexpr bool kAdditive = false;
  using DeltaTag = DbTag;
};

// ---------------------------------------------------------------------------
// Quantity.

template <typename Tag, typename Rep = double>
class Quantity {
 public:
  using TagType = Tag;
  using RepType = Rep;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_(value) {}

  /// The raw representation, for serialization and for formulas whose
  /// dimensional bookkeeping ends here (always grep-able, never implicit).
  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity operator-() const
    requires QuantityTraits<Tag>::kAdditive
  {
    return Quantity(-value_);
  }

  constexpr Quantity& operator+=(Quantity other)
    requires QuantityTraits<Tag>::kAdditive
  {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other)
    requires QuantityTraits<Tag>::kAdditive
  {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep scale)
    requires QuantityTraits<Tag>::kAdditive
  {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(Rep scale)
    requires QuantityTraits<Tag>::kAdditive
  {
    value_ /= scale;
    return *this;
  }

 private:
  Rep value_ = Rep{};
};

// Same-dimension arithmetic (vector dimensions only). Free functions with
// requires-clauses so a rejected mix is a substitution failure — detectable
// by the static negative-test suite — rather than a hard error inside a
// member body.

template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Quantity<Tag, Rep> operator+(Quantity<Tag, Rep> a,
                                       Quantity<Tag, Rep> b) {
  return Quantity<Tag, Rep>(a.value() + b.value());
}

template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Quantity<Tag, Rep> operator-(Quantity<Tag, Rep> a,
                                       Quantity<Tag, Rep> b) {
  return Quantity<Tag, Rep>(a.value() - b.value());
}

template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Quantity<Tag, Rep> operator*(Quantity<Tag, Rep> q, Rep scale) {
  return Quantity<Tag, Rep>(q.value() * scale);
}

template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Quantity<Tag, Rep> operator*(Rep scale, Quantity<Tag, Rep> q) {
  return Quantity<Tag, Rep>(scale * q.value());
}

template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Quantity<Tag, Rep> operator/(Quantity<Tag, Rep> q, Rep scale) {
  return Quantity<Tag, Rep>(q.value() / scale);
}

/// Dimensionless ratio of two like quantities.
template <typename Tag, typename Rep>
  requires QuantityTraits<Tag>::kAdditive
constexpr Rep operator/(Quantity<Tag, Rep> a, Quantity<Tag, Rep> b) {
  return a.value() / b.value();
}

// Affine-level algebra (dBm over dB).

template <typename Tag, typename Rep>
  requires (!QuantityTraits<Tag>::kAdditive)
constexpr Quantity<typename QuantityTraits<Tag>::DeltaTag, Rep> operator-(
    Quantity<Tag, Rep> a, Quantity<Tag, Rep> b) {
  return Quantity<typename QuantityTraits<Tag>::DeltaTag, Rep>(a.value() -
                                                               b.value());
}

template <typename Tag, typename Rep>
  requires (!QuantityTraits<Tag>::kAdditive)
constexpr Quantity<Tag, Rep> operator+(
    Quantity<Tag, Rep> level,
    Quantity<typename QuantityTraits<Tag>::DeltaTag, Rep> delta) {
  return Quantity<Tag, Rep>(level.value() + delta.value());
}

template <typename Tag, typename Rep>
  requires (!QuantityTraits<Tag>::kAdditive)
constexpr Quantity<Tag, Rep> operator+(
    Quantity<typename QuantityTraits<Tag>::DeltaTag, Rep> delta,
    Quantity<Tag, Rep> level) {
  return Quantity<Tag, Rep>(delta.value() + level.value());
}

template <typename Tag, typename Rep>
  requires (!QuantityTraits<Tag>::kAdditive)
constexpr Quantity<Tag, Rep> operator-(
    Quantity<Tag, Rep> level,
    Quantity<typename QuantityTraits<Tag>::DeltaTag, Rep> delta) {
  return Quantity<Tag, Rep>(level.value() - delta.value());
}

// ---------------------------------------------------------------------------
// The seven working dimensions (plus helpers the models need).

using DecibelsDb = Quantity<DbTag>;
using DbmPower = Quantity<DbmTag>;
using MilliWatts = Quantity<MilliWattTag>;
using MicroWatts = Quantity<MicroWattTag>;
using FemtoJoules = Quantity<FemtoJouleTag>;
using PicoJoules = Quantity<PicoJouleTag>;
using GigabitsPerSec = Quantity<GigabitsPerSecTag>;
using GigaHertz = Quantity<GigaHertzTag>;
using Ps = Quantity<PsTag>;
using Ns = Quantity<NsTag>;

// ---------------------------------------------------------------------------
// Named conversions. Each formula is written once, here, with exactly the
// floating-point expression the pre-Quantity code used — serialized outputs
// must stay byte-identical across the migration.

/// dB ratio -> linear power ratio: 10^(dB/10).
inline double db_to_linear(DecibelsDb db) {
  return std::pow(10.0, db.value() / 10.0);
}

/// Linear power ratio -> dB. Throws SimulationError on ratio <= 0.
inline DecibelsDb linear_to_db(double ratio) {
  if (ratio <= 0.0) {
    throw SimulationError("ratio must be positive");
  }
  return DecibelsDb(10.0 * std::log10(ratio));
}

/// Absolute dBm level -> linear milliwatts: 10^(dBm/10).
inline MilliWatts dbm_to_mw(DbmPower p) {
  return MilliWatts(std::pow(10.0, p.value() / 10.0));
}

/// Linear milliwatts -> dBm level. Throws SimulationError on mW <= 0.
inline DbmPower mw_to_dbm(MilliWatts p) {
  if (p.value() <= 0.0) {
    throw SimulationError("power must be positive to express in dBm");
  }
  return DbmPower(10.0 * std::log10(p.value()));
}

constexpr PicoJoules fj_to_pj(FemtoJoules e) {
  return PicoJoules(e.value() * 1e-3);
}
constexpr FemtoJoules pj_to_fj(PicoJoules e) {
  return FemtoJoules(e.value() * 1e3);
}
constexpr MilliWatts uw_to_mw(MicroWatts p) {
  return MilliWatts(p.value() * 1e-3);
}

constexpr Ns ps_to_ns(Ps t) { return Ns(t.value() * 1e-3); }
constexpr Ps ns_to_ps(Ns t) { return Ps(t.value() * 1e3); }

/// Interop with the integer simulation clock (TimePs).
constexpr Ps ps_from(TimePs t) { return Ps(static_cast<double>(t)); }
/// Round-to-nearest conversion back onto the integer clock.
constexpr TimePs to_time_ps(Ps t) {
  return static_cast<TimePs>(t.value() + (t.value() >= 0 ? 0.5 : -0.5));
}

/// Period of one cycle at `f`, real-valued picoseconds.
constexpr Ps period(GigaHertz f) { return Ps(1000.0 / f.value()); }
/// Duration of one bit at rate `r`, real-valued picoseconds.
constexpr Ps bit_period(GigabitsPerSec r) { return Ps(1000.0 / r.value()); }
/// Slot-clock frequency when each slot carries `bits_per_slot` bits of an
/// aggregate stream: Gb/s over bit/slot is Gslot/s, i.e. GHz.
constexpr GigaHertz slot_clock(GigabitsPerSec aggregate,
                               double bits_per_slot) {
  return GigaHertz(aggregate.value() / bits_per_slot);
}

// Compound conversions for the energy models. mW / (Gb/s) is pJ/bit
// (1e-3 J/s over 1e9 bit/s = 1e-12 J/bit), mW * ps is fJ; the factor in
// each formula is that dimensional bridge, written once.

/// Energy charged to each bit when `power` is drawn continuously while
/// moving data at `rate`: mW / Gbps = pJ/bit -> fJ/bit.
constexpr FemtoJoules energy_per_bit(MilliWatts power, GigabitsPerSec rate) {
  return FemtoJoules(power.value() / rate.value() * 1e3);
}

/// Continuous power equivalent of spending `per_bit` on every bit at
/// `rate`: fJ/bit * Gbps = uW -> mW.
constexpr MilliWatts power_of(FemtoJoules per_bit, GigabitsPerSec rate) {
  return MilliWatts(per_bit.value() * rate.value() * 1e-3);
}

/// Energy of `power` integrated over `span`: mW * ps = fJ -> pJ.
constexpr PicoJoules energy_over(MilliWatts power, Ps span) {
  return PicoJoules(power.value() * span.value() * 1e-3);
}

// ---------------------------------------------------------------------------
// Strong index types for the scheduling code. A NodeId is not a LaneId is
// not a SlotId: passing one where another is expected does not compile,
// which retires the transposed-argument class of scheduling bugs.

template <typename Tag, typename Rep>
class StrongIndex {
 public:
  using TagType = Tag;
  using RepType = Rep;

  constexpr StrongIndex() = default;
  constexpr explicit StrongIndex(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const StrongIndex&) const = default;

  constexpr StrongIndex& operator++() {
    ++value_;
    return *this;
  }

 private:
  Rep value_ = Rep{};
};

/// A node's position index along the bus / in the processor array.
using NodeId = StrongIndex<struct NodeIdTag, std::int32_t>;
/// A WDM wavelength (lane) index.
using LaneId = StrongIndex<struct LaneIdTag, std::uint32_t>;
/// A bit-slot index in a PSCAN schedule.
using SlotId = StrongIndex<struct SlotIdTag, std::int64_t>;

}  // namespace psync

template <typename Tag, typename Rep>
struct std::hash<psync::StrongIndex<Tag, Rep>> {
  std::size_t operator()(const psync::StrongIndex<Tag, Rep>& id) const {
    return std::hash<Rep>{}(id.value());
  }
};
