// Discrete-event simulation core.
//
// A deterministic event queue keyed by (time, sequence number): events at the
// same timestamp fire in insertion order, which makes every simulation in
// this repository bit-reproducible. Used by the PSCAN waveguide engine and
// the machine-level simulators; the mesh NoC uses a plain cycle loop instead.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/units.hpp"

namespace psync {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulation time. Monotonically non-decreasing across run()/step().
  TimePs now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Schedule `fn` to run at absolute time `when` (>= now()).
  void schedule_at(TimePs when, Handler fn);

  /// Schedule `fn` to run `delay` picoseconds from now (delay >= 0).
  void schedule_in(TimePs delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run the earliest event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run events with timestamp <= `until` (inclusive); afterwards now() is
  /// max(now, until). Returns the number of events fired.
  std::uint64_t run_until(TimePs until);

  /// Total events fired over the queue's lifetime.
  std::uint64_t fired() const { return fired_; }

 private:
  struct Event {
    TimePs when;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace psync
