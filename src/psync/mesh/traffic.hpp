// Workload generators for the mesh NoC experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/mesh/flit.hpp"
#include "psync/mesh/mesh.hpp"

namespace psync::mesh {

/// Transpose writeback (Table III): every node except the memory node sends
/// its `elements` data words to `memory_node`, split into packets of
/// `elements_per_packet` (one header flit each). Payloads encode
/// (source, element index) so integrity can be checked end to end.
std::vector<PacketDesc> transpose_writeback_traffic(
    const Mesh& mesh, NodeId memory_node, std::uint32_t elements,
    std::uint32_t elements_per_packet);

/// Scatter (delivery) traffic: the memory node sends `elements` words to
/// every other node, one node at a time (Model I serialized delivery),
/// packetized by `elements_per_packet`.
std::vector<PacketDesc> scatter_traffic(const Mesh& mesh, NodeId memory_node,
                                        std::uint32_t elements,
                                        std::uint32_t elements_per_packet);

/// Uniform-random traffic for network validation: `packets` packets with
/// random (src != dst) pairs and `payload_flits` payload flits each.
std::vector<PacketDesc> uniform_random_traffic(const Mesh& mesh,
                                               std::uint32_t packets,
                                               std::uint32_t payload_flits,
                                               Rng& rng);

/// Gather-to-corners traffic used for the Fig. 5 energy measurement: every
/// node sends `elements` words to its nearest corner memory interface.
std::vector<PacketDesc> gather_to_corners_traffic(
    const Mesh& mesh, std::uint32_t elements,
    std::uint32_t elements_per_packet);

/// Nearest corner node for `n` (NW, NE, SW or SE of the mesh).
NodeId nearest_corner(const Mesh& mesh, NodeId n);

/// Payload encoding helpers (src in the high 32 bits, index low).
std::uint64_t encode_payload(NodeId src, std::uint32_t index);
NodeId payload_src(std::uint64_t payload);
std::uint32_t payload_index(std::uint64_t payload);

}  // namespace psync::mesh
