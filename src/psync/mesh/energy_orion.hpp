// ORION-style energy model for the electronic mesh (paper Fig. 5, [24]).
//
// Energy per bit moving through the network decomposes per hop into router
// energy (input buffer write + read, crossbar traversal, arbitration) and
// link energy. Links are repeated global wires: with the die fixed at
// 2 cm x 2 cm, per-hop wire length is die_width / mesh_dim, so "the
// link-repeater stages are inversely related to the number of network
// nodes" (paper Section III-C). Repeaters do not change energy/mm to first
// order (they linearize delay), so link energy scales with physical length
// — which is why the electronic network cannot win back the gap by adding
// nodes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "psync/common/quantity.hpp"
#include "psync/mesh/mesh.hpp"

namespace psync::mesh {

struct OrionParams {
  /// Die edge, millimetres (paper: 20 mm).
  double die_mm = 20.0;
  /// Flit width on the wire, bits (paper: 32-bit bus).
  double flit_bits = 32.0;
  /// Router pipeline depth, stages (paper assumes 3-stage routers).
  double router_stages = 3.0;

  // Per-event energies (45 nm-class constants, pJ per flit-event).
  double buffer_write_pj_per_bit = 0.050;
  double buffer_read_pj_per_bit = 0.030;
  double crossbar_pj_per_bit = 0.080;
  double arbiter_pj_per_flit = 0.25;
  /// Repeated full-swing global wire, pJ per bit per millimetre.
  double link_pj_per_bit_per_mm = 0.35;
  /// Router clock/pipeline overhead per stage, pJ per bit per stage.
  double pipeline_pj_per_bit_per_stage = 0.010;
  /// Optimal repeater segment length, millimetres (sets repeater count).
  double repeater_segment_mm = 1.0;
};

struct OrionReport {
  PicoJoules total_pj{0.0};
  double pj_per_bit = 0.0;        // per *delivered payload* bit
  double link_mm_per_hop = 0.0;
  std::size_t repeaters_per_link = 0;
  PicoJoules router_pj{0.0};
  PicoJoules link_pj{0.0};
};

/// Per-hop wire length for a `dim x dim` mesh on the configured die.
double hop_length_mm(const OrionParams& p, std::size_t mesh_dim);

/// Repeater stages per link (ceil of length over optimal segment).
std::size_t repeaters_per_link(const OrionParams& p, std::size_t mesh_dim);

/// Energy of one flit crossing one router + one link, pJ.
double per_hop_flit_pj(const OrionParams& p, std::size_t mesh_dim);

/// Evaluate the energy of a finished simulation from its activity counters.
OrionReport evaluate(const OrionParams& p, const MeshActivity& activity,
                     std::size_t mesh_dim, std::uint64_t payload_bits_moved);

/// Closed-form estimate for traffic with mean hop count `avg_hops`,
/// pJ per payload bit (header overhead factor >= 1 inflates flit count).
double estimate_pj_per_bit(const OrionParams& p, std::size_t mesh_dim,
                           double avg_hops, double header_overhead = 1.0);

}  // namespace psync::mesh
