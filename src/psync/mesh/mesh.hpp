// Cycle-level wormhole-routed 2D mesh NoC.
//
// Microarchitecture (paper Section V-C-2):
//   * square mesh, single channel between neighbors, 64-bit flits, one flit
//     crosses a link per cycle;
//   * input-buffered routers with `buffer_depth`-flit FIFOs (paper: 2);
//   * t_r-cycle routing delay for every header flit in every router;
//   * wormhole switching: an output port is held by a packet from its head
//     grant until its tail traverses;
//   * credit-based flow control with one-cycle credit return;
//   * routing: deterministic XY, or minimal-adaptive west-first (deadlock-
//     free turn model) that picks the less congested minimal direction.
//
// Ejection at a node goes to a Sink; memory interfaces (memory_interface.hpp)
// and simple consumers implement this interface.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "psync/common/calendar_queue.hpp"
#include "psync/common/stats.hpp"
#include "psync/mesh/flit.hpp"

namespace psync::mesh {

enum class RouteAlgo : std::uint8_t {
  kXY = 0,
  kWestFirstAdaptive = 1,
};

struct MeshParams {
  std::uint32_t width = 4;
  std::uint32_t height = 4;
  std::uint32_t buffer_depth = 2;   // flits per input VC FIFO (paper: 2)
  std::uint32_t route_delay = 1;    // t_r, cycles per header per router
  RouteAlgo algo = RouteAlgo::kXY;
  /// Virtual channels per physical port (paper's mesh: 1). Each VC has its
  /// own buffer_depth-flit FIFO; one flit still crosses a link per cycle.
  std::uint32_t virtual_channels = 1;
};

/// Consumer of ejected flits at a node.
class Sink {
 public:
  virtual ~Sink() = default;
  /// Offer a flit this cycle; return false to exert backpressure.
  virtual bool accept(const Flit& flit, std::int64_t cycle) = 0;
  /// Advance internal state one cycle (called once per mesh cycle).
  virtual void step(std::int64_t cycle) { (void)cycle; }
};

/// Unbounded sink consuming up to `rate` flits per cycle; records stats.
/// Self-clocked from the cycle passed to accept(), so it needs no step().
class ConsumeSink final : public Sink {
 public:
  explicit ConsumeSink(std::uint32_t rate = 1) : rate_(rate) {}
  bool accept(const Flit& flit, std::int64_t cycle) override;

  std::uint64_t flits() const { return flits_; }
  std::uint64_t packets() const { return packets_; }
  const std::vector<Flit>& log() const { return log_; }
  /// Arrival cycle of log()[i] (kept alongside the flit log).
  const std::vector<std::int64_t>& log_cycles() const { return log_cycles_; }
  /// Enable flit logging; `expected_flits` pre-reserves both log vectors so
  /// long traffic runs never reallocate mid-measurement.
  void keep_log(bool on, std::size_t expected_flits = 0) {
    keep_log_ = on;
    if (on && expected_flits > 0) {
      log_.reserve(expected_flits);
      log_cycles_.reserve(expected_flits);
    }
  }
  /// Drop logged flits (capacity is kept) so a sink can be reused across
  /// measurement windows without accumulating unbounded history.
  void clear_log() {
    log_.clear();
    log_cycles_.clear();
  }

 private:
  std::uint32_t rate_;
  std::uint32_t used_this_cycle_ = 0;
  std::int64_t last_cycle_ = -1;
  std::uint64_t flits_ = 0;
  std::uint64_t packets_ = 0;
  bool keep_log_ = false;
  std::vector<Flit> log_;
  std::vector<std::int64_t> log_cycles_;
};

/// Per-simulation activity counters feeding the ORION-style energy model.
struct MeshActivity {
  std::uint64_t buffer_writes = 0;    // flit enqueued into an input FIFO
  std::uint64_t buffer_reads = 0;     // flit dequeued
  std::uint64_t crossbar_traversals = 0;
  std::uint64_t link_traversals = 0;  // inter-router hops (not local)
  std::uint64_t arbitrations = 0;     // output allocations performed
  std::uint64_t injected_flits = 0;
  std::uint64_t ejected_flits = 0;
  std::uint64_t injected_packets = 0;
  std::uint64_t ejected_packets = 0;
};

class Mesh {
 public:
  explicit Mesh(MeshParams params);

  const MeshParams& params() const { return params_; }
  std::uint32_t nodes() const { return params_.width * params_.height; }
  std::int64_t cycle() const { return cycle_; }

  NodeId node_at(std::uint32_t x, std::uint32_t y) const;
  std::uint32_t x_of(NodeId n) const { return n % params_.width; }
  std::uint32_t y_of(NodeId n) const { return n / params_.width; }
  std::uint32_t manhattan(NodeId a, NodeId b) const;

  /// Attach a sink to a node's ejection port (replaces the default
  /// ConsumeSink). The mesh keeps a non-owning pointer.
  void set_sink(NodeId node, Sink* sink);

  /// Queue a packet for injection at its source node.
  void inject(const PacketDesc& desc);

  /// Advance one cycle.
  void step();

  /// Run until all injected packets are fully ejected or `max_cycles`
  /// elapse. Returns true when drained.
  bool run_until_drained(std::int64_t max_cycles);

  /// Idle-cycle fast-forward (on by default): when nothing is buffered,
  /// queued, or active, run_until_drained() jumps `cycle_` straight to the
  /// next scheduled release instead of stepping empty cycles one at a time.
  /// Skipped cycles are observationally idle — no counter, stat, or sink
  /// callback would have fired — so results are identical either way; the
  /// toggle exists so equivalence tests can force the naive loop.
  void set_idle_skip(bool on) { idle_skip_ = on; }
  bool idle_skip() const { return idle_skip_; }

  /// True when no flit is buffered anywhere and no injection is pending.
  bool drained() const;

  const MeshActivity& activity() const { return activity_; }
  /// Packet latency (inject of head to eject of tail), in cycles.
  const RunningStats& packet_latency() const { return packet_latency_; }
  /// Opt-in per-packet latency recording (for histograms); off by default
  /// to keep the big runs lean.
  void record_latencies(bool on) { record_latencies_ = on; }
  const std::vector<double>& latencies() const { return latencies_; }
  /// Flits currently buffered in the network.
  std::uint64_t in_flight_flits() const { return in_flight_flits_; }
  /// Packets injected but whose tail has not yet ejected.
  std::uint64_t in_flight_packets() const { return in_flight_packets_; }

 private:
  // Port order: N, E, S, W, LOCAL-in (injection); outputs: N, E, S, W, EJECT.
  static constexpr int kPortN = 0;
  static constexpr int kPortE = 1;
  static constexpr int kPortS = 2;
  static constexpr int kPortW = 3;
  static constexpr int kPortLocal = 4;
  static constexpr int kPorts = 5;
  static constexpr int kNoPort = -1;
  static constexpr int kNoVc = -1;
  static constexpr std::int16_t kFree = -1;

  /// One virtual channel of one input port: its own FIFO and per-packet
  /// routing/allocation state.
  struct InputVc {
    std::vector<Flit> fifo;   // ring buffer, capacity = buffer_depth
    std::uint32_t head = 0;
    std::uint32_t count = 0;
    // State for the packet at the FIFO front.
    int route_out = kNoPort;        // decided output, or kNoPort
    int out_vc = kNoVc;             // allocated downstream VC
    std::uint32_t route_wait = 0;   // remaining t_r cycles
    bool routing = false;           // countdown in progress
  };

  struct Router {
    std::vector<InputVc> in;             // kPorts * V input VCs
    std::vector<std::int16_t> out_owner; // kPorts * V: holding in-VC index
    std::vector<std::uint16_t> credits;  // kPorts * V toward downstream
    std::uint8_t rr_next[kPorts];        // switch round-robin per output
    std::uint8_t vc_rr[kPorts];          // out-VC allocation round-robin
  };

  struct Staged {
    Flit flit;
    NodeId node;
    int in_port;
    int vc;
  };

  struct Release {
    std::int64_t cycle;
    PacketId id;
    PacketDesc desc;
  };

  int vcs() const { return static_cast<int>(params_.virtual_channels); }
  int ivc(int port, int vc) const { return port * vcs() + vc; }

  bool fifo_full(const InputVc& p) const { return p.count >= params_.buffer_depth; }
  std::uint32_t fifo_index(std::uint32_t slot) const { return slot & fifo_mask_; }
  const Flit& fifo_front(const InputVc& p) const { return p.fifo[p.head]; }
  void fifo_push(InputVc& p, const Flit& f);
  Flit fifo_pop(InputVc& p);

  int neighbor(NodeId node, int out_port, NodeId* out_node) const;
  int compute_route(NodeId at, const Flit& head, const Router& r) const;
  void update_routing(Router& r, NodeId n);
  bool serve_outputs(NodeId n, Router& r);
  bool serve_injection(NodeId n);
  void activate(NodeId n);
  void expand_packet(PacketId id, const PacketDesc& desc);

  MeshParams params_;
  std::vector<Router> routers_;
  std::vector<Sink*> sinks_;
  std::vector<NodeId> stepped_sinks_;  // explicitly attached, need step()
  std::vector<std::unique_ptr<ConsumeSink>> default_sinks_;
  // Expanded flits awaiting injection, one queue per (node, local VC);
  // packets are assigned to local VCs round-robin.
  std::vector<std::deque<Flit>> inject_queues_;  // nodes * V
  std::vector<std::uint8_t> inject_vc_rr_;       // per node
  std::uint64_t queued_flits_ = 0;
  // Future-release packets, keyed by release cycle. Packet ids are assigned
  // in inject() order, so push order doubles as the id tiebreak the old
  // priority queue used.
  CalendarQueue<Release> releases_;
  std::vector<Release> release_buf_;  // scratch for pop_due, reused
  std::vector<Staged> staged_;
  struct CreditReturn {
    NodeId node;
    int in_port;
    int vc;
  };
  std::vector<CreditReturn> credit_returns_;

  // Activity-gated simulation: only routers in the active set are stepped.
  std::vector<NodeId> cur_active_;
  std::vector<NodeId> next_active_;
  std::vector<std::uint8_t> in_next_active_;

  // Packet bookkeeping for latency stats: inject cycle by packet id.
  std::vector<std::int64_t> packet_inject_cycle_;
  RunningStats packet_latency_;
  bool record_latencies_ = false;
  std::vector<double> latencies_;

  std::int64_t cycle_ = 0;
  std::uint64_t in_flight_flits_ = 0;
  std::uint64_t in_flight_packets_ = 0;
  // FIFO rings are sized to bit_ceil(buffer_depth) so ring indices wrap with
  // a mask instead of an integer divide; logical capacity is unchanged.
  std::uint32_t fifo_mask_ = 0;
  bool idle_skip_ = true;
  MeshActivity activity_;
};

}  // namespace psync::mesh
